"""Shared fixtures: reproducible RNGs and the paper's standard laws."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions import Gamma, Normal, Poisson, Uniform, truncate


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def paper_uniform_law():
    """Figure 1(a) checkpoint law: Uniform([1, 7.5])."""
    return Uniform(1.0, 7.5)


@pytest.fixture
def paper_checkpoint_law():
    """Section 4 checkpoint law: N(5, 0.4^2) truncated to [0, inf)."""
    return truncate(Normal(5.0, 0.4), 0.0)


@pytest.fixture
def paper_gamma_checkpoint_law():
    """Figures 6/9 checkpoint law: N(2, 0.4^2) truncated to [0, inf)."""
    return truncate(Normal(2.0, 0.4), 0.0)


@pytest.fixture
def paper_normal_tasks():
    """Figures 5/8 task law: N(3, 0.5^2) (untruncated, Section 4.2.1)."""
    return Normal(3.0, 0.5)


@pytest.fixture
def paper_trunc_normal_tasks():
    """Figure 8 task law: N(3, 0.5^2) truncated to [0, inf)."""
    return truncate(Normal(3.0, 0.5), 0.0)


@pytest.fixture
def paper_gamma_tasks():
    """Figures 6/9 task law: Gamma(1, 0.5)."""
    return Gamma(1.0, 0.5)


@pytest.fixture
def paper_poisson_tasks():
    """Figures 7/10 task law: Poisson(3)."""
    return Poisson(3.0)
