"""Unit tests for synthetic trace generation."""

import numpy as np
import pytest

from repro.core import solve
from repro.distributions import Gamma, LogNormal, Normal, Uniform, truncate
from repro.traces import (
    BandwidthCheckpointLaw,
    synthetic_checkpoint_trace,
    synthetic_task_trace,
)


@pytest.fixture
def bw_law():
    # Effective bandwidth 2-8 GB/s.
    return Uniform(2e9, 8e9)


class TestBandwidthCheckpointLaw:
    def test_support_from_bandwidth_extremes(self, bw_law):
        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        lo, hi = law.support
        assert lo == pytest.approx(0.5 + 16e9 / 8e9)
        assert hi == pytest.approx(0.5 + 16e9 / 2e9)

    def test_cdf_monotone(self, bw_law):
        law = BandwidthCheckpointLaw(16e9, bw_law)
        xs = np.linspace(1.0, 10.0, 50)
        assert np.all(np.diff(law.cdf(xs)) >= -1e-12)

    def test_cdf_boundary_values(self, bw_law):
        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        lo, hi = law.support
        assert float(law.cdf(lo - 0.01)) == pytest.approx(0.0, abs=1e-12)
        assert float(law.cdf(hi + 0.01)) == pytest.approx(1.0, rel=1e-12)

    def test_exact_cdf_uniform_bandwidth(self, bw_law):
        # P(C <= x) = P(B >= V/(x - l)) = (8e9 - V/(x-l)) / 6e9.
        V, lat = 16e9, 0.5
        law = BandwidthCheckpointLaw(V, bw_law, latency=lat)
        x = 4.0
        expected = (8e9 - V / (x - lat)) / 6e9
        assert float(law.cdf(x)) == pytest.approx(expected, rel=1e-12)

    def test_pdf_integrates_to_cdf(self, bw_law):
        from scipy.integrate import quad

        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        lo, hi = law.support
        val, _ = quad(lambda t: float(law.pdf(t)), lo, hi, limit=200)
        assert val == pytest.approx(1.0, rel=1e-6)

    def test_sample_mean_matches_mean(self, bw_law, rng):
        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        s = law.sample(100_000, rng)
        assert s.mean() == pytest.approx(law.mean(), rel=0.01)

    def test_rejects_unbounded_below_bandwidth(self):
        with pytest.raises(ValueError, match="bounded away"):
            BandwidthCheckpointLaw(1e9, Normal(5e9, 1e9))

    def test_usable_as_preemptible_checkpoint_law(self, bw_law):
        # The whole point: the induced law plugs into Section 3 directly.
        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        sol = solve(30.0, law)
        assert law.lower <= sol.x_opt <= law.upper
        assert sol.gain >= 1.0


class TestTraceGeneration:
    def test_checkpoint_trace_in_support(self, bw_law, rng):
        trace = synthetic_checkpoint_trace(1000, 16e9, bw_law, latency=0.5, rng=rng)
        law = BandwidthCheckpointLaw(16e9, bw_law, latency=0.5)
        assert trace.min() >= law.lower - 1e-9
        assert trace.max() <= law.upper + 1e-9

    def test_task_trace_iid_marginal(self, rng):
        law = Gamma(2.0, 1.0)
        trace = synthetic_task_trace(50_000, law, rng=rng)
        assert trace.mean() == pytest.approx(2.0, rel=0.03)

    def test_task_trace_autocorrelated_preserves_marginal(self, rng):
        law = Gamma(2.0, 1.0)
        trace = synthetic_task_trace(50_000, law, autocorrelation=0.8, rng=rng)
        assert trace.mean() == pytest.approx(2.0, rel=0.05)

    def test_autocorrelation_actually_correlates(self, rng):
        law = LogNormal.from_moments(1.0, 0.3)
        trace = synthetic_task_trace(20_000, law, autocorrelation=0.9, rng=rng)
        lag1 = np.corrcoef(trace[:-1], trace[1:])[0, 1]
        assert lag1 > 0.5

    def test_zero_autocorrelation_uncorrelated(self, rng):
        law = LogNormal.from_moments(1.0, 0.3)
        trace = synthetic_task_trace(20_000, law, autocorrelation=0.0, rng=rng)
        lag1 = np.corrcoef(trace[:-1], trace[1:])[0, 1]
        assert abs(lag1) < 0.05

    def test_rejects_bad_autocorrelation(self, rng):
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            synthetic_task_trace(10, Gamma(1.0, 1.0), autocorrelation=1.0, rng=rng)
