"""Unit tests for model selection (KS + AIC ranking)."""

import numpy as np
import pytest

from repro.distributions import Gamma, LogNormal, Normal, Uniform
from repro.traces import ks_pvalue, ks_statistic, select_best


class TestKS:
    def test_statistic_zero_for_perfect_fit_limit(self, rng):
        # Large sample from the hypothesized law: D should be small.
        law = Normal(0.0, 1.0)
        d = ks_statistic(law.sample(50_000, rng), law)
        assert d < 0.01

    def test_statistic_large_for_wrong_law(self, rng):
        data = Gamma(0.5, 2.0).sample(5000, rng)
        d = ks_statistic(data, Normal(1.0, 1.0))
        assert d > 0.15

    def test_statistic_bounds(self, rng):
        d = ks_statistic(rng.normal(0, 1, 100), Normal(0.0, 1.0))
        assert 0.0 <= d <= 1.0

    def test_pvalue_monotone_in_statistic(self):
        assert ks_pvalue(0.01, 100) > ks_pvalue(0.2, 100)

    def test_pvalue_range(self):
        for d in (0.01, 0.1, 0.5):
            assert 0.0 <= ks_pvalue(d, 500) <= 1.0

    def test_pvalue_uniformish_under_null(self, rng):
        # Under H0 the p-value should not be systematically tiny.
        law = Normal(0.0, 1.0)
        pvals = []
        for _ in range(50):
            d = ks_statistic(law.sample(300, rng), law)
            pvals.append(ks_pvalue(d, 300))
        assert np.mean(pvals) > 0.2

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ks_statistic([], Normal(0.0, 1.0))


class TestSelectBest:
    def test_recovers_gamma(self, rng):
        data = Gamma(2.0, 0.8).sample(20_000, rng)
        report = select_best(data)
        assert report.best.family == "gamma"

    def test_recovers_lognormal(self, rng):
        data = LogNormal(0.5, 0.7).sample(20_000, rng)
        report = select_best(data)
        assert report.best.family == "lognormal"

    def test_recovers_uniform(self, rng):
        data = Uniform(2.0, 5.0).sample(20_000, rng)
        report = select_best(data)
        assert report.best.family == "uniform"

    def test_ranking_sorted_by_aic(self, rng):
        report = select_best(Gamma(2.0, 0.8).sample(5000, rng))
        aics = [f.aic for f in report.ranking]
        assert aics == sorted(aics)

    def test_failures_recorded_for_negative_data(self, rng):
        data = Normal(0.0, 1.0).sample(2000, rng)  # contains negatives
        report = select_best(data)
        assert "lognormal" in report.failures
        assert "gamma" in report.failures
        assert report.best.family in ("normal", "uniform")

    def test_family_subset(self, rng):
        data = Gamma(2.0, 0.8).sample(5000, rng)
        report = select_best(data, families=["normal", "uniform"])
        assert report.best.family in ("normal", "uniform")

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown"):
            select_best([1.0, 2.0], families=["cauchy"])

    def test_ks_check_reported(self, rng):
        report = select_best(Gamma(2.0, 0.8).sample(5000, rng))
        assert 0.0 <= report.ks_stat <= 1.0
        assert 0.0 <= report.ks_p <= 1.0

    def test_table_renders(self, rng):
        report = select_best(Gamma(2.0, 0.8).sample(1000, rng))
        table = report.table()
        assert "gamma" in table and "AIC" in table
