"""Unit tests for the MLE fitters (parameter recovery on known laws)."""

import numpy as np
import pytest

from repro.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Uniform,
    Weibull,
)
from repro.traces import (
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_normal,
    fit_uniform,
    fit_weibull,
)

N = 20_000


class TestRecovery:
    """Each fitter recovers the generating parameters from a big sample."""

    def test_normal(self, rng):
        data = Normal(3.0, 0.5).sample(N, rng)
        fit = fit_normal(data)
        assert fit.distribution.mu == pytest.approx(3.0, abs=0.02)
        assert fit.distribution.sigma == pytest.approx(0.5, abs=0.02)

    def test_lognormal(self, rng):
        data = LogNormal(1.0, 0.4).sample(N, rng)
        fit = fit_lognormal(data)
        assert fit.distribution.mu == pytest.approx(1.0, abs=0.02)
        assert fit.distribution.sigma == pytest.approx(0.4, abs=0.02)

    def test_exponential(self, rng):
        data = Exponential(0.5).sample(N, rng)
        fit = fit_exponential(data)
        assert fit.distribution.lam == pytest.approx(0.5, rel=0.03)

    def test_gamma(self, rng):
        data = Gamma(2.5, 1.3).sample(N, rng)
        fit = fit_gamma(data)
        assert fit.distribution.k == pytest.approx(2.5, rel=0.05)
        assert fit.distribution.theta == pytest.approx(1.3, rel=0.05)

    def test_gamma_shape_below_one(self, rng):
        data = Gamma(0.6, 2.0).sample(N, rng)
        fit = fit_gamma(data)
        assert fit.distribution.k == pytest.approx(0.6, rel=0.08)

    def test_weibull(self, rng):
        data = Weibull(1.8, 2.2).sample(N, rng)
        fit = fit_weibull(data)
        assert fit.distribution.shape == pytest.approx(1.8, rel=0.05)
        assert fit.distribution.scale == pytest.approx(2.2, rel=0.03)

    def test_uniform(self, rng):
        data = Uniform(1.0, 7.5).sample(N, rng)
        fit = fit_uniform(data)
        assert fit.distribution.a == pytest.approx(1.0, abs=0.01)
        assert fit.distribution.b == pytest.approx(7.5, abs=0.01)


class TestBookkeeping:
    def test_aic_definition(self, rng):
        fit = fit_normal(Normal(0.0, 1.0).sample(500, rng))
        assert fit.aic == pytest.approx(2 * 2 - 2 * fit.log_likelihood)

    def test_loglik_matches_manual(self, rng):
        data = Normal(0.0, 1.0).sample(200, rng)
        fit = fit_normal(data)
        manual = float(np.sum(fit.distribution.logpdf(data)))
        assert fit.log_likelihood == pytest.approx(manual, rel=1e-12)

    def test_n_obs_recorded(self, rng):
        fit = fit_exponential(Exponential(1.0).sample(123, rng))
        assert fit.n_obs == 123

    def test_true_family_wins_likelihood(self, rng):
        # On Gamma data, the Gamma fit should beat the Normal fit.
        data = Gamma(2.0, 0.5).sample(N, rng)
        assert fit_gamma(data).log_likelihood > fit_normal(data).log_likelihood


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            fit_normal([1.0])

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            fit_normal([1.0, np.nan])

    def test_positive_family_rejects_zeros(self):
        with pytest.raises(ValueError, match="positive"):
            fit_lognormal([0.0, 1.0, 2.0])

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError, match="Deterministic"):
            fit_normal([2.0, 2.0, 2.0])
