"""Unit tests for reservation-length optimization."""

import math

import pytest

from repro.analysis import (
    QueueModel,
    evaluate_reservation_length,
    optimize_reservation_length,
)
from repro.core import BillingModel
from repro.distributions import Normal, truncate


@pytest.fixture
def laws(paper_trunc_normal_tasks, paper_checkpoint_law):
    return paper_trunc_normal_tasks, paper_checkpoint_law


class TestQueueModel:
    def test_wait_formula(self):
        q = QueueModel(base=10.0, coefficient=2.0, exponent=1.0)
        assert q.wait(5.0) == pytest.approx(20.0)

    def test_superlinear_growth(self):
        q = QueueModel(base=0.0, coefficient=1.0, exponent=1.5)
        assert q.wait(40.0) / q.wait(10.0) > 4.0

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            QueueModel(base=-1.0)
        with pytest.raises(ValueError):
            QueueModel(exponent=0.0)


class TestEvaluate:
    def test_progress_below_budget(self, laws):
        tasks, ckpt = laws
        p = evaluate_reservation_length(29.0, 500.0, tasks, ckpt)
        assert 0.0 < p.expected_work_per_reservation < 29.0

    def test_reservations_scale_with_work(self, laws):
        tasks, ckpt = laws
        p1 = evaluate_reservation_length(29.0, 100.0, tasks, ckpt)
        p2 = evaluate_reservation_length(29.0, 200.0, tasks, ckpt)
        assert p2.expected_reservations == pytest.approx(2.0 * p1.expected_reservations)

    def test_recovery_reduces_progress(self, laws):
        tasks, ckpt = laws
        without = evaluate_reservation_length(29.0, 100.0, tasks, ckpt)
        with_rec = evaluate_reservation_length(29.0, 100.0, tasks, ckpt, recovery=5.0)
        assert with_rec.expected_work_per_reservation < without.expected_work_per_reservation

    def test_hopeless_reservation_infinite(self, laws):
        tasks, _ = laws
        impossible = truncate(Normal(100.0, 1.0), 0.0)
        p = evaluate_reservation_length(10.0, 100.0, tasks, impossible)
        assert math.isinf(p.expected_reservations)
        assert math.isinf(p.expected_makespan)

    def test_billing_models_differ(self, laws):
        tasks, ckpt = laws
        by_res = evaluate_reservation_length(
            40.0, 100.0, tasks, ckpt, billing=BillingModel.BY_RESERVATION
        )
        by_use = evaluate_reservation_length(
            40.0, 100.0, tasks, ckpt, billing=BillingModel.BY_USAGE
        )
        # Usage never exceeds the reservation.
        assert by_use.expected_cost <= by_res.expected_cost

    def test_rejects_recovery_eating_reservation(self, laws):
        tasks, ckpt = laws
        with pytest.raises(ValueError, match="consumes"):
            evaluate_reservation_length(10.0, 100.0, tasks, ckpt, recovery=10.0)


class TestOptimize:
    def test_interior_optimum_exists(self, laws):
        """Too-short reservations waste the fixed checkpoint; too-long
        ones rot in the queue: the makespan-optimal R is interior."""
        tasks, ckpt = laws
        queue = QueueModel(base=30.0, coefficient=0.5, exponent=1.6)
        candidates = [12.0, 20.0, 29.0, 60.0, 120.0, 300.0]
        best, points = optimize_reservation_length(
            candidates, 1000.0, tasks, ckpt, queue=queue, recovery=1.5
        )
        assert best.R not in (candidates[0], candidates[-1])
        assert len(points) == len(candidates)

    def test_cost_objective_by_reservation_prefers_efficiency(self, laws):
        tasks, ckpt = laws
        candidates = [15.0, 29.0, 60.0, 120.0]
        best, points = optimize_reservation_length(
            candidates, 1000.0, tasks, ckpt,
            objective="cost", billing=BillingModel.BY_RESERVATION,
        )
        # By-reservation cost ~ n * R = work / utilization: the longest
        # reservation amortizes the checkpoint best.
        utils = {p.R: p.expected_work_per_reservation / p.R for p in points}
        assert utils[best.R] == pytest.approx(max(utils.values()), rel=1e-9)

    def test_rejects_empty_candidates(self, laws):
        tasks, ckpt = laws
        with pytest.raises(ValueError, match="at least one"):
            optimize_reservation_length([], 100.0, tasks, ckpt)

    def test_rejects_unknown_objective(self, laws):
        tasks, ckpt = laws
        with pytest.raises(ValueError, match="objective"):
            optimize_reservation_length([29.0], 100.0, tasks, ckpt, objective="vibes")
