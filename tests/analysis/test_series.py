"""Unit tests for Series and the curve builders."""

import numpy as np
import pytest

from repro.analysis import (
    Series,
    dynamic_decision_curves,
    expected_work_curve,
    static_relaxation_curve,
)
from repro.core import DynamicStrategy, StaticStrategy
from repro.distributions import Gamma, Normal, Uniform, truncate


class TestSeries:
    def test_argmax(self):
        s = Series(np.array([0.0, 1.0, 2.0]), np.array([1.0, 5.0, 2.0]), "s")
        assert s.argmax == (1.0, 5.0)

    def test_at_interpolates(self):
        s = Series(np.array([0.0, 2.0]), np.array([0.0, 4.0]), "s")
        assert s.at(1.0) == pytest.approx(2.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError, match="equal length"):
            Series(np.array([0.0, 1.0]), np.array([1.0]), "s")

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Series(np.array([]), np.array([]), "s")


class TestExpectedWorkCurve:
    def test_fig1a_maximum(self):
        curve = expected_work_curve(10.0, Uniform(1.0, 7.5), 1001)
        x, y = curve.argmax
        assert x == pytest.approx(5.5, abs=0.02)
        assert y == pytest.approx(3.115, abs=0.01)

    def test_endpoints_zero(self):
        curve = expected_work_curve(10.0, Uniform(1.0, 7.5), 101)
        assert curve.y[0] == pytest.approx(0.0, abs=1e-12)
        assert curve.y[-1] == pytest.approx(0.0, abs=1e-12)

    def test_covers_a_to_R(self):
        curve = expected_work_curve(10.0, Uniform(1.0, 5.0), 11)
        assert curve.x[0] == 1.0
        assert curve.x[-1] == 10.0


class TestStaticRelaxationCurve:
    def test_fig5_peak_location(self, paper_normal_tasks, paper_checkpoint_law):
        strat = StaticStrategy(30.0, paper_normal_tasks, paper_checkpoint_law)
        curve = static_relaxation_curve(strat, points=301)
        x, _ = curve.argmax
        assert x == pytest.approx(7.4, abs=0.15)


class TestDynamicDecisionCurves:
    def test_fig9_intersection(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        strat = DynamicStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)
        ckpt, cont = dynamic_decision_curves(strat, points=101)
        assert ckpt.label.startswith("E(W_C)")
        # Where the curves cross ~ W_int.
        diff = ckpt.y - cont.y
        sign_change = np.nonzero(np.diff(np.sign(diff)) > 0)[0]
        w_cross = ckpt.x[sign_change[0]]
        assert w_cross == pytest.approx(6.4, abs=0.3)
