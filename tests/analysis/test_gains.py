"""Unit tests for gain computation."""

import pytest

from repro.analysis import preemptible_gain, preemptible_gain_grid, workflow_gains
from repro.core import StaticCountPolicy
from repro.distributions import Uniform


class TestPreemptibleGain:
    def test_fig1a_values(self):
        point = preemptible_gain(10.0, Uniform(1.0, 7.5))
        assert point.gain == pytest.approx(3.115 / 2.5, abs=0.01)
        assert point.x_opt == pytest.approx(5.5)

    def test_gain_one_when_boundary(self):
        point = preemptible_gain(10.0, Uniform(1.0, 5.0))
        assert point.gain == pytest.approx(1.0)


class TestGainGrid:
    def test_grid_skips_invalid(self):
        points = preemptible_gain_grid(
            Uniform, R_values=[5.0, 10.0], b_values=[3.0, 7.0, 12.0], a=1.0
        )
        # Valid: (5,3), (10,3), (10,7). Invalid: b=12 always; (5,7).
        assert len(points) == 3
        assert all(p.a < p.b <= p.R for p in points)

    def test_gain_grows_with_reservation_slack(self):
        # Richer R relative to b: larger relative gain region... at least
        # gains all >= 1.
        points = preemptible_gain_grid(
            Uniform, R_values=[8.0, 16.0, 32.0], b_values=[7.0], a=1.0
        )
        assert all(p.gain >= 1.0 - 1e-12 for p in points)


class TestWorkflowGains:
    def test_ordering(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        cmp = workflow_gains(
            29.0,
            paper_trunc_normal_tasks,
            paper_checkpoint_law,
            n_trials=30_000,
            rng=0,
            extra_policies={"static-early": StaticCountPolicy(3)},
        )
        means = {k: v.mean for k, v in cmp.summaries.items()}
        assert cmp.winner == "oracle"
        assert means["dynamic"] >= means["static-early"]
        # Oracle dominates everything.
        assert all(means["oracle"] >= m - 0.05 for m in means.values())

    def test_without_oracle(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        cmp = workflow_gains(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law,
            n_trials=10_000, rng=1, include_oracle=False,
        )
        assert "oracle" not in cmp.summaries
        assert {"static-optimal", "dynamic", "optimal-stopping"} <= set(cmp.summaries)
