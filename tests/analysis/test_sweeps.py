"""Unit tests for sweeps and crossover detection."""

import numpy as np
import pytest

from repro.analysis import Series, find_crossover, sweep


class TestSweep:
    def test_collects_metrics(self):
        res = sweep("x", [1.0, 2.0, 3.0], lambda v: {"sq": v * v, "lin": v})
        np.testing.assert_allclose(res.series["sq"].y, [1.0, 4.0, 9.0])
        np.testing.assert_allclose(res.series["lin"].y, [1.0, 2.0, 3.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            sweep("x", [], lambda v: {"a": v})

    def test_rejects_inconsistent_metrics(self):
        def ev(v):
            return {"a": v} if v < 2 else {"b": v}

        with pytest.raises(ValueError, match="inconsistent"):
            sweep("x", [1.0, 3.0], ev)

    def test_table_renders(self):
        res = sweep("x", [1.0, 2.0], lambda v: {"m": v})
        t = res.table()
        assert "m" in t and "x" in t

    def test_crossover_helper(self):
        res = sweep("x", np.linspace(0, 2, 21), lambda v: {"a": v, "b": 1.0})
        assert res.crossover("a", "b") == pytest.approx(1.0, abs=1e-9)


class TestFindCrossover:
    def test_linear_crossing(self):
        x = np.linspace(0.0, 1.0, 11)
        a = Series(x, x, "a")
        b = Series(x, 1.0 - x, "b")
        assert find_crossover(a, b) == pytest.approx(0.5)

    def test_no_crossing(self):
        x = np.linspace(0.0, 1.0, 11)
        a = Series(x, x + 2.0, "a")
        b = Series(x, x, "b")
        assert find_crossover(a, b) is None

    def test_mismatched_grids_rejected(self):
        a = Series(np.array([0.0, 1.0]), np.array([0.0, 1.0]), "a")
        b = Series(np.array([0.0, 2.0]), np.array([1.0, 0.0]), "b")
        with pytest.raises(ValueError, match="same x grid"):
            find_crossover(a, b)
