"""Unit tests for report consolidation."""

import os

import pytest

from repro.analysis import collect_reports, write_summary


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "fig01.txt").write_text(
        "=== fig01: demo ===\n  X_opt paper=5.5 measured=5.5 [OK ]\n"
        "  gain paper=1.2 measured=1.2 [OK ]\n"
    )
    (d / "broken.txt").write_text(
        "=== broken: demo ===\n  thing paper=1 measured=0 [DIFF]\n"
    )
    (d / "fig01.csv").write_text("x,y\n1,2\n")  # must be ignored
    return str(d)


class TestCollect:
    def test_statuses(self, results_dir):
        statuses, _ = collect_reports(results_dir)
        by_name = {s.name: s for s in statuses}
        assert by_name["fig01"].anchors_ok == 2
        assert by_name["fig01"].passed
        assert by_name["broken"].anchors_diff == 1
        assert not by_name["broken"].passed

    def test_markdown_contains_table_and_bodies(self, results_dir):
        _, md = collect_reports(results_dir)
        assert "| fig01 | 2 | 0 | pass |" in md
        assert "| broken | 0 | 1 | **DIFF** |" in md
        assert "## fig01" in md
        assert "X_opt" in md

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_reports(str(tmp_path / "nope"))

    def test_empty_dir(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(ValueError, match="no reports"):
            collect_reports(str(d))


class TestWriteSummary:
    def test_writes_default_path(self, results_dir):
        path = write_summary(results_dir)
        assert path == os.path.join(results_dir, "SUMMARY.md")
        with open(path) as fh:
            assert "# Reproduction summary" in fh.read()

    def test_custom_output(self, results_dir, tmp_path):
        out = str(tmp_path / "custom.md")
        assert write_summary(results_dir, out) == out
        assert os.path.exists(out)

    def test_real_results_dir_if_present(self):
        # When the benches have run in this checkout, the real artifacts
        # must consolidate cleanly with zero DIFFs.
        real = os.path.join(os.path.dirname(__file__), "..", "..", "results")
        if not os.path.isdir(real) or not any(
            f.endswith(".txt") for f in os.listdir(real)
        ):
            pytest.skip("benchmarks have not produced artifacts yet")
        statuses, _ = collect_reports(real)
        assert all(s.passed for s in statuses)
