"""Guard the examples against rot.

Every example must at least compile; the fast ones are executed
end-to-end (the slower ones are exercised implicitly by the benchmark
suite, which covers the same code paths).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / f"{name}.py"), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_runs(capsys):
    out = _run_example("quickstart", capsys)
    assert "5.50s before the end" in out
    assert "run 7 tasks" in out
    assert "CHECKPOINT" in out


def test_heterogeneous_pipeline_runs(capsys):
    out = _run_example("heterogeneous_pipeline", capsys)
    assert "exact optimum: checkpoint after stage" in out
    assert "regret" in out


def test_expected_example_set_present():
    names = {p.stem for p in ALL_EXAMPLES}
    assert {
        "quickstart",
        "trace_calibration",
        "strategy_comparison",
        "reservation_campaign",
        "iterative_solver_reservation",
        "heterogeneous_pipeline",
        "failure_aware",
        "risk_averse",
    } <= names
