"""PolicyCache: keying, hit/miss accounting, LRU, disk persistence."""

from __future__ import annotations

import json
import os

import pytest

from repro.distributions import Gamma, Normal, truncate
from repro.service import (
    CompiledPolicy,
    PolicyCache,
    ServiceMetrics,
    canonical_key,
    compile_policy,
)

R = 10.0
TASK = "gamma:1,0.5"
CKPT = "normal:2,0.4@[0,inf]"


class TestCanonicalKey:
    def test_string_and_object_agree(self):
        by_str = canonical_key(R, TASK, CKPT)
        by_obj = canonical_key(R, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))
        assert by_str == by_obj

    def test_non_canonical_spelling_normalizes(self):
        assert canonical_key(5.0, "beta:2,5", CKPT) == canonical_key(
            5.0, "beta:2,5,0,1", CKPT
        )
        assert canonical_key(5.0, "gamma:1.0,0.50", CKPT) == canonical_key(
            5.0, TASK, CKPT
        )

    def test_distinct_policies_get_distinct_keys(self):
        assert canonical_key(R, TASK, CKPT) != canonical_key(R + 1.0, TASK, CKPT)
        assert canonical_key(R, TASK, CKPT) != canonical_key(R, "gamma:2,0.5", CKPT)

    def test_rejects_nonpositive_reservation(self):
        with pytest.raises(ValueError, match="reservation"):
            canonical_key(0.0, TASK, CKPT)

    def test_rejects_non_law(self):
        with pytest.raises(TypeError, match="task_law"):
            canonical_key(R, 3.5, CKPT)


@pytest.fixture(scope="module")
def policy() -> CompiledPolicy:
    return compile_policy(R, TASK, CKPT, curve_points=33)


class TestCompiledPolicy:
    def test_artifacts(self, policy):
        assert policy.w_int == pytest.approx(6.44, abs=0.05)  # paper Fig. 9
        assert policy.n_opt == 12
        assert policy.x_opt is None  # margin solver needs a bounded D_C
        assert len(policy.curve_w) == 33
        assert policy.curve_w[0] == 0.0 and policy.curve_w[-1] == R

    def test_should_checkpoint_threshold(self, policy):
        assert not policy.should_checkpoint(policy.w_int - 0.01)
        assert policy.should_checkpoint(policy.w_int + 0.01)

    def test_dict_round_trip(self, policy):
        clone = CompiledPolicy.from_dict(json.loads(json.dumps(policy.to_dict())))
        assert clone == policy

    def test_bounded_checkpoint_law_has_margin(self):
        bounded = compile_policy(R, TASK, "uniform:1,7.5", curve_points=9)
        assert bounded.x_opt == pytest.approx(5.5)  # (R + a) / 2


class TestAccounting:
    def test_hit_miss_counts(self, policy):
        metrics = ServiceMetrics()
        cache = PolicyCache(metrics=metrics, curve_points=33)
        cache._install(canonical_key(R, TASK, CKPT), policy)  # skip the compile
        assert cache.get(R, TASK, CKPT) is policy
        assert cache.get(R, "gamma:1.0,0.5", CKPT) is policy  # same canonical key
        assert (cache.hits, cache.misses) == (2, 0)
        assert metrics.counter("cache.hits") == 2
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 0
        assert stats["hit_rate"] == 1.0

    def test_miss_compiles_then_hits(self):
        cache = PolicyCache(curve_points=9)
        first = cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        again = cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert again is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self, policy):
        cache = PolicyCache(maxsize=2)
        for i, r in enumerate((7.0, 8.0, 9.0)):
            cache._install(canonical_key(r, TASK, CKPT), policy)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert canonical_key(7.0, TASK, CKPT) not in cache  # oldest evicted
        assert canonical_key(9.0, TASK, CKPT) in cache

    def test_clear_resets_accounting(self, policy):
        cache = PolicyCache()
        cache._install(canonical_key(R, TASK, CKPT), policy)
        cache.get(R, TASK, CKPT)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0


class TestDiskPersistence:
    def test_write_through_and_reload(self, tmp_path):
        cache_dir = str(tmp_path / "policies")
        cache = PolicyCache(path=cache_dir, curve_points=9)
        compiled = cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert len(os.listdir(cache_dir)) == 1

        fresh = PolicyCache(path=cache_dir, curve_points=9)
        reloaded = fresh.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert reloaded == compiled
        assert fresh.disk_hits == 1
        assert fresh.misses == 1  # memory miss, satisfied from disk

    def test_corrupt_file_quarantined_and_recompiled(self, tmp_path):
        cache_dir = str(tmp_path / "policies")
        metrics = ServiceMetrics()
        cache = PolicyCache(path=cache_dir, curve_points=9)
        cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        (path,) = (os.path.join(cache_dir, f) for f in os.listdir(cache_dir))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        fresh = PolicyCache(path=cache_dir, metrics=metrics, curve_points=9)
        reloaded = fresh.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert reloaded.reservation == 3.0
        assert fresh.disk_hits == 0
        # the torn file was quarantined for post-mortem, not silently discarded
        assert os.path.exists(path + ".corrupt")
        assert fresh.quarantined == 1
        assert fresh.stats()["quarantined"] == 1
        assert metrics.counter("cache.corrupt") == 1
        # and the slot was overwritten with the recompiled policy
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["policy"]["reservation"] == 3.0

    def test_bit_flip_fails_crc_and_quarantines(self, tmp_path):
        cache_dir = str(tmp_path / "policies")
        cache = PolicyCache(path=cache_dir, curve_points=9)
        cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        (path,) = (os.path.join(cache_dir, f) for f in os.listdir(cache_dir))
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        data["policy"]["w_int"] = 999.0  # silent corruption, still valid JSON
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh)
        fresh = PolicyCache(path=cache_dir, curve_points=9)
        reloaded = fresh.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert reloaded.w_int != 999.0
        assert fresh.disk_hits == 0
        assert fresh.quarantined == 1
        assert os.path.exists(path + ".corrupt")

    def test_pre_checksum_layout_recompiles_without_quarantine(self, tmp_path):
        cache_dir = str(tmp_path / "policies")
        cache = PolicyCache(path=cache_dir, curve_points=9)
        compiled = cache.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        (path,) = (os.path.join(cache_dir, f) for f in os.listdir(cache_dir))
        # rewrite in the v1 layout: the bare policy dict, no envelope
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(compiled.to_dict(), fh)
        fresh = PolicyCache(path=cache_dir, curve_points=9)
        reloaded = fresh.get(3.0, "deterministic:1", "uniform:0.1,0.5")
        assert reloaded == compiled
        assert fresh.quarantined == 0  # stale layout is not corruption
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh)["persist_format"] == 2  # upgraded in place

    def test_stale_tmp_files_swept_on_startup(self, tmp_path):
        cache_dir = tmp_path / "policies"
        cache_dir.mkdir()
        stale = cache_dir / "deadbeef.json.tmp.12345"
        stale.write_text("{half a policy")
        keeper = cache_dir / "unrelated.txt"
        keeper.write_text("keep me")
        PolicyCache(path=str(cache_dir), curve_points=9)
        assert not stale.exists()
        assert keeper.exists()
