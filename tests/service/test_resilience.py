"""Resilience layer: retry schedules, circuit breaker, degraded client.

Everything here is deterministic: backoff jitter comes from a seeded
RNG, the breaker and deadlines run on a hand-stepped fake clock, and
sleeps are no-ops — per the fault-injection ground rules, no assertion
depends on wall-clock time.
"""

from __future__ import annotations

import numpy as np
import pytest
from harness import ScriptedServer, ServerThread, free_port

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.service import (
    Advisor,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    ResilientClient,
    RetryPolicy,
    ServiceError,
    encode,
)

FAST = {
    "reservation": 3.0,
    "task_law": "deterministic:1",
    "checkpoint_law": "uniform:0.1,0.5",
}


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_same_seed_same_schedule(self):
        policy = RetryPolicy(max_attempts=6, seed=42)
        assert list(policy.delays()) == list(policy.delays())

    def test_different_seed_different_jitter(self):
        a = list(RetryPolicy(max_attempts=6, seed=1).delays())
        b = list(RetryPolicy(max_attempts=6, seed=2).delays())
        assert a != b

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4])

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, multiplier=3.0, max_delay=2.0, jitter=0.0
        )
        assert max(policy.delays()) <= 2.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=50, base_delay=1.0, multiplier=1.0,
                             max_delay=1.0, jitter=0.25, seed=7)
        for delay in policy.delays():
            assert 0.75 <= delay <= 1.25

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock)
        assert deadline.remaining() == 5.0
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired()
        clock.advance(2.0)
        assert deadline.expired()

    def test_clamp(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock)
        assert deadline.clamp(30.0) == 5.0
        assert deadline.clamp(2.0) == 2.0
        clock.advance(6.0)
        with pytest.raises(TimeoutError):
            deadline.clamp(1.0)

    def test_unlimited(self):
        deadline = Deadline(None, FakeClock())
        assert not deadline.expired()
        assert deadline.clamp(7.5) == 7.5


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            threshold,
            cooldown,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def test_opens_after_consecutive_failures(self):
        breaker, _, transitions = self.make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert transitions == [("closed", "open")]

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak broken: 2, not 4

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_in() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # but only one
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        breaker, clock, transitions = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)
        assert not breaker.allow()  # cool-down restarted at the failed probe
        clock.advance(1.0)
        assert breaker.allow()
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "open"),
            ("open", "half-open"),
        ]

    def test_check_raises_when_open(self):
        breaker, _, _ = self.make(threshold=1)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError):
            breaker.check()


def make_client(port: int, **kwargs) -> ResilientClient:
    """A fast deterministic client: no real sleeps, tight budget."""
    clock = kwargs.pop("clock", FakeClock())
    defaults = dict(
        timeout=0.5,
        deadline=None,
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        breaker=CircuitBreaker(5, 30.0, clock=clock),
        sleep=lambda s: None,
        clock=clock,
    )
    defaults.update(kwargs)
    return ResilientClient("127.0.0.1", port, **defaults)


class TestResilientClientFallback:
    def test_server_down_falls_back_locally(self):
        client = make_client(free_port())
        advice = client.advise(**FAST, work=2.5)
        assert advice["source"] == "local-fallback"
        assert advice["action"] in ("checkpoint", "continue")
        assert client.metrics.counter("fallback.advise") == 1
        assert client.metrics.counter("retry.transport_errors") == 2  # both attempts

    def test_fallback_decisions_match_dynamic_strategy(self):
        client = make_client(free_port())
        grid = np.linspace(0.0, FAST["reservation"], 101)
        result = client.advise_batch(**FAST, work=list(grid))
        assert result["source"] == "local-fallback"
        dyn = DynamicStrategy(
            FAST["reservation"],
            parse_law(FAST["task_law"]),
            parse_law(FAST["checkpoint_law"]),
        )
        expected = [dyn.should_checkpoint(float(w)) for w in grid]
        assert result["decisions"] == expected

    def test_policy_and_warm_fall_back(self):
        client = make_client(free_port())
        policy = client.policy(**FAST)
        assert policy["source"] == "local-fallback"
        assert policy["policy"]["reservation"] == FAST["reservation"]
        warmed = client.warm(**FAST)
        assert warmed["source"] == "local-fallback"

    def test_ping_returns_false_instead_of_raising(self):
        client = make_client(free_port())
        assert client.ping() is False

    def test_health_degrades_to_local_stub(self):
        client = make_client(free_port())
        health = client.health()
        assert health["source"] == "local-fallback"
        assert health["status"] == "unreachable"

    def test_no_fallback_raises(self):
        client = make_client(free_port(), fallback=False)
        with pytest.raises(OSError):
            client.advise(**FAST, work=2.5)

    def test_shared_fallback_advisor_is_used(self):
        advisor = Advisor()
        client = make_client(free_port(), fallback=advisor)
        client.advise(**FAST, work=2.5)
        assert advisor.cache.misses == 1  # our advisor did the compile


class TestResilientClientBreaker:
    def test_breaker_opens_after_consecutive_call_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 30.0, clock=clock)
        client = make_client(
            free_port(),
            clock=clock,
            breaker=breaker,
            retry=RetryPolicy(max_attempts=1),
        )
        for _ in range(3):  # one attempt per call -> three transport failures
            client.advise(**FAST, work=2.5)
        assert breaker.state == "open"
        assert client.metrics.counter("breaker.open") == 1
        transport_errors = client.metrics.counter("retry.transport_errors")
        # while open, calls fail fast: no further connection attempts
        advice = client.advise(**FAST, work=2.5)
        assert advice["source"] == "local-fallback"
        assert client.metrics.counter("retry.transport_errors") == transport_errors
        assert client.metrics.counter("breaker.rejections") >= 1

    def test_half_open_probe_recovers_against_live_server(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 30.0, clock=clock)
        client = make_client(
            free_port(),
            clock=clock,
            breaker=breaker,
            retry=RetryPolicy(max_attempts=1),
        )
        client.advise(**FAST, work=2.5)
        client.advise(**FAST, work=2.5)
        assert breaker.state == "open"
        with ServerThread() as st:
            client.client.port = st.port  # the server "came back" elsewhere
            clock.advance(30.0)  # cool-down elapses -> half-open probe
            assert breaker.state == "half-open"
            advice = client.advise(**FAST, work=2.5)
            assert advice["source"] == "server"
            assert breaker.state == "closed"
            assert client.metrics.counter("breaker.closed") == 1
        client.close()

    def test_breaker_observable_in_metrics_transitions(self):
        clock = FakeClock()
        breaker = CircuitBreaker(1, 5.0, clock=clock)
        client = make_client(
            free_port(), clock=clock, breaker=breaker, retry=RetryPolicy(max_attempts=1)
        )
        client.ping()
        assert client.metrics.counter("breaker.open") == 1
        clock.advance(5.0)
        client.ping()  # half-open probe fails against the dead port
        assert client.metrics.counter("breaker.half-open") == 1
        assert client.metrics.counter("breaker.open") == 2


class TestResilientClientRetries:
    def test_retryable_envelope_then_success(self):
        calls = []

        def handler(request: dict) -> bytes:
            calls.append(request["op"])
            if len(calls) == 1:
                return encode(
                    {
                        "id": request["id"],
                        "ok": False,
                        "error": {"type": "overloaded", "message": "busy"},
                    }
                )
            return encode({"id": request["id"], "ok": True, "result": {"pong": True}})

        with ScriptedServer(handler) as server:
            client = make_client(server.port)
            assert client.ping() is True
            assert client.metrics.counter("retry.attempts") == 1
            assert client.metrics.counter("retry.envelope.overloaded") == 1
            client.close()

    def test_non_retryable_envelope_raises_without_fallback(self):
        def handler(request: dict) -> bytes:
            return encode(
                {
                    "id": request["id"],
                    "ok": False,
                    "error": {"type": "invalid-params", "message": "bad law"},
                }
            )

        with ScriptedServer(handler) as server:
            client = make_client(server.port)
            with pytest.raises(ServiceError) as excinfo:
                client.advise(**FAST, work=2.5)
            assert excinfo.value.kind == "invalid-params"
            # the server answered: that is not a breaker failure
            assert client.breaker.state == "closed"
            assert client.metrics.counter("fallback.advise") == 0
            client.close()

    def test_desynced_reply_reconnects_and_retries(self):
        calls = []

        def handler(request: dict) -> bytes:
            calls.append(request["id"])
            if len(calls) == 1:
                return b"\xf9\xfa\xfbgarbage\n"
            return encode({"id": request["id"], "ok": True, "result": {"pong": True}})

        with ScriptedServer(handler) as server:
            client = make_client(server.port)
            assert client.ping() is True
            assert client.metrics.counter("retry.transport_errors") == 1
            client.close()

    def test_deadline_budget_stops_retries(self):
        clock = FakeClock()

        def slow_sleep(seconds: float) -> None:
            clock.advance(seconds)

        client = make_client(
            free_port(),
            clock=clock,
            deadline=1.0,
            retry=RetryPolicy(max_attempts=10, base_delay=0.6, jitter=0.0),
            sleep=slow_sleep,
            fallback=False,
        )
        with pytest.raises(OSError):
            client.request("ping")
        # 0.6s + 1.2s backoff would blow the 1 s budget after two sleeps
        assert client.metrics.counter("retry.attempts") <= 2
        assert client.metrics.counter("retry.giveups") == 1

    def test_server_round_trip_tags_source(self):
        with ServerThread() as st:
            client = make_client(st.port, timeout=10.0)
            advice = client.advise(**FAST, work=2.5)
            assert advice["source"] == "server"
            batch = client.advise_batch(**FAST, work=[0.5, 2.9])
            assert batch["source"] == "server"
            assert client.metrics.counter("requests.server") == 2
            client.close()
