"""AdvisorServer: lifecycle, protocol conformance, hardening, health."""

from __future__ import annotations

import asyncio
import json
import socket

import pytest
from harness import ServerThread

from repro.service import AdvisorServer, Client, ServiceError, ServiceMetrics

FAST = {
    "reservation": 3.0,
    "task_law": "deterministic:1",
    "checkpoint_law": "uniform:0.1,0.5",
}


@pytest.fixture(scope="module")
def running():
    with ServerThread() as st:
        yield st


def raw_exchange(port: int, payload: bytes) -> dict:
    """Send raw bytes, read one response line (for malformed requests)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10.0) as sock:
        sock.sendall(payload)
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("no response")
            buf += chunk
    return json.loads(buf.partition(b"\n")[0])


class TestLifecycle:
    def test_start_query_shutdown(self):
        with ServerThread() as st:
            with Client(port=st.port, timeout=30.0) as client:
                assert client.ping()
                policy = client.warm(**FAST)
                assert policy["reservation"] == 3.0
                advice = client.advise(**FAST, work=2.5)
                assert advice["action"] in ("checkpoint", "continue")
                client.shutdown()
        assert not st._thread.is_alive()
        assert st.metrics.counter("requests.shutdown") == 1

    def test_port_zero_picks_a_free_port(self, running):
        assert running.port > 0


class TestQueries:
    def test_advise_batch_round_trip(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            result = client.advise_batch(**FAST, work=[0.5, 1.0, 2.9])
            assert result["count"] == 3
            assert len(result["decisions"]) == 3
            assert result["decisions"] == [a["checkpoint"] for a in result["advice"]]

    def test_stats_reports_requests_and_cache(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            client.warm(**FAST)
            before = client.stats()
            client.advise(**FAST, work=1.0)
            after = client.stats()
        counters_before = before["metrics"]["counters"]
        counters_after = after["metrics"]["counters"]
        assert (
            counters_after["requests.advise"]
            == counters_before.get("requests.advise", 0) + 1
        )
        assert counters_after["cache.hits"] > 0
        assert after["cache"]["size"] >= 1
        assert "advise" in after["metrics"]["latency"]

    def test_pipelined_requests_echo_ids(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            client.connect()
            assert client._sock is not None
            lines = b""
            for i in (11, 22, 33):
                lines += (
                    json.dumps({"op": "ping", "id": i}, separators=(",", ":")).encode()
                    + b"\n"
                )
            client._sock.sendall(lines)
            got = [client._read_response()["id"] for _ in range(3)]
        assert got == [11, 22, 33]


class TestMalformedRequests:
    def test_bad_json(self, running):
        resp = raw_exchange(running.port, b"{not json}\n")
        assert resp["ok"] is False
        assert resp["error"]["type"] == "bad-json"

    def test_non_object_request(self, running):
        resp = raw_exchange(running.port, b"[1,2,3]\n")
        assert resp["error"]["type"] == "bad-request"

    def test_missing_op(self, running):
        resp = raw_exchange(running.port, b'{"params":{}}\n')
        assert resp["error"]["type"] == "bad-request"

    def test_unknown_op(self, running):
        resp = raw_exchange(running.port, b'{"op":"frobnicate","id":4}\n')
        assert resp["error"]["type"] == "unknown-op"
        assert resp["id"] == 4
        assert "frobnicate" in resp["error"]["message"]

    def test_invalid_params_missing_law(self, running):
        resp = raw_exchange(
            running.port, b'{"op":"advise","id":9,"params":{"reservation":10}}\n'
        )
        assert resp["error"]["type"] == "invalid-params"
        assert resp["id"] == 9

    def test_invalid_params_bad_law_spec(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.advise(3.0, "nosuchlaw:1", "uniform:0.1,0.5", work=1.0)
        assert excinfo.value.kind == "invalid-params"

    def test_connection_survives_malformed_request(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            with pytest.raises(ServiceError):
                client.request("advise", {"reservation": -1})
            assert client.ping()  # same connection still serves

    def test_malformed_counter_increments(self, running):
        before = running.metrics.counter("requests.malformed")
        raw_exchange(running.port, b"\x00\xff garbage\n")
        assert running.metrics.counter("requests.malformed") == before + 1


class TestTimeout:
    def test_slow_request_gets_timeout_envelope(self):
        with ServerThread(request_timeout=0.001) as st:
            with Client(port=st.port, timeout=30.0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    # a cold compile takes far longer than 1 ms
                    client.warm(10.0, "gamma:1,0.5", "normal:2,0.4@[0,inf]")
                assert excinfo.value.kind == "timeout"
                # ping dispatches instantly enough even under the tiny budget
                assert st.metrics.counter("errors.timeout") == 1


def read_line(sock: socket.socket) -> bytes:
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            return buf
        buf += chunk
    return buf.partition(b"\n")[0]


class TestOverload:
    def test_connection_cap_sheds_with_envelope(self):
        with ServerThread(max_connections=1) as st:
            with Client(port=st.port, timeout=10.0) as first:
                assert first.ping()  # occupies the single slot
                with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as extra:
                    extra.settimeout(10.0)
                    shed = json.loads(read_line(extra))
                    assert shed["ok"] is False
                    assert shed["error"]["type"] == "overloaded"
                    assert "id" not in shed  # shed before any request was read
                    assert extra.recv(65536) == b""  # then closed
                # the existing connection is unaffected by the shed peer
                assert first.ping()
            assert st.metrics.counter("connections.shed") == 1

    def test_shed_peer_surfaces_as_service_error(self):
        with ServerThread(max_connections=1) as st:
            with Client(port=st.port, timeout=10.0) as first:
                assert first.ping()
                with Client(port=st.port, timeout=10.0) as extra:
                    with pytest.raises(ServiceError) as excinfo:
                        extra.ping()
                    assert excinfo.value.kind == "overloaded"

    def test_inflight_bound_returns_overloaded(self):
        async def main() -> None:
            metrics = ServiceMetrics()
            server = AdvisorServer(max_inflight=1, metrics=metrics)
            release = asyncio.Event()

            async def slow_dispatch(op, params):
                await release.wait()
                return {"pong": True}

            server._dispatch = slow_dispatch
            first = asyncio.create_task(server._handle_line(b'{"op":"ping","id":1}\n'))
            await asyncio.sleep(0)  # let the first request enter dispatch
            second = await server._handle_line(b'{"op":"ping","id":2}\n')
            assert second["ok"] is False
            assert second["error"]["type"] == "overloaded"
            assert second["id"] == 2
            assert metrics.counter("errors.overloaded") == 1
            release.set()
            assert (await first)["ok"] is True  # the in-flight request finishes

        asyncio.run(main())


class TestIdleTimeout:
    def test_silent_connection_is_dropped(self):
        with ServerThread(idle_timeout=0.2) as st:
            with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as idle:
                idle.settimeout(10.0)
                assert idle.recv(65536) == b""  # server hangs up on the loris
            assert st.metrics.counter("connections.idle_closed") == 1

    def test_active_connection_stays_up(self):
        with ServerThread(idle_timeout=0.5) as st:
            with Client(port=st.port, timeout=10.0) as client:
                for _ in range(3):
                    assert client.ping()


class TestHealth:
    def test_health_reports_load_and_cache(self, running):
        with Client(port=running.port, timeout=30.0) as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["connections"]["active"] >= 1
        assert health["connections"]["max"] == running.server.max_connections
        assert health["inflight"]["active"] >= 1  # counts the health op itself
        assert health["degraded"] is False
        assert "quarantined" in health["cache"]
        assert "pong" not in health  # distinct from ping

    def test_health_counts_shedding(self):
        with ServerThread(max_connections=1) as st:
            with Client(port=st.port, timeout=10.0) as first:
                assert first.ping()
                with socket.create_connection(("127.0.0.1", st.port), timeout=10.0) as extra:
                    read_line(extra)
                assert first.health()["connections"]["shed_total"] == 1
