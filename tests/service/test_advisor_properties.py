"""Property-based differential test: Advisor == DynamicStrategy.

The advisor's whole value proposition is that the cached threshold
comparison ``work >= W_int`` answers exactly the question
:meth:`DynamicStrategy.should_checkpoint` answers by quadrature. This
module locks that equivalence in two ways:

* a hypothesis sweep over ``(task law, checkpoint law, R, w)`` tuples
  drawn from pools (pools bound the number of expensive policy
  compiles; ``w`` varies continuously), with *tracing enabled* on the
  advisor to prove instrumentation does not perturb decisions;
* a deterministic 1000-point grid over the paper's Figure 9 instance
  asserting zero elementwise mismatches (the PR's acceptance bar).

Queries landing numerically on the threshold itself are excluded: both
sides agree everywhere except within root-finding tolerance of
``W_int``, where the sign of ``E(W_C) - E(W_+1)`` is below quadrature
noise.
"""

from __future__ import annotations

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import assume, given, settings, strategies as st

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.obs import Tracer
from repro.service import Advisor, PolicyCache, ServiceMetrics

#: Law pools: every pair is supported on [0, inf) (the dynamic rule's
#: standing assumption) and cheap enough to compile once per session.
TASK_LAWS = ("gamma:1,0.5", "exponential:2", "gamma:2,0.4")
CKPT_LAWS = ("normal:2,0.4@[0,inf]", "gamma:2,0.5")
RESERVATIONS = (8.0, 10.0, 14.0)

#: Exclusion band around W_int where quadrature noise decides the sign.
EPSILON = 1e-6

_TRACER = Tracer(capacity=64)
_ADVISOR = Advisor(
    PolicyCache(maxsize=32, curve_points=17, tracer=_TRACER),
    metrics=ServiceMetrics(),
    tracer=_TRACER,
)
_DYN_MEMO: dict[tuple[float, str, str], DynamicStrategy] = {}


def _dynamic(reservation: float, task: str, ckpt: str) -> DynamicStrategy:
    key = (reservation, task, ckpt)
    strategy = _DYN_MEMO.get(key)
    if strategy is None:
        strategy = _DYN_MEMO[key] = DynamicStrategy(
            reservation, parse_law(task), parse_law(ckpt)
        )
    return strategy


@given(
    task=st.sampled_from(TASK_LAWS),
    ckpt=st.sampled_from(CKPT_LAWS),
    reservation=st.sampled_from(RESERVATIONS),
    fraction=st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
)
@settings(max_examples=60, deadline=None)
def test_advise_matches_dynamic_strategy(task, ckpt, reservation, fraction):
    w = fraction * reservation
    policy = _ADVISOR.policy(reservation, task, ckpt)
    assert policy.w_int is not None
    assume(abs(w - policy.w_int) > EPSILON * reservation)

    advice = _ADVISOR.advise(reservation, task, ckpt, work=w)
    expected = _dynamic(reservation, task, ckpt).should_checkpoint(w)
    assert advice.checkpoint == expected, (
        f"advisor={advice.checkpoint} dynamic={expected} at "
        f"w={w!r} W_int={policy.w_int!r} ({task}, {ckpt}, R={reservation})"
    )


@given(
    task=st.sampled_from(TASK_LAWS),
    ckpt=st.sampled_from(CKPT_LAWS),
    reservation=st.sampled_from(RESERVATIONS),
    fractions=st.lists(
        st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=16,
    ),
)
@settings(max_examples=30, deadline=None)
def test_batch_agrees_with_single_queries(task, ckpt, reservation, fractions):
    work = [f * reservation for f in fractions]
    batch = _ADVISOR.advise_batch(reservation, task, ckpt, work)
    assert len(batch) == len(work)
    for w, advice in zip(work, batch):
        single = _ADVISOR.advise(reservation, task, ckpt, work=w)
        assert advice.checkpoint == single.checkpoint
        assert advice.threshold == single.threshold


def test_tracing_did_not_perturb_decisions():
    """Run after the sweeps: the shared advisor really was tracing."""
    stats = _TRACER.stats()
    assert stats["enabled"] is True
    assert stats["finished"] > 0  # advise_batch spans were recorded


def test_fig9_grid_has_zero_mismatches(fig9, session_advisor):
    """Acceptance bar: 1000-point grid, tracing on, 0 mismatches."""
    tracer = Tracer(capacity=16)
    advisor = Advisor(session_advisor.cache, tracer=tracer)
    policy = advisor.policy(**fig9)
    assert policy.w_int is not None

    grid = np.linspace(0.0, fig9["reservation"], 1000)
    grid = grid[np.abs(grid - policy.w_int) > EPSILON * fig9["reservation"]]
    decisions = advisor.decide_batch(fig9["reservation"], fig9["task_law"],
                                     fig9["checkpoint_law"], grid)

    dyn = _dynamic(fig9["reservation"], fig9["task_law"], fig9["checkpoint_law"])
    expected = np.array([dyn.should_checkpoint(float(w)) for w in grid])
    mismatches = int(np.sum(decisions != expected))
    assert mismatches == 0
    assert tracer.stats()["enabled"] is True
