"""Advisor: batch decisions must equal the per-query dynamic rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.service import Advisor, PolicyCache


class TestBatchEquivalence:
    def test_batch_matches_per_query_rule(self, fig9, session_advisor):
        """Elementwise agreement with DynamicStrategy.should_checkpoint."""
        dyn = DynamicStrategy(
            fig9["reservation"],
            parse_law(fig9["task_law"]),
            parse_law(fig9["checkpoint_law"]),
        )
        grid = np.linspace(0.0, fig9["reservation"], 201)
        batch = session_advisor.advise_batch(**fig9, work=grid)
        expected = [dyn.should_checkpoint(float(w)) for w in grid]
        got = [a.checkpoint for a in batch]
        assert got == expected

    def test_decide_batch_matches_advise_batch(self, fig9, session_advisor):
        grid = np.linspace(0.0, fig9["reservation"], 101)
        decisions = session_advisor.decide_batch(**fig9, work=grid)
        batch = session_advisor.advise_batch(**fig9, work=grid)
        assert decisions.tolist() == [a.checkpoint for a in batch]

    def test_single_advise_matches_batch(self, fig9, session_advisor):
        for w in (0.0, 3.0, 6.4, 6.5, 9.9):
            single = session_advisor.advise(**fig9, work=w)
            (batched,) = session_advisor.advise_batch(**fig9, work=[w])
            assert single == batched

    def test_batch_shares_one_policy_lookup(self, fig9, session_advisor, figure9_policy):
        cache = session_advisor.cache
        hits_before = cache.hits
        misses_before = cache.misses
        session_advisor.advise_batch(**fig9, work=np.linspace(0.0, 10.0, 500))
        assert cache.misses == misses_before  # policy was already compiled
        assert cache.hits == hits_before + 1  # exactly one lookup for 500 queries


class TestAdviceContents:
    def test_threshold_and_expectations(self, fig9, session_advisor, figure9_policy):
        advice = session_advisor.advise(**fig9, work=7.0)
        assert advice.checkpoint  # 7.0 > W_int ~= 6.44
        assert advice.threshold == pytest.approx(figure9_policy.w_int)
        assert advice.time_left == pytest.approx(3.0)
        # Interpolated expectations agree with direct quadrature to
        # curve-resolution accuracy.
        dyn = DynamicStrategy(
            fig9["reservation"],
            parse_law(fig9["task_law"]),
            parse_law(fig9["checkpoint_law"]),
        )
        assert advice.expected_if_checkpoint == pytest.approx(
            float(dyn.expected_if_checkpoint(7.0)), rel=0.05
        )
        assert advice.expected_if_continue == pytest.approx(
            dyn.expected_if_continue(7.0), rel=0.05
        )

    def test_to_dict_action(self, fig9, session_advisor):
        assert session_advisor.advise(**fig9, work=9.0).to_dict()["action"] == "checkpoint"
        assert session_advisor.advise(**fig9, work=1.0).to_dict()["action"] == "continue"


class TestTimeLeft:
    def test_explicit_nominal_time_left_matches_default(self, fig9, session_advisor):
        nominal = session_advisor.advise(**fig9, work=5.0)
        explicit = session_advisor.advise(**fig9, work=5.0, time_left=5.0)
        assert nominal == explicit

    def test_off_nominal_uses_effective_reservation(self, fig9, session_advisor):
        """(w, t) decides like the R' = w + t instance at work w."""
        advice = session_advisor.advise(**fig9, work=5.0, time_left=1.5)
        reference = session_advisor.advise(
            6.5, fig9["task_law"], fig9["checkpoint_law"], work=5.0
        )
        assert advice.reservation == pytest.approx(6.5)
        assert advice.checkpoint == reference.checkpoint
        assert advice.threshold == pytest.approx(reference.threshold)

    def test_batch_groups_by_effective_reservation(self, fig9):
        advisor = Advisor(PolicyCache(curve_points=17))
        work = [2.0, 5.0, 2.0, 5.0]
        time_left = [8.0, 5.0, 6.0, 3.0]  # R' in {10, 10, 8, 8}
        batch = advisor.advise_batch(
            fig9["reservation"],
            fig9["task_law"],
            fig9["checkpoint_law"],
            work,
            time_left,
        )
        assert advisor.cache.misses == 2  # one compile per distinct R'
        assert [a.reservation for a in batch] == [10.0, 10.0, 8.0, 8.0]
        assert [a.work for a in batch] == work


class TestValidation:
    def test_negative_work_rejected(self, fig9, session_advisor):
        with pytest.raises(ValueError, match="work"):
            session_advisor.advise(**fig9, work=-1.0)
        with pytest.raises(ValueError, match="work"):
            session_advisor.advise_batch(**fig9, work=[1.0, -1.0])

    def test_negative_time_left_rejected(self, fig9, session_advisor):
        # default time_left = R - work goes negative past the reservation
        with pytest.raises(ValueError, match="time_left"):
            session_advisor.advise(**fig9, work=fig9["reservation"] + 1.0)

    def test_mismatched_batch_lengths_rejected(self, fig9, session_advisor):
        with pytest.raises(ValueError):
            session_advisor.advise_batch(
                **fig9, work=[1.0, 2.0, 3.0], time_left=[1.0, 2.0]
            )

    def test_task_law_without_dynamic_rule_rejected(self):
        advisor = Advisor(PolicyCache(curve_points=9))
        # Untruncated Normal task laws are rejected by the dynamic
        # strategy (Section 4.3.1): the policy compiles, but advising
        # against it must fail loudly.
        with pytest.raises(ValueError, match="dynamic"):
            advisor.advise(29.0, "normal:3,0.5", "normal:5,0.4@[0,inf]", work=10.0)
