"""Shared service-test harnesses (not a test module).

Three ways to stand infrastructure up for the blocking clients under
test, all thread-hosted so the synchronous test body stays in charge:

* :class:`ServerThread` — a real :class:`AdvisorServer` on its own
  asyncio loop in a daemon thread;
* :class:`ScriptedServer` — a bare socket server answering each decoded
  request line with whatever bytes a test-supplied handler returns;
  this is how protocol-level misbehaviour (stale ids, garbage, shed
  envelopes, silence) is scripted deterministically;
* :class:`ChaosStack` — an :class:`AdvisorServer` with a
  :class:`ChaosProxy` in front, both on one loop in one thread.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Callable

from repro.service import (
    Advisor,
    AdvisorServer,
    ChaosConfig,
    ChaosProxy,
    Client,
    PolicyCache,
    ServiceError,
    ServiceMetrics,
)

__all__ = ["ChaosStack", "ScriptedServer", "ServerThread", "free_port"]


def free_port() -> int:
    """A port that was free a moment ago (bound, inspected, released)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerThread:
    """Run an AdvisorServer on its own loop in a daemon thread."""

    def __init__(self, **kwargs) -> None:
        self.metrics = ServiceMetrics()
        advisor = Advisor(
            PolicyCache(metrics=self.metrics, curve_points=17), metrics=self.metrics
        )
        self.server = AdvisorServer(advisor, port=0, metrics=self.metrics, **kwargs)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._ready.set()
            await self.server.serve_until_stopped()

        asyncio.run(main())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread.is_alive():
            try:
                with Client(port=self.server.port, timeout=5.0) as client:
                    client.shutdown()
            except (OSError, ServiceError):
                pass
        self._thread.join(timeout=10.0)

    @property
    def port(self) -> int:
        return self.server.port


class ScriptedServer:
    """A raw TCP server that answers each request line via ``handler``.

    ``handler(request_dict) -> bytes | None`` returns the exact bytes to
    send back (possibly several lines, possibly malformed on purpose) or
    ``None`` to stay silent. Runs in a daemon thread; handles one
    connection at a time, accepting fresh ones as clients reconnect.
    """

    def __init__(self, handler: Callable[[dict], bytes | None]) -> None:
        self.handler = handler
        self._stop = threading.Event()
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self._sock.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with conn:
                self._serve_connection(conn)
        self._sock.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(0.1)
        buffer = b""
        while not self._stop.is_set():
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                return
            if not chunk:
                return
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                reply = self.handler(json.loads(line))
                if reply:
                    try:
                        conn.sendall(reply)
                    except OSError:
                        return

    def __enter__(self) -> "ScriptedServer":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class ChaosStack:
    """AdvisorServer + ChaosProxy on one loop in a daemon thread.

    Clients talk to :attr:`proxy_port`; the proxy injures the replies
    per ``config`` on their way back from the real server.
    """

    def __init__(self, config: ChaosConfig, **server_kwargs) -> None:
        self.metrics = ServiceMetrics()
        advisor = Advisor(
            PolicyCache(metrics=self.metrics, curve_points=17), metrics=self.metrics
        )
        self.server = AdvisorServer(
            advisor, port=0, metrics=self.metrics, **server_kwargs
        )
        self.config = config
        self.proxy: ChaosProxy | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.server.start()
            self.proxy = ChaosProxy("127.0.0.1", self.server.port, self.config)
            await self.proxy.start()
            self._ready.set()
            await self._stop.wait()
            await self.proxy.stop()
            await self.server.stop()

        asyncio.run(main())

    def __enter__(self) -> "ChaosStack":
        self._thread.start()
        assert self._ready.wait(timeout=10.0), "chaos stack did not start"
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)

    @property
    def proxy_port(self) -> int:
        assert self.proxy is not None
        return self.proxy.port
