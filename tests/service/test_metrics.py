"""ServiceMetrics and LatencyHistogram unit tests."""

from __future__ import annotations

import math
import threading

import pytest

from repro.service import LatencyHistogram, ServiceMetrics
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)


class TestLatencyHistogram:
    def test_observe_and_summary(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.004, 1.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["sum_seconds"] == pytest.approx(1.007)
        assert snap["min_seconds"] == pytest.approx(0.001)
        assert snap["max_seconds"] == pytest.approx(1.0)
        assert sum(snap["buckets"].values()) == 4

    def test_quantiles_bound_observations(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(0.001)
        hist.observe(10.0)
        assert hist.quantile(0.5) >= 0.001
        assert hist.quantile(0.5) < 0.01
        assert hist.quantile(1.0) >= 10.0

    def test_empty_quantile_is_nan(self):
        assert math.isnan(LatencyHistogram().quantile(0.5))

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(1.0, 0.5, math.inf))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.5, 1.0))


class TestServiceMetrics:
    def test_counters(self):
        m = ServiceMetrics()
        m.incr("requests.advise")
        m.incr("requests.advise", 3)
        assert m.counter("requests.advise") == 4
        assert m.counter("never.touched") == 0

    def test_timer_records_latency(self):
        m = ServiceMetrics()
        with m.time("advise"):
            pass
        snap = m.snapshot()
        assert snap["latency"]["advise"]["count"] == 1

    def test_snapshot_is_json_friendly(self):
        import json

        m = ServiceMetrics()
        m.incr("cache.hits")
        m.observe_latency("warm", 0.5)
        json.dumps(m.snapshot())  # must not raise

    def test_render_mentions_counters(self):
        m = ServiceMetrics()
        m.incr("cache.misses", 7)
        m.observe_latency("advise", 0.002)
        text = m.render()
        assert "cache.misses" in text and "7" in text
        assert "advise" in text

    def test_reset(self):
        m = ServiceMetrics()
        m.incr("x")
        m.observe_latency("y", 1.0)
        m.reset()
        snap = m.snapshot()
        assert snap["counters"] == {} and snap["latency"] == {}

    def test_thread_safety_of_increments(self):
        m = ServiceMetrics()

        def work() -> None:
            for _ in range(1000):
                m.incr("n")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n") == 8000


class TestProtocol:
    def test_encode_decode_round_trip(self):
        line = encode({"op": "ping", "id": 3})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"op": "ping", "id": 3, "params": {}}

    def test_decode_rejects_garbage(self):
        for payload, kind in (
            (b"nope", "bad-json"),
            (b"42", "bad-request"),
            (b'{"params":{}}', "bad-request"),
            (b'{"op":"zap"}', "unknown-op"),
            (b'{"op":"ping","params":3}', "bad-request"),
        ):
            with pytest.raises(ProtocolError) as excinfo:
                decode_line(payload)
            assert excinfo.value.kind == kind

    def test_envelopes(self):
        ok = ok_response(5, {"pong": True})
        assert ok == {"ok": True, "id": 5, "result": {"pong": True}}
        err = error_response(None, "timeout", "too slow")
        assert err["ok"] is False and "id" not in err
        assert err["error"] == {"type": "timeout", "message": "too slow"}
