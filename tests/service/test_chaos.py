"""End-to-end fault injection: ChaosProxy vs ResilientClient.

Every test drives the real stack — AdvisorServer behind a ChaosProxy,
queried by a blocking ResilientClient — under one injected failure
mode, and asserts the client still returns checkpoint decisions that
are elementwise-equal to ``DynamicStrategy.should_checkpoint`` on a
1000-point work grid. Faults are seeded and counted, so a run is
reproducible byte-for-byte; no assertion reads the wall clock.

Marked ``chaos``: CI runs this file as its own step with a hard
timeout, so a hung proxy fails fast instead of stalling the job.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest
from harness import ChaosStack, free_port

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.service import ChaosConfig, ResilientClient, RetryPolicy

pytestmark = pytest.mark.chaos

FAST = {
    "reservation": 3.0,
    "task_law": "deterministic:1",
    "checkpoint_law": "uniform:0.1,0.5",
}
GRID = [float(w) for w in np.linspace(0.0, FAST["reservation"], 1000)]


@pytest.fixture(scope="module")
def expected_decisions() -> list[bool]:
    """The exact per-query rule, evaluated once for the whole module."""
    dyn = DynamicStrategy(
        FAST["reservation"],
        parse_law(FAST["task_law"]),
        parse_law(FAST["checkpoint_law"]),
    )
    return [dyn.should_checkpoint(w) for w in GRID]


def make_client(port: int, **kwargs) -> ResilientClient:
    defaults = dict(
        timeout=5.0,
        deadline=20.0,
        retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0),
    )
    defaults.update(kwargs)
    return ResilientClient("127.0.0.1", port, **defaults)


def assert_grid_matches(result: dict, expected: list[bool]) -> None:
    assert result["count"] == len(expected)
    mismatches = sum(a != b for a, b in zip(result["decisions"], expected))
    assert mismatches == 0


class TestLatency:
    def test_latency_beyond_deadline_falls_back(self, expected_decisions):
        config = ChaosConfig(seed=7, latency=0.5)
        with ChaosStack(config) as stack:
            client = make_client(
                stack.proxy_port,
                timeout=0.1,
                deadline=0.35,
                retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0),
            )
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "local-fallback"
            assert_grid_matches(result, expected_decisions)
            assert client.metrics.counter("fallback.advise_batch") == 1
            assert stack.proxy.stats.delayed_chunks >= 1
            client.close()


class TestReset:
    def test_reset_mid_response_then_clean_retry(self, expected_decisions):
        config = ChaosConfig(seed=7, reset_after=64, times=1)
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port)
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "server"  # retry reached the real server
            assert_grid_matches(result, expected_decisions)
            assert client.metrics.counter("retry.attempts") >= 1
            assert stack.proxy.stats.resets == 1
            client.close()

    def test_permanent_resets_fall_back(self, expected_decisions):
        config = ChaosConfig(seed=7, reset_after=64)  # every connection
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port)
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "local-fallback"
            assert_grid_matches(result, expected_decisions)
            assert stack.proxy.stats.resets >= 2  # every retry was injured too
            client.close()


class TestTruncation:
    def test_truncated_line_then_clean_retry(self, expected_decisions):
        config = ChaosConfig(seed=7, truncate_at=100, times=1)
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port)
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "server"
            assert_grid_matches(result, expected_decisions)
            assert stack.proxy.stats.truncations == 1
            client.close()


class TestGarbage:
    def test_garbage_bytes_resync_then_clean_retry(self, expected_decisions):
        config = ChaosConfig(seed=7, garbage_bytes=32, times=1)
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port)
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "server"
            assert_grid_matches(result, expected_decisions)
            assert client.metrics.counter("retry.transport_errors") >= 1
            assert stack.proxy.stats.garbage_injections == 1
            client.close()

    def test_garbage_is_deterministic_under_a_seed(self):
        """Same seed -> byte-identical injected garbage; new seed -> not."""

        def first_garbage_line(seed: int) -> bytes:
            config = ChaosConfig(seed=seed, garbage_bytes=16)
            with ChaosStack(config) as stack:
                with socket.create_connection(
                    ("127.0.0.1", stack.proxy_port), timeout=10.0
                ) as sock:
                    sock.sendall(b'{"op":"ping","id":1}\n')
                    buf = b""
                    while b"\n" not in buf:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        buf += chunk
                    return buf.partition(b"\n")[0]

        assert first_garbage_line(123) == first_garbage_line(123)
        assert first_garbage_line(123) != first_garbage_line(124)


class TestServerDown:
    def test_unreachable_server_falls_back(self, expected_decisions):
        client = make_client(
            free_port(), retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        )
        result = client.advise_batch(**FAST, work=GRID)
        assert result["source"] == "local-fallback"
        assert_grid_matches(result, expected_decisions)
        single = client.advise(**FAST, work=2.5)
        assert single["source"] == "local-fallback"
        assert single["action"] in ("checkpoint", "continue")
        client.close()

    def test_dead_upstream_behind_proxy_falls_back(self, expected_decisions):
        config = ChaosConfig(seed=7)
        with ChaosStack(config) as stack:
            # point the proxy at a dead upstream after startup
            stack.proxy.upstream_port = free_port()
            client = make_client(
                stack.proxy_port,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            )
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "local-fallback"
            assert_grid_matches(result, expected_decisions)
            assert stack.proxy.stats.upstream_failures >= 1
            client.close()


class TestThrottling:
    def test_throttled_stream_is_slow_but_correct(self, expected_decisions):
        config = ChaosConfig(seed=7, throttle_chunk=4096, throttle_delay=0.001)
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port, timeout=15.0, deadline=30.0)
            result = client.advise_batch(**FAST, work=GRID)
            assert result["source"] == "server"  # slow is not down
            assert_grid_matches(result, expected_decisions)
            assert stack.proxy.stats.throttled_writes >= 2
            assert client.metrics.counter("retry.attempts") == 0
            client.close()


class TestCombined:
    def test_single_advise_survives_every_mode(self, expected_decisions):
        """One scalar advise under each fault still yields a decision."""
        configs = [
            ChaosConfig(seed=3, latency=0.5),
            ChaosConfig(seed=3, reset_after=16),
            ChaosConfig(seed=3, truncate_at=16),
            ChaosConfig(seed=3, garbage_bytes=8),
        ]
        dyn_expected = expected_decisions[500]  # decision at GRID[500]
        for config in configs:
            with ChaosStack(config) as stack:
                client = make_client(
                    stack.proxy_port,
                    timeout=0.2,
                    deadline=1.0,
                    retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                )
                advice = client.advise(**FAST, work=GRID[500])
                assert advice["checkpoint"] == dyn_expected
                assert advice["source"] in ("server", "local-fallback")
                client.close()

    def test_health_and_stats_visible_through_proxy(self):
        config = ChaosConfig(seed=7, times=0)  # fault plan present but inert
        with ChaosStack(config) as stack:
            client = make_client(stack.proxy_port)
            health = client.health()
            assert health["source"] == "server"
            assert health["status"] == "ok"
            stats = client.stats()
            assert "counters" in stats["metrics"]
            client.close()
