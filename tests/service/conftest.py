"""Shared fixtures for the advisor-service tests.

Policy compilation is the expensive step (seconds of quadrature), so the
paper's Figure 9 instance is compiled once per session and shared; tests
that need miss/hit accounting build their own caches but can reuse the
session advisor's compiled artifacts via ``figure9_policy``.
"""

from __future__ import annotations

import pytest

from repro.service import Advisor, PolicyCache, ServiceMetrics

#: The paper's Figure 9 instance: Gamma(1, 0.5) tasks, truncated-Normal
#: checkpoints, R = 10, W_int ~= 6.44.
FIG9 = {
    "reservation": 10.0,
    "task_law": "gamma:1,0.5",
    "checkpoint_law": "normal:2,0.4@[0,inf]",
}


@pytest.fixture(scope="session")
def fig9():
    return dict(FIG9)


@pytest.fixture(scope="session")
def session_metrics() -> ServiceMetrics:
    return ServiceMetrics()


@pytest.fixture(scope="session")
def session_advisor(session_metrics) -> Advisor:
    cache = PolicyCache(metrics=session_metrics, curve_points=65)
    return Advisor(cache, metrics=session_metrics)


@pytest.fixture(scope="session")
def figure9_policy(session_advisor):
    return session_advisor.policy(**FIG9)
