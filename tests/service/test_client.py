"""Client: id correlation, stale-reply discard, state reset after failures.

These pin the two PR-2 bugfixes on the plain blocking client: (1) a
late reply to a timed-out request is discarded by id instead of being
mis-attributed to the next request, and (2) after a transport failure
the dead socket and stale receive buffer are dropped so the next call
starts from a clean connection.
"""

from __future__ import annotations

import json
import socket

import pytest
from harness import ScriptedServer

from repro.service import Client, ResponseDesyncError, ServiceError, encode


def ok_line(request_id, result) -> bytes:
    return encode({"id": request_id, "ok": True, "result": result})


class TestIdCorrelation:
    def test_stale_reply_is_discarded(self):
        """A late reply for an older id must not answer the current request."""

        def handler(request: dict) -> bytes:
            # prepend the reply the *previous* request never got
            stale = ok_line(request["id"] - 1, {"pong": False})
            return stale + ok_line(request["id"], {"pong": True})

        with ScriptedServer(handler) as server:
            with Client(port=server.port, timeout=5.0) as client:
                assert client.ping() is True  # stale {"pong": false} skipped

    def test_unknown_future_id_desyncs(self):
        def handler(request: dict) -> bytes:
            return ok_line(request["id"] + 7, {"pong": True})

        with ScriptedServer(handler) as server:
            with Client(port=server.port, timeout=5.0) as client:
                with pytest.raises(ResponseDesyncError):
                    client.ping()
                # the connection was reset, not left half-read
                assert client._sock is None
                assert client._recv_buffer == b""

    def test_garbage_line_desyncs(self):
        def handler(request: dict) -> bytes:
            return b"\xf9\xfa\xfb not json\n"

        with ScriptedServer(handler) as server:
            with Client(port=server.port, timeout=5.0) as client:
                with pytest.raises(ResponseDesyncError):
                    client.ping()
                assert client._sock is None

    def test_connection_level_envelope_without_id(self):
        """An id-less error envelope (connection shed) maps to ServiceError."""

        def handler(request: dict) -> bytes:
            return encode(
                {"ok": False, "error": {"type": "overloaded", "message": "full"}}
            )

        with ScriptedServer(handler) as server:
            with Client(port=server.port, timeout=5.0) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.ping()
                assert excinfo.value.kind == "overloaded"


class TestStateResetAfterFailure:
    def test_timeout_resets_socket_and_buffer(self):
        """After a reply timeout, the next call uses a fresh connection.

        Regression: the old client kept the dead socket and any
        half-received bytes, so the late reply poisoned the next call.
        """
        calls = []

        def handler(request: dict) -> bytes | None:
            calls.append(request)
            if len(calls) == 1:
                return None  # stay silent: let the client time out
            return ok_line(request["id"], {"pong": True})

        with ScriptedServer(handler) as server:
            client = Client(port=server.port, timeout=0.2)
            with pytest.raises(OSError):
                client.request("ping")
            assert client._sock is None
            assert client._recv_buffer == b""
            # retrying the *same* client object works on a fresh socket
            assert client.ping() is True
            client.close()

    def test_partial_reply_then_close_resets_buffer(self):
        def handler(request: dict) -> bytes:
            return b'{"id": 1, "ok": tru'  # half a reply, then EOF via stop

        with ScriptedServer(handler) as server:
            client = Client(port=server.port, timeout=5.0)
            client.connect()
            sock = client._sock
            assert sock is not None
            sock.sendall(encode({"op": "ping", "id": 1}))
            # wait for the partial bytes, then sever the connection
            import time

            time.sleep(0.3)
            sock.shutdown(socket.SHUT_RD)
            with pytest.raises(ConnectionError):
                client._read_response(1)
            client.close()
            assert client._recv_buffer == b""

    def test_reconnect_after_server_restart(self):
        replies = {"n": 0}

        def handler(request: dict) -> bytes:
            replies["n"] += 1
            return ok_line(request["id"], {"pong": True})

        with ScriptedServer(handler) as server:
            client = Client(port=server.port, timeout=5.0)
            assert client.ping()
            # simulate the peer dying under us
            assert client._sock is not None
            client._sock.close()
            with pytest.raises(OSError):
                client.request("ping")
            # plain retry on the same object reconnects cleanly
            assert client.ping()
            client.close()
        assert replies["n"] >= 2
