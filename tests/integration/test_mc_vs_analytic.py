"""Integration: Monte-Carlo estimates agree with every analytic formula.

This is the reproduction's consistency backbone: Equation (1), Equation
(3) and the dynamic expectations are each validated against the fully
independent simulation path (different code, different discretization,
same numbers).
"""

import numpy as np
import pytest

from repro.core import (
    DynamicStrategy,
    OptimalStoppingSolver,
    StaticStrategy,
    solve,
)
from repro.core.preemptible import expected_work
from repro.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    truncate,
)
from repro.simulation import (
    SimulationSummary,
    simulate_fixed_count,
    simulate_preemptible,
    simulate_threshold,
)

N = 200_000


@pytest.mark.parametrize(
    "law_builder",
    [
        lambda: Uniform(1.0, 7.5),
        lambda: truncate(Exponential(0.5), 1.0, 5.0),
        lambda: truncate(Normal(3.5, 1.0), 1.0, 7.0),
        lambda: truncate(LogNormal(1.0, 0.5), 1.0, 7.0),
    ],
    ids=["uniform", "trunc-exp", "trunc-normal", "trunc-lognormal"],
)
class TestEquation1AllLaws:
    def test_mc_matches_analytic_at_optimum(self, law_builder, rng):
        law = law_builder()
        sol = solve(10.0, law)
        saved = simulate_preemptible(10.0, law, sol.x_opt, N, rng)
        assert SimulationSummary.from_samples(saved).contains(sol.expected_work_opt)

    def test_mc_confirms_optimality_locally(self, law_builder, rng):
        # Nudging X away from X_opt cannot improve the MC mean beyond noise.
        law = law_builder()
        sol = solve(10.0, law)
        at_opt = simulate_preemptible(10.0, law, sol.x_opt, N, rng).mean()
        for dx in (-0.5, 0.5):
            x = min(max(sol.x_opt + dx, law.lower), 10.0)
            nudged = simulate_preemptible(10.0, law, x, N, rng).mean()
            assert nudged <= at_opt + 0.02


class TestEquation3AllLaws:
    def test_normal_tasks(self, rng, paper_normal_tasks, paper_checkpoint_law):
        strat = StaticStrategy(30.0, paper_normal_tasks, paper_checkpoint_law)
        for n in (4, 7, 9):
            mc = SimulationSummary.from_samples(
                simulate_fixed_count(30.0, paper_normal_tasks, paper_checkpoint_law, n, N, rng)
            )
            assert mc.contains(strat.expected_work(n)), f"n={n}"

    def test_gamma_tasks(self, rng, paper_gamma_tasks, paper_gamma_checkpoint_law):
        strat = StaticStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)
        for n in (6, 12, 16):
            mc = SimulationSummary.from_samples(
                simulate_fixed_count(
                    10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, n, N, rng
                )
            )
            assert mc.contains(strat.expected_work(n)), f"n={n}"

    def test_poisson_tasks(self, rng, paper_poisson_tasks, paper_checkpoint_law):
        strat = StaticStrategy(29.0, paper_poisson_tasks, paper_checkpoint_law)
        for n in (5, 6, 7):
            mc = SimulationSummary.from_samples(
                simulate_fixed_count(
                    29.0, paper_poisson_tasks, paper_checkpoint_law, n, N, rng
                )
            )
            assert mc.contains(strat.expected_work(n)), f"n={n}"

    def test_generic_law_via_fft(self, rng, paper_checkpoint_law):
        # Uniform task law exercises the FFT sum path end to end.
        tasks = Uniform(2.0, 4.0)
        strat = StaticStrategy(30.0, tasks, paper_checkpoint_law)
        for n in (6, 8):
            mc = SimulationSummary.from_samples(
                simulate_fixed_count(30.0, tasks, paper_checkpoint_law, n, N, rng)
            )
            analytic = strat.expected_work(n)
            # FFT lattice error adds a small tolerance on top of MC noise.
            assert abs(mc.mean - analytic) < 4 * mc.sem + 0.02, f"n={n}"


class TestDynamicThresholdValues:
    @pytest.mark.parametrize(
        "R,tasks_builder,ckpt_builder",
        [
            (29.0, lambda: truncate(Normal(3.0, 0.5), 0.0), lambda: truncate(Normal(5.0, 0.4), 0.0)),
            (10.0, lambda: Gamma(1.0, 0.5), lambda: truncate(Normal(2.0, 0.4), 0.0)),
            (29.0, lambda: Poisson(3.0), lambda: truncate(Normal(5.0, 0.4), 0.0)),
        ],
        ids=["fig8", "fig9", "fig10"],
    )
    def test_bellman_evaluation_matches_mc(self, R, tasks_builder, ckpt_builder, rng):
        tasks, ckpt = tasks_builder(), ckpt_builder()
        dyn = DynamicStrategy(R, tasks, ckpt)
        th = dyn.crossing_point()
        solver = OptimalStoppingSolver(R, tasks, ckpt)
        analytic = solver.threshold_policy_value(th)
        mc = SimulationSummary.from_samples(
            simulate_threshold(R, tasks, ckpt, th, N, rng)
        )
        assert abs(mc.mean - analytic) < 4 * mc.sem + 0.03


class TestStrategyHierarchy:
    """oracle >= optimal-stopping >= dynamic >= static (in expectation)."""

    def test_hierarchy_fig8_instance(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        from repro.simulation import simulate_oracle

        R = 29.0
        tasks, ckpt = paper_trunc_normal_tasks, paper_checkpoint_law
        static_sol = StaticStrategy(R, Normal(3.0, 0.5), ckpt).solve()
        static = simulate_fixed_count(R, tasks, ckpt, static_sol.n_opt, N, rng).mean()
        dyn_th = DynamicStrategy(R, tasks, ckpt).crossing_point()
        dynamic = simulate_threshold(R, tasks, ckpt, dyn_th, N, rng).mean()
        opt_th = OptimalStoppingSolver(R, tasks, ckpt).solve().threshold
        optimal = simulate_threshold(R, tasks, ckpt, opt_th, N, rng).mean()
        oracle = simulate_oracle(R, tasks, ckpt, N, rng).mean()
        noise = 0.05
        assert oracle >= optimal - noise
        assert optimal >= dynamic - noise
        assert dynamic >= static - noise
