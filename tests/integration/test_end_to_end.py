"""Integration: the full pipelines a user would actually run.

1. calibrate-from-trace -> optimal margin -> simulate the margin;
2. instrumented solver -> fitted laws -> dynamic policy -> reservation
   campaign that completes the solve across reservations;
3. §4.4: continuation advisor changes reservation behaviour.
"""

import numpy as np
import pytest

from repro.core import (
    BillingModel,
    ContinuationAdvisor,
    DynamicPolicy,
    OptimalMargin,
    PessimisticMargin,
    StaticOptimalPolicy,
    solve,
)
from repro.distributions import LogNormal, Normal, Uniform, truncate
from repro.simulation import (
    SimulationSummary,
    TraceTaskSource,
    run_campaign,
    run_reservation,
    simulate_preemptible,
)
from repro.traces import select_best, synthetic_checkpoint_trace
from repro.workflows import (
    InMemoryCheckpointStore,
    JacobiSolver,
    MachineModel,
    manufactured_rhs,
    poisson_2d,
    run_instrumented,
)


class TestCalibrationPipeline:
    """Trace -> fitted law -> truncated to observed range -> margin."""

    def test_preemptible_calibration_beats_pessimistic(self, rng):
        bw = Uniform(2e9, 8e9)
        trace = synthetic_checkpoint_trace(2000, 16e9, bw, latency=0.5, rng=rng)
        report = select_best(trace)
        fitted = truncate(
            report.best.distribution, float(trace.min()), float(trace.max())
        )
        R = 30.0
        sol = solve(R, fitted)
        assert sol.gain >= 1.0
        # Validate on fresh draws from the *true* generating process. The
        # fitted law carries estimation error, so require near-parity with
        # the pessimistic baseline rather than a strict win (on this
        # instance the optimum sits close to b, where both coincide).
        truth = synthetic_checkpoint_trace(100_000, 16e9, bw, latency=0.5, rng=rng)
        saved_opt = np.where(truth <= sol.x_opt, R - sol.x_opt, 0.0).mean()
        saved_pess = R - float(trace.max())
        assert saved_opt > 0.95 * saved_pess
        # And against the *fitted* model the optimum must truly dominate.
        saved_opt_model = float(fitted.cdf(sol.x_opt)) * (R - sol.x_opt)
        saved_pess_model = R - fitted.upper
        assert saved_opt_model >= saved_pess_model - 1e-9

    def test_margin_policies_rank_correctly(self, rng):
        law = Uniform(1.0, 7.5)
        R = 10.0
        x_opt = OptimalMargin().margin(R, law)
        x_pess = PessimisticMargin().margin(R, law)
        mc_opt = simulate_preemptible(R, law, x_opt, 100_000, rng).mean()
        mc_pess = simulate_preemptible(R, law, x_pess, 100_000, rng).mean()
        assert mc_opt > mc_pess
        assert mc_opt / mc_pess == pytest.approx(3.115 / 2.5, abs=0.03)


class TestSolverReservationPipeline:
    """A real Jacobi solve executed across checkpointed reservations."""

    @pytest.fixture
    def instrumented(self):
        A = poisson_2d(10)
        b, x_star = manufactured_rhs(A, rng=0)
        app = JacobiSolver(A, b, tolerance=1e-8)
        machine = MachineModel(2e7, noise_law=LogNormal.from_moments(1.0, 0.1))
        trace = run_instrumented(app, machine, rng=1)
        return app, trace, x_star

    def test_trace_driven_reservations_complete_the_solve(self, instrumented, rng):
        app, trace, _ = instrumented
        durations = trace.as_array()
        total_work = durations.sum()
        mean_task = durations.mean()
        # Checkpoint ~3 task-times, reservations of ~15 tasks.
        ckpt = truncate(Normal(3.0 * mean_task, 0.3 * mean_task), 0.0)
        task_law = truncate(Normal(mean_task, durations.std() + 1e-9), 0.0)
        R = 15.0 * mean_task
        result = run_campaign(
            total_work,
            R,
            TraceTaskSource(durations, cycle=False),
            ckpt,
            DynamicPolicy(task_law, ckpt),
            rng=rng,
            recovery=mean_task,
            max_reservations=500,
        )
        assert result.completed
        assert result.utilization > 0.3

    def test_checkpoint_store_resumes_solver_mid_run(self, instrumented):
        app, _, x_star = instrumented
        # Re-create a fresh solver; run 50 iterations, checkpoint, "crash",
        # recover, and continue to convergence.
        A = poisson_2d(10)
        b, x_star = manufactured_rhs(A, rng=0)
        solver = JacobiSolver(A, b, tolerance=1e-8)
        store = InMemoryCheckpointStore()
        for _ in range(50):
            solver.iterate()
        store.write(solver)
        for _ in range(25):
            solver.iterate()  # work that will be lost
        store.recover(solver)
        assert solver.iteration_count == 50
        solver.solve_to_convergence(100_000)
        err = np.linalg.norm(solver.x - x_star) / np.linalg.norm(x_star)
        assert err < 1e-5


class TestContinuationBehaviour:
    def test_by_reservation_advisor_fills_reservation(
        self, paper_trunc_normal_tasks, paper_checkpoint_law
    ):
        from repro.core import StaticCountPolicy

        tasks, ckpt = paper_trunc_normal_tasks, paper_checkpoint_law
        adv = ContinuationAdvisor(tasks, ckpt, billing=BillingModel.BY_RESERVATION)
        # A deliberately early checkpoint (5 tasks ~ 15s of a 60s
        # reservation) leaves room that only continuation can use.
        policy = StaticCountPolicy(5)
        gen = np.random.default_rng(11)
        base_saved, cont_saved = [], []
        for _ in range(150):
            base_saved.append(
                run_reservation(60.0, tasks, ckpt, policy, gen).work_saved
            )
            cont_saved.append(
                run_reservation(
                    60.0, tasks, ckpt, policy, gen,
                    continue_after_checkpoint=True, advisor=adv,
                ).work_saved
            )
        # With a 60s reservation and a ~26s first segment, continuing
        # must add a second segment's worth of work on average.
        assert np.mean(cont_saved) > np.mean(base_saved) + 10.0
