"""Cross-cutting invariants, property-tested over random scenarios.

These are the conservation laws every component must respect regardless
of parameters: saved work cannot exceed used time, timelines are
monotone, policies are consistent with their fast paths, and the
strategy hierarchy never inverts beyond noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import DynamicPolicy, StaticCountPolicy
from repro.distributions import Gamma, Normal, truncate
from repro.simulation import (
    EventKind,
    run_reservation,
    simulate_threshold,
)

task_mu = hst.floats(min_value=1.0, max_value=5.0)
task_sigma = hst.floats(min_value=0.1, max_value=1.5)
ckpt_mu = hst.floats(min_value=0.5, max_value=6.0)
count = hst.integers(min_value=1, max_value=10)
seed = hst.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=30, deadline=None)
@given(mu=task_mu, sigma=task_sigma, c_mu=ckpt_mu, n=count, s=seed)
def test_reservation_record_conservation(mu, sigma, c_mu, n, s):
    """work_saved <= time_used <= R; event times monotone; counters
    consistent with the event log."""
    R = 30.0
    tasks = truncate(Normal(mu, sigma), 0.0)
    ckpt = truncate(Normal(c_mu, 0.3), 0.0)
    rec = run_reservation(R, tasks, ckpt, StaticCountPolicy(n), rng=s)
    assert 0.0 <= rec.work_saved <= rec.time_used + 1e-9
    assert rec.time_used <= R + 1e-9
    times = [e.time for e in rec.events]
    assert all(t1 >= t0 - 1e-12 for t0, t1 in zip(times, times[1:]))
    n_success = sum(1 for e in rec.events if e.kind == EventKind.CHECKPOINT_SUCCEEDED)
    n_failed = sum(1 for e in rec.events if e.kind == EventKind.CHECKPOINT_FAILED)
    assert n_success == rec.checkpoints_succeeded
    assert n_failed == rec.checkpoints_failed
    n_tasks = sum(1 for e in rec.events if e.kind == EventKind.TASK_COMPLETED)
    assert n_tasks >= rec.tasks_completed  # lost segments still ran tasks


@settings(max_examples=20, deadline=None)
@given(mu=task_mu, sigma=task_sigma, c_mu=ckpt_mu, s=seed)
def test_failed_checkpoint_saves_nothing(mu, sigma, c_mu, s):
    """A reservation whose only checkpoint failed reports zero work."""
    R = 20.0
    tasks = truncate(Normal(mu, sigma), 0.0)
    ckpt = truncate(Normal(c_mu, 0.3), 0.0)
    rec = run_reservation(R, tasks, ckpt, StaticCountPolicy(3), rng=s)
    if rec.checkpoints_succeeded == 0:
        assert rec.work_saved == 0.0


@settings(max_examples=15, deadline=None)
@given(
    threshold=hst.floats(min_value=0.5, max_value=25.0),
    s=seed,
)
def test_threshold_simulator_saved_work_structure(threshold, s):
    """Positive saved work always equals the first threshold crossing,
    hence >= threshold and < R."""
    R = 29.0
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    saved = simulate_threshold(R, tasks, ckpt, threshold, 2000, s)
    positive = saved[saved > 0]
    if positive.size:
        assert positive.min() >= threshold - 1e-9
        assert positive.max() < R


@settings(max_examples=10, deadline=None)
@given(
    k=hst.floats(min_value=0.5, max_value=4.0),
    theta=hst.floats(min_value=0.2, max_value=1.5),
    s=seed,
)
def test_policy_fast_path_consistency(k, theta, s):
    """DynamicPolicy's threshold fast path and its exact mode agree on
    the simulated outcome distribution (same rule, two code paths)."""
    R = 15.0
    tasks = Gamma(k, theta)
    ckpt = truncate(Normal(2.0, 0.3), 0.0)
    policy = DynamicPolicy(tasks, ckpt)
    fast_threshold = policy.work_threshold(R)
    exact = DynamicPolicy(tasks, ckpt, exact=True)
    exact.reset(R)
    # The exact rule flips exactly at the threshold (within tolerance).
    eps = 1e-3 * R
    if eps < fast_threshold < R - eps:
        assert not exact.should_checkpoint(fast_threshold - eps, 1)
        assert exact.should_checkpoint(fast_threshold + eps, 1)


@settings(max_examples=8, deadline=None)
@given(
    mu=hst.floats(min_value=2.0, max_value=4.0),
    s=seed,
)
def test_continuation_never_reduces_saved_work(mu, s):
    """§4.4: continuing after a successful checkpoint can only add."""
    R = 60.0
    tasks = truncate(Normal(mu, 0.5), 0.0)
    ckpt = truncate(Normal(4.0, 0.4), 0.0)
    base = run_reservation(R, tasks, ckpt, StaticCountPolicy(4), rng=s)
    cont = run_reservation(
        R, tasks, ckpt, StaticCountPolicy(4), rng=s, continue_after_checkpoint=True
    )
    # Same RNG stream start: the first segment is identical, so the
    # continued run banks at least the base run's first-segment work
    # whenever the base run banked anything.
    if base.work_saved > 0.0:
        assert cont.work_saved >= base.work_saved - 1e-9
