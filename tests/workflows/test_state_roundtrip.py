"""Property tests: checkpoint payloads round-trip every solver exactly.

The runtime's recovery invariant ("after a crash, resume from the last
completed checkpoint") is only as strong as ``serialize_state`` /
``restore_state``: if a restore is not *bitwise* exact, a resumed
campaign silently diverges from the uninterrupted trajectory. These
tests pin bitwise round-trips — state, iteration counter, residual,
and the entire residual trajectory replayed after a rollback — for all
five solvers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.workflows import (
    ConjugateGradientSolver,
    GaussSeidelSolver,
    GMRESSolver,
    JacobiSolver,
    SORSolver,
    manufactured_rhs,
    optimal_omega_poisson_2d,
    poisson_2d,
)

SOLVER_NAMES = ("jacobi", "gauss-seidel", "sor", "cg", "gmres")


def make_solver(name, size=8, rng=0):
    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=rng)
    if name == "jacobi":
        return JacobiSolver(A, b)
    if name == "gauss-seidel":
        return GaussSeidelSolver(A, b)
    if name == "sor":
        return SORSolver(A, b, omega=optimal_omega_poisson_2d(size))
    if name == "cg":
        return ConjugateGradientSolver(A, b)
    if name == "gmres":
        return GMRESSolver(A, b, restart=5)
    raise ValueError(name)


@pytest.mark.parametrize("name", SOLVER_NAMES)
class TestRoundTrip:
    def test_restore_is_bitwise_exact(self, name):
        app = make_solver(name)
        for _ in range(5):
            app.iterate()
        payload = app.serialize_state()
        x5 = app.x.copy()
        residual5 = app.residual
        for _ in range(4):
            app.iterate()
        app.restore_state(payload)
        np.testing.assert_array_equal(app.x, x5)
        assert app.iteration_count == 5
        assert app.residual == residual5  # bitwise, not approx

    def test_restore_into_fresh_instance(self, name):
        """A recovering process builds the solver from scratch and then
        restores — both instances must be indistinguishable."""
        app = make_solver(name)
        for _ in range(4):
            app.iterate()
        payload = app.serialize_state()
        fresh = make_solver(name)
        fresh.restore_state(payload)
        np.testing.assert_array_equal(fresh.x, app.x)
        assert fresh.iteration_count == app.iteration_count
        assert fresh.residual == app.residual
        # And they stay in lockstep afterwards.
        assert fresh.iterate() == app.iterate()
        np.testing.assert_array_equal(fresh.x, app.x)

    def test_residual_trajectory_identical_after_rollback(self, name):
        """Roll back 6 iterations and replay: the residual sequence must
        be bitwise identical — recovery replays, it does not re-solve."""
        app = make_solver(name)
        for _ in range(3):
            app.iterate()
        payload = app.serialize_state()
        trajectory = [app.iterate() for _ in range(6)]
        app.restore_state(payload)
        replay = [app.iterate() for _ in range(6)]
        assert replay == trajectory

    def test_payload_reports_true_size(self, name):
        app = make_solver(name)
        app.iterate()
        assert app.state_size_bytes == len(app.serialize_state())


@settings(max_examples=15, deadline=None)
@given(
    name=hst.sampled_from(SOLVER_NAMES),
    size=hst.integers(min_value=4, max_value=10),
    rng=hst.integers(min_value=0, max_value=2**16),
    warmup=hst.integers(min_value=1, max_value=6),
    overshoot=hst.integers(min_value=1, max_value=5),
)
def test_roundtrip_property(name, size, rng, warmup, overshoot):
    """For any solver, problem and rollback point: serialize at iteration
    ``k``, run past it, restore, and the state is bitwise back at ``k``."""
    app = make_solver(name, size=size, rng=rng)
    for _ in range(warmup):
        app.iterate()
    payload = app.serialize_state()
    x_ref = app.x.copy()
    for _ in range(overshoot):
        if not app.converged:
            app.iterate()
    app.restore_state(payload)
    np.testing.assert_array_equal(app.x, x_ref)
    assert app.iteration_count == warmup
