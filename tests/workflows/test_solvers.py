"""Unit tests shared across the five iterative solvers."""

import numpy as np
import pytest

from repro.workflows import (
    ConjugateGradientSolver,
    GMRESSolver,
    GaussSeidelSolver,
    JacobiSolver,
    SORSolver,
    convection_diffusion_2d,
    manufactured_rhs,
    optimal_omega_poisson_2d,
    poisson_2d,
)


@pytest.fixture(scope="module")
def spd_system():
    A = poisson_2d(12)
    b, x_star = manufactured_rhs(A, rng=0)
    return A, b, x_star


SOLVERS = [
    (JacobiSolver, {}),
    (GaussSeidelSolver, {}),
    (SORSolver, {"omega": 1.5}),
    (ConjugateGradientSolver, {}),
    (GMRESSolver, {"restart": 15}),
]


@pytest.mark.parametrize("cls,kwargs", SOLVERS, ids=lambda v: getattr(v, "__name__", ""))
class TestConvergence:
    def test_converges_to_true_solution(self, spd_system, cls, kwargs):
        A, b, x_star = spd_system
        solver = cls(A, b, tolerance=1e-9, **kwargs)
        solver.solve_to_convergence(20_000)
        err = np.linalg.norm(solver.x - x_star) / np.linalg.norm(x_star)
        assert err < 1e-6

    def test_residual_reported_matches_recomputed(self, spd_system, cls, kwargs):
        A, b, _ = spd_system
        solver = cls(A, b, **kwargs)
        for _ in range(3):
            solver.iterate()
        recomputed = np.linalg.norm(b - A @ solver.x) / np.linalg.norm(b)
        assert solver.residual == pytest.approx(recomputed, rel=1e-12)

    def test_iteration_count_increments(self, spd_system, cls, kwargs):
        A, b, _ = spd_system
        solver = cls(A, b, **kwargs)
        assert solver.iteration_count == 0
        solver.iterate()
        solver.iterate()
        assert solver.iteration_count == 2

    def test_checkpoint_roundtrip_bit_exact(self, spd_system, cls, kwargs):
        A, b, _ = spd_system
        solver = cls(A, b, **kwargs)
        for _ in range(4):
            solver.iterate()
        snapshot = solver.serialize_state()
        x_at_4 = solver.x.copy()
        trajectory = [solver.iterate() for _ in range(3)]
        solver.restore_state(snapshot)
        np.testing.assert_array_equal(solver.x, x_at_4)
        assert solver.iteration_count == 4
        # The resumed trajectory must replay exactly (state is complete).
        replay = [solver.iterate() for _ in range(3)]
        np.testing.assert_allclose(replay, trajectory, rtol=1e-12)

    def test_work_per_iteration_positive(self, spd_system, cls, kwargs):
        A, b, _ = spd_system
        solver = cls(A, b, **kwargs)
        assert solver.work_per_iteration > 0


class TestJacobiSpecifics:
    def test_rejects_zero_diagonal(self):
        import scipy.sparse as sp

        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            JacobiSolver(A, np.ones(2))

    def test_matches_manual_sweep(self):
        A = poisson_2d(3)
        b = np.arange(9, dtype=float)
        solver = JacobiSolver(A, b)
        solver.iterate()
        dense = A.toarray()
        D = np.diag(dense.diagonal())
        expected = np.linalg.solve(D, b - (dense - D) @ np.zeros(9))
        np.testing.assert_allclose(solver.x, expected, rtol=1e-12)


class TestGaussSeidelSpecifics:
    def test_faster_than_jacobi(self, spd_system):
        A, b, _ = spd_system
        jac = JacobiSolver(A, b, tolerance=1e-6)
        gs = GaussSeidelSolver(A, b, tolerance=1e-6)
        assert gs.solve_to_convergence(50_000) < jac.solve_to_convergence(50_000)

    def test_matches_manual_sweep(self):
        A = poisson_2d(3)
        b = np.arange(9, dtype=float)
        solver = GaussSeidelSolver(A, b)
        solver.iterate()
        dense = A.toarray()
        L = np.tril(dense)
        U = np.triu(dense, k=1)
        expected = np.linalg.solve(L, b - U @ np.zeros(9))
        np.testing.assert_allclose(solver.x, expected, rtol=1e-12)


class TestSORSpecifics:
    def test_omega_one_equals_gauss_seidel(self, spd_system):
        A, b, _ = spd_system
        sor = SORSolver(A, b, omega=1.0 + 1e-12)
        gs = GaussSeidelSolver(A, b)
        for _ in range(3):
            sor.iterate()
            gs.iterate()
        np.testing.assert_allclose(sor.x, gs.x, rtol=1e-6)

    def test_optimal_omega_accelerates(self):
        n = 16
        A = poisson_2d(n)
        b, _ = manufactured_rhs(A, rng=1)
        plain = SORSolver(A, b, omega=1.0 + 1e-12, tolerance=1e-8)
        tuned = SORSolver(A, b, omega=optimal_omega_poisson_2d(n), tolerance=1e-8)
        assert tuned.solve_to_convergence(50_000) < plain.solve_to_convergence(50_000)

    def test_rejects_omega_out_of_range(self):
        A = poisson_2d(3)
        with pytest.raises(ValueError):
            SORSolver(A, np.ones(9), omega=2.0)

    def test_optimal_omega_formula(self):
        import math

        assert optimal_omega_poisson_2d(10) == pytest.approx(
            2.0 / (1.0 + math.sin(math.pi / 11.0))
        )


class TestCGSpecifics:
    def test_converges_in_at_most_n_iterations(self):
        A = poisson_2d(4)  # 16 unknowns
        b, _ = manufactured_rhs(A, rng=2)
        cg = ConjugateGradientSolver(A, b, tolerance=1e-10)
        assert cg.solve_to_convergence(100) <= 16 + 2

    def test_breakdown_on_indefinite_matrix(self):
        import scipy.sparse as sp

        A = sp.csr_matrix(np.diag([1.0, -1.0, 2.0]))
        cg = ConjugateGradientSolver(A, np.ones(3))
        with pytest.raises(RuntimeError, match="SPD"):
            for _ in range(5):
                cg.iterate()


class TestGMRESSpecifics:
    def test_handles_nonsymmetric(self):
        A = convection_diffusion_2d(10, peclet=30.0)
        b, x_star = manufactured_rhs(A, rng=3)
        g = GMRESSolver(A, b, restart=25, tolerance=1e-9)
        g.solve_to_convergence(200)
        assert np.linalg.norm(g.x - x_star) / np.linalg.norm(x_star) < 1e-6

    def test_residual_nonincreasing_within_cycles(self):
        A = convection_diffusion_2d(8)
        b, _ = manufactured_rhs(A, rng=4)
        g = GMRESSolver(A, b, restart=10)
        res = [g.residual]
        for _ in range(5):
            res.append(g.iterate())
        assert all(r1 <= r0 + 1e-12 for r0, r1 in zip(res, res[1:]))

    def test_larger_restart_fewer_cycles(self):
        A = convection_diffusion_2d(10)
        b, _ = manufactured_rhs(A, rng=5)
        small = GMRESSolver(A, b, restart=5, tolerance=1e-8)
        large = GMRESSolver(A, b, restart=40, tolerance=1e-8)
        assert large.solve_to_convergence(500) <= small.solve_to_convergence(500)


class TestValidation:
    def test_rejects_nonsquare(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="square"):
            JacobiSolver(sp.csr_matrix(np.ones((2, 3))), np.ones(2))

    def test_rejects_wrong_rhs_size(self):
        with pytest.raises(ValueError, match="size"):
            JacobiSolver(poisson_2d(3), np.ones(5))

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            JacobiSolver(poisson_2d(3), np.ones(9), tolerance=0.0)

    def test_solve_to_convergence_raises_on_stall(self):
        A = poisson_2d(8)
        b, _ = manufactured_rhs(A, rng=6)
        jac = JacobiSolver(A, b, tolerance=1e-12)
        with pytest.raises(RuntimeError, match="did not converge"):
            jac.solve_to_convergence(max_iterations=5)
