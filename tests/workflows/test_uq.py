"""Unit tests for the UQ workload."""

import math

import numpy as np
import pytest

from repro.distributions import Normal, Uniform
from repro.workflows import UncertaintyQuantification


def quadratic(theta: np.ndarray) -> np.ndarray:
    return theta**2


@pytest.fixture
def app():
    return UncertaintyQuantification(
        quadratic, Normal(0.0, 1.0), batch_size=2000, tolerance=5e-3, rng=7
    )


class TestEstimation:
    def test_estimate_converges_to_truth(self, app):
        # E[theta^2] = 1 for theta ~ N(0,1).
        while not app.converged and app.iteration_count < 500:
            app.iterate()
        assert app.converged
        assert app.estimate == pytest.approx(1.0, abs=0.05)

    def test_standard_error_decreases(self, app):
        app.iterate()
        se1 = app.standard_error
        for _ in range(3):
            app.iterate()
        assert app.standard_error < se1

    def test_residual_is_standard_error(self, app):
        app.iterate()
        assert app.residual == app.standard_error

    def test_no_data_state(self, app):
        assert math.isnan(app.estimate)
        assert math.isinf(app.standard_error)
        assert not app.converged

    def test_uniform_parameter_law(self):
        # E[theta] for theta ~ U(0, 2) is 1.
        app = UncertaintyQuantification(
            lambda t: t, Uniform(0.0, 2.0), batch_size=5000, tolerance=5e-3, rng=1
        )
        for _ in range(20):
            app.iterate()
        assert app.estimate == pytest.approx(1.0, abs=0.02)

    def test_model_shape_validated(self):
        app = UncertaintyQuantification(
            lambda t: np.zeros(3), Normal(0.0, 1.0), batch_size=10, rng=0
        )
        with pytest.raises(ValueError, match="one response per sample"):
            app.iterate()


class TestCheckpointing:
    def test_roundtrip_resumes_identically(self, app):
        for _ in range(5):
            app.iterate()
        snap = app.serialize_state()
        est5, se5 = app.estimate, app.standard_error
        for _ in range(3):
            app.iterate()
        app.restore_state(snap)
        assert app.iteration_count == 5
        assert app.estimate == est5
        assert app.standard_error == se5

    def test_replay_after_restore_is_deterministic(self, app):
        for _ in range(4):
            app.iterate()
        snap = app.serialize_state()
        app.iterate()
        est_after_5 = app.estimate
        app.restore_state(snap)
        app.iterate()
        # Same seed + same iteration index = same batch = same estimate.
        assert app.estimate == est_after_5

    def test_payload_is_small(self, app):
        app.iterate()
        # Running sums only: far below the batch's data volume.
        assert app.state_size_bytes < 2000

    def test_work_per_iteration_scales_with_batch(self):
        small = UncertaintyQuantification(quadratic, Normal(0.0, 1.0), batch_size=100, rng=0)
        large = UncertaintyQuantification(quadratic, Normal(0.0, 1.0), batch_size=1000, rng=0)
        assert large.work_per_iteration == pytest.approx(10 * small.work_per_iteration)


class TestAsWorkflowTasks:
    def test_instrumented_uq_run(self):
        from repro.distributions import LogNormal
        from repro.workflows import MachineModel, run_instrumented

        app = UncertaintyQuantification(
            quadratic, Normal(0.0, 1.0), batch_size=3000, tolerance=8e-3, rng=2
        )
        machine = MachineModel(1e6, noise_law=LogNormal.from_moments(1.0, 0.1))
        trace = run_instrumented(app, machine, rng=3, max_iterations=1000)
        assert trace.converged
        assert len(trace.durations) == app.iteration_count
