"""Unit tests for the coupled-workflow subsystem (graph, components,
coordinator, runner) and the chain/DAG equivalence."""

import numpy as np
import pytest

from repro.distributions import MaxOf, Uniform
from repro.runtime import (
    DurableCheckpointStore,
    InMemoryCheckpointStore,
    NoCheckpointError,
)
from repro.workflows import (
    BoundaryCoupledDiffusion,
    Channel,
    CoupledComponent,
    CoupledReservationRunner,
    LinearWorkflow,
    SnapshotCoordinator,
    WorkflowGraph,
    WorkflowTask,
    run_coupled_campaign,
)
from repro.workflows.coupled import (
    DurableCutLog,
    InMemoryCutLog,
    WorkflowManifest,
    build_chain_graph,
    is_simple_path,
)

TASK_LAW = Uniform(0.08, 0.12)
CKPT_LAW = Uniform(0.3, 0.5)


def make_apps(names=("a", "b", "c"), tolerance=1e-5):
    return {n: BoundaryCoupledDiffusion(8, tolerance=tolerance) for n in names}


def make_graph(names=("a", "b", "c"), *, seed=7, cost=0.01, jitter=0.5,
               tolerance=1e-5):
    apps = make_apps(names, tolerance=tolerance)
    comps = [CoupledComponent(n, apps[n], TASK_LAW, CKPT_LAW) for n in names]
    chans = [
        Channel(prev, nxt, cost=cost, jitter=jitter)
        for prev, nxt in zip(names, names[1:])
    ]
    return WorkflowGraph(comps, chans, seed=seed)


def run_uninterrupted(graph):
    """Reference trajectory: the pure macro-iteration loop."""
    i = 0
    while not graph.converged:
        graph.exchange(i)
        for name in graph.names:
            app = graph.components[name].app
            if not app.converged:
                app.iterate()
        i += 1
    return i


class TestGraphValidation:
    def test_needs_components(self):
        with pytest.raises(ValueError, match="at least one"):
            WorkflowGraph([])

    def test_duplicate_names_rejected(self):
        apps = make_apps(("a", "b"))
        comps = [CoupledComponent("a", apps[n], TASK_LAW, CKPT_LAW) for n in apps]
        with pytest.raises(ValueError, match="duplicate"):
            WorkflowGraph(comps)

    def test_unknown_channel_endpoint_rejected(self):
        apps = make_apps(("a",))
        comps = [CoupledComponent("a", apps["a"], TASK_LAW, CKPT_LAW)]
        with pytest.raises(ValueError, match="unknown component"):
            WorkflowGraph(comps, [Channel("a", "ghost")])

    def test_cycle_rejected(self):
        apps = make_apps(("a", "b"))
        comps = [CoupledComponent(n, apps[n], TASK_LAW, CKPT_LAW) for n in apps]
        with pytest.raises(ValueError, match="cycle"):
            WorkflowGraph(comps, [Channel("a", "b"), Channel("b", "a")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Channel("a", "a")

    def test_duplicate_port_rejected(self):
        apps = make_apps(("a", "b", "c"))
        comps = [CoupledComponent(n, apps[n], TASK_LAW, CKPT_LAW) for n in apps]
        with pytest.raises(ValueError, match="duplicate port"):
            WorkflowGraph(
                comps,
                [Channel("a", "c", port="in"), Channel("b", "c", port="in")],
            )

    def test_topological_order_is_deterministic(self):
        g = make_graph(("z", "m", "a"))
        assert g.names == ["z", "m", "a"]  # chain order, not lexical

    def test_negative_law_rejected(self):
        apps = make_apps(("a",))
        with pytest.raises(ValueError, match=r"\[0, inf\)"):
            CoupledComponent("a", apps["a"], Uniform(-1.0, 1.0), CKPT_LAW)


class TestAggregateLaws:
    def test_cut_law_is_max_of_members(self):
        g = make_graph()
        law = g.cut_checkpoint_law()
        assert isinstance(law, MaxOf)
        assert law.lower == pytest.approx(0.3)
        assert law.upper == pytest.approx(0.5)
        assert law.mean() > CKPT_LAW.mean()

    def test_macro_task_law_prices_the_slowest(self):
        g = make_graph()
        assert g.macro_task_law().mean() > TASK_LAW.mean()


class TestExchange:
    def test_exchange_moves_boundary_values(self):
        g = make_graph(("a", "b"))
        g.components["a"].app.x[-1] = 3.5
        report = g.exchange(0)
        assert dict(report.messages)["a->b"] == pytest.approx(3.5)
        assert g.components["b"].app._inflow["a->b"] == pytest.approx(3.5)

    def test_exchange_cost_is_deterministic_per_iteration(self):
        g = make_graph()
        costs = [g.exchange_cost(i) for i in range(5)]
        assert costs == [g.exchange_cost(i) for i in range(5)]
        assert len(set(costs)) > 1  # jitter actually varies by iteration
        assert g.exchange(3).cost == pytest.approx(g.exchange_cost(3))

    def test_exchange_replays_identically_after_rollback(self):
        g1, g2 = make_graph(seed=11), make_graph(seed=11)
        for i in range(4):
            g1.exchange(i)
            g2.exchange(i)
            for g in (g1, g2):
                for name in g.names:
                    g.components[name].app.iterate()
        assert g1.exchange(4).messages == g2.exchange(4).messages

    def test_inflow_is_part_of_the_checkpoint(self):
        app = BoundaryCoupledDiffusion(8)
        app.receive("in", 2.25)
        app.iterate()
        payload = app.serialize_state()
        other = BoundaryCoupledDiffusion(8)
        other.restore_state(payload)
        assert other._inflow == {"in": 2.25}
        np.testing.assert_array_equal(other.x, app.x)
        assert other.residual == pytest.approx(app.residual)

    def test_received_inflow_changes_the_solution(self):
        strong, weak = BoundaryCoupledDiffusion(8), BoundaryCoupledDiffusion(8)
        strong.receive("in", 10.0)
        for _ in range(50):
            strong.iterate()
            weak.iterate()
        assert not np.allclose(strong.x, weak.x)


class TestChainEquivalence:
    """Satellite: a linear chain is the degenerate single-path graph."""

    def make_chain(self):
        return LinearWorkflow(
            [
                WorkflowTask("s1", Uniform(1.0, 2.0), Uniform(0.2, 0.4)),
                WorkflowTask("s2", Uniform(2.0, 3.0), Uniform(0.1, 0.3)),
                WorkflowTask("s3", Uniform(0.5, 1.5), Uniform(0.3, 0.5)),
            ]
        )

    def test_chain_topology_is_the_shared_builder(self):
        chain = self.make_chain()
        expected = build_chain_graph(["s1", "s2", "s3"])
        assert set(chain.graph.edges) == set(expected.edges)
        assert set(chain.graph.nodes) == set(expected.nodes)

    def test_from_chain_round_trips_through_as_chain(self):
        chain = self.make_chain()
        apps = make_apps(("s1", "s2", "s3"))
        graph = WorkflowGraph.from_chain(chain, apps)
        assert is_simple_path(graph.graph)
        back = graph.as_chain()
        assert [t.name for t in back.tasks] == [t.name for t in chain.tasks]
        for orig, rt in zip(chain.tasks, back.tasks):
            assert rt.duration_law.spec() == orig.duration_law.spec()
            assert rt.checkpoint_law.spec() == orig.checkpoint_law.spec()

    def test_decisions_identical_through_the_round_trip(self):
        """Differential test: the refactored chain and the round-tripped
        chain make the same should_checkpoint decision everywhere."""
        chain = self.make_chain()
        apps = make_apps(("s1", "s2", "s3"))
        round_tripped = WorkflowGraph.from_chain(chain, apps).as_chain()
        for index in range(3):
            for work in (0.0, 1.0, 4.0):
                for budget in (0.5, 2.0, 8.0):
                    assert chain.should_checkpoint(
                        index, work, budget
                    ) == round_tripped.should_checkpoint(index, work, budget)
                    assert chain.expected_if_checkpoint(
                        index, work, budget
                    ) == pytest.approx(
                        round_tripped.expected_if_checkpoint(index, work, budget)
                    )

    def test_golden_chain_decisions_unchanged(self):
        """Pre-refactor golden values: the shared topology builder must
        not change any chain behaviour."""
        chain = self.make_chain()
        assert chain.should_checkpoint(2, 1.0, 5.0) is True  # last stage
        assert len(chain) == 3
        assert chain.task_at(1).name == "s2"
        assert chain.has_next(1) and not chain.has_next(2)
        # the shared builder rejects topologies that are not one path
        with pytest.raises(ValueError, match="not a chain"):
            build_chain_graph(["a", "b", "a"])  # duplicate collapses to a cycle
        # duplicate names are still rejected (collapse would branch)
        with pytest.raises(ValueError, match="duplicate"):
            LinearWorkflow(
                [
                    WorkflowTask("a", TASK_LAW, CKPT_LAW),
                    WorkflowTask("a", TASK_LAW, CKPT_LAW),
                ]
            )

    def test_cyclic_chain_keeps_working_and_has_no_dag_form(self):
        chain = LinearWorkflow.iid(TASK_LAW, CKPT_LAW)
        assert chain.task_at(7).name == "task"
        with pytest.raises(ValueError, match="cyclic"):
            WorkflowGraph.from_chain(chain, make_apps(("task",)))

    def test_as_chain_rejects_non_path(self):
        apps = make_apps(("a", "b", "c"))
        comps = [CoupledComponent(n, apps[n], TASK_LAW, CKPT_LAW) for n in apps]
        fan_out = WorkflowGraph(comps, [Channel("a", "b"), Channel("a", "c")])
        with pytest.raises(ValueError, match="simple path"):
            fan_out.as_chain()


@pytest.fixture(params=["memory", "durable"])
def make_coordinator(request, tmp_path):
    """Coordinator factory parametrized over both storage layouts."""
    counter = [0]

    def factory(names, keep=8):
        counter[0] += 1
        if request.param == "memory":
            stores = {n: InMemoryCheckpointStore(keep=keep) for n in names}
            return SnapshotCoordinator(stores, InMemoryCutLog())
        root = tmp_path / f"coord{counter[0]}"
        stores = {
            n: DurableCheckpointStore(str(root / n), keep=keep) for n in names
        }
        return SnapshotCoordinator(
            stores, DurableCutLog(str(root / "cuts"), keep=keep)
        )

    return factory


class TestCoordinator:
    def test_commit_then_recover_round_trips(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        for _ in range(3):
            for app in apps.values():
                app.iterate()
        manifest = coord.commit_cut(apps, 3)
        assert manifest.cut == 1
        assert set(manifest.members) == set(apps)
        states = {n: a.serialize_state() for n, a in apps.items()}
        for app in apps.values():
            app.iterate()
        recovered = coord.recover(apps)
        assert recovered.cut == 1
        assert {n: a.serialize_state() for n, a in apps.items()} == states

    def test_recover_empty_raises(self, make_coordinator):
        apps = make_apps()
        with pytest.raises(NoCheckpointError, match="no consistent cut"):
            make_coordinator(apps).recover(apps)

    def test_torn_cut_never_referenced(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        coord.commit_cut(apps, 0)
        for app in apps.values():
            app.iterate()
        coord.write_torn_cut(apps)  # all member snapshots torn, no manifest
        recovered = coord.recover(apps)
        assert recovered.cut == 1
        assert all(a.iteration_count == 0 for a in apps.values())

    def test_partially_durable_cut_never_referenced(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        coord.commit_cut(apps, 0)
        for app in apps.values():
            app.iterate()
        # Crash after one member snapshot completed: orphan generation,
        # no manifest — must recover the previous cut.
        coord.write_torn_cut(apps, durable_members=1)
        recovered = coord.recover(apps)
        assert recovered.cut == 1
        assert all(a.iteration_count == 0 for a in apps.values())

    def test_cut_missing_member_generation_quarantined(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        coord.commit_cut(apps, 0)
        for app in apps.values():
            app.iterate()
        manifest = coord.commit_cut(apps, 1)
        # Damage exactly one member generation of the newest cut.
        name = sorted(manifest.members)[0]
        store = coord.stores[name]
        if isinstance(store, InMemoryCheckpointStore):
            store.corrupt_generation(manifest.members[name])
        else:
            path = store._gen_path(manifest.members[name])
            with open(path, "r+b") as fh:
                fh.seek(30)
                byte = fh.read(1)
                fh.seek(30)
                fh.write(bytes([byte[0] ^ 0xFF]))
        recovered = coord.recover(apps)
        assert recovered.cut == 1  # fell back to the previous cut
        assert coord.cut_log.quarantined == 1
        assert all(a.iteration_count == 0 for a in apps.values())
        # The quarantined cut is never referenced again.
        assert [m.cut for m in coord.cut_log.manifests()] == [1]

    def test_validate_all_before_restore_any(self, make_coordinator):
        """A torn cut must not leave the workflow half-restored."""
        apps = make_apps()
        coord = make_coordinator(apps)
        coord.commit_cut(apps, 0)
        states = {n: a.serialize_state() for n, a in apps.items()}
        for app in apps.values():
            app.iterate()
        live = {n: a.serialize_state() for n, a in apps.items()}
        manifest = coord.commit_cut(apps, 1)
        # Corrupt the member that sorts LAST, so a naive restore-as-you-
        # validate would already have mutated the earlier components.
        name = sorted(manifest.members)[-1]
        store = coord.stores[name]
        if isinstance(store, InMemoryCheckpointStore):
            store.corrupt_generation(manifest.members[name])
        else:
            path = store._gen_path(manifest.members[name])
            with open(path, "r+b") as fh:
                fh.seek(30)
                byte = fh.read(1)
                fh.seek(30)
                fh.write(bytes([byte[0] ^ 0xFF]))
        assert {n: a.serialize_state() for n, a in apps.items()} == live
        recovered = coord.recover(apps)
        assert recovered.cut == 1
        assert {n: a.serialize_state() for n, a in apps.items()} == states

    def test_cut_numbers_never_reused_after_quarantine(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        coord.commit_cut(apps, 0)
        coord.cut_log.quarantine(1, "test")
        manifest = coord.commit_cut(apps, 1)
        assert manifest.cut == 2  # number 1 is retired, not recycled

    def test_component_mismatch_rejected(self, make_coordinator):
        apps = make_apps()
        coord = make_coordinator(apps)
        with pytest.raises(ValueError, match="component mismatch"):
            coord.commit_cut({"a": apps["a"]}, 0)

    def test_manifest_from_foreign_topology_quarantined(self, make_coordinator):
        apps = make_apps(("a", "b"))
        coord = make_coordinator(("a", "b", "ghost"))
        coord.commit_cut({**apps, "ghost": BoundaryCoupledDiffusion(8)}, 0)
        smaller = SnapshotCoordinator(
            {n: coord.stores[n] for n in ("a", "b")}, coord.cut_log
        )
        with pytest.raises(NoCheckpointError):
            smaller.recover(apps)
        assert coord.cut_log.quarantined == 1


class TestManifest:
    def test_round_trips_through_dict(self):
        manifest = WorkflowManifest(
            cut=3, iteration=40, members={"a": 5, "b": 6}, residuals={"a": 0.1, "b": 0.2}
        )
        assert WorkflowManifest.from_dict(manifest.to_dict()) == manifest

    def test_validation(self):
        with pytest.raises(ValueError, match="cut number"):
            WorkflowManifest(cut=0, iteration=0, members={"a": 1}, residuals={})
        with pytest.raises(ValueError, match="at least one"):
            WorkflowManifest(cut=1, iteration=0, members={}, residuals={})


class TestCoupledRunner:
    def build(self, make_coordinator, *, seed=3):
        graph = make_graph()
        coord = make_coordinator(graph.names)
        runner = CoupledReservationRunner(graph, coord, rng=seed)
        return graph, coord, runner

    def test_campaign_converges_and_saves(self, make_coordinator):
        graph, coord, runner = self.build(make_coordinator)
        campaign = run_coupled_campaign(runner, 8.0, max_reservations=100)
        assert campaign.converged and campaign.solution_saved
        assert campaign.total_work_saved > 0.0
        assert graph.converged
        assert coord.cut_log.latest().iteration == runner.macro_iteration

    def test_campaign_matches_uninterrupted_run_bitwise(self, make_coordinator):
        graph, _, runner = self.build(make_coordinator)
        run_coupled_campaign(runner, 8.0, max_reservations=100)
        reference = make_graph()
        iters = run_uninterrupted(reference)
        assert runner.macro_iteration == iters
        for name in graph.names:
            assert (
                graph.components[name].app.serialize_state()
                == reference.components[name].app.serialize_state()
            )

    def test_resume_restores_macro_iteration(self, make_coordinator):
        graph, coord, runner = self.build(make_coordinator)
        runner.run_reservation(4.0)
        at = runner.macro_iteration
        assert at > 0
        # Clobber the live state; resume must land on the newest cut.
        for name in graph.names:
            graph.components[name].app.iterate()
        manifest = runner.resume()
        assert manifest is not None
        assert runner.macro_iteration == manifest.iteration <= at

    def test_deadline_gate_prevents_hopeless_cuts(self, make_coordinator):
        graph = make_graph()
        coord = make_coordinator(graph.names)
        runner = CoupledReservationRunner(graph, coord, rng=3)
        # R barely above the pessimistic cut bound: every boundary's
        # gate fires before the budget can fit macro-iteration + cut.
        outcome = runner.run_reservation(0.62)
        assert outcome.cuts_committed + outcome.cuts_torn <= 1
        assert outcome.time_used <= 0.62

    def test_mismatched_stores_rejected(self, make_coordinator):
        graph = make_graph()
        coord = make_coordinator(("x", "y"))
        with pytest.raises(ValueError, match="do not match"):
            CoupledReservationRunner(graph, coord)

    def test_scratch_restart_when_no_cut_survives(self, make_coordinator):
        graph, coord, runner = self.build(make_coordinator)
        runner.run_reservation(4.0)
        # Quarantine every cut: resume must fall back to pristine state.
        for manifest in list(coord.cut_log.manifests()):
            coord.cut_log.quarantine(manifest.cut, "test")
        outcome_manifest = runner.resume()
        assert outcome_manifest is None
        assert runner.macro_iteration == 0
        assert all(
            graph.components[n].app.iteration_count == 0 for n in graph.names
        )

    def test_workflow_metrics_registered(self, make_coordinator):
        from repro.obs.metrics import global_registry

        before = global_registry().counter("workflow.cuts_committed")
        graph, _, runner = self.build(make_coordinator)
        runner.run_reservation(4.0)
        assert global_registry().counter("workflow.cuts_committed") > before

    def test_tracer_spans_emitted(self, make_coordinator):
        from repro.obs import Tracer

        tracer = Tracer(capacity=4096)
        graph = make_graph()
        coord = make_coordinator(graph.names)
        coord.tracer = tracer
        runner = CoupledReservationRunner(graph, coord, rng=3, tracer=tracer)
        runner.run_reservation(4.0)
        names = {s.name for s in tracer.spans()}
        assert {"workflow.cut", "workflow.exchange"} <= names
        for name in graph.names:
            graph.components[name].app.iterate()
        runner.resume()
        assert "workflow.recover" in {s.name for s in tracer.spans()}
