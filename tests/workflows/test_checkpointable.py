"""Unit tests for the checkpoint store and state packing."""

import numpy as np
import pytest

from repro.workflows import (
    ConjugateGradientSolver,
    InMemoryCheckpointStore,
    JacobiSolver,
    manufactured_rhs,
    poisson_2d,
)


@pytest.fixture
def app():
    A = poisson_2d(8)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b)


class TestStore:
    def test_empty_store_cannot_recover(self, app):
        store = InMemoryCheckpointStore()
        assert not store.has_checkpoint
        with pytest.raises(RuntimeError, match="no checkpoint"):
            store.recover(app)

    def test_write_then_recover_rolls_back(self, app):
        store = InMemoryCheckpointStore()
        for _ in range(3):
            app.iterate()
        store.write(app)
        x3 = app.x.copy()
        for _ in range(4):
            app.iterate()
        store.recover(app)
        np.testing.assert_array_equal(app.x, x3)
        assert app.iteration_count == 3

    def test_counters(self, app):
        store = InMemoryCheckpointStore()
        store.write(app)
        store.write(app)
        store.recover(app)
        assert store.writes == 2
        assert store.recoveries == 1

    def test_checkpointed_iteration_tracked(self, app):
        store = InMemoryCheckpointStore()
        app.iterate()
        app.iterate()
        store.write(app)
        assert store.checkpointed_iteration == 2

    def test_payload_size_reported(self, app):
        store = InMemoryCheckpointStore()
        record = store.write(app)
        assert record.payload_size == app.state_size_bytes
        assert record.generation == 1

    def test_latest_snapshot_wins(self, app):
        store = InMemoryCheckpointStore()
        app.iterate()
        store.write(app)
        app.iterate()
        store.write(app)
        app.iterate()
        store.recover(app)
        assert app.iteration_count == 2


class TestStatePacking:
    def test_pack_unpack_roundtrip(self):
        from repro.workflows.checkpointable import IterativeApplication

        arrays = {
            "a": np.arange(10, dtype=float),
            "b": np.array([[1, 2], [3, 4]], dtype=np.int64),
        }
        payload = IterativeApplication._pack_arrays(**arrays)
        out = IterativeApplication._unpack_arrays(payload)
        assert set(out) == {"a", "b"}
        np.testing.assert_array_equal(out["a"], arrays["a"])
        np.testing.assert_array_equal(out["b"], arrays["b"])
        assert out["b"].dtype == np.int64

    def test_cg_payload_larger_than_jacobi(self):
        # CG checkpoints its recurrence vectors too.
        A = poisson_2d(8)
        b, _ = manufactured_rhs(A, rng=1)
        jac = JacobiSolver(A, b)
        cg = ConjugateGradientSolver(A, b)
        assert cg.state_size_bytes > jac.state_size_bytes
