"""Unit tests for non-IID linear workflow chains."""

import networkx as nx
import pytest

from repro.core import DynamicStrategy
from repro.distributions import Gamma, Normal, truncate
from repro.workflows import LinearWorkflow, WorkflowTask


@pytest.fixture
def three_stage():
    return LinearWorkflow(
        [
            WorkflowTask("load", Gamma(2.0, 0.5), truncate(Normal(1.0, 0.2), 0.0)),
            WorkflowTask("compute", Gamma(4.0, 0.5), truncate(Normal(3.0, 0.4), 0.0)),
            WorkflowTask("reduce", Gamma(1.0, 0.5), truncate(Normal(0.5, 0.1), 0.0)),
        ]
    )


class TestConstruction:
    def test_valid_chain(self, three_stage):
        assert len(three_stage) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            LinearWorkflow([])

    def test_rejects_duplicate_names(self):
        t = WorkflowTask("t", Gamma(1.0, 1.0), truncate(Normal(1.0, 0.1), 0.0))
        with pytest.raises(ValueError, match="duplicate"):
            LinearWorkflow([t, t])

    def test_rejects_negative_duration_support(self):
        with pytest.raises(ValueError, match=r"\[0, inf\)"):
            WorkflowTask("bad", Normal(1.0, 0.5), truncate(Normal(1.0, 0.1), 0.0))

    def test_graph_is_path(self, three_stage):
        g = three_stage.graph
        assert nx.is_directed_acyclic_graph(g)
        assert list(nx.topological_sort(g)) == ["load", "compute", "reduce"]

    def test_cyclic_graph_has_back_edge(self):
        wf = LinearWorkflow(
            [
                WorkflowTask("a", Gamma(1.0, 1.0), truncate(Normal(1.0, 0.1), 0.0)),
                WorkflowTask("b", Gamma(1.0, 1.0), truncate(Normal(1.0, 0.1), 0.0)),
            ],
            cyclic=True,
        )
        assert wf.graph.has_edge("b", "a")


class TestIndexing:
    def test_acyclic_bounds(self, three_stage):
        assert three_stage.task_at(2).name == "reduce"
        with pytest.raises(IndexError):
            three_stage.task_at(3)

    def test_cyclic_wraps(self):
        wf = LinearWorkflow.iid(Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))
        assert wf.task_at(0).name == wf.task_at(17).name

    def test_has_next(self, three_stage):
        assert three_stage.has_next(0)
        assert three_stage.has_next(1)
        assert not three_stage.has_next(2)


class TestDecisions:
    def test_iid_chain_matches_dynamic_strategy(self):
        """The 1-stage cyclic chain must reproduce Section 4.3 exactly."""
        tasks = Gamma(1.0, 0.5)
        ckpt = truncate(Normal(2.0, 0.4), 0.0)
        wf = LinearWorkflow.iid(tasks, ckpt)
        dyn = DynamicStrategy(10.0, tasks, ckpt)
        w_int = dyn.crossing_point()
        for w in (2.0, 5.0, w_int - 0.3, w_int + 0.3, 8.0):
            # chain frame: budget = R - w.
            assert wf.should_checkpoint(3, w, 10.0 - w) == dyn.should_checkpoint(w)

    def test_final_stage_always_checkpoints(self, three_stage):
        assert three_stage.should_checkpoint(2, 1.0, 50.0)

    def test_cheap_next_checkpoint_encourages_continuing(self):
        """If the *next* stage has a much cheaper checkpoint, the rule
        should be more willing to continue than in the IID case."""
        expensive = truncate(Normal(5.0, 0.4), 0.0)
        cheap = truncate(Normal(0.2, 0.05), 0.0)
        tasks = Gamma(2.0, 0.5)
        wf_cheap_next = LinearWorkflow(
            [
                WorkflowTask("now", tasks, expensive),
                WorkflowTask("next", tasks, cheap),
            ]
        )
        wf_same = LinearWorkflow(
            [
                WorkflowTask("now", tasks, expensive),
                WorkflowTask("next", tasks, expensive),
            ]
        )
        w, budget = 10.0, 4.0
        cont_cheap = wf_cheap_next.expected_if_continue(0, w, budget)
        cont_same = wf_same.expected_if_continue(0, w, budget)
        assert cont_cheap > cont_same

    def test_expected_if_checkpoint_uses_current_stage_law(self, three_stage):
        # Stage 0's checkpoint (mean 1.0) succeeds more often in a 2s
        # budget than stage 1's (mean 3.0).
        e0 = three_stage.expected_if_checkpoint(0, 10.0, 2.0)
        e1 = three_stage.expected_if_checkpoint(1, 10.0, 2.0)
        assert e0 > e1
