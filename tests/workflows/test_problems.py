"""Unit tests for the sparse model problems."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.workflows import (
    convection_diffusion_2d,
    diffusion_1d,
    manufactured_rhs,
    poisson_2d,
    random_diagonally_dominant,
)


class TestPoisson2D:
    def test_shape_and_pattern(self):
        A = poisson_2d(4)
        assert A.shape == (16, 16)
        assert np.all(A.diagonal() == 4.0)

    def test_symmetric(self):
        A = poisson_2d(6)
        assert (A - A.T).nnz == 0

    def test_positive_definite(self):
        A = poisson_2d(5).toarray()
        eigs = np.linalg.eigvalsh(A)
        assert eigs.min() > 0.0

    def test_known_extreme_eigenvalues(self):
        # Eigenvalues are 4 - 2cos(i pi h) - 2cos(j pi h), h = 1/(n+1).
        n = 8
        A = poisson_2d(n).toarray()
        eigs = np.linalg.eigvalsh(A)
        h = np.pi / (n + 1)
        expected_min = 4.0 - 4.0 * np.cos(h)
        assert eigs.min() == pytest.approx(expected_min, rel=1e-10)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            poisson_2d(1)


class TestDiffusion1D:
    def test_tridiagonal(self):
        A = diffusion_1d(5)
        assert A.nnz == 5 + 2 * 4

    def test_coefficient_scales(self):
        A = diffusion_1d(5, coefficient=3.0)
        assert np.all(A.diagonal() == 6.0)


class TestRandomDiagonallyDominant:
    def test_dominance(self):
        A = random_diagonally_dominant(50, 0.1, dominance=2.0, rng=0)
        dense = np.abs(A.toarray())
        diag = dense.diagonal()
        off = dense.sum(axis=1) - diag
        assert np.all(diag > off)

    def test_jacobi_spectral_radius_bounded(self):
        A = random_diagonally_dominant(40, 0.1, dominance=2.0, rng=1)
        dense = A.toarray()
        D_inv = np.diag(1.0 / dense.diagonal())
        M = D_inv @ (dense - np.diag(dense.diagonal()))
        assert np.max(np.abs(np.linalg.eigvals(M))) < 0.51

    def test_rejects_weak_dominance(self):
        with pytest.raises(ValueError, match="exceed 1"):
            random_diagonally_dominant(10, 0.1, dominance=1.0)

    def test_reproducible(self):
        A = random_diagonally_dominant(20, 0.2, rng=5)
        B = random_diagonally_dominant(20, 0.2, rng=5)
        assert (A != B).nnz == 0


class TestConvectionDiffusion:
    def test_nonsymmetric(self):
        A = convection_diffusion_2d(6, peclet=20.0)
        assert (A - A.T).nnz > 0

    def test_shape(self):
        assert convection_diffusion_2d(5).shape == (25, 25)


class TestManufacturedRhs:
    def test_consistency(self):
        A = poisson_2d(5)
        b, x_star = manufactured_rhs(A, rng=0)
        np.testing.assert_allclose(A @ x_star, b, rtol=1e-12)

    def test_reproducible(self):
        A = poisson_2d(4)
        b1, x1 = manufactured_rhs(A, rng=3)
        b2, x2 = manufactured_rhs(A, rng=3)
        np.testing.assert_array_equal(x1, x2)
