"""Unit tests for the timing instrumentation."""

import numpy as np
import pytest

from repro.distributions import LogNormal
from repro.workflows import (
    JacobiSolver,
    MachineModel,
    manufactured_rhs,
    poisson_2d,
    run_instrumented,
)


@pytest.fixture
def app():
    A = poisson_2d(8)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b, tolerance=1e-6)


class TestMachineModel:
    def test_noiseless_duration(self, rng):
        m = MachineModel(1e9)
        assert m.duration(2e9, rng) == pytest.approx(2.0)

    def test_overhead_added(self, rng):
        m = MachineModel(1e9, overhead_seconds=0.5)
        assert m.duration(1e9, rng) == pytest.approx(1.5)

    def test_noise_multiplies(self, rng):
        noise = LogNormal.from_moments(1.0, 0.2)
        m = MachineModel(1e9, noise_law=noise)
        draws = np.array([m.duration(1e9, rng) for _ in range(5000)])
        assert draws.mean() == pytest.approx(1.0, rel=0.05)
        assert draws.std() > 0.1

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            MachineModel(0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            MachineModel(1e9, overhead_seconds=-1.0)


class TestRunInstrumented:
    def test_runs_to_convergence(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=1)
        assert trace.converged
        assert app.converged
        assert len(trace.durations) == app.iteration_count

    def test_durations_positive(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=2)
        assert np.all(trace.as_array() > 0.0)

    def test_residuals_decrease_overall(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=3)
        assert trace.residuals[-1] < trace.residuals[0]

    def test_max_iterations_respected(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=4, max_iterations=10)
        assert len(trace.durations) == 10
        assert not trace.converged

    def test_total_time(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=5, max_iterations=20)
        assert trace.total_time == pytest.approx(sum(trace.durations))

    def test_wallclock_mode(self, app):
        trace = run_instrumented(app, MachineModel(1e8), measure="wallclock", max_iterations=5)
        assert len(trace.durations) == 5
        assert all(d >= 0.0 for d in trace.durations)

    def test_rejects_bad_measure(self, app):
        with pytest.raises(ValueError, match="model"):
            run_instrumented(app, MachineModel(1e8), measure="guess")

    def test_noiseless_durations_constant(self, app):
        trace = run_instrumented(app, MachineModel(1e8), rng=6, max_iterations=10)
        arr = trace.as_array()
        np.testing.assert_allclose(arr, arr[0])

    def test_fitted_law_usable_by_strategies(self, app, rng):
        """End-to-end: instrument -> fit -> solve a static instance."""
        from repro.core import StaticStrategy
        from repro.distributions import Normal, truncate
        from repro.traces import fit_gamma

        noise = LogNormal.from_moments(1.0, 0.1)
        trace = run_instrumented(app, MachineModel(1e7, noise_law=noise), rng=rng)
        fitted = fit_gamma(trace.as_array()).distribution
        mean_task = fitted.mean()
        strat = StaticStrategy(
            40.0 * mean_task, fitted, truncate(Normal(3.0 * mean_task, 0.2), 0.0)
        )
        sol = strat.solve()
        assert sol.n_opt >= 1
