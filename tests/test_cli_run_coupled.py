"""Unit tests for the `repro run-coupled` subcommand (consistent-cut
coordinated campaigns)."""

import os

import pytest

from repro.cli import main

# Calibration: three size-8 coupled diffusion subdomains at 1e-5
# converge in ~200 macro-iterations (~22s of virtual time with
# uniform:0.08,0.12 task laws), so R=30 finishes in one booking and
# R=2 needs many — the partial-campaign tests rely on the latter.
def _args(*extra, R="30.0", reservations="30"):
    return [
        "run-coupled", "--components", "3", "--size", "8",
        "--tolerance", "1e-5", "-R", R,
        "--task-law", "uniform:0.08,0.12",
        "--checkpoint-law", "uniform:0.05,0.1",
        "--every", "20", "--reservations", reservations, "--seed", "0",
        *extra,
    ]


BASE = _args()


class TestInMemoryCoupledRun:
    def test_converges_and_reports(self, capsys):
        rc = main(BASE)
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
        assert "cut log:" in out
        assert "max residual" in out

    def test_budget_exhaustion_is_nonzero_exit(self, capsys):
        rc = main(_args(R="2.0", reservations="2"))
        out = capsys.readouterr().out
        assert rc == 1
        assert "INCOMPLETE" in out

    def test_heterogeneous_laws_one_per_component(self, capsys):
        rc = main(
            _args(
                "--task-law", "uniform:0.06,0.1",
                "--task-law", "uniform:0.1,0.14",
                "--checkpoint-law", "uniform:0.02,0.05",
                "--checkpoint-law", "uniform:0.08,0.12",
            )
        )
        assert rc == 0

    def test_wrong_law_count_is_an_error(self, capsys):
        rc = main(_args("--task-law", "uniform:0.06,0.1"))
        err = capsys.readouterr().err
        assert rc == 2
        assert "once per component" in err

    def test_advisor_policy_reports_model_expectation(self, capsys):
        rc = main(_args("--advisor"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "(model " in out


class TestDurableCoupledRun:
    def test_writes_member_stores_and_cut_log(self, tmp_path, capsys):
        store_dir = str(tmp_path / "wf")
        rc = main(BASE + ["--store-dir", store_dir])
        assert rc == 0
        for name in ("c01", "c02", "c03"):
            gens = [
                f for f in os.listdir(os.path.join(store_dir, name))
                if f.endswith(".ckpt")
            ]
            assert gens, f"no generations for {name}"
        cuts = [
            f for f in os.listdir(os.path.join(store_dir, "cuts"))
            if f.startswith("cut-") and f.endswith(".json")
        ]
        assert cuts

    def test_refuses_nonempty_store_without_resume(self, tmp_path, capsys):
        store_dir = str(tmp_path / "wf")
        assert main(BASE + ["--store-dir", store_dir]) == 0
        capsys.readouterr()
        rc = main(BASE + ["--store-dir", store_dir])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--resume" in err

    def test_resume_continues_campaign(self, tmp_path, capsys):
        store_dir = str(tmp_path / "wf")
        # Partial campaign: too little budget to converge.
        rc = main(_args(R="5.0", reservations="2") + ["--store-dir", store_dir])
        assert rc == 1
        capsys.readouterr()
        rc = main(BASE + ["--store-dir", store_dir, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed cut" in out
        assert "converged" in out


class TestCoupledFaultInjection:
    def test_fault_requires_store_dir(self, capsys):
        rc = main(BASE + ["--inject-fault", "crash"])
        assert rc == 2
        assert "--store-dir" in capsys.readouterr().err

    def test_unknown_fault_target_rejected(self, tmp_path, capsys):
        rc = main(
            BASE
            + ["--store-dir", str(tmp_path / "wf"),
               "--inject-fault", "crash", "--fault-target", "c99"]
        )
        assert rc == 2
        assert "fault-target" in capsys.readouterr().err

    @pytest.mark.parametrize("target", ["manifest", "c02"])
    def test_crash_then_resume_recovers(self, tmp_path, capsys, target):
        store_dir = str(tmp_path / "wf")
        rc = main(
            BASE
            + ["--store-dir", store_dir,
               "--inject-fault", "crash", "--fault-target", target]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulated crash" in out
        rc = main(BASE + ["--store-dir", store_dir, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out

    def test_disk_full_is_survived_in_place(self, tmp_path, capsys):
        store_dir = str(tmp_path / "wf")
        rc = main(
            BASE
            + ["--store-dir", store_dir,
               "--inject-fault", "disk-full", "--fault-target", "c01"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
