"""Kernel tables through the durable policy cache: persist, reload,
quarantine, and stale-format recompile.

The v2 policy payload embeds the dense :class:`PolicyTable`; these
tests pin the three disk outcomes the kernel refactor added:

* a table written by one process is *bit-equal* after reload by
  another (no recompile, no re-tabulation);
* corruption — torn JSON or a CRC-failing bit flip — quarantines the
  file as ``*.corrupt`` and recompiles, exactly as for v1 payloads;
* a structurally-valid pre-kernel (v1) payload is a *clean* miss:
  recompiled and overwritten in place, counted by ``stale_format``,
  never quarantined — old caches upgrade silently instead of being
  misread;
* an ``kernel="exact"`` entry found by a table-kernel cache is treated
  as a miss so the table gets built and persisted (upgrade path).
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.service import PolicyCache
from repro.service.cache import _PERSIST_FORMAT
from repro.runtime import atomic

TASK, CKPT, R = "uniform:1,3", "uniform:0.5,1.5", 10.0


def _only_file(cache_dir: str) -> str:
    names = [n for n in os.listdir(cache_dir) if n.endswith(".json")]
    assert len(names) == 1
    return os.path.join(cache_dir, names[0])


def test_table_survives_persist_reload(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    first = PolicyCache(path=cache_dir)
    compiled = first.get(R, TASK, CKPT)
    assert compiled.table is not None

    fresh = PolicyCache(path=cache_dir)
    reloaded = fresh.get(R, TASK, CKPT)
    assert fresh.disk_hits == 1 and fresh.misses == 1
    assert reloaded.table is not None
    np.testing.assert_array_equal(reloaded.table.w, compiled.table.w)
    np.testing.assert_array_equal(
        reloaded.table.e_checkpoint, compiled.table.e_checkpoint
    )
    np.testing.assert_array_equal(reloaded.table.e_continue, compiled.table.e_continue)
    assert reloaded.table.value is not None and compiled.table.value is not None
    np.testing.assert_array_equal(reloaded.table.value, compiled.table.value)
    assert reloaded.table.w_int == compiled.table.w_int
    assert reloaded.table.boundaries is not None
    assert compiled.table.boundaries is not None
    np.testing.assert_array_equal(
        reloaded.table.boundaries, compiled.table.boundaries
    )
    assert reloaded.table.checkpoint_at_zero == compiled.table.checkpoint_at_zero
    assert reloaded.w_int == compiled.w_int


def test_bit_flip_quarantines_and_recompiles(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    PolicyCache(path=cache_dir).get(R, TASK, CKPT)
    path = _only_file(cache_dir)
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    data["policy"]["table"]["w_int"] = 999.0  # CRC now fails
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh)

    fresh = PolicyCache(path=cache_dir)
    reloaded = fresh.get(R, TASK, CKPT)
    assert fresh.quarantined == 1 and fresh.disk_hits == 0
    assert os.path.exists(path + ".corrupt")
    assert reloaded.table is not None and reloaded.table.w_int != 999.0


def test_torn_write_quarantines_and_recompiles(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    PolicyCache(path=cache_dir).get(R, TASK, CKPT)
    path = _only_file(cache_dir)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{\"torn")
    fresh = PolicyCache(path=cache_dir)
    assert fresh.get(R, TASK, CKPT).table is not None
    assert os.path.exists(path + ".corrupt")


def test_pre_kernel_v1_entry_recompiles_cleanly(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    cache = PolicyCache(path=cache_dir)
    cache.get(R, TASK, CKPT)
    path = _only_file(cache_dir)
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)["policy"]
    # Rewrite as a structurally-valid pre-kernel (format 1) entry with
    # a fresh CRC envelope: not corruption, just an older generation.
    payload["format"] = 1
    del payload["table"]
    atomic.atomic_write_json(path, payload, fmt=_PERSIST_FORMAT, payload_key="policy")

    fresh = PolicyCache(path=cache_dir)
    reloaded = fresh.get(R, TASK, CKPT)
    assert fresh.stale_format == 1
    assert fresh.quarantined == 0
    assert fresh.disk_hits == 0
    assert not os.path.exists(path + ".corrupt")
    assert reloaded.table is not None  # recompiled at the current format
    with open(path, encoding="utf-8") as fh:
        assert json.load(fh)["policy"]["format"] != 1  # overwritten in place
    assert fresh.stats()["stale_format"] == 1


def test_exact_entry_upgraded_by_table_cache(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    exact_cache = PolicyCache(path=cache_dir, kernel="exact")
    exact_policy = exact_cache.get(R, TASK, CKPT)
    assert exact_policy.table is None and exact_policy.w_int is not None

    table_cache = PolicyCache(path=cache_dir, kernel="table")
    upgraded = table_cache.get(R, TASK, CKPT)
    assert table_cache.disk_hits == 0  # exact entry does not satisfy
    assert upgraded.table is not None
    assert upgraded.w_int == pytest.approx(exact_policy.w_int, abs=1e-8)

    # ...and the upgraded entry now satisfies both kernels from disk.
    assert PolicyCache(path=cache_dir, kernel="table").get(R, TASK, CKPT).table is not None


@pytest.mark.kernels
def test_non_threshold_boundaries_roundtrip(tmp_path) -> None:
    cache_dir = str(tmp_path / "policies")
    task, ckpt, r = "exponential:1.5", "poisson:3@[1,6]", 14.0
    compiled = PolicyCache(path=cache_dir).get(r, task, ckpt)
    assert compiled.table is not None and not compiled.table.is_threshold

    reloaded = PolicyCache(path=cache_dir).get(r, task, ckpt)
    assert reloaded.table is not None
    assert reloaded.table.boundaries is not None
    assert compiled.table.boundaries is not None
    np.testing.assert_array_equal(
        reloaded.table.boundaries, compiled.table.boundaries
    )
    assert not reloaded.table.is_threshold
    for w in np.linspace(0.0, r, 97):
        assert bool(reloaded.table.decide(float(w))[0]) == bool(
            compiled.table.decide(float(w))[0]
        )
