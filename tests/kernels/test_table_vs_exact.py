"""Differential oracle suite: PolicyTable vs the exact scalar path.

The table kernel is only admissible because it is *provably* the same
policy as the quadrature oracle. This module is that proof, run as a
test matrix over every law family the CLI can parse — including
truncated variants and ``max(...)`` composites — in both the task-law
and checkpoint-law positions:

* a >=1000-point work grid per configuration asserting **zero** decision
  mismatches between :meth:`PolicyTable.decide` and
  :meth:`DynamicStrategy.should_checkpoint` (queries within
  root-finding tolerance of ``W_int`` are excluded; there the sign of
  the advantage is below quadrature noise, and the tie-break test pins
  the convention at the threshold itself);
* subsampled checks that the tabulated ``E(W_C)``, ``E(W_{+1})`` and
  ``V(w)`` curves match the exact closed form / adaptive quadrature /
  optimal-stopping solver within the lattice error bound;
* hypothesis property tests drawing random laws, reservations, and
  work values.

The exhaustive matrix is marked ``kernels`` and runs as its own CI
step; when ``REPRO_KERNELS_REPORT`` names a file, each configuration
appends a JSON line recording its mismatch count so CI can upload the
report as an artifact. A small unmarked subset keeps the equivalence
pinned in tier-1.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.cli import parse_law
from repro.core import DynamicStrategy, OptimalStoppingSolver
from repro.kernels import PolicyTable, build_policy_table, tabulate_continue

#: Exclusion band around W_int where quadrature noise decides the sign.
EPSILON = 1e-6

#: (task_law, checkpoint_law, R) — one row per CLI-parseable family in
#: at least one position, plus truncations and max(...) composites.
MATRIX: tuple[tuple[str, str, float], ...] = (
    ("uniform:1,3", "uniform:0.5,1.5", 10.0),
    ("exponential:2", "exponential:1", 8.0),
    # The paper's Figure 9 instance.
    ("gamma:1,0.5", "normal:2,0.4@[0,inf]", 10.0),
    ("lognormal:0.5,0.4", "gamma:2,0.5", 12.0),
    ("weibull:1.5,2", "uniform:0.5,1", 10.0),
    ("beta:2,3", "beta:2,2", 6.0),
    ("poisson:3", "gamma:2,0.5", 12.0),
    ("gamma:2,1@[0.5,4]", "normal:1.5,0.3@[0,inf]", 10.0),
    ("exponential:1.5", "poisson:3@[1,6]", 14.0),
    ("poisson:4@[1,8]", "normal:2,0.4@[0,inf]", 12.0),
    ("max(gamma:1,0.5|exponential:2)", "normal:2,0.4@[0,inf]", 10.0),
    ("gamma:1,0.5", "max(normal:2,0.4@[0,inf]|uniform:0.5,1.5)", 10.0),
    ("deterministic:1.5", "uniform:0.5,1.5", 8.0),
)

#: Fast subset kept unmarked so tier-1 always exercises the oracle.
FAST_MATRIX: tuple[tuple[str, str, float], ...] = (
    ("gamma:1,0.5", "normal:2,0.4@[0,inf]", 10.0),
    ("uniform:1,3", "uniform:0.5,1.5", 10.0),
)

_TABLE_MEMO: dict[tuple[str, str, float], PolicyTable] = {}
_DYN_MEMO: dict[tuple[str, str, float], DynamicStrategy] = {}


def _table(task: str, ckpt: str, R: float) -> PolicyTable:
    key = (task, ckpt, R)
    table = _TABLE_MEMO.get(key)
    if table is None:
        table = _TABLE_MEMO[key] = build_policy_table(
            R, parse_law(task), parse_law(ckpt)
        )
    return table


def _dynamic(task: str, ckpt: str, R: float) -> DynamicStrategy:
    key = (task, ckpt, R)
    dyn = _DYN_MEMO.get(key)
    if dyn is None:
        dyn = _DYN_MEMO[key] = DynamicStrategy(R, parse_law(task), parse_law(ckpt))
        dyn.pin_crossing(_table(task, ckpt, R).w_int)
    return dyn


def _report(entry: dict[str, object]) -> None:
    path = os.environ.get("REPRO_KERNELS_REPORT")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def _decision_mismatches(
    table: PolicyTable, dyn: DynamicStrategy, grid: np.ndarray
) -> list[float]:
    keep = np.abs(grid - table.w_int) > EPSILON
    assert table.boundaries is not None
    for boundary in table.boundaries:
        keep &= np.abs(grid - boundary) > EPSILON
    return [
        float(w)
        for w in grid[keep]
        if bool(table.decide(float(w))[0]) != dyn.should_checkpoint(float(w))
    ]


@pytest.mark.kernels
@pytest.mark.parametrize(("task", "ckpt", "R"), MATRIX)
class TestFullMatrix:
    def test_zero_decision_mismatches_on_1000_point_grid(
        self, task: str, ckpt: str, R: float
    ) -> None:
        table = _table(task, ckpt, R)
        dyn = _dynamic(task, ckpt, R)
        grid = np.linspace(0.0, R, 1000, endpoint=False)
        mismatches = _decision_mismatches(table, dyn, grid)
        _report(
            {
                "task_law": task,
                "checkpoint_law": ckpt,
                "reservation": R,
                "grid_points": int(grid.size),
                "w_int": table.w_int,
                "mismatches": len(mismatches),
                "mismatch_points": mismatches[:16],
            }
        )
        assert mismatches == [], (
            f"{len(mismatches)} decision mismatches for "
            f"({task}, {ckpt}, R={R}); first at w={mismatches[0]}"
        )

    def test_threshold_matches_exact_crossing(
        self, task: str, ckpt: str, R: float
    ) -> None:
        table = _table(task, ckpt, R)
        dyn = DynamicStrategy(R, parse_law(task), parse_law(ckpt))
        assert table.w_int == pytest.approx(dyn.crossing_point(), abs=1e-8)

    def test_expectations_match_exact_quadrature(
        self, task: str, ckpt: str, R: float
    ) -> None:
        table = _table(task, ckpt, R)
        dyn = _dynamic(task, ckpt, R)
        probe = np.linspace(0.0, R, 19, endpoint=False)[1:]
        exact_ckpt = dyn.expected_if_checkpoint(probe)
        got_ckpt = table.e_checkpoint_at(probe)
        # E(W_C) = w * F_C(R - w) is closed form on grid nodes; between
        # nodes only linear-interpolation error separates the two,
        # bounded by h^2 * max|d^2(w F_C)/dw^2| / 8 ~ 2e-2 at R = 14.
        np.testing.assert_allclose(got_ckpt, exact_ckpt, atol=2e-2, rtol=5e-3)
        for w in probe:
            exact_cont = dyn.expected_if_continue(float(w))
            got_cont = table.e_continue_at(float(w))
            assert got_cont == pytest.approx(exact_cont, abs=2e-2, rel=5e-3), (
                f"E(W_+1) mismatch at w={w}: table {got_cont} vs exact {exact_cont}"
            )

    def test_value_matches_optimal_stopping_solver(
        self, task: str, ckpt: str, R: float
    ) -> None:
        table = _table(task, ckpt, R)
        assert table.value is not None
        solution = OptimalStoppingSolver(
            R, parse_law(task), parse_law(ckpt), grid_points=1601
        ).solve()
        # Table nodes carry the solver's values verbatim; probing off
        # the nodes compares two interpolation paths onto the same
        # 1601-point lattice, which differ by the lattice resolution.
        np.testing.assert_allclose(
            table.value,
            np.interp(table.w, solution.w_grid, solution.value),
            atol=1e-12,
        )
        # Off the nodes, the coarser adaptive grid linearly interpolates
        # a value function that kinks at every task-completion image
        # (and steps for discrete task laws), so the bound is the grid
        # resolution, not quadrature accuracy.
        probe = np.linspace(0.0, R, 13)
        expected = np.interp(probe, solution.w_grid, solution.value)
        np.testing.assert_allclose(table.value_at(probe), expected, rtol=2e-2, atol=5e-2)


@pytest.mark.parametrize(("task", "ckpt", "R"), FAST_MATRIX)
def test_fast_subset_zero_mismatches(task: str, ckpt: str, R: float) -> None:
    """Tier-1 pin: 250-point differential grid on two cheap instances."""
    table = _table(task, ckpt, R)
    dyn = _dynamic(task, ckpt, R)
    grid = np.linspace(0.0, R, 250, endpoint=False)
    assert _decision_mismatches(table, dyn, grid) == []


def test_tabulate_continue_matches_quadrature_fig9() -> None:
    """The shared-lattice integral stays inside its advertised bound."""
    task, ckpt, R = "gamma:1,0.5", "normal:2,0.4@[0,inf]", 10.0
    dyn = _dynamic(task, ckpt, R)
    w = np.linspace(0.5, R - 0.5, 9)
    got = tabulate_continue(R, parse_law(task), parse_law(ckpt), w)
    exact = np.array([dyn.expected_if_continue(float(v)) for v in w])
    np.testing.assert_allclose(got, exact, atol=1e-4)


def test_tabulate_continue_discrete_is_exact() -> None:
    """Discrete task laws use the same series as the oracle: equality."""
    task, ckpt, R = "poisson:3", "gamma:2,0.5", 12.0
    dyn = _dynamic(task, ckpt, R)
    w = np.linspace(0.5, R - 0.5, 9)
    got = tabulate_continue(R, parse_law(task), parse_law(ckpt), w)
    exact = np.array([dyn.expected_if_continue(float(v)) for v in w])
    np.testing.assert_allclose(got, exact, atol=1e-9)


def test_deterministic_task_law_collapses_like_oracle() -> None:
    """Atom laws collapse E(W_+1) to zero on both paths, never NaN."""
    table = _table("deterministic:1.5", "uniform:0.5,1.5", 8.0)
    dyn = _dynamic("deterministic:1.5", "uniform:0.5,1.5", 8.0)
    for w in (0.5, 2.0, 6.0):
        assert table.e_continue_at(w) == pytest.approx(
            dyn.expected_if_continue(w), abs=1e-9
        )
        assert math.isfinite(table.e_checkpoint_at(w))


# --------------------------------------------------------------------------
# Hypothesis property tests
# --------------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

#: Small pools bound the number of expensive table builds; w varies
#: continuously across the whole reservation.
PROP_TASKS = ("gamma:1,0.5", "exponential:2", "uniform:1,3")
PROP_CKPTS = ("normal:2,0.4@[0,inf]", "gamma:2,0.5")
PROP_RESERVATIONS = (8.0, 10.0, 14.0)


@settings(max_examples=150, deadline=None)
@given(
    task=st.sampled_from(PROP_TASKS),
    ckpt=st.sampled_from(PROP_CKPTS),
    R=st.sampled_from(PROP_RESERVATIONS),
    frac=st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_property_decide_matches_oracle(
    task: str, ckpt: str, R: float, frac: float
) -> None:
    table = _table(task, ckpt, R)
    dyn = _dynamic(task, ckpt, R)
    w = frac * R
    assert table.boundaries is not None
    if any(abs(w - b) <= EPSILON for b in table.boundaries):
        return
    assert bool(table.decide(w)[0]) == dyn.should_checkpoint(w)


@settings(max_examples=60, deadline=None)
@given(
    task=st.sampled_from(PROP_TASKS),
    ckpt=st.sampled_from(PROP_CKPTS),
    R=st.sampled_from(PROP_RESERVATIONS),
    frac=st.floats(min_value=0.01, max_value=0.99),
)
def test_property_curves_track_exact(
    task: str, ckpt: str, R: float, frac: float
) -> None:
    table = _table(task, ckpt, R)
    dyn = _dynamic(task, ckpt, R)
    w = frac * R
    assert table.e_checkpoint_at(w) == pytest.approx(
        float(dyn.expected_if_checkpoint(w)), abs=2e-2, rel=5e-3
    )
    assert table.e_continue_at(w) == pytest.approx(
        dyn.expected_if_continue(w), abs=2e-2, rel=5e-3
    )
