"""Boundary tie-break: every decision path checkpoints at exactly W_int.

The paper's rule is ``checkpoint iff E(W_C) >= E(W_{+1})``: the tie
belongs to the checkpoint side. Numerically the tie *is* reachable —
``w == W_int`` — and before this suite existed the scalar oracle
(which re-evaluates the advantage by quadrature, landing on either
side of zero at the root) could disagree there with the compiled
threshold comparison. Pinning the crossing on the oracle and taking
the right-side decision at table boundaries makes all five decision
paths agree at the boundary itself:

* ``DynamicStrategy.should_checkpoint`` (crossing pinned),
* ``PolicyTable.decide``,
* ``CompiledPolicy.should_checkpoint``,
* ``Advisor.decide_batch`` with ``kernel="table"``,
* ``Advisor.decide_batch`` with ``kernel="exact"``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.kernels import build_policy_table
from repro.service import Advisor

TASK, CKPT, R = "uniform:1,3", "uniform:0.5,1.5", 10.0


@pytest.fixture(scope="module")
def table():
    return build_policy_table(R, parse_law(TASK), parse_law(CKPT))


def test_pinned_oracle_checkpoints_at_threshold(table) -> None:
    dyn = DynamicStrategy(R, parse_law(TASK), parse_law(CKPT))
    dyn.pin_crossing(table.w_int)
    assert dyn.should_checkpoint(table.w_int) is True
    assert dyn.should_checkpoint(table.w_int - 1e-4) is False
    assert dyn.should_checkpoint(table.w_int + 1e-4) is True


def test_table_checkpoints_at_threshold(table) -> None:
    assert bool(table.decide(table.w_int)[0]) is True
    assert bool(table.decide(table.w_int - 1e-12)[0]) is False
    assert table.is_threshold


def test_compiled_policy_checkpoints_at_threshold() -> None:
    advisor = Advisor()
    policy = advisor.policy(R, TASK, CKPT)
    assert policy.w_int is not None
    assert policy.should_checkpoint(policy.w_int) is True
    assert policy.should_checkpoint(policy.w_int - 1e-12) is False


def test_both_kernels_agree_at_threshold() -> None:
    table_advisor = Advisor(kernel="table")
    exact_advisor = Advisor(kernel="exact")
    w_int = table_advisor.policy(R, TASK, CKPT).w_int
    assert w_int is not None
    probes = np.asarray([w_int - 1e-4, w_int, w_int + 1e-4])
    got_table = table_advisor.decide_batch(R, TASK, CKPT, probes)
    got_exact = exact_advisor.decide_batch(R, TASK, CKPT, probes)
    np.testing.assert_array_equal(got_table, [False, True, True])
    np.testing.assert_array_equal(got_exact, [False, True, True])


def test_crossing_pin_survives_unpinned_disagreement(table) -> None:
    """The quadrature sign at the root is noise; the pin overrides it
    deterministically rather than leaving the tie to roundoff."""
    dyn = DynamicStrategy(R, parse_law(TASK), parse_law(CKPT))
    dyn.pin_crossing(table.w_int)
    # Whatever sign quadrature assigns to advantage(w_int), the pinned
    # decision is checkpoint.
    assert dyn.should_checkpoint(table.w_int) is True


@pytest.mark.kernels
def test_non_threshold_boundary_takes_right_side_decision() -> None:
    """A discrete F_C makes the region a union of intervals; each
    stored boundary takes the decision of the region to its right."""
    task, ckpt, r = "exponential:1.5", "poisson:3@[1,6]", 14.0
    t = build_policy_table(r, parse_law(task), parse_law(ckpt))
    assert t.boundaries is not None
    assert not t.is_threshold and t.boundaries.size >= 3
    for i, b in enumerate(t.boundaries):
        right = bool(t.decide(float(b) + 1e-9)[0])
        assert bool(t.decide(float(b))[0]) == right
        expected = (i % 2 == 0) != t.checkpoint_at_zero
        assert right == expected
