"""Fixture-driven rule tests.

Every rule has a ``repNNN_bad.py`` fixture whose violation lines carry
an ``# expect: REPNNN`` marker, and a ``repNNN_good.py`` fixture that
must lint clean. The test derives the expected diagnostic set from the
markers, so a fixture documents its own contract and line numbers never
drift out of sync with assertions.
"""

import re
from pathlib import Path

import pytest

from repro.lint import ALL_RULES, lint_file

FIXTURES = Path(__file__).parent / "fixtures"
RULE_IDS = [rule.id for rule in ALL_RULES]

_EXPECT_RE = re.compile(r"#\s*expect:\s*(REP\d{3})")


def expected_markers(path: Path) -> set[tuple[str, int]]:
    """``{(rule_id, line)}`` derived from ``# expect:`` markers."""
    expected = set()
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _EXPECT_RE.finditer(text):
            expected.add((match.group(1), lineno))
    return expected


class TestRuleRegistry:
    def test_eight_rules_with_unique_sequential_ids(self):
        assert RULE_IDS == [f"REP{n:03d}" for n in range(1, 9)]

    def test_every_rule_documents_itself(self):
        for rule in ALL_RULES:
            assert rule.title, rule.id
            assert rule.rationale, rule.id


@pytest.mark.parametrize("rule_id", RULE_IDS)
class TestFixtures:
    def test_bad_fixture_produces_expected_diagnostics(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        expected = expected_markers(path)
        assert expected, f"{path} has no # expect markers"
        found = {(d.rule, d.line) for d in lint_file(str(path))}
        assert found == expected

    def test_bad_fixture_diagnostics_carry_location_and_message(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_bad.py"
        for diag in lint_file(str(path)):
            assert diag.rule == rule_id
            assert diag.path.endswith(f"{rule_id.lower()}_bad.py")
            assert diag.line >= 1
            assert diag.col >= 1
            assert diag.message

    def test_good_fixture_is_clean(self, rule_id):
        path = FIXTURES / f"{rule_id.lower()}_good.py"
        assert lint_file(str(path)) == []


class TestUnparseableFile:
    def test_syntax_error_yields_rep000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def incomplete(:\n")
        diags = lint_file(str(bad))
        assert len(diags) == 1
        assert diags[0].rule == "REP000"
        assert "does not parse" in diags[0].message


class TestImportResolution:
    """Aliased imports resolve; method calls on locals never misflag."""

    def test_aliased_numpy_import_is_caught(self, tmp_path):
        f = tmp_path / "aliased.py"
        f.write_text("import numpy.random as nr\ngen = nr.default_rng()\n")
        assert [d.rule for d in lint_file(str(f))] == ["REP001"]

    def test_generator_method_calls_are_not_flagged(self, tmp_path):
        f = tmp_path / "methods.py"
        f.write_text(
            "def draw(rng):\n"
            "    return rng.random(10), rng.uniform(0.0, 1.0)\n"
        )
        assert lint_file(str(f)) == []

    def test_local_name_shadowing_json_is_not_flagged(self, tmp_path):
        f = tmp_path / "shadow.py"
        f.write_text(
            "class Codec:\n"
            "    def dumps(self, payload):\n"
            "        return repr(payload)\n"
            "\n"
            "def render(codec, payload):\n"
            "    return codec.dumps(payload)\n"
        )
        assert lint_file(str(f)) == []
