"""``repro lint --flow`` CLI behavior and the SARIF emitter."""

import json

import pytest

from repro.cli import main
from repro.lint.cli import full_catalog
from repro.lint.sarif import SARIF_VERSION

BLOCKING_PROJECT = {
    "pkg/__init__.py": "",
    "pkg/helpers.py": "import time\n\n\ndef slow(n):\n    time.sleep(n)\n",
    "pkg/server.py": (
        "from .helpers import slow\n\n\nasync def handler(n):\n    slow(n)\n"
    ),
}


@pytest.fixture
def blocking_tree(tmp_path):
    for relpath, source in BLOCKING_PROJECT.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


@pytest.fixture
def direct_violation_tree(tmp_path):
    (tmp_path / "direct.py").write_text(
        "import time\n\n\nasync def handler():\n    time.sleep(1)\n"
    )
    return tmp_path


class TestFlowFlag:
    def test_without_flow_cross_file_violation_passes(self, blocking_tree, capsys):
        assert main(["lint", str(blocking_tree)]) == 0

    def test_with_flow_it_fails(self, blocking_tree, capsys):
        assert main(["lint", "--flow", "--no-cache", str(blocking_tree)]) == 1
        out = capsys.readouterr().out
        assert "server.py:5:1: REP101" in out
        assert "time.sleep" in out

    def test_flow_rule_select_requires_flow(self, blocking_tree, capsys):
        assert main(["lint", str(blocking_tree), "--select", "REP101"]) == 2
        assert "requires --flow" in capsys.readouterr().err

    def test_rep005_demoted_no_double_report(self, direct_violation_tree, capsys):
        assert main(["lint", "--flow", "--no-cache", str(direct_violation_tree)]) == 1
        out = capsys.readouterr().out
        assert out.count("direct.py:5:1") == 1
        assert "REP101" in out and "REP005" not in out

    def test_selecting_rep005_restores_the_prepass(self, direct_violation_tree, capsys):
        assert main(
            ["lint", "--flow", "--no-cache", str(direct_violation_tree),
             "--select", "REP005"]
        ) == 1
        out = capsys.readouterr().out
        assert "REP005" in out

    def test_list_rules_includes_flow_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP101", "REP102", "REP103", "REP104", "REP105"):
            assert rule_id in out


class TestJsonReport:
    def test_flow_reanalysis_count_in_report(self, blocking_tree, tmp_path, capsys):
        cache_dir = str(tmp_path / ".cache")
        args = ["lint", "--flow", "--format", "json",
                "--cache-dir", cache_dir, str(blocking_tree)]
        assert main(args) == 1
        cold = json.loads(capsys.readouterr().out)
        assert cold["flow"]["files_reanalyzed"] == cold["files_checked"] == 3
        assert cold["counts"] == {"REP101": 1}
        assert main(args) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm["flow"]["files_reanalyzed"] == 0
        assert warm["diagnostics"] == cold["diagnostics"]

    def test_plain_report_has_no_flow_key(self, blocking_tree, capsys):
        assert main(["lint", "--format", "json", str(blocking_tree)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "flow" not in report


class TestSarif:
    def test_sarif_shape_and_findings(self, blocking_tree, capsys):
        assert main(
            ["lint", "--flow", "--no-cache", "--format", "sarif", str(blocking_tree)]
        ) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == SARIF_VERSION
        run = report["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert rule_ids == set(full_catalog())
        [result] = run["results"]
        assert result["ruleId"] == "REP101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("server.py")
        assert location["region"]["startLine"] == 5
        assert run["properties"]["filesChecked"] == 3

    def test_clean_tree_sarif_is_empty_but_valid(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(
            ["lint", "--flow", "--no-cache", "--format", "sarif", str(tmp_path)]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["runs"][0]["results"] == []
        # strict JSON end to end: the emitter must never smuggle NaN
        json.dumps(report, allow_nan=False)
