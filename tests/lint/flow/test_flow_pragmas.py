"""Pragma suppression for flow rules, at both ends of a chain.

A ``# lint: allow[...]`` at the *source* (the blocking primitive, the
RNG draw, the non-finite constant) kills the fact before propagation —
the whole project accepts that primitive as legitimate. One at the
*report site* suppresses a single caller's finding. REP101
additionally honors legacy ``allow[REP005]`` pragmas at the source so
the supersession does not invalidate existing suppressions.
"""

from conftest import rules_at

HELPERS = """\
import time


def slow(n):
    time.sleep(n)
"""

HELPERS_SOURCE_ALLOW = """\
import time


def slow(n):
    time.sleep(n)  # lint: allow[REP101]
"""

HELPERS_REP005_ALLOW = """\
import time


def slow(n):
    time.sleep(n)  # lint: allow[REP005]
"""

SERVER = """\
from .helpers import slow


async def handler(n):
    slow(n)
"""

SERVER_SITE_ALLOW = """\
from .helpers import slow


async def handler(n):
    slow(n)  # lint: allow[REP101]
"""


class TestRep101Suppression:
    def test_unsuppressed_baseline(self, flow_project):
        write, run = flow_project
        write({"pkg/__init__.py": "", "pkg/helpers.py": HELPERS, "pkg/server.py": SERVER})
        assert rules_at(run(), "REP101") == [("server.py", 5)]

    def test_source_pragma_kills_the_fact_for_all_callers(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": HELPERS_SOURCE_ALLOW,
                "pkg/server.py": SERVER,
            }
        )
        assert rules_at(run(), "REP101") == []

    def test_legacy_rep005_pragma_also_kills_the_fact(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": HELPERS_REP005_ALLOW,
                "pkg/server.py": SERVER,
            }
        )
        assert rules_at(run(), "REP101") == []

    def test_report_site_pragma_suppresses_one_caller(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": HELPERS,
                "pkg/server.py": SERVER_SITE_ALLOW,
                "pkg/other.py": SERVER.replace("handler", "other_handler"),
            }
        )
        # the pragma'd caller is clean, the un-pragma'd one still fires
        assert rules_at(run(), "REP101") == [("other.py", 5)]


class TestRep103Suppression:
    def test_sink_pragma(self, flow_project):
        write, run = flow_project
        write(
            {
                "emit.py": """\
                    import json
                    import math


                    def emit():
                        # documented: reader maps NaN sentinel back
                        return json.dumps({"v": math.nan})  # lint: allow[REP103]
                    """,
            }
        )
        assert rules_at(run(), "REP103") == []

    def test_source_pragma_on_constant(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/stats.py": """\
                    import math


                    def sentinel():
                        return math.nan  # lint: allow[REP103]
                    """,
                "pkg/report.py": """\
                    import json

                    from .stats import sentinel


                    def render():
                        return json.dumps({"v": sentinel()})
                    """,
            }
        )
        assert rules_at(run(), "REP103") == []


class TestRep102Suppression:
    def test_source_pragma_on_draw(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/noise.py": """\
                    import random


                    def jitter():
                        # calibration-only noise; never feeds published runs
                        return random.random()  # lint: allow[REP001,REP102]
                    """,
                "pkg/law.py": """\
                    from .noise import jitter


                    def simulate_jitter(n):
                        return [jitter() for _ in range(n)]
                    """,
            }
        )
        assert rules_at(run(), "REP102") == []


class TestRep104Suppression:
    def test_rep003_pragma_does_not_cover_rep104(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/mystore.py": """\
                    import os


                    def rotate(a, b):
                        os.replace(a, b)  # lint: allow[REP003]
                    """,
            }
        )
        # REP104 is an independent, stricter claim about store paths;
        # silencing the generic rename rule must not silence it.
        assert rules_at(run(), "REP104") == [("mystore.py", 5)]

    def test_explicit_rep104_pragma(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/mystore.py": """\
                    import os


                    def quarantine(a):
                        os.replace(a, a + ".corrupt")  # lint: allow[REP003,REP104]
                    """,
            }
        )
        assert rules_at(run(), "REP104") == []
