"""Summary-cache behavior: warm hits, edit invalidation, corruption.

The critical property is *cross-file soundness on a partial re-
extract*: after editing only ``helpers.py``, the warm run re-extracts
one file yet must surface the new finding in ``server.py`` — the link
phase always re-runs over the full summary set.
"""

import json

from conftest import rules_at

from repro.lint.flow import run_flow_paths
from repro.lint.flow.cache import CACHE_BASENAME

CLEAN_HELPERS = """\
def slow(n):
    return n
"""

BLOCKING_HELPERS = """\
import time


def slow(n):
    time.sleep(n)
"""

SERVER = """\
from .helpers import slow


async def handler(n):
    slow(n)
"""


def test_warm_run_reanalyzes_zero_files(flow_project, tmp_path):
    write, _ = flow_project
    root = write(
        {"pkg/__init__.py": "", "pkg/helpers.py": CLEAN_HELPERS, "pkg/server.py": SERVER}
    )
    cache_dir = str(tmp_path / ".cache")
    cold = run_flow_paths([str(root / "pkg")], cache_dir=cache_dir)
    assert cold.files_reanalyzed == cold.files_checked == 3
    warm = run_flow_paths([str(root / "pkg")], cache_dir=cache_dir)
    assert warm.files_reanalyzed == 0
    assert warm.files_checked == 3
    assert warm.diagnostics == cold.diagnostics


def test_edit_reanalyzes_one_file_but_updates_callers(flow_project, tmp_path):
    write, _ = flow_project
    root = write(
        {"pkg/__init__.py": "", "pkg/helpers.py": CLEAN_HELPERS, "pkg/server.py": SERVER}
    )
    cache_dir = str(tmp_path / ".cache")
    cold = run_flow_paths([str(root / "pkg")], cache_dir=cache_dir)
    assert cold.diagnostics == []
    # the edit is in helpers.py; the finding belongs to server.py
    (root / "pkg" / "helpers.py").write_text(BLOCKING_HELPERS)
    warm = run_flow_paths([str(root / "pkg")], cache_dir=cache_dir)
    assert warm.files_reanalyzed == 1
    assert rules_at(warm, "REP101") == [("server.py", 5)]
    # reverting restores a clean report, again re-extracting only one
    (root / "pkg" / "helpers.py").write_text(CLEAN_HELPERS)
    again = run_flow_paths([str(root / "pkg")], cache_dir=cache_dir)
    assert again.files_reanalyzed == 1
    assert again.diagnostics == []


def test_corrupt_cache_degrades_to_cold_run(flow_project, tmp_path):
    write, _ = flow_project
    root = write({"solo.py": "def f():\n    return 1\n"})
    cache_dir = tmp_path / ".cache"
    run_flow_paths([str(root / "solo.py")], cache_dir=str(cache_dir))
    cache_file = cache_dir / CACHE_BASENAME
    cache_file.write_bytes(cache_file.read_bytes()[: 40])
    result = run_flow_paths([str(root / "solo.py")], cache_dir=str(cache_dir))
    assert result.files_reanalyzed == 1
    # and the torn file was atomically replaced with a valid one
    json.loads(cache_file.read_text())
    warm = run_flow_paths([str(root / "solo.py")], cache_dir=str(cache_dir))
    assert warm.files_reanalyzed == 0


def test_no_cache_mode_never_writes(flow_project, tmp_path):
    write, _ = flow_project
    root = write({"solo.py": "def f():\n    return 1\n"})
    result = run_flow_paths([str(root / "solo.py")], use_cache=False)
    assert result.files_reanalyzed == 1
    assert not (tmp_path / ".repro-lint-cache").exists()


def test_cache_prunes_files_that_left_scope(flow_project, tmp_path):
    write, _ = flow_project
    root = write({"a.py": "A = 1\n", "b.py": "B = 2\n"})
    cache_dir = tmp_path / ".cache"
    run_flow_paths([str(root / "a.py"), str(root / "b.py")], cache_dir=str(cache_dir))
    run_flow_paths([str(root / "a.py")], cache_dir=str(cache_dir))
    envelope = json.loads((cache_dir / CACHE_BASENAME).read_text())
    cached_paths = list(envelope["summaries"]["files"])
    assert all(path.endswith("a.py") for path in cached_paths)
