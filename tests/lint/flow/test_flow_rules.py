"""REP101–REP105 on multi-file mini-projects.

Every test here constructs a violation the per-file linter *cannot*
see — the source and the reporting site live in different functions,
usually different files — and asserts the flow pass pins the finding
to the responsible frame with the right rule id.
"""

from conftest import rules_at

# ---------------------------------------------------------------------------
# REP101 — transitive blocking reachable from async def
# ---------------------------------------------------------------------------


class TestRep101:
    def test_blocking_through_sync_helper_across_files(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/helpers.py": """\
                    import time


                    def slow(n):
                        time.sleep(n)


                    def indirect(n):
                        slow(n)
                    """,
                "pkg/server.py": """\
                    from .helpers import indirect


                    async def handler(n):
                        indirect(n)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP101") == [("server.py", 5)]
        [diag] = [d for d in result.diagnostics if d.rule == "REP101"]
        assert "time.sleep" in diag.message
        assert "`indirect` -> `slow`" in diag.message

    def test_alias_and_reexport_indirection(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "from .impl import do_io as run_io\n",
                "pkg/impl.py": """\
                    import subprocess


                    def do_io(cmd):
                        subprocess.check_output(cmd)
                    """,
                "app.py": """\
                    import pkg


                    async def main(cmd):
                        pkg.run_io(cmd)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP101") == [("app.py", 5)]

    def test_call_graph_cycle_terminates_and_reports(self, flow_project):
        write, run = flow_project
        write(
            {
                "loopy.py": """\
                    import time


                    def ping(n):
                        if n > 0:
                            pong(n - 1)
                        time.sleep(n)


                    def pong(n):
                        ping(n)


                    async def entry(n):
                        pong(n)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP101") == [("loopy.py", 15)]

    def test_direct_blocking_matches_rep005_site(self, flow_project):
        write, run = flow_project
        write(
            {
                "direct.py": """\
                    import time


                    async def handler():
                        time.sleep(1)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP101") == [("direct.py", 5)]

    def test_executor_handoff_is_not_blocking(self, flow_project):
        write, run = flow_project
        write(
            {
                "okay.py": """\
                    import asyncio
                    import time


                    async def handler(loop):
                        await loop.run_in_executor(None, time.sleep, 1)
                        await asyncio.to_thread(time.sleep, 1)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP101") == []

    def test_async_callee_reports_once_at_its_own_frame(self, flow_project):
        write, run = flow_project
        write(
            {
                "nested.py": """\
                    import time


                    async def inner():
                        time.sleep(1)


                    async def outer():
                        await inner()
                    """,
            }
        )
        result = run()
        # one finding, in inner(); outer() does not re-report the chain
        assert rules_at(result, "REP101") == [("nested.py", 5)]

    def test_first_order_callable_argument(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/runner.py": """\
                    def run_task(task):
                        return task()
                    """,
                "pkg/app.py": """\
                    import time

                    from .runner import run_task


                    def blocker():
                        time.sleep(1)


                    async def handler():
                        run_task(blocker)
                    """,
            }
        )
        result = run()
        assert ("app.py", 11) in rules_at(result, "REP101")


# ---------------------------------------------------------------------------
# REP102 — unseeded RNG transitively reaching sampling entry points
# ---------------------------------------------------------------------------


class TestRep102:
    def test_unseeded_helper_reaches_sample_method(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/noise.py": """\
                    import random


                    def jitter():
                        return random.random()
                    """,
                "pkg/law.py": """\
                    from .noise import jitter


                    class Law:
                        def _sample(self, size):
                            return [jitter() for _ in range(size)]
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP102") == [("law.py", 6)]
        [diag] = [d for d in result.diagnostics if d.rule == "REP102"]
        assert "random.random" in diag.message

    def test_simulate_function_is_an_entry_point(self, flow_project):
        write, run = flow_project
        write(
            {
                "sim.py": """\
                    import numpy as np


                    def fresh_gen():
                        return np.random.default_rng()


                    def simulate_runs(n):
                        gen = fresh_gen()
                        return gen.normal(size=n)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP102") == [("sim.py", 9)]

    def test_seeded_path_is_clean(self, flow_project):
        write, run = flow_project
        write(
            {
                "clean.py": """\
                    import numpy as np


                    def make_gen(seed):
                        return np.random.default_rng(seed)


                    def simulate_runs(n, seed):
                        gen = make_gen(seed)
                        return gen.normal(size=n)
                    """,
            }
        )
        assert rules_at(run(), "REP102") == []

    def test_non_entry_point_caller_not_flagged(self, flow_project):
        write, run = flow_project
        write(
            {
                "util.py": """\
                    import random


                    def jitter():
                        return random.random()


                    def format_report():
                        return f"{jitter()}"
                    """,
            }
        )
        # REP001 flags the draw itself per-file; REP102 stays quiet
        # because format_report is not a sampling entry point.
        assert rules_at(run(), "REP102") == []


# ---------------------------------------------------------------------------
# REP103 — possibly-non-finite floats into strict-JSON sinks
# ---------------------------------------------------------------------------


class TestRep103:
    def test_nan_returned_across_files_reaches_sink(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/stats.py": """\
                    import math


                    def hit_rate(hits, total):
                        if total == 0:
                            return math.nan
                        return hits / total
                    """,
                "pkg/report.py": """\
                    import json

                    from .stats import hit_rate


                    def render(hits, total):
                        return json.dumps({"rate": hit_rate(hits, total)})
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP103") == [("report.py", 7)]
        [diag] = [d for d in result.diagnostics if d.rule == "REP103"]
        assert "math.nan" in diag.message and "hit_rate" in diag.message

    def test_isfinite_guard_sanitizes(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/stats.py": """\
                    import math


                    def hit_rate(hits, total):
                        if total == 0:
                            return math.nan
                        return hits / total
                    """,
                "pkg/report.py": """\
                    import json
                    import math

                    from .stats import hit_rate


                    def render(hits, total):
                        rate = hit_rate(hits, total)
                        if not math.isfinite(rate):
                            rate = None
                        return json.dumps({"rate": rate})
                    """,
            }
        )
        assert rules_at(run(), "REP103") == []

    def test_local_nonfinite_constant_into_dump(self, flow_project):
        write, run = flow_project
        write(
            {
                "direct.py": """\
                    import json


                    def emit(path, fh):
                        payload = {"limit": float("inf")}
                        json.dump(payload, fh)
                    """,
            }
        )
        assert rules_at(run(), "REP103") == [("direct.py", 6)]

    def test_stringified_value_is_clean(self, flow_project):
        write, run = flow_project
        write(
            {
                "clean.py": """\
                    import json
                    import math


                    def emit():
                        return json.dumps({"label": f"{math.inf}", "s": str(math.nan)})
                    """,
            }
        )
        assert rules_at(run(), "REP103") == []


# ---------------------------------------------------------------------------
# REP104 — raw mutation reachable from repro.runtime store paths
# ---------------------------------------------------------------------------


class TestRep104:
    def test_raw_rename_behind_helper_module(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/fsutil.py": """\
                    import os


                    def swap(a, b):
                        os.replace(a, b)
                    """,
                "repro/runtime/mystore.py": """\
                    from .fsutil import swap


                    def commit(tmp, final):
                        swap(tmp, final)
                    """,
            }
        )
        result = run()
        findings = rules_at(result, "REP104")
        # the helper's own raw rename plus the store path reaching it
        assert ("fsutil.py", 5) in findings
        assert ("mystore.py", 5) in findings

    def test_write_mode_open_in_store_path(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/mystore.py": """\
                    def save(path, blob):
                        with open(path, "wb") as fh:
                            fh.write(blob)
                    """,
            }
        )
        assert rules_at(run(), "REP104") == [("mystore.py", 2)]

    def test_atomic_module_is_exempt(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/atomic.py": """\
                    import os


                    def atomic_write(path, blob):
                        tmp = path + ".tmp"
                        with open(tmp, "wb") as fh:
                            fh.write(blob)
                        os.replace(tmp, path)
                    """,
                "repro/runtime/mystore.py": """\
                    from .atomic import atomic_write


                    def commit(path, blob):
                        atomic_write(path, blob)
                    """,
            }
        )
        assert rules_at(run(), "REP104") == []

    def test_read_mode_open_is_clean(self, flow_project):
        write, run = flow_project
        write(
            {
                "repro/__init__.py": "",
                "repro/runtime/__init__.py": "",
                "repro/runtime/mystore.py": """\
                    def load(path):
                        with open(path, "rb") as fh:
                            return fh.read()
                    """,
            }
        )
        assert rules_at(run(), "REP104") == []

    def test_modules_outside_runtime_not_flagged(self, flow_project):
        write, run = flow_project
        write(
            {
                "tools.py": """\
                    import os


                    def rotate(a, b):
                        os.replace(a, b)
                    """,
            }
        )
        # REP003 (per-file) owns generic renames; REP104 is scoped to
        # the checkpoint store paths.
        assert rules_at(run(), "REP104") == []


# ---------------------------------------------------------------------------
# REP105 — awaiting slow operations while holding an asyncio lock
# ---------------------------------------------------------------------------


class TestRep105:
    def test_direct_sleep_under_lock(self, flow_project):
        write, run = flow_project
        write(
            {
                "locked.py": """\
                    import asyncio

                    LOCK = asyncio.Lock()


                    async def tick():
                        async with LOCK:
                            await asyncio.sleep(1)
                    """,
            }
        )
        assert rules_at(run(), "REP105") == [("locked.py", 8)]

    def test_slow_async_helper_under_instance_lock(self, flow_project):
        write, run = flow_project
        write(
            {
                "pkg/__init__.py": "",
                "pkg/io_ops.py": """\
                    import asyncio


                    async def fetch(host):
                        return await asyncio.open_connection(host, 80)
                    """,
                "pkg/service.py": """\
                    import asyncio

                    from .io_ops import fetch


                    class Service:
                        def __init__(self):
                            self._lock = asyncio.Lock()

                        async def refresh(self, host):
                            async with self._lock:
                                return await fetch(host)
                    """,
            }
        )
        result = run()
        assert rules_at(result, "REP105") == [("service.py", 12)]
        [diag] = [d for d in result.diagnostics if d.rule == "REP105"]
        assert "asyncio.Lock" in diag.message

    def test_fast_work_under_lock_is_clean(self, flow_project):
        write, run = flow_project
        write(
            {
                "fine.py": """\
                    import asyncio

                    LOCK = asyncio.Lock()
                    STATE = {}


                    async def bump(key):
                        async with LOCK:
                            STATE[key] = STATE.get(key, 0) + 1
                    """,
            }
        )
        assert rules_at(run(), "REP105") == []

    def test_sleep_outside_lock_is_clean(self, flow_project):
        write, run = flow_project
        write(
            {
                "fine.py": """\
                    import asyncio

                    LOCK = asyncio.Lock()


                    async def tick():
                        async with LOCK:
                            pass
                        await asyncio.sleep(1)
                    """,
            }
        )
        assert rules_at(run(), "REP105") == []
