"""Supersession differential: every REP005 finding is also a REP101
finding at the same file and line.

REP005 stays as the fast intra-function pre-pass for non-flow runs; in
flow mode it is skipped and REP101 must cover it completely. This test
pins that containment on the shipped REP005 fixture plus a corpus of
edge cases (lambdas, nested sync defs, comprehensions, method bodies)
chosen because they are exactly where the two implementations could
plausibly diverge.
"""

from pathlib import Path

import pytest

from repro.lint.engine import lint_source
from repro.lint.flow.project import extract_module
from repro.lint.flow.rules import analyze
from repro.lint.rules import ALL_RULES

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"

EDGE_CASES = [
    # comprehension bodies belong to the enclosing async function
    """\
import time


async def gather(paths):
    return [time.sleep(p) for p in paths]
""",
    # a lambda is a definition: neither pass may flag its body
    """\
import time


async def schedule(cb):
    cb(lambda: time.sleep(1))
""",
    # nested sync def: a definition, not a call
    """\
import subprocess


async def runner(cmd):
    def work():
        return subprocess.run(cmd)
    return work
""",
    # async method on a class, multiple blocking calls
    """\
import os
import socket


class Server:
    async def flush(self, fh, host):
        os.fsync(fh)
        socket.create_connection((host, 80))
""",
    # blocking call in a sync function: invisible to both passes here
    """\
import time


def helper():
    time.sleep(1)
""",
]


def _rep005_findings(source: str) -> set[tuple[int, str]]:
    rep005 = [rule for rule in ALL_RULES if rule.id == "REP005"]
    diags = lint_source(source, "case.py", rules=rep005)
    return {(d.line, d.path) for d in diags}


def _rep101_findings(source: str) -> set[tuple[int, str]]:
    summary = extract_module("case.py", source)
    diags = analyze([summary])
    return {(d.line, d.path) for d in diags if d.rule == "REP101"}


@pytest.mark.parametrize("case", range(len(EDGE_CASES)))
def test_rep101_contains_rep005_on_edge_cases(case):
    source = EDGE_CASES[case]
    rep005 = _rep005_findings(source)
    rep101 = _rep101_findings(source)
    assert rep005 <= rep101, f"REP005-only findings: {sorted(rep005 - rep101)}"


def test_rep101_contains_rep005_on_shipped_fixture():
    source = (FIXTURES / "rep005_bad.py").read_text()
    rep005 = _rep005_findings(source)
    rep101 = _rep101_findings(source)
    assert rep005, "fixture must exercise REP005"
    assert rep005 <= rep101, f"REP005-only findings: {sorted(rep005 - rep101)}"


def test_rep005_good_fixture_is_also_rep101_clean():
    source = (FIXTURES / "rep005_good.py").read_text()
    assert _rep005_findings(source) == set()
    assert _rep101_findings(source) == set()
