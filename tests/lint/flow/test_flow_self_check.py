"""The repo must satisfy its own *interprocedural* linter at HEAD.

Companion to ``tests/lint/test_self_check.py``: per-file cleanliness is
necessary but not sufficient — this runs the REP101–REP105 flow pass
over the same trees so a blocking helper threaded into the async
server path, or a raw write slipped into a ``repro.runtime`` store
path, fails the suite with the exact diagnostics CI would print.
"""

from pathlib import Path

import pytest

from repro.lint.flow import run_flow_paths

REPO_ROOT = Path(__file__).resolve().parents[3]
LINTED_TREES = ["src", "benchmarks", "examples"]


@pytest.mark.parametrize("tree", LINTED_TREES)
def test_tree_is_flow_clean(tree):
    root = REPO_ROOT / tree
    if not root.is_dir():
        pytest.skip(f"{tree}/ not present in this checkout")
    result = run_flow_paths([str(root)], use_cache=False)
    assert result.files_checked > 0
    assert result.diagnostics == [], "\n" + "\n".join(
        d.render() for d in result.diagnostics
    )


def test_src_flow_pass_sees_the_whole_tree():
    result = run_flow_paths([str(REPO_ROOT / "src")], use_cache=False)
    # every file re-analyzed (no cache) and none skipped silently
    assert result.files_reanalyzed == result.files_checked >= 100
