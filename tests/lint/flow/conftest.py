"""Shared helpers for the flow-analysis suite: write a multi-file
mini-project into a tmp dir and run the interprocedural pass on it."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint.flow import run_flow_paths


@pytest.fixture
def flow_project(tmp_path):
    """Returns ``(write, run)``: ``write({relpath: source})`` materializes
    a mini-project, ``run()`` flow-lints it without the cache."""

    def write(files):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(source))
        return tmp_path

    def run(**kwargs):
        kwargs.setdefault("use_cache", False)
        return run_flow_paths([str(tmp_path)], **kwargs)

    return write, run


def rules_at(result, rule):
    """``[(basename, line), ...]`` of the findings for one rule."""
    return sorted(
        (diag.path.rsplit("/", 1)[-1], diag.line)
        for diag in result.diagnostics
        if diag.rule == rule
    )
