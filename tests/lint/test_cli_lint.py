"""``repro lint`` CLI: exit codes, JSON schema, select/ignore."""

import json

import pytest

from repro.cli import main
from repro.lint import ALL_RULES
from repro.lint.cli import JSON_REPORT_VERSION

BAD = "import numpy as np\nimport json\ngen = np.random.default_rng()\ns = json.dumps({})\n"
CLEAN = "import math\n\n\ndef area(r):\n    return math.pi * r * r\n"


@pytest.fixture
def bad_tree(tmp_path):
    (tmp_path / "bad.py").write_text(BAD)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main(["lint", str(clean_tree)]) == 0
        assert "clean: 1 file checked" in capsys.readouterr().out

    def test_violations_exit_one_with_location_and_rule(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3:7: REP001" in out
        assert "bad.py:4:5: REP002" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_rule_id_exits_two(self, clean_tree, capsys):
        assert main(["lint", str(clean_tree), "--select", "REP999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err


class TestSelectIgnore:
    def test_select_runs_only_named_rules(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--select", "REP002"]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "REP001" not in out

    def test_ignore_skips_named_rules(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--ignore", "REP001,REP002"]) == 0

    def test_select_is_case_insensitive(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--select", "rep002"]) == 1


class TestJsonFormat:
    def test_report_schema(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == JSON_REPORT_VERSION
        assert report["files_checked"] == 1
        assert report["clean"] is False
        assert report["counts"] == {"REP001": 1, "REP002": 1}
        assert len(report["diagnostics"]) == 2
        for diag in report["diagnostics"]:
            assert set(diag) == {"rule", "path", "line", "col", "message"}
            assert isinstance(diag["line"], int) and diag["line"] >= 1
            assert isinstance(diag["col"], int) and diag["col"] >= 1
            assert diag["rule"].startswith("REP")
            assert diag["message"]

    def test_diagnostics_sorted_by_location(self, bad_tree, capsys):
        main(["lint", str(bad_tree), "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        keys = [(d["path"], d["line"], d["col"]) for d in report["diagnostics"]]
        assert keys == sorted(keys)

    def test_clean_report(self, clean_tree, capsys):
        assert main(["lint", str(clean_tree), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["clean"] is True
        assert report["counts"] == {}
        assert report["diagnostics"] == []


class TestListRules:
    def test_catalog_lists_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out
