"""The repo must satisfy its own invariant linter at HEAD.

This is the enforcement backstop for environments that run only the
test suite: if a future change introduces an unseeded RNG, a lax
``json.dumps`` or a hand-rolled rename protocol anywhere in ``src``,
``benchmarks`` or ``examples``, this test fails with the exact
diagnostics ``repro lint`` would print in CI.
"""

from pathlib import Path

import pytest

from repro.lint import run_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
LINTED_TREES = ["src", "benchmarks", "examples"]


@pytest.mark.parametrize("tree", LINTED_TREES)
def test_tree_is_lint_clean(tree):
    root = REPO_ROOT / tree
    if not root.is_dir():
        pytest.skip(f"{tree}/ not present in this checkout")
    diagnostics, files_checked = run_paths([str(root)])
    assert files_checked > 0
    assert diagnostics == [], "\n" + "\n".join(d.render() for d in diagnostics)


def test_lint_package_lints_itself():
    diagnostics, files_checked = run_paths(
        [str(REPO_ROOT / "src" / "repro" / "lint")]
    )
    assert files_checked >= 12
    assert diagnostics == []
