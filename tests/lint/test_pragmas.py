"""Pragma suppression semantics: line, preceding-line, and file scope."""

from repro.lint import lint_source
from repro.lint.pragmas import scan_pragmas

UNSEEDED = "import numpy as np\ngen = np.random.default_rng()\n"


class TestScan:
    def test_trailing_pragma_registers_line_and_next(self):
        idx = scan_pragmas("x = 1  # lint: allow[REP004]\ny = 2\nz = 3\n")
        assert idx.suppresses("REP004", 1)
        assert idx.suppresses("REP004", 2)
        assert not idx.suppresses("REP004", 3)
        assert not idx.suppresses("REP001", 1)

    def test_multiple_rules_in_one_pragma(self):
        idx = scan_pragmas("x = 1  # lint: allow[REP003, REP004]\n")
        assert idx.suppresses("REP003", 1)
        assert idx.suppresses("REP004", 1)

    def test_file_pragma_covers_every_line(self):
        idx = scan_pragmas("# lint: file-allow[REP007]\nx = 1\n" + "y = 2\n" * 50)
        assert idx.suppresses("REP007", 1)
        assert idx.suppresses("REP007", 52)
        assert not idx.suppresses("REP001", 52)


class TestSuppression:
    def test_unsuppressed_violation_reported(self):
        assert [d.rule for d in lint_source(UNSEEDED)] == ["REP001"]

    def test_trailing_pragma_suppresses(self):
        src = "import numpy as np\ngen = np.random.default_rng()  # lint: allow[REP001]\n"
        assert lint_source(src) == []

    def test_standalone_pragma_above_suppresses(self):
        src = (
            "import numpy as np\n"
            "# lint: allow[REP001]\n"
            "gen = np.random.default_rng()\n"
        )
        assert lint_source(src) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = "import numpy as np\ngen = np.random.default_rng()  # lint: allow[REP002]\n"
        assert [d.rule for d in lint_source(src)] == ["REP001"]

    def test_file_pragma_suppresses_everywhere(self):
        src = "# lint: file-allow[REP001]\n" + UNSEEDED
        assert lint_source(src) == []

    def test_pragma_does_not_leak_two_lines_down(self):
        src = (
            "import numpy as np\n"
            "# lint: allow[REP001]\n"
            "x = 1\n"
            "gen = np.random.default_rng()\n"
        )
        assert [d.rule for d in lint_source(src)] == ["REP001"]
