"""Regression: a NaN smuggled into a payload raises at the boundary.

REP002 guarantees every serializer passes ``allow_nan=False``; these
tests pin the observable behavior — non-finite floats raise
``ValueError`` instead of emitting the non-standard ``NaN`` /
``Infinity`` tokens — at each boundary the rule protects.
"""

import json
import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runtime import atomic
from repro.service import protocol
from repro.service.advisor import Advisor


class TestProtocolEnvelope:
    def test_nan_in_payload_raises(self):
        with pytest.raises(ValueError):
            protocol.encode({"id": 1, "result": {"threshold": math.nan}})

    def test_infinity_in_payload_raises(self):
        with pytest.raises(ValueError):
            protocol.encode({"id": 1, "result": {"threshold": math.inf}})

    def test_finite_payload_round_trips(self):
        line = protocol.encode({"id": 1, "result": {"threshold": 2.5}})
        assert json.loads(line) == {"id": 1, "result": {"threshold": 2.5}}


class TestAtomicEnvelope:
    def test_nan_payload_raises_before_touching_disk(self, tmp_path):
        target = tmp_path / "artifact.json"
        with pytest.raises(ValueError):
            atomic.atomic_write_json(str(target), {"value": math.nan}, fmt=2)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_canonical_bytes_reject_nan(self):
        with pytest.raises(ValueError):
            atomic.canonical_json_bytes({"value": math.nan})


class TestTraceExport:
    def test_nan_tag_raises_at_export(self):
        tracer = Tracer(capacity=8)
        with tracer.span("op") as span:
            span.set_tag("ratio", math.nan)
        with pytest.raises(ValueError):
            tracer.export_jsonl()

    def test_finite_tags_export_as_json_lines(self):
        tracer = Tracer(capacity=8)
        with tracer.span("op") as span:
            span.set_tag("ratio", 0.5)
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["tags"] == {"ratio": 0.5}


class TestMetricsSnapshot:
    def test_snapshot_is_strict_json_even_with_inf_observations(self):
        registry = MetricsRegistry()
        registry.observe("latency", math.inf)
        snapshot = registry.snapshot()
        rendered = json.dumps(snapshot, allow_nan=False)
        assert "Infinity" not in rendered and "NaN" not in rendered


class TestCacheStats:
    def test_empty_cache_hit_rate_serializes_strictly(self):
        stats = Advisor().cache.stats()
        assert stats["hit_rate"] is None
        json.dumps(stats, allow_nan=False)

    def test_hit_rate_present_after_lookups(self):
        advisor = Advisor()
        advisor.advise_batch(10.0, "uniform:1,2", "uniform:1,2", [1.0])
        advisor.advise_batch(10.0, "uniform:1,2", "uniform:1,2", [1.0])
        stats = advisor.cache.stats()
        assert 0.0 <= stats["hit_rate"] <= 1.0
        json.dumps(stats, allow_nan=False)
