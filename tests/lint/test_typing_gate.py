"""The strict typing gate: ``mypy --strict`` over the gated modules.

The gate's configuration lives in ``pyproject.toml`` (``[tool.mypy]``)
so CI, editors, and this test all enforce the same thing. mypy is an
optional dependency (the ``lint`` extra); when it is not installed —
e.g. in the minimal runtime container — the execution test skips, but
the configuration invariants below still run, so a PR cannot silently
drop the gate itself.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

# Modules whose contracts the paper reproduction depends on; the gate
# may grow but must never lose one of these.
REQUIRED_GATED = [
    "src/repro/core",
    "src/repro/distributions",
    "src/repro/lint",
    "src/repro/obs",
    "src/repro/runtime/atomic.py",
    "src/repro/service",
]


def _load_pyproject() -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10
        tomllib = pytest.importorskip("tomli")
    with open(REPO_ROOT / "pyproject.toml", "rb") as fh:
        return tomllib.load(fh)


class TestGateConfiguration:
    def test_mypy_config_is_strict_and_covers_required_modules(self):
        config = _load_pyproject()["tool"]["mypy"]
        assert config["strict"] is True
        for module in REQUIRED_GATED:
            assert module in config["files"], f"{module} dropped from typing gate"

    def test_py_typed_marker_ships_with_the_package(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()
        package_data = _load_pyproject()["tool"]["setuptools"]["package-data"]
        assert "py.typed" in package_data["repro"]

    def test_lint_extra_provides_mypy(self):
        extras = _load_pyproject()["project"]["optional-dependencies"]
        assert any(dep.startswith("mypy") for dep in extras["lint"])


class TestGateExecution:
    def test_mypy_strict_passes_on_gated_modules(self):
        pytest.importorskip("mypy", reason="typing gate runs where the lint extra is installed")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
