"""REP004 bad: wall-clock reads used as a duration clock."""
import time


def measure(work):
    start = time.time()  # expect: REP004
    work()
    return time.time() - start  # expect: REP004
