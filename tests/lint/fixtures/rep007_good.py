"""REP007 good: sentinels, tolerances, ordering comparisons."""
import math


def classify(x, sigma):
    if sigma == 0.0:
        return "deterministic"
    if x == 1.0 or x == -1.0 or x == 0.5:
        return "sentinel"
    if math.isclose(x, 0.1, rel_tol=1e-9):
        return "tenth"
    if x < 0.25:
        return "small"
    if x == 3:
        return "integer-literal"
    return "other"
