"""REP003 bad: a hand-rolled tmp+rename write outside runtime.atomic."""
import os


def save(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
    os.replace(tmp, path)  # expect: REP003


def save_legacy(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
    os.rename(tmp, path)  # expect: REP003
