"""REP002 good: every dump is strict."""
import json
from json import dumps

payload = {"value": 1.0}
a = json.dumps(payload, allow_nan=False)
b = dumps(payload, sort_keys=True, allow_nan=False)
loaded = json.loads(a)

with open("/tmp/out.json", "w") as fh:
    json.dump(payload, fh, allow_nan=False)
