"""REP008 bad: mutable defaults shared across calls."""


def collect(item, bucket=[]):  # expect: REP008
    bucket.append(item)
    return bucket


def tally(key, counts={}):  # expect: REP008
    counts[key] = counts.get(key, 0) + 1
    return counts


def register(name, *, seen=set()):  # expect: REP008
    seen.add(name)
    return seen


def build(items=list()):  # expect: REP008
    return items
