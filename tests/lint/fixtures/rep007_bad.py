"""REP007 bad: equality against inexact float literals."""


def classify(x, y):
    if x == 0.1:  # expect: REP007
        return "tenth"
    if 0.3 != y:  # expect: REP007
        return "not-three-tenths"
    if x == -2.5:  # expect: REP007
        return "negative"
    return "other"
