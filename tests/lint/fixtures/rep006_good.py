"""REP006 good: spec() overridden, abstract bases and pragmas exempt."""
import abc

from repro.distributions.base import ContinuousDistribution, Distribution


class Triangle(ContinuousDistribution):
    @property
    def support(self):
        return (0.0, 1.0)

    def pdf(self, x):
        return 2.0 * x

    def cdf(self, x):
        return x * x

    def mean(self):
        return 2.0 / 3.0

    def var(self):
        return 1.0 / 18.0

    def spec(self):
        return "triangle:0,1"


class ShiftedDistribution(Distribution):
    """Abstract intermediate base: still has abstract methods."""

    @abc.abstractmethod
    def shift(self):
        ...


# Data-defined law outside the CLI grammar, documented as such.
class TraceLaw(ContinuousDistribution):  # lint: allow[REP006]
    @property
    def support(self):
        return (0.0, 1.0)

    def pdf(self, x):
        return 1.0

    def cdf(self, x):
        return x

    def mean(self):
        return 0.5

    def var(self):
        return 1.0 / 12.0
