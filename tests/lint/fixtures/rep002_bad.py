"""REP002 bad: json serialization without strict NaN rejection."""
import json
from json import dumps

payload = {"value": 1.0}
a = json.dumps(payload)  # expect: REP002
b = dumps(payload, sort_keys=True)  # expect: REP002
c = json.dumps(payload, allow_nan=True)  # expect: REP002

with open("/tmp/out.json", "w") as fh:
    json.dump(payload, fh)  # expect: REP002

options = {"indent": 2}
d = json.dumps(payload, **options)  # expect: REP002
