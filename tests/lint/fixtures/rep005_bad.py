"""REP005 bad: blocking calls inside async bodies."""
import socket
import time


async def handler(path):
    time.sleep(0.1)  # expect: REP005
    conn = socket.create_connection(("127.0.0.1", 80))  # expect: REP005
    with open(path) as fh:  # expect: REP005
        data = fh.read()
    return conn, data
