"""REP003 good: durable writes via the shared helper; quarantine pragma'd."""
import os

from repro.runtime import atomic


def save(path, data):
    atomic.atomic_write_bytes(path, data)


def quarantine(path):
    os.replace(path, path + ".corrupt")  # lint: allow[REP003]
