"""REP001 bad: unseeded and global-state randomness."""
import random

import numpy as np
from numpy.random import default_rng

gen = np.random.default_rng()  # expect: REP001
gen2 = default_rng(None)  # expect: REP001
np.random.seed(42)  # expect: REP001
x = np.random.uniform(0.0, 1.0)  # expect: REP001
y = random.random()  # expect: REP001
random.seed(7)  # expect: REP001
r = random.Random()  # expect: REP001
