"""REP004 good: monotonic clocks for durations, pragma'd timestamp."""
import time


def measure(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def heartbeat():
    return {
        "uptime": time.monotonic(),
        "stamped_at": time.time(),  # lint: allow[REP004]
    }
