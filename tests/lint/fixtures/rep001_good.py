"""REP001 good: every generator is seeded or threaded in."""
import random

import numpy as np
from numpy.random import default_rng


def sample(n, rng):
    gen = np.random.default_rng(rng)
    return gen.random(n)


gen = default_rng(1234)
seq = np.random.default_rng(np.random.SeedSequence(5))
r = random.Random(42)
value = r.random()
own = gen.uniform(0.0, 1.0)
