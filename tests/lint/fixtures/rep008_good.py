"""REP008 good: None defaults, immutable defaults."""


def collect(item, bucket=None):
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket


def scale(values, factors=(1.0, 2.0)):
    return [v * f for v, f in zip(values, factors)]


def label(name, prefix=""):
    return prefix + name
