"""REP006 bad: a concrete law without the spec() cache-key contract."""
from repro.distributions.base import ContinuousDistribution


class Triangle(ContinuousDistribution):  # expect: REP006
    @property
    def support(self):
        return (0.0, 1.0)

    def pdf(self, x):
        return 2.0 * x

    def cdf(self, x):
        return x * x

    def mean(self):
        return 2.0 / 3.0

    def var(self):
        return 1.0 / 18.0
