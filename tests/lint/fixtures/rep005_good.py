"""REP005 good: async bodies defer blocking work properly."""
import asyncio
import time


async def handler(loop, path):
    await asyncio.sleep(0.1)
    reader, writer = await asyncio.open_connection("127.0.0.1", 80)
    data = await loop.run_in_executor(None, _read_file, path)
    return reader, writer, data


def _read_file(path):
    # Synchronous helper: runs in an executor thread, so blocking
    # calls (open, sleep) are legitimate here.
    time.sleep(0.01)
    with open(path) as fh:
        return fh.read()
