"""Unit tests for the risk and sizing CLI subcommands."""

import pytest

from repro.cli import main


class TestRiskCommand:
    def test_quantile(self, capsys):
        rc = main(
            ["risk", "-R", "10", "--checkpoint-law", "uniform:1,7.5", "-q", "0.999"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        # q ~ 1 -> pessimistic margin b = 7.5.
        assert "X* = 7.49" in out

    def test_target(self, capsys):
        rc = main(
            ["risk", "-R", "10", "--checkpoint-law", "uniform:1,7.5", "--target", "4"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "X* = 6" in out
        assert "P(saved >= target)" in out

    def test_both(self, capsys):
        rc = main(
            [
                "risk", "-R", "10", "--checkpoint-law", "uniform:1,7.5",
                "-q", "0.5", "--target", "4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("X*") == 2

    def test_neither_is_error(self, capsys):
        rc = main(["risk", "-R", "10", "--checkpoint-law", "uniform:1,7.5"])
        assert rc == 2
        assert "quantile" in capsys.readouterr().err


class TestSizingCommand:
    def test_basic(self, capsys):
        rc = main(
            [
                "sizing", "--total-work", "500",
                "--task-law", "normal:3,0.5@[0,inf]",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
                "--candidates", "20", "45", "120",
                "--recovery", "1.5",
                "--wait-base", "30", "--wait-coefficient", "0.5",
                "--wait-exponent", "1.6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "<- best" in out
        assert "best R = 45" in out

    def test_cost_objective_by_usage(self, capsys):
        rc = main(
            [
                "sizing", "--total-work", "200",
                "--task-law", "normal:3,0.5@[0,inf]",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
                "--candidates", "20", "60",
                "--objective", "cost", "--by-usage",
            ]
        )
        assert rc == 0
        assert "best R" in capsys.readouterr().out
