"""Unit tests for the Section 4.3 dynamic strategy."""

import numpy as np
import pytest

from repro.core import DynamicStrategy
from repro.core.dynamic import expected_if_checkpoint, expected_if_continue
from repro.distributions import Gamma, Normal, Poisson, Uniform, truncate


@pytest.fixture
def fig8(paper_trunc_normal_tasks, paper_checkpoint_law):
    return DynamicStrategy(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)


@pytest.fixture
def fig9(paper_gamma_tasks, paper_gamma_checkpoint_law):
    return DynamicStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)


@pytest.fixture
def fig10(paper_poisson_tasks, paper_checkpoint_law):
    return DynamicStrategy(29.0, paper_poisson_tasks, paper_checkpoint_law)


class TestExpectedIfCheckpoint:
    def test_formula(self, paper_checkpoint_law):
        # E(W_C) = w * F_C(R - w).
        w = 20.0
        expected = w * float(paper_checkpoint_law.cdf(9.0))
        assert float(
            expected_if_checkpoint(29.0, paper_checkpoint_law, w)
        ) == pytest.approx(expected, rel=1e-12)

    def test_zero_at_zero_work(self, paper_checkpoint_law):
        assert float(expected_if_checkpoint(29.0, paper_checkpoint_law, 0.0)) == 0.0

    def test_zero_when_no_slack(self, paper_checkpoint_law):
        assert float(expected_if_checkpoint(29.0, paper_checkpoint_law, 29.0)) == 0.0

    def test_vectorized(self, paper_checkpoint_law):
        w = np.linspace(0.0, 29.0, 30)
        vals = expected_if_checkpoint(29.0, paper_checkpoint_law, w)
        assert vals.shape == (30,)
        assert np.all(vals >= 0.0)

    def test_unimodal_shape(self, paper_checkpoint_law):
        # Rises while the checkpoint surely fits, collapses near R.
        vals = expected_if_checkpoint(
            29.0, paper_checkpoint_law, np.array([5.0, 20.0, 28.0])
        )
        assert vals[1] > vals[0]
        assert vals[1] > vals[2]


class TestExpectedIfContinue:
    def test_zero_budget(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        assert (
            expected_if_continue(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, 10.0)
            == 0.0
        )

    def test_positive_for_small_work(self, fig9):
        assert fig9.expected_if_continue(1.0) > 0.0

    def test_poisson_sum_form(self, paper_poisson_tasks, paper_checkpoint_law):
        # Hand-rolled Section 4.3.3 sum.
        R, w = 29.0, 10.0
        j = np.arange(0.0, R - w + 1.0)
        slack = R - w - j
        succ = np.where(slack > 0, paper_checkpoint_law.cdf(np.maximum(slack, 0)), 0.0)
        expected = float(np.sum((j + w) * succ * paper_poisson_tasks.pmf(j)))
        got = expected_if_continue(R, paper_poisson_tasks, paper_checkpoint_law, w)
        assert got == pytest.approx(expected, rel=1e-12)

    def test_rejects_negative_work(self, fig9):
        with pytest.raises(ValueError):
            fig9.expected_if_continue(-1.0)

    def test_rejects_negative_task_support(self, paper_checkpoint_law):
        with pytest.raises(ValueError, match=r"\[0, inf\)"):
            DynamicStrategy(29.0, Normal(3.0, 0.5), paper_checkpoint_law)


class TestCrossing:
    def test_fig8_crossing(self, fig8):
        assert fig8.crossing_point() == pytest.approx(20.3, abs=0.15)

    def test_fig9_crossing(self, fig9):
        assert fig9.crossing_point() == pytest.approx(6.4, abs=0.15)

    def test_fig10_crossing(self, fig10):
        assert fig10.crossing_point() == pytest.approx(18.9, abs=0.15)

    def test_rule_flips_at_crossing(self, fig8):
        w_int = fig8.crossing_point()
        assert not fig8.should_checkpoint(w_int - 0.5)
        assert fig8.should_checkpoint(w_int + 0.5)

    def test_advantage_sign(self, fig9):
        w_int = fig9.crossing_point()
        assert fig9.advantage(w_int - 0.5) < 0.0
        assert fig9.advantage(w_int + 0.5) > 0.0
        assert fig9.advantage(w_int) == pytest.approx(0.0, abs=1e-8)

    def test_crossing_cached(self, fig9):
        assert fig9.crossing_point() is fig9.crossing_point() or (
            fig9.crossing_point() == fig9.crossing_point()
        )
        assert fig9._crossing_cache is not None

    def test_threshold_alias(self, fig9):
        assert fig9.threshold() == fig9.crossing_point()

    def test_never_checkpoint_degenerate(self):
        # A checkpoint that never fits: E(W_C) = 0 everywhere except...
        # use huge checkpoint mean vs tiny R: always worse to checkpoint
        # until the very end.
        strat = DynamicStrategy(
            5.0, Gamma(1.0, 0.5), truncate(Normal(100.0, 1.0), 0.0)
        )
        # Checkpoint never succeeds: both expectations ~0; crossing
        # defaults to 0 or R, rule must still answer.
        assert isinstance(strat.should_checkpoint(2.0), bool)


class TestDecisionCurve:
    def test_shapes(self, fig9):
        curve = fig9.decision_curve(51)
        assert curve.w.shape == (51,)
        assert curve.checkpoint_now.shape == (51,)
        assert curve.one_more_task.shape == (51,)

    def test_curves_cross_exactly_once(self, fig8):
        curve = fig8.decision_curve(201)
        diff = curve.checkpoint_now - curve.one_more_task
        # Strictly interior sign changes (ignore the flat ~0 region near R
        # where both expectations vanish).
        interior = curve.w < 27.0
        signs = np.sign(diff[interior])
        changes = np.sum(np.abs(np.diff(signs)) > 1)
        assert changes == 1

    def test_continue_wins_early(self, fig8):
        curve = fig8.decision_curve(101)
        early = curve.w < 10.0
        assert np.all(curve.one_more_task[early] >= curve.checkpoint_now[early])
