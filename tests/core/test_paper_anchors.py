"""Every numeric anchor printed in the paper, as an executable test.

These are the reproduction's ground truth: each value below is quoted
verbatim from the FTXS'23 text (figure captions and inline numbers),
and each test asserts our implementation reproduces it to the paper's
printed precision.
"""

import pytest

from repro.core import DynamicStrategy, StaticStrategy, solve
from repro.core.preemptible import expected_work, exponential_optimal_margin
from repro.distributions import Exponential, Gamma, Normal, Poisson, Uniform, truncate


class TestFigure1Uniform:
    """Uniform law, Section 3.2.1 / Figure 1."""

    def test_1a_x_opt(self):
        # "the maximum of E(W(X)) is reached for X_opt = (R+a)/2 = 5.5"
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.x_opt == pytest.approx(5.5)

    def test_1a_expected_work(self):
        # "with E(W(X_opt)) ~= 3.1"
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.expected_work_opt == pytest.approx(3.1, abs=0.05)

    def test_1a_pessimistic_ratio(self):
        # "the pessimistic approach would use X = C_max = b and get
        #  E(W(b)) = 2.5, reaching only 80% of the optimal"
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.pessimistic_work == pytest.approx(2.5)
        assert sol.pessimistic_work / sol.expected_work_opt == pytest.approx(0.80, abs=0.01)

    def test_1b_boundary_optimum(self):
        # "The maximum is X_opt = b with a=1, b=5, R=10."
        sol = solve(10.0, Uniform(1.0, 5.0))
        assert sol.x_opt == pytest.approx(5.0)


class TestFigure2Exponential:
    """Truncated Exponential law, Section 3.2.2 / Figure 2."""

    def test_2a_interior_optimum(self):
        # Caption says X_opt ~= 3.9 (a=1, b=5, R=10, lambda=1/2); the
        # paper's own Lambert-W formula evaluates to 3.8185 — we assert
        # the formula's value and accept the caption's loose rounding.
        x = exponential_optimal_margin(0.5, 1.0, 5.0, 10.0)
        assert x == pytest.approx(3.8185, abs=0.001)
        assert x == pytest.approx(3.9, abs=0.15)

    def test_2a_formula_is_true_maximum(self):
        import numpy as np

        law = truncate(Exponential(0.5), 1.0, 5.0)
        x = exponential_optimal_margin(0.5, 1.0, 5.0, 10.0)
        grid = np.linspace(1.0, 5.0, 4001)
        assert float(expected_work(10.0, law, x)) >= float(
            expected_work(10.0, law, grid).max()
        ) - 1e-9

    def test_2b_boundary_optimum(self):
        # "The maximum is X_opt = b with a=1, b=3, R=10, lambda=1/2."
        assert exponential_optimal_margin(0.5, 1.0, 3.0, 10.0) == pytest.approx(3.0)


class TestFigure3Normal:
    """Truncated Normal law, Section 3.2.3 / Figure 3."""

    def test_3a_interior_optimum(self):
        # Figure 3(a): mu=3.5, sigma=1, a=1, b=7, R=10 — interior max.
        sol = solve(10.0, truncate(Normal(3.5, 1.0), 1.0, 7.0))
        assert 1.0 < sol.x_opt < 7.0

    def test_3b_boundary_optimum(self):
        # Figure 3(b): b = 4.7 binds.
        sol = solve(10.0, truncate(Normal(3.5, 1.0), 1.0, 4.7))
        assert sol.x_opt == pytest.approx(4.7, abs=1e-6)


class TestFigure4LogNormal:
    """Truncated LogNormal law, Section 3.2.4 / Figure 4: both cases exist."""

    def test_interior_case_exists(self):
        from repro.distributions import LogNormal

        # mu* = exp(1 + 0.125) ~ 3.08 in [1, 7]: interior optimum.
        sol = solve(10.0, truncate(LogNormal(1.0, 0.5), 1.0, 7.0))
        assert 1.0 < sol.x_opt < 7.0

    def test_boundary_case_exists(self):
        from repro.distributions import LogNormal

        # Figure 4(b)-style: b = 4.7 with heavy law mass above it.
        sol = solve(10.0, truncate(LogNormal(3.5, 1.0), 1.0, 4.7))
        assert sol.x_opt == pytest.approx(4.7, abs=1e-6)


class TestFigure5StaticNormal:
    """Static strategy, Normal tasks (Section 4.2.1 / Figure 5):
    mu=3, sigma=0.5, mu_C=5, sigma_C=0.4, R=30."""

    @pytest.fixture
    def strat(self):
        return StaticStrategy(30.0, Normal(3.0, 0.5), truncate(Normal(5.0, 0.4), 0.0))

    def test_f7(self, strat):
        # "f(7) ~= 20.9"
        assert strat.expected_work(7) == pytest.approx(20.9, abs=0.1)

    def test_f8(self, strat):
        # "f(8) ~= 17.6"
        assert strat.expected_work(8) == pytest.approx(17.6, abs=0.1)

    def test_y_opt(self, strat):
        # "f has a maximum y_opt ~= 7.4"
        assert strat.solve().y_opt == pytest.approx(7.4, abs=0.1)

    def test_n_opt(self, strat):
        # "hence n_opt = 7"
        assert strat.solve().n_opt == 7


class TestFigure6StaticGamma:
    """Static strategy, Gamma tasks (Section 4.2.2 / Figure 6):
    k=1, theta=0.5, mu_C=2, sigma_C=0.4, R=10."""

    @pytest.fixture
    def strat(self):
        return StaticStrategy(10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))

    def test_g11(self, strat):
        # "g(11) ~= 4.77"
        assert strat.expected_work(11) == pytest.approx(4.77, abs=0.02)

    def test_g12(self, strat):
        # "g(12) ~= 4.82"
        assert strat.expected_work(12) == pytest.approx(4.82, abs=0.02)

    def test_y_opt(self, strat):
        # "g has a maximum y_opt ~= 11.8"
        assert strat.solve().y_opt == pytest.approx(11.8, abs=0.15)

    def test_n_opt(self, strat):
        # "hence n_opt = 12"
        assert strat.solve().n_opt == 12


class TestFigure7StaticPoisson:
    """Static strategy, Poisson tasks (Section 4.2.3 / Figure 7):
    lambda=3, mu_C=5, sigma_C=0.4, R=29."""

    @pytest.fixture
    def strat(self):
        return StaticStrategy(29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0))

    def test_h5(self, strat):
        # "h(5) ~= 14.6"
        assert strat.expected_work(5) == pytest.approx(14.6, abs=0.1)

    def test_h6(self, strat):
        # "h(6) ~= 15.8"
        assert strat.expected_work(6) == pytest.approx(15.8, abs=0.1)

    def test_y_opt(self, strat):
        # "h has a maximum y_opt ~= 5.98"
        assert strat.solve().y_opt == pytest.approx(5.98, abs=0.05)

    def test_n_opt(self, strat):
        # "hence n_opt = 6"
        assert strat.solve().n_opt == 6


class TestFigures8to10Dynamic:
    """Dynamic strategy crossings (Section 4.3 / Figures 8-10)."""

    def test_fig8_truncated_normal(self):
        # "the two graphs intersect at W_int ~= 20.3"
        dyn = DynamicStrategy(
            29.0, truncate(Normal(3.0, 0.5), 0.0), truncate(Normal(5.0, 0.4), 0.0)
        )
        assert dyn.crossing_point() == pytest.approx(20.3, abs=0.1)

    def test_fig9_gamma(self):
        # "the two graphs intersect at W_int ~= 6.4"
        dyn = DynamicStrategy(
            10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0)
        )
        assert dyn.crossing_point() == pytest.approx(6.4, abs=0.1)

    def test_fig10_poisson(self):
        # "the two graphs intersect at W_int ~= 18.9"
        dyn = DynamicStrategy(
            29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0)
        )
        assert dyn.crossing_point() == pytest.approx(18.9, abs=0.1)
