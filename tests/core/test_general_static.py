"""Unit tests for the general (non-IID) static solver."""

import pytest

from repro.core import GeneralStaticSolver, StaticStrategy
from repro.distributions import Gamma, Normal, Uniform, truncate
from repro.workflows import LinearWorkflow, WorkflowTask


@pytest.fixture
def iid_chain(paper_gamma_tasks, paper_gamma_checkpoint_law):
    return LinearWorkflow.iid(paper_gamma_tasks, paper_gamma_checkpoint_law)


@pytest.fixture
def hetero_chain():
    return LinearWorkflow(
        [
            WorkflowTask("prep", Gamma(4.0, 0.5), truncate(Normal(1.0, 0.2), 0.0)),
            WorkflowTask("solve", Uniform(0.5, 1.5), truncate(Normal(3.0, 0.4), 0.0)),
            WorkflowTask("post", Gamma(2.0, 0.5), truncate(Normal(0.5, 0.1), 0.0)),
        ]
    )


class TestIIDConsistency:
    """On an IID cyclic chain the general solver must reproduce the
    Section 4.2 static strategy exactly."""

    def test_matches_static_strategy_values(
        self, iid_chain, paper_gamma_tasks, paper_gamma_checkpoint_law
    ):
        gen = GeneralStaticSolver(10.0, iid_chain)
        ref = StaticStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)
        for k in (3, 8, 12):
            assert gen.expected_work(k) == pytest.approx(ref.expected_work(k), rel=5e-3)

    def test_matches_static_strategy_optimum(
        self, iid_chain, paper_gamma_tasks, paper_gamma_checkpoint_law
    ):
        gen = GeneralStaticSolver(10.0, iid_chain)
        ref = StaticStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)
        assert gen.solve("exact").k_opt == ref.solve().n_opt


class TestHeterogeneousChain:
    def test_exact_solution_dominates_all_k(self, hetero_chain):
        solver = GeneralStaticSolver(6.0, hetero_chain)
        sol = solver.solve("exact")
        for k, v in sol.evaluations.items():
            assert sol.expected_work_opt >= v - 1e-12

    def test_acyclic_horizon_is_chain_length(self, hetero_chain):
        solver = GeneralStaticSolver(6.0, hetero_chain)
        assert solver.max_stages == 3
        with pytest.raises(ValueError, match="exceeds max_stages"):
            solver.expected_work(4)

    def test_checkpoint_law_is_stage_specific(self):
        """Stopping after a stage with a cheap checkpoint must be worth
        more than after an equal-duration stage with a pricey one."""
        cheap = truncate(Normal(0.3, 0.05), 0.0)
        pricey = truncate(Normal(3.0, 0.4), 0.0)
        task = Gamma(4.0, 0.5)  # mean 2
        wf_cheap = LinearWorkflow([WorkflowTask("a", task, cheap)])
        wf_pricey = LinearWorkflow([WorkflowTask("a", task, pricey)])
        R = 4.0
        v_cheap = GeneralStaticSolver(R, wf_cheap).expected_work(1)
        v_pricey = GeneralStaticSolver(R, wf_pricey).expected_work(1)
        assert v_cheap > v_pricey

    def test_methods_agree_on_argmax_here(self, hetero_chain):
        # On this easy instance all three methods pick the same stage.
        solver = GeneralStaticSolver(6.0, hetero_chain)
        ks = {m: solver.solve(m).k_opt for m in ("exact", "clt", "mean")}
        assert len(set(ks.values())) == 1

    def test_mean_heuristic_overestimates_value(self, hetero_chain):
        # Pretending durations are deterministic ignores overrun risk,
        # so the mean heuristic's value estimate is optimistic.
        solver = GeneralStaticSolver(6.0, hetero_chain)
        exact = solver.solve("exact")
        mean = solver.solve("mean")
        assert mean.expected_work_opt >= exact.expected_work_opt - 1e-9

    def test_heuristic_regret_nonnegative(self, hetero_chain):
        solver = GeneralStaticSolver(6.0, hetero_chain)
        for m in ("clt", "mean"):
            regret, heur, exact = solver.heuristic_regret(m)
            assert regret >= -1e-9
            assert exact.method == "exact"
            assert heur.method == m

    def test_regret_can_be_positive(self):
        """A chain engineered so the CLT heuristic picks the wrong stage.

        Stage 2 is extremely skewed (Gamma with shape 0.25: most mass
        near 0, a heavy right tail). The Normal approximation puts
        substantial mass at *negative* durations and far too little near
        0, so it badly underestimates the chance that stage 2 finishes
        in time — it stops at stage 1, while the exact convolution knows
        continuing wins in expectation.
        """
        safe = truncate(Normal(1.0, 0.05), 0.0)
        ckpt = truncate(Normal(0.5, 0.05), 0.0)
        risky = Gamma(0.25, 8.0)  # mean 2, sd 4: hugely skewed
        wf = LinearWorkflow(
            [
                WorkflowTask("a", safe, ckpt),
                WorkflowTask("b", risky, ckpt),
            ]
        )
        solver = GeneralStaticSolver(4.0, wf)
        regret, heur, exact = solver.heuristic_regret("clt")
        assert exact.k_opt == 2
        assert heur.k_opt == 1
        assert regret > 0.1

    def test_cyclic_chain_supported(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        wf = LinearWorkflow.iid(paper_gamma_tasks, paper_gamma_checkpoint_law)
        solver = GeneralStaticSolver(10.0, wf, max_stages=20)
        sol = solver.solve("clt")
        assert 1 <= sol.k_opt <= 20

    def test_unknown_method_rejected(self, hetero_chain):
        solver = GeneralStaticSolver(6.0, hetero_chain)
        with pytest.raises(ValueError, match="unknown method"):
            solver.expected_work(1, method="magic")
