"""Unit tests for the Section 3 preemptible solver."""

import math

import numpy as np
import pytest

from repro.core import preemptible
from repro.core.preemptible import (
    MarginSolution,
    expected_work,
    exponential_optimal_margin,
    numeric_optimal_margin,
    pessimistic_expected_work,
    solve,
    uniform_optimal_margin,
)
from repro.distributions import (
    Empirical,
    Exponential,
    LogNormal,
    Normal,
    Uniform,
    Weibull,
    truncate,
)


class TestExpectedWork:
    """Equation (1): E(W(X)) = (R - X) F_C(X)."""

    def test_uniform_closed_form(self):
        # Equation (2): (X-a)/(b-a) * (R-X) on [a, b].
        law = Uniform(1.0, 7.5)
        X = np.linspace(1.0, 7.5, 14)
        expected = (X - 1.0) / 6.5 * (10.0 - X)
        np.testing.assert_allclose(expected_work(10.0, law, X), expected, rtol=1e-12)

    def test_linear_decrease_beyond_b(self):
        # For X > b the checkpoint always fits: E(W(X)) = R - X.
        law = Uniform(1.0, 5.0)
        X = np.array([5.0, 6.0, 8.0, 10.0])
        np.testing.assert_allclose(expected_work(10.0, law, X), 10.0 - X, rtol=1e-12)

    def test_zero_at_and_below_a(self):
        law = Uniform(1.0, 5.0)
        assert float(expected_work(10.0, law, 1.0)) == 0.0
        assert float(expected_work(10.0, law, 0.5)) == 0.0

    def test_zero_at_R(self):
        law = Uniform(1.0, 5.0)
        assert float(expected_work(10.0, law, 10.0)) == 0.0

    def test_rejects_margin_outside_reservation(self):
        with pytest.raises(ValueError, match=r"\[0, R\]"):
            expected_work(10.0, Uniform(1.0, 5.0), 11.0)

    def test_rejects_unbounded_law(self):
        with pytest.raises(ValueError, match="bounded support"):
            expected_work(10.0, Exponential(1.0), 3.0)

    def test_rejects_support_past_reservation(self):
        with pytest.raises(ValueError, match="exceeds the reservation"):
            expected_work(10.0, Uniform(1.0, 12.0), 3.0)

    def test_rejects_zero_lower_bound(self):
        with pytest.raises(ValueError, match="0 < a < b"):
            expected_work(10.0, Uniform(0.0, 5.0), 3.0)

    def test_nonnegative_everywhere(self):
        law = truncate(Normal(3.5, 1.0), 1.0, 7.0)
        X = np.linspace(1.0, 10.0, 50)
        assert np.all(expected_work(10.0, law, X) >= 0.0)


class TestUniformOptimum:
    """Section 3.2.1: X_opt = min((R + a)/2, b)."""

    def test_interior_case(self):
        assert uniform_optimal_margin(1.0, 7.5, 10.0) == pytest.approx(5.5)

    def test_boundary_case(self):
        assert uniform_optimal_margin(1.0, 5.0, 10.0) == pytest.approx(5.0)

    def test_switch_point(self):
        # Interior iff R < 2b - a.
        a, b = 1.0, 5.0
        assert uniform_optimal_margin(a, b, 2 * b - a - 0.1) < b
        assert uniform_optimal_margin(a, b, 2 * b - a + 0.1) == b

    def test_beats_all_grid_points(self):
        a, b, R = 1.0, 7.5, 10.0
        law = Uniform(a, b)
        x_opt = uniform_optimal_margin(a, b, R)
        best = float(expected_work(R, law, x_opt))
        grid = np.linspace(a, R, 1001)
        assert best >= float(expected_work(R, law, grid).max()) - 1e-9


class TestExponentialOptimum:
    """Section 3.2.2: Lambert-W closed form."""

    def test_interior_case_matches_numeric(self):
        lam, a, b, R = 0.5, 1.0, 5.0, 10.0
        law = truncate(Exponential(lam), a, b)
        closed = exponential_optimal_margin(lam, a, b, R)
        numeric = numeric_optimal_margin(R, law)
        assert closed == pytest.approx(numeric, abs=1e-6)

    def test_boundary_case(self):
        # Figure 2(b): a=1, b=3, R=10 -> X_opt = b.
        assert exponential_optimal_margin(0.5, 1.0, 3.0, 10.0) == pytest.approx(3.0)

    def test_derivative_zero_at_optimum(self):
        lam, a, b, R = 0.5, 1.0, 5.0, 10.0
        x = exponential_optimal_margin(lam, a, b, R)
        # d/dX [(e^{-la} - e^{-lX})(R - X)] = 0 at the interior optimum.
        d = -(math.exp(-lam * a) - math.exp(-lam * x)) + lam * math.exp(-lam * x) * (R - x)
        assert d == pytest.approx(0.0, abs=1e-9)

    def test_large_rate_stability(self):
        # Forces the asymptotic Lambert branch (exp overflow regime).
        x = exponential_optimal_margin(100.0, 1.0, 20.0, 2000.0)
        assert 1.0 <= x <= 20.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="> 0"):
            exponential_optimal_margin(-1.0, 1.0, 5.0, 10.0)


class TestNumericOptimum:
    def test_agrees_with_uniform_closed_form(self):
        law = Uniform(1.0, 7.5)
        assert numeric_optimal_margin(10.0, law) == pytest.approx(5.5, abs=1e-6)

    def test_normal_interior(self):
        law = truncate(Normal(3.5, 1.0), 1.0, 7.0)
        x = numeric_optimal_margin(10.0, law)
        assert 1.0 < x < 7.0
        # Must dominate a dense scan.
        grid = np.linspace(1.0, 7.0, 2001)
        vals = expected_work(10.0, law, grid)
        assert float(expected_work(10.0, law, x)) >= float(vals.max()) - 1e-9

    def test_normal_boundary(self):
        # Figure 3(b): b = 4.7 binds.
        law = truncate(Normal(3.5, 1.0), 1.0, 4.7)
        assert numeric_optimal_margin(10.0, law) == pytest.approx(4.7, abs=1e-6)

    def test_lognormal_both_cases(self):
        interior = truncate(LogNormal(1.0, 0.5), 1.0, 7.0)
        x1 = numeric_optimal_margin(10.0, interior)
        assert 1.0 < x1 < 7.0
        boundary = truncate(LogNormal(1.2, 0.3), 1.0, 4.0)
        x2 = numeric_optimal_margin(10.0, boundary)
        grid = np.linspace(1.0, 4.0, 1001)
        vals = expected_work(10.0, boundary, grid)
        assert float(expected_work(10.0, boundary, x2)) >= float(vals.max()) - 1e-9

    def test_weibull_supported(self):
        law = truncate(Weibull(1.5, 3.0), 1.0, 6.0)
        x = numeric_optimal_margin(10.0, law)
        assert 1.0 <= x <= 6.0

    def test_empirical_law_supported(self, rng):
        data = np.clip(rng.normal(4.0, 0.8, 400), 1.5, 6.5)
        law = Empirical(data)
        x = numeric_optimal_margin(10.0, law)
        assert law.lower <= x <= law.upper


class TestSolve:
    def test_dispatch_uniform_closed_form(self):
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.method == "closed-form"
        assert sol.x_opt == pytest.approx(5.5)

    def test_dispatch_truncated_exponential(self):
        sol = solve(10.0, truncate(Exponential(0.5), 1.0, 5.0))
        assert sol.method == "closed-form"

    def test_dispatch_numeric(self):
        sol = solve(10.0, truncate(Normal(3.5, 1.0), 1.0, 7.0))
        assert sol.method == "numeric"

    def test_gain_definition(self):
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.gain == pytest.approx(sol.expected_work_opt / sol.pessimistic_work)

    def test_paper_80_percent_claim(self):
        # Figure 1(a): pessimistic reaches only ~80% of optimal.
        sol = solve(10.0, Uniform(1.0, 7.5))
        assert sol.pessimistic_work / sol.expected_work_opt == pytest.approx(0.80, abs=0.005)

    def test_gain_at_least_one(self):
        # The optimum can never lose to the pessimistic margin.
        for law in [
            Uniform(1.0, 5.0),
            truncate(Exponential(0.5), 1.0, 3.0),
            truncate(Normal(3.5, 1.0), 1.0, 4.7),
        ]:
            assert solve(10.0, law).gain >= 1.0 - 1e-12

    def test_infinite_gain_when_b_equals_R(self):
        sol = solve(10.0, Uniform(1.0, 10.0))
        assert math.isinf(sol.gain)
        assert sol.pessimistic_work == 0.0

    def test_at_worst_case_flag(self):
        assert solve(10.0, Uniform(1.0, 5.0)).at_worst_case
        assert not solve(10.0, Uniform(1.0, 7.5)).at_worst_case

    def test_pessimistic_work(self):
        assert pessimistic_expected_work(10.0, Uniform(1.0, 7.5)) == pytest.approx(2.5)

    def test_summary_renders(self):
        s = solve(10.0, Uniform(1.0, 7.5)).summary()
        assert "X_opt" in s and "gain" in s

    def test_solution_is_frozen(self):
        sol = solve(10.0, Uniform(1.0, 7.5))
        with pytest.raises(AttributeError):
            sol.x_opt = 0.0
