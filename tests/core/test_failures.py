"""Unit tests for the fail-stop extension's analytic helpers."""

import math

import numpy as np
import pytest

from repro.core import (
    daly_period,
    final_only_expected_work,
    periodic_waste_rate,
    young_period,
)
from repro.core.preemptible import expected_work
from repro.distributions import Normal, Uniform, truncate


class TestPeriods:
    def test_young_formula(self):
        assert young_period(5.0, 0.01) == pytest.approx(math.sqrt(2 * 5.0 / 0.01))

    def test_young_decreases_with_failure_rate(self):
        assert young_period(5.0, 0.1) < young_period(5.0, 0.01)

    def test_young_increases_with_checkpoint_cost(self):
        assert young_period(10.0, 0.01) > young_period(5.0, 0.01)

    def test_daly_close_to_young_for_rare_failures(self):
        # C << MTBF: the refinement is a small correction.
        y = young_period(5.0, 1e-4)
        d = daly_period(5.0, 1e-4)
        assert d == pytest.approx(y, rel=0.02)

    def test_daly_below_young_for_frequent_failures(self):
        assert daly_period(5.0, 0.05) < young_period(5.0, 0.05)

    def test_daly_fallback_beyond_validity(self):
        # C >= 2 MTBF: falls back to Young.
        assert daly_period(5.0, 1.0) == young_period(5.0, 1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            young_period(0.0, 0.01)
        with pytest.raises(ValueError):
            daly_period(5.0, 0.0)


class TestFinalOnlyExpectedWork:
    def test_zero_rate_reduces_to_equation_1(self):
        law = Uniform(1.0, 7.5)
        for X in (3.0, 5.5, 7.0):
            assert final_only_expected_work(10.0, law, X, 0.0) == pytest.approx(
                float(expected_work(10.0, law, X)), rel=1e-12
            )

    def test_decreases_with_failure_rate(self):
        law = truncate(Normal(5.0, 0.4), 0.0)
        vals = [final_only_expected_work(100.0, law, 6.0, lam) for lam in (0.0, 0.01, 0.05)]
        assert vals[0] > vals[1] > vals[2]

    def test_failure_discount_factor(self):
        # With a Deterministic-like (tight) checkpoint law the discount
        # is close to exp(-lam * (R - X + C)).
        law = truncate(Normal(5.0, 0.01), 0.0)
        R, X, lam = 50.0, 6.0, 0.02
        base = final_only_expected_work(R, law, X, 0.0)
        with_f = final_only_expected_work(R, law, X, lam)
        assert with_f / base == pytest.approx(math.exp(-lam * (R - X + 5.0)), rel=0.01)

    def test_infeasible_margin_zero(self):
        law = truncate(Normal(5.0, 0.4), 2.0)
        assert final_only_expected_work(50.0, law, 1.0, 0.01) == 0.0

    def test_rejects_margin_beyond_R(self):
        law = Uniform(1.0, 5.0)
        with pytest.raises(ValueError, match="exceeds"):
            final_only_expected_work(10.0, law, 11.0, 0.0)


class TestWasteRate:
    def test_minimum_at_young_period_minus_C(self):
        # Exact argmin of the waste model: d/dT gives (T + C)^2 = 2C/lam,
        # i.e. T* = sqrt(2 C / lam) - C; Young's formula drops the -C
        # (first-order in C << T).
        C, lam = 5.0, 0.01
        T_star = young_period(C, lam) - C
        grid = np.linspace(0.2 * T_star, 3.0 * T_star, 400)
        waste = [periodic_waste_rate(float(t), C, lam) for t in grid]
        best = float(grid[int(np.argmin(waste))])
        assert best == pytest.approx(T_star, rel=0.05)

    def test_young_period_within_percent_of_exact_argmin(self):
        # The classic claim: for C << MTBF, Young's T is near-optimal.
        C, lam = 5.0, 1e-4
        exact_argmin = np.sqrt(2 * C / lam) - C
        assert young_period(C, lam) == pytest.approx(exact_argmin, rel=0.02)

    def test_zero_failure_rate_waste_is_overhead_only(self):
        assert periodic_waste_rate(10.0, 5.0, 0.0) == pytest.approx(5.0 / 15.0)

    def test_recovery_adds_linear_term(self):
        with_rec = periodic_waste_rate(10.0, 5.0, 0.01, recovery_seconds=3.0)
        without = periodic_waste_rate(10.0, 5.0, 0.01)
        assert with_rec - without == pytest.approx(0.01 * 3.0)
