"""Unit tests for the fail-stop extension's analytic helpers."""

import math

import numpy as np
import pytest

from repro.core import (
    FailureAwareDynamicPolicy,
    FailureAwareDynamicStrategy,
    PredictionWindow,
    RestartPolicy,
    WindowPredictor,
    daly_period,
    effective_rates,
    final_only_expected_work,
    periodic_expected_work,
    periodic_waste_rate,
    restart_expected_work,
    young_period,
)
from repro.core.dynamic import DynamicStrategy
from repro.core.preemptible import expected_work
from repro.distributions import Deterministic, Gamma, Normal, Uniform, truncate


class TestPeriods:
    def test_young_formula(self):
        assert young_period(5.0, 0.01) == pytest.approx(math.sqrt(2 * 5.0 / 0.01))

    def test_young_decreases_with_failure_rate(self):
        assert young_period(5.0, 0.1) < young_period(5.0, 0.01)

    def test_young_increases_with_checkpoint_cost(self):
        assert young_period(10.0, 0.01) > young_period(5.0, 0.01)

    def test_daly_close_to_young_for_rare_failures(self):
        # C << MTBF: the refinement is a small correction.
        y = young_period(5.0, 1e-4)
        d = daly_period(5.0, 1e-4)
        assert d == pytest.approx(y, rel=0.02)

    def test_daly_below_young_for_frequent_failures(self):
        assert daly_period(5.0, 0.05) < young_period(5.0, 0.05)

    def test_daly_fallback_beyond_validity(self):
        # C >= 2 MTBF: falls back to Young.
        assert daly_period(5.0, 1.0) == young_period(5.0, 1.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            young_period(0.0, 0.01)
        with pytest.raises(ValueError):
            daly_period(5.0, 0.0)


class TestFinalOnlyExpectedWork:
    def test_zero_rate_reduces_to_equation_1(self):
        law = Uniform(1.0, 7.5)
        for X in (3.0, 5.5, 7.0):
            assert final_only_expected_work(10.0, law, X, 0.0) == pytest.approx(
                float(expected_work(10.0, law, X)), rel=1e-12
            )

    def test_decreases_with_failure_rate(self):
        law = truncate(Normal(5.0, 0.4), 0.0)
        vals = [final_only_expected_work(100.0, law, 6.0, lam) for lam in (0.0, 0.01, 0.05)]
        assert vals[0] > vals[1] > vals[2]

    def test_failure_discount_factor(self):
        # With a Deterministic-like (tight) checkpoint law the discount
        # is close to exp(-lam * (R - X + C)).
        law = truncate(Normal(5.0, 0.01), 0.0)
        R, X, lam = 50.0, 6.0, 0.02
        base = final_only_expected_work(R, law, X, 0.0)
        with_f = final_only_expected_work(R, law, X, lam)
        assert with_f / base == pytest.approx(math.exp(-lam * (R - X + 5.0)), rel=0.01)

    def test_infeasible_margin_zero(self):
        law = truncate(Normal(5.0, 0.4), 2.0)
        assert final_only_expected_work(50.0, law, 1.0, 0.01) == 0.0

    def test_rejects_margin_beyond_R(self):
        law = Uniform(1.0, 5.0)
        with pytest.raises(ValueError, match="exceeds"):
            final_only_expected_work(10.0, law, 11.0, 0.0)


class TestWasteRate:
    def test_minimum_at_young_period_minus_C(self):
        # Exact argmin of the waste model: d/dT gives (T + C)^2 = 2C/lam,
        # i.e. T* = sqrt(2 C / lam) - C; Young's formula drops the -C
        # (first-order in C << T).
        C, lam = 5.0, 0.01
        T_star = young_period(C, lam) - C
        grid = np.linspace(0.2 * T_star, 3.0 * T_star, 400)
        waste = [periodic_waste_rate(float(t), C, lam) for t in grid]
        best = float(grid[int(np.argmin(waste))])
        assert best == pytest.approx(T_star, rel=0.05)

    def test_young_period_within_percent_of_exact_argmin(self):
        # The classic claim: for C << MTBF, Young's T is near-optimal.
        C, lam = 5.0, 1e-4
        exact_argmin = np.sqrt(2 * C / lam) - C
        assert young_period(C, lam) == pytest.approx(exact_argmin, rel=0.02)

    def test_zero_failure_rate_waste_is_overhead_only(self):
        assert periodic_waste_rate(10.0, 5.0, 0.0) == pytest.approx(5.0 / 15.0)

    def test_recovery_adds_linear_term(self):
        with_rec = periodic_waste_rate(10.0, 5.0, 0.01, recovery_seconds=3.0)
        without = periodic_waste_rate(10.0, 5.0, 0.01)
        assert with_rec - without == pytest.approx(0.01 * 3.0)


@pytest.fixture
def paper_task():
    return truncate(Normal(3.0, 0.5), 0.0)


@pytest.fixture
def paper_ckpt():
    return truncate(Normal(5.0, 0.4), 0.0)


class TestFailureAwareDynamicStrategy:
    def test_zero_rate_reduces_to_paper_rule(self, paper_task, paper_ckpt):
        """The lam = 0 degeneracy: every quantity collapses to the
        failure-free DynamicStrategy, including the Fig. 8 crossing."""
        aware = FailureAwareDynamicStrategy(29.0, paper_task, paper_ckpt, 0.0)
        paper = DynamicStrategy(29.0, paper_task, paper_ckpt)
        for w in (5.0, 12.0, 20.0, 25.0):
            assert float(aware.expected_if_checkpoint(w)) == pytest.approx(
                float(paper.expected_if_checkpoint(w)), rel=1e-9
            )
            assert aware.expected_if_continue(w) == pytest.approx(
                paper.expected_if_continue(w), rel=1e-3
            )
            assert aware.should_checkpoint(w) == paper.should_checkpoint(w)
        assert aware.crossing_point() == pytest.approx(
            paper.crossing_point(), abs=1e-6
        )

    def test_crossing_decreases_with_failure_rate(self, paper_task, paper_ckpt):
        # Strikes make gambling on another task riskier: the rule
        # checkpoints earlier as the hazard grows.
        crossings = [
            FailureAwareDynamicStrategy(29.0, paper_task, paper_ckpt, lam).crossing_point()
            for lam in (0.0, 0.02, 0.08)
        ]
        assert crossings[0] > crossings[1] > crossings[2]

    def test_advantage_is_linear_in_unbanked_work(self, paper_task, paper_ckpt):
        # advantage(w) = w*k(R-w) - m(R-w): consistency of the two faces.
        strat = FailureAwareDynamicStrategy(29.0, paper_task, paper_ckpt, 0.03)
        for w in (5.0, 15.0, 22.0):
            k, m = strat._coefficients(29.0 - w)
            assert strat.advantage(w) == pytest.approx(w * k - m, rel=1e-9)
            assert strat.advantage(w) == pytest.approx(
                float(strat.expected_if_checkpoint(w)) - strat.expected_if_continue(w),
                abs=1e-6,
            )

    def test_decision_coefficients_interpolate_the_exact_rule(
        self, paper_task, paper_ckpt
    ):
        strat = FailureAwareDynamicStrategy(29.0, paper_task, paper_ckpt, 0.03)
        b_grid, k, m = strat.decision_coefficients(points=257)
        for w in np.linspace(1.0, 28.0, 19):
            b = 29.0 - w
            kb = float(np.interp(b, b_grid, k))
            mb = float(np.interp(b, b_grid, m))
            assert (w * kb >= mb) == strat.should_checkpoint(float(w))


class TestWindowPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowPredictor(1.2, 0.8, 5.0)
        with pytest.raises(ValueError, match="precision"):
            WindowPredictor(0.5, 0.0, 5.0)
        with pytest.raises(ValueError):
            WindowPredictor(0.5, 0.8, 0.0)
        with pytest.raises(ValueError):
            WindowPredictor(0.5, 0.8, 5.0, lead=6.0)  # lead beyond width

    def test_false_alarm_rate_formula(self):
        p = WindowPredictor(0.8, 0.7, 6.0)
        lam = 0.03
        assert p.false_alarm_rate(lam) == pytest.approx(0.8 * lam * 0.3 / 0.7)
        assert WindowPredictor(0.8, 1.0, 6.0).false_alarm_rate(lam) == 0.0

    def test_true_windows_cover_their_failures(self):
        p = WindowPredictor(1.0, 1.0, 6.0, lead=4.0, seed=3)
        fails = np.array([10.0, 30.0, 55.0])
        wins = p.windows(fails, 100.0, 0.03)
        assert len(wins) == 3  # recall 1, precision 1: no noise
        assert all(w.true_positive for w in wins)
        for f, w in zip(fails, wins):
            assert w.contains(f)
            assert w.end - w.start == pytest.approx(6.0)
            assert w.start == pytest.approx(f - 4.0)

    def test_zero_recall_predicts_nothing(self):
        p = WindowPredictor(0.0, 1.0, 6.0, seed=3)
        assert p.windows(np.array([10.0, 30.0]), 100.0, 0.03) == []

    def test_window_stream_is_seeded(self):
        fails = np.array([12.0, 40.0, 71.0])
        a = WindowPredictor(0.7, 0.6, 5.0, seed=9).windows(fails, 100.0, 0.05)
        b = WindowPredictor(0.7, 0.6, 5.0, seed=9).windows(fails, 100.0, 0.05)
        assert a == b

    def test_prediction_window_contains(self):
        w = PredictionWindow(2.0, 5.0, True)
        assert w.contains(2.0) and w.contains(5.0) and not w.contains(5.1)


class TestEffectiveRates:
    def test_no_predictor_is_raw_rate(self):
        assert effective_rates(0.04, None) == (0.04, 0.04)

    def test_mass_conservation(self):
        # Hazard averaged over window coverage must recover the raw lam.
        p = WindowPredictor(0.8, 0.7, 6.0)
        lam = 0.03
        rate_in, rate_out = effective_rates(lam, p)
        cov = p.window_fraction(lam)
        assert rate_in * cov + rate_out * (1.0 - cov) == pytest.approx(lam)

    def test_perfect_recall_empties_the_outside(self):
        rate_in, rate_out = effective_rates(0.03, WindowPredictor(1.0, 1.0, 6.0))
        assert rate_out == 0.0
        assert rate_in == pytest.approx(1.0 / 6.0)

    def test_full_coverage_rejected(self):
        # r*lam*width/p >= 1: windows would blanket the timeline.
        with pytest.raises(ValueError, match="cover"):
            effective_rates(0.5, WindowPredictor(1.0, 0.5, 4.0))


class TestRestartExpectedWork:
    def test_zero_rate_reduces_to_final_only(self):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        assert restart_expected_work(50.0, ck, 4.0, 0.0) == pytest.approx(
            final_only_expected_work(50.0, ck, 4.0, 0.0), rel=1e-12
        )

    def test_decreases_with_failure_rate(self):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        vals = [
            restart_expected_work(100.0, ck, 5.0, lam, recovery=2.0)
            for lam in (0.005, 0.02, 0.08)
        ]
        assert vals[0] > vals[1] > vals[2]

    def test_recovery_cost_hurts(self):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        free = restart_expected_work(100.0, ck, 5.0, 0.02, recovery=0.0)
        paid = restart_expected_work(100.0, ck, 5.0, 0.02, recovery=5.0)
        assert paid < free

    def test_bounded_by_attempt_work(self):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        assert restart_expected_work(100.0, ck, 5.0, 0.01) <= 95.0

    def test_rejects_margin_beyond_R(self):
        with pytest.raises(ValueError, match="exceeds"):
            restart_expected_work(10.0, Uniform(1.0, 2.0), 11.0, 0.01)


class TestPeriodicExpectedWork:
    def test_zero_rate_deterministic_banks_full_segments(self):
        # C=1, T=10, R=100: nine 11s segments bank 90s of work.
        val = periodic_expected_work(100.0, Deterministic(1.0), 10.0, 0.0)
        assert val == pytest.approx(90.0, abs=0.5)

    def test_decreases_with_failure_rate(self):
        ck = truncate(Normal(2.0, 0.4), 0.0)
        vals = [
            periodic_expected_work(100.0, ck, 14.0, lam, recovery=2.0)
            for lam in (0.005, 0.02, 0.08)
        ]
        assert vals[0] > vals[1] > vals[2]

    def test_young_period_near_argmax(self):
        ck = truncate(Normal(2.0, 0.4), 0.0)
        lam = 0.02
        T_star = young_period(2.0, lam)
        at_star = periodic_expected_work(200.0, ck, T_star, lam, recovery=2.0)
        for T in (0.25 * T_star, 4.0 * T_star):
            assert at_star >= periodic_expected_work(200.0, ck, T, lam, recovery=2.0) - 0.5


class TestFailurePolicies:
    def test_restart_policy_threshold(self):
        pol = RestartPolicy(4.0)
        pol.reset(30.0)
        assert pol.threshold_is_exact
        assert pol.work_threshold(30.0) == 26.0
        assert not pol.should_checkpoint(25.9, 9)
        assert pol.should_checkpoint(26.0, 10)
        assert RestartPolicy(50.0).work_threshold(30.0) == 0.0

    def test_restart_policy_requires_reset(self):
        with pytest.raises(RuntimeError, match="reset"):
            RestartPolicy(4.0).should_checkpoint(1.0, 1)

    def test_failure_aware_policy_zero_rate_matches_paper_rule(
        self, paper_task, paper_ckpt
    ):
        pol = FailureAwareDynamicPolicy(paper_task, paper_ckpt, 0.0, grid_points=257)
        pol.reset(29.0)
        exact = DynamicStrategy(29.0, paper_task, paper_ckpt)
        for w in np.linspace(1.0, 28.0, 19):
            assert pol.should_checkpoint(float(w), 1) == exact.should_checkpoint(
                float(w)
            )
        assert not pol.threshold_is_exact

    def test_proactive_counter_only_counts_window_flips(self):
        task = Gamma(2.0, 1.5)
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        pol = FailureAwareDynamicPolicy(
            task, ck, 0.03, predictor=WindowPredictor(0.9, 0.8, 6.0)
        )
        pol.reset(60.0)
        # A modest segment deep in the budget: the blind curve gambles.
        pol.set_window(False)
        assert not pol.should_checkpoint(8.0, 3)
        assert pol.proactive_decisions == 0
        # Same state inside a window: the in-window hazard checkpoints.
        pol.set_window(True)
        assert pol.should_checkpoint(8.0, 3)
        assert pol.proactive_decisions == 1

    def test_set_window_without_predictor_is_noop(self, paper_task, paper_ckpt):
        pol = FailureAwareDynamicPolicy(paper_task, paper_ckpt, 0.02)
        pol.reset(29.0)
        baseline = pol.should_checkpoint(10.0, 3)
        pol.set_window(True)
        assert pol.should_checkpoint(10.0, 3) == baseline
        assert pol.proactive_decisions == 0
