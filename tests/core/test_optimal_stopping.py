"""Unit tests for the Bellman optimal-stopping extension."""

import math

import numpy as np
import pytest

from repro.core import DynamicStrategy, OptimalStoppingSolver, StaticStrategy
from repro.distributions import Gamma, Normal, Poisson, truncate


@pytest.fixture
def solver_normal(paper_trunc_normal_tasks, paper_checkpoint_law):
    return OptimalStoppingSolver(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)


@pytest.fixture
def solver_poisson(paper_poisson_tasks, paper_checkpoint_law):
    return OptimalStoppingSolver(29.0, paper_poisson_tasks, paper_checkpoint_law)


class TestSolveContinuous:
    def test_value_nonnegative_monotone_structure(self, solver_normal):
        sol = solver_normal.solve()
        assert np.all(sol.value >= -1e-12)
        # V dominates the stop value everywhere (it's a max).
        assert np.all(sol.value >= sol.checkpoint_value - 1e-9)

    def test_value_at_R_is_zero(self, solver_normal):
        sol = solver_normal.solve()
        assert sol.value[-1] == pytest.approx(0.0, abs=1e-9)

    def test_threshold_near_dynamic_crossing(
        self, solver_normal, paper_trunc_normal_tasks, paper_checkpoint_law
    ):
        # For these laws the one-step rule is near-optimal; thresholds agree
        # closely (Figure 8's W_int ~ 20.3).
        dyn = DynamicStrategy(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)
        sol = solver_normal.solve()
        assert sol.threshold == pytest.approx(dyn.crossing_point(), abs=0.3)

    def test_value_dominates_every_threshold_policy(self, solver_normal):
        sol = solver_normal.solve()
        for t in (5.0, 15.0, 20.0, 22.0, 25.0):
            assert sol.value_at_start >= solver_normal.threshold_policy_value(t) - 1e-6

    def test_value_dominates_static_strategy(
        self, paper_trunc_normal_tasks, paper_checkpoint_law
    ):
        sol = OptimalStoppingSolver(
            30.0, paper_trunc_normal_tasks, paper_checkpoint_law
        ).solve()
        static = StaticStrategy(30.0, Normal(3.0, 0.5), paper_checkpoint_law).solve()
        assert sol.value_at_start >= static.expected_work_opt - 0.05

    def test_grid_refinement_converges(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        coarse = OptimalStoppingSolver(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, grid_points=401
        ).solve()
        fine = OptimalStoppingSolver(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, grid_points=3201
        ).solve()
        assert coarse.value_at_start == pytest.approx(fine.value_at_start, rel=5e-3)


class TestSolveDiscrete:
    def test_poisson_threshold_and_value(self, solver_poisson):
        sol = solver_poisson.solve()
        assert 17.0 <= sol.threshold <= 21.0
        assert sol.value_at_start > 0.0

    def test_integer_grid(self, solver_poisson):
        sol = solver_poisson.solve()
        np.testing.assert_array_equal(sol.w_grid, np.arange(0.0, 30.0))

    def test_dominates_dynamic_threshold(
        self, solver_poisson, paper_poisson_tasks, paper_checkpoint_law
    ):
        dyn = DynamicStrategy(29.0, paper_poisson_tasks, paper_checkpoint_law)
        pv = solver_poisson.threshold_policy_value(dyn.crossing_point())
        sol = solver_poisson.solve()
        assert sol.value_at_start >= pv - 1e-9

    def test_policy_value_zero_threshold(self, solver_poisson):
        # Threshold 0: checkpoint immediately with no work -> value 0.
        assert solver_poisson.threshold_policy_value(0.0) == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_rejects_negative_support(self, paper_checkpoint_law):
        with pytest.raises(ValueError, match=r"\[0, inf\)"):
            OptimalStoppingSolver(10.0, Normal(3.0, 0.5), paper_checkpoint_law)

    def test_rejects_tiny_grid(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        with pytest.raises(ValueError, match=">= 8"):
            OptimalStoppingSolver(
                10.0, paper_trunc_normal_tasks, paper_checkpoint_law, grid_points=4
            )

    def test_infeasible_checkpoint_gives_zero_value(self, paper_trunc_normal_tasks):
        # C ~ 100 >> R = 5: nothing can ever be saved.
        law = truncate(Normal(100.0, 1.0), 0.0)
        sol = OptimalStoppingSolver(5.0, paper_trunc_normal_tasks, law).solve()
        assert sol.value_at_start == pytest.approx(0.0, abs=1e-9)
        assert math.isinf(sol.threshold)
