"""Unit tests for risk-sensitive checkpoint objectives."""

import math

import numpy as np
import pytest

from repro.core import (
    TargetProbabilitySolver,
    margin_for_target,
    quantile_optimal_margin,
    success_probability,
)
from repro.core.preemptible import solve
from repro.distributions import Normal, Uniform, truncate


@pytest.fixture
def law():
    return Uniform(1.0, 7.5)


class TestSuccessProbability:
    def test_formula(self, law):
        # P = F_C(X) when R - X >= target.
        assert success_probability(10.0, law, 5.5, 4.0) == pytest.approx(4.5 / 6.5)

    def test_zero_when_target_unreachable(self, law):
        assert success_probability(10.0, law, 7.0, 4.0) == 0.0

    def test_certainty_at_pessimistic_margin(self, law):
        assert success_probability(10.0, law, 7.5, 2.0) == 1.0

    def test_monotone_in_margin_until_infeasible(self, law):
        probs = [success_probability(10.0, law, x, 2.0) for x in (2.0, 4.0, 6.0, 7.5)]
        assert probs == sorted(probs)


class TestMarginForTarget:
    def test_saturates_feasibility(self, law):
        x, p = margin_for_target(10.0, law, 4.0)
        assert x == pytest.approx(6.0)  # R - target
        assert p == pytest.approx(5.0 / 6.5)

    def test_caps_at_b(self, law):
        x, p = margin_for_target(10.0, law, 1.0)
        assert x == pytest.approx(7.5)
        assert p == 1.0

    def test_impossible_target(self, law):
        x, p = margin_for_target(10.0, law, 9.5)
        assert p == 0.0

    def test_dominates_other_margins(self, law):
        target = 4.0
        x_star, p_star = margin_for_target(10.0, law, target)
        for x in np.linspace(1.0, 10.0, 50):
            assert p_star >= success_probability(10.0, law, float(x), target) - 1e-12


class TestQuantileOptimalMargin:
    def test_closed_form(self, law):
        # X* = F_C^{-1}(q).
        x, val = quantile_optimal_margin(10.0, law, 0.5)
        assert x == pytest.approx(float(law.ppf(0.5)))
        assert val == pytest.approx(10.0 - x)

    def test_high_q_recovers_pessimistic(self, law):
        x, _ = quantile_optimal_margin(10.0, law, 0.999)
        assert x == pytest.approx(7.5, abs=0.01)

    def test_low_q_allows_aggressive_margins(self, law):
        x_low, _ = quantile_optimal_margin(10.0, law, 0.05)
        x_high, _ = quantile_optimal_margin(10.0, law, 0.95)
        assert x_low < x_high

    def test_quantile_value_is_attained(self, law, rng):
        # MC: the realized q-quantile of W(X*) matches the reported value.
        from repro.simulation import simulate_preemptible

        q = 0.7
        x, val = quantile_optimal_margin(10.0, law, q)
        saved = simulate_preemptible(10.0, law, x, 200_000, rng)
        # W is two-point: equals val with probability q, else 0. The
        # q-quantile claim is exactly that P(W >= val) = q.
        assert float(np.mean(saved >= val - 1e-9)) == pytest.approx(q, abs=0.01)
        # Probing strictly inside the atom confirms the quantile value.
        assert float(np.quantile(saved, 1.0 - q + 0.02)) == pytest.approx(val, abs=1e-9)

    def test_rejects_degenerate_q(self, law):
        with pytest.raises(ValueError):
            quantile_optimal_margin(10.0, law, 0.0)
        with pytest.raises(ValueError):
            quantile_optimal_margin(10.0, law, 1.0)

    def test_expectation_vs_quantile_tradeoff(self, law):
        """The expectation-optimal margin is not quantile-optimal at
        high q, and vice versa — the core of the extension."""
        exp_sol = solve(10.0, law)
        x_q, _ = quantile_optimal_margin(10.0, law, 0.95)
        assert x_q > exp_sol.x_opt  # safety demands more margin


class TestTargetProbabilitySolver:
    @pytest.fixture
    def solver(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        return TargetProbabilitySolver(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law
        )

    def test_probability_decreases_with_target(self, solver):
        probs = [solver.solve(t).probability for t in (5.0, 15.0, 21.0, 23.5)]
        assert all(p1 >= p2 - 1e-12 for p1, p2 in zip(probs, probs[1:]))

    def test_easy_target_near_certain(self, solver):
        # 6 seconds of work in a 29s reservation with a 5s checkpoint.
        assert solver.solve(6.0).probability > 0.99

    def test_impossible_target_zero(self, solver):
        assert solver.solve(28.0).probability < 1e-6

    def test_stop_region_starts_at_or_after_target(self, solver):
        sol = solver.solve(15.0)
        assert sol.stop_region_start >= 15.0 - 1e-9

    def test_mc_validates_stop_region_policy(self, solver, rng):
        """Simulating the derived threshold policy achieves the solved
        probability (threshold policies are optimal here: the stop
        reward is monotone past the target)."""
        from repro.simulation import simulate_threshold

        target = 18.0
        sol = solver.solve(target)
        saved = simulate_threshold(
            29.0, solver.task_law, solver.checkpoint_law,
            sol.stop_region_start, 150_000, rng,
        )
        mc_prob = float(np.mean(saved >= target - 1e-9))
        assert mc_prob == pytest.approx(sol.probability, abs=0.01)

    def test_beats_expectation_optimal_policy_on_probability(self, solver, rng):
        """The guarantee-maximizing rule achieves a higher P(save >= t)
        than the expectation-optimal stopping rule for a demanding t."""
        from repro.core import OptimalStoppingSolver
        from repro.simulation import simulate_threshold

        target = 23.0
        sol = solver.solve(target)
        exp_threshold = OptimalStoppingSolver(
            29.0, solver.task_law, solver.checkpoint_law
        ).solve().threshold
        exp_saved = simulate_threshold(
            29.0, solver.task_law, solver.checkpoint_law, exp_threshold, 150_000, rng
        )
        exp_prob = float(np.mean(exp_saved >= target))
        assert sol.probability > exp_prob + 0.02

    def test_discrete_tasks_supported(self, paper_poisson_tasks, paper_checkpoint_law):
        solver = TargetProbabilitySolver(29.0, paper_poisson_tasks, paper_checkpoint_law)
        sol = solver.solve(15.0)
        assert 0.0 < sol.probability <= 1.0

    def test_rejects_negative_support(self, paper_checkpoint_law):
        with pytest.raises(ValueError):
            TargetProbabilitySolver(10.0, Normal(3.0, 0.5), paper_checkpoint_law)
