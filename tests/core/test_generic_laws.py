"""The solvers must accept *any* law, not just the paper's families.

These tests run Scenario 1 and Scenario 2 end to end with Weibull,
LogNormal, Beta and Empirical laws — combinations the paper never
instantiates but the library promises to support.
"""

import numpy as np
import pytest

from repro.core import DynamicStrategy, OptimalStoppingSolver, StaticStrategy, solve
from repro.distributions import (
    Beta,
    Empirical,
    LogNormal,
    Weibull,
    truncate,
)
from repro.simulation import SimulationSummary, simulate_fixed_count, simulate_threshold


class TestPreemptibleGenericLaws:
    @pytest.mark.parametrize(
        "law_builder",
        [
            lambda: truncate(Weibull(1.5, 3.0), 1.0, 7.0),
            lambda: Beta(2.0, 5.0, 1.0, 7.0),
            lambda: Beta.from_mode(2.5, 8.0, 1.0, 7.0),
        ],
        ids=["trunc-weibull", "beta", "beta-from-mode"],
    )
    def test_solve_and_mc_agree(self, law_builder, rng):
        from repro.simulation import simulate_preemptible

        law = law_builder()
        sol = solve(10.0, law)
        assert 1.0 <= sol.x_opt <= 7.0
        mc = SimulationSummary.from_samples(
            simulate_preemptible(10.0, law, sol.x_opt, 150_000, rng)
        )
        assert mc.contains(sol.expected_work_opt)

    def test_empirical_checkpoint_law(self, rng):
        data = np.clip(rng.gamma(4.0, 1.0, 800), 1.2, 7.8)
        law = Empirical(data)
        sol = solve(10.0, law)
        assert law.lower <= sol.x_opt <= law.upper
        assert sol.gain >= 1.0


class TestWorkflowGenericLaws:
    def test_weibull_tasks_static(self, paper_checkpoint_law, rng):
        tasks = Weibull(1.5, 2.5)
        strat = StaticStrategy(30.0, tasks, paper_checkpoint_law)
        sol = strat.solve()
        assert sol.n_opt >= 1
        mc = SimulationSummary.from_samples(
            simulate_fixed_count(30.0, tasks, paper_checkpoint_law, sol.n_opt, 150_000, rng)
        )
        assert abs(mc.mean - sol.expected_work_opt) < 4 * mc.sem + 0.05

    def test_lognormal_tasks_dynamic(self, paper_checkpoint_law, rng):
        tasks = LogNormal.from_moments(3.0, 1.0)
        dyn = DynamicStrategy(29.0, tasks, paper_checkpoint_law)
        w_int = dyn.crossing_point()
        assert 0.0 < w_int < 29.0
        bellman = OptimalStoppingSolver(29.0, tasks, paper_checkpoint_law)
        analytic = bellman.threshold_policy_value(w_int)
        mc = SimulationSummary.from_samples(
            simulate_threshold(29.0, tasks, paper_checkpoint_law, w_int, 150_000, rng)
        )
        assert abs(mc.mean - analytic) < 4 * mc.sem + 0.05

    def test_beta_checkpoint_law_in_workflow(self, rng):
        tasks = LogNormal.from_moments(3.0, 0.6)
        ckpt = Beta.from_mode(5.0, 15.0, 3.5, 7.0)
        dyn = DynamicStrategy(29.0, tasks, ckpt)
        w_int = dyn.crossing_point()
        # Worst-case checkpoint is 7: threshold cannot exceed R - a.
        assert 0.0 < w_int <= 29.0 - 3.5 + 1e-6

    def test_weibull_tasks_optimal_stopping_dominates(self, paper_checkpoint_law):
        tasks = Weibull(1.2, 2.5)
        solver = OptimalStoppingSolver(29.0, tasks, paper_checkpoint_law)
        sol = solver.solve()
        dyn = DynamicStrategy(29.0, tasks, paper_checkpoint_law)
        one_step = solver.threshold_policy_value(dyn.crossing_point())
        assert sol.value_at_start >= one_step - 1e-6
