"""Unit tests for the Section 4.2 static strategy."""

import math

import numpy as np
import pytest

from repro.core import StaticStrategy
from repro.distributions import (
    Deterministic,
    Exponential,
    Gamma,
    Normal,
    Poisson,
    Uniform,
    truncate,
)


@pytest.fixture
def fig5(paper_normal_tasks, paper_checkpoint_law):
    return StaticStrategy(30.0, paper_normal_tasks, paper_checkpoint_law)


@pytest.fixture
def fig6(paper_gamma_tasks, paper_gamma_checkpoint_law):
    return StaticStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)


@pytest.fixture
def fig7(paper_poisson_tasks, paper_checkpoint_law):
    return StaticStrategy(29.0, paper_poisson_tasks, paper_checkpoint_law)


class TestConstruction:
    def test_rejects_negative_support_checkpoint(self):
        with pytest.raises(ValueError, match=r"\[0, inf\)"):
            StaticStrategy(10.0, Gamma(1.0, 0.5), Normal(2.0, 0.4))

    def test_rejects_nonpositive_task_mean(self):
        with pytest.raises(ValueError, match="positive mean"):
            StaticStrategy(10.0, Normal(-1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))

    def test_rejects_nonpositive_R(self):
        with pytest.raises(ValueError, match="> 0"):
            StaticStrategy(0.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))

    def test_supports_real_n_flags(self, paper_checkpoint_law):
        assert StaticStrategy(10.0, Normal(3.0, 0.5), paper_checkpoint_law).supports_real_n
        assert StaticStrategy(10.0, Poisson(3.0), paper_checkpoint_law).supports_real_n
        assert not StaticStrategy(10.0, Uniform(1.0, 2.0), paper_checkpoint_law).supports_real_n


class TestExpectedWork:
    def test_success_probability_zero_for_negative_slack(self, fig5):
        assert float(fig5.checkpoint_success_probability(-1.0)) == 0.0
        assert float(fig5.checkpoint_success_probability(0.0)) == 0.0

    def test_monotone_success_probability(self, fig5):
        slacks = np.linspace(0.0, 10.0, 21)
        probs = fig5.checkpoint_success_probability(slacks)
        assert np.all(np.diff(probs) >= -1e-12)

    def test_small_n_almost_always_succeeds(self, fig5):
        # 2 tasks (~6s) in R=30 with C~5: checkpoint nearly always fits,
        # so E(2) ~ 2 * mu = 6.
        assert fig5.expected_work(2) == pytest.approx(6.0, rel=1e-3)

    def test_large_n_yields_nothing(self, fig5):
        # 12 tasks (~36s) never fit in R=30.
        assert fig5.expected_work(12) == pytest.approx(0.0, abs=1e-6)

    def test_deterministic_tasks_closed_form(self, paper_checkpoint_law):
        strat = StaticStrategy(30.0, Deterministic(3.0), paper_checkpoint_law)
        # n=7: S=21, slack 9 >> C: expect 21.
        assert strat.expected_work(7) == pytest.approx(21.0, rel=1e-6)
        # n=11: S=33 > R: expect 0.
        assert strat.expected_work(11) == 0.0

    def test_rejects_nonpositive_n(self, fig5):
        with pytest.raises(ValueError, match="> 0"):
            fig5.expected_work(0)

    def test_generic_law_requires_integer_n(self, paper_checkpoint_law):
        strat = StaticStrategy(10.0, Uniform(0.5, 1.5), paper_checkpoint_law)
        with pytest.raises(ValueError, match="integral"):
            strat.expected_work(2.5)

    def test_generic_law_integer_path(self, paper_checkpoint_law):
        strat = StaticStrategy(10.0, Uniform(0.5, 1.5), paper_checkpoint_law)
        vals = [strat.expected_work(n) for n in range(1, 10)]
        assert max(vals) > 0.0
        assert all(v >= 0.0 for v in vals)

    def test_poisson_discrete_sum(self, fig7):
        # Direct evaluation of the paper's h-sum for n=6.
        from repro.distributions import Poisson as P

        law = P(18.0)
        j = np.arange(0.0, 30.0)
        weights = fig7.checkpoint_success_probability(29.0 - j)
        expected = float(np.sum(j * weights * law.pmf(j)))
        assert fig7.expected_work(6) == pytest.approx(expected, rel=1e-12)


class TestRelaxation:
    def test_relaxed_matches_integer_at_integers(self, fig6):
        for n in (3, 8, 12):
            assert fig6.expected_work(float(n)) == pytest.approx(
                fig6.expected_work(n), rel=1e-9
            )

    def test_relaxed_optimum_bracketed_by_solution(self, fig5):
        y_opt, val = fig5.relaxed_optimum()
        assert 7.0 <= y_opt <= 8.0
        assert val >= fig5.expected_work(7) - 1e-6

    def test_relaxation_unavailable_for_generic(self, paper_checkpoint_law):
        strat = StaticStrategy(10.0, Uniform(0.5, 1.5), paper_checkpoint_law)
        with pytest.raises(NotImplementedError, match="closed task family"):
            strat.relaxed_optimum()


class TestSolve:
    def test_fig5_solution(self, fig5):
        sol = fig5.solve()
        assert sol.n_opt == 7
        assert sol.expected_work_opt == pytest.approx(20.95, abs=0.05)
        assert sol.y_opt == pytest.approx(7.4, abs=0.1)

    def test_fig6_solution(self, fig6):
        sol = fig6.solve()
        assert sol.n_opt == 12
        assert sol.y_opt == pytest.approx(11.8, abs=0.15)

    def test_fig7_solution(self, fig7):
        sol = fig7.solve()
        assert sol.n_opt == 6
        assert sol.y_opt == pytest.approx(5.98, abs=0.05)

    def test_solution_dominates_scan(self, fig6):
        sol = fig6.solve()
        for n in range(1, 30):
            assert sol.expected_work_opt >= fig6.expected_work(n) - 1e-9

    def test_evaluations_recorded(self, fig5):
        sol = fig5.solve()
        assert sol.n_opt in sol.evaluations
        assert sol.evaluations[sol.n_opt] == pytest.approx(sol.expected_work_opt)

    def test_generic_law_solve(self, paper_checkpoint_law):
        strat = StaticStrategy(20.0, Uniform(0.5, 1.5), paper_checkpoint_law)
        sol = strat.solve()
        assert sol.n_opt >= 1
        assert math.isnan(sol.y_opt)

    def test_erlang_vs_gamma_consistency(self, paper_gamma_checkpoint_law):
        # Exponential tasks and their Gamma(1, theta) twin must agree.
        s1 = StaticStrategy(10.0, Exponential(2.0), paper_gamma_checkpoint_law)
        s2 = StaticStrategy(10.0, Gamma(1.0, 0.5), paper_gamma_checkpoint_law)
        for n in (2, 5, 9):
            assert s1.expected_work(n) == pytest.approx(s2.expected_work(n), rel=1e-9)

    def test_summary_renders(self, fig5):
        s = fig5.solve().summary()
        assert "n_opt=7" in s
