"""Unit tests for the policy interfaces."""

import pytest

from repro.core import (
    DynamicPolicy,
    DynamicStrategy,
    FixedMargin,
    OptimalMargin,
    OptimalStoppingPolicy,
    PessimisticMargin,
    StaticCountPolicy,
    StaticOptimalPolicy,
)
from repro.distributions import Exponential, Gamma, Normal, Uniform, truncate


class TestMarginPolicies:
    def test_fixed(self):
        p = FixedMargin(3.0)
        assert p.margin(10.0, Uniform(1.0, 5.0)) == 3.0

    def test_fixed_rejects_exceeding_reservation(self):
        with pytest.raises(ValueError, match="exceeds"):
            FixedMargin(12.0).margin(10.0, Uniform(1.0, 5.0))

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedMargin(-1.0)

    def test_pessimistic_returns_b(self):
        assert PessimisticMargin().margin(10.0, Uniform(1.0, 7.5)) == 7.5

    def test_pessimistic_rejects_unbounded(self):
        with pytest.raises(ValueError, match="bounded"):
            PessimisticMargin().margin(10.0, Exponential(1.0))

    def test_optimal_matches_solver(self):
        assert OptimalMargin().margin(10.0, Uniform(1.0, 7.5)) == pytest.approx(5.5)

    def test_names(self):
        assert PessimisticMargin().name == "pessimistic"
        assert "3" in FixedMargin(3.0).name


class TestStaticCountPolicy:
    def test_checkpoints_at_count(self):
        p = StaticCountPolicy(3)
        p.reset(10.0)
        assert not p.should_checkpoint(5.0, 2)
        assert p.should_checkpoint(5.0, 3)
        assert p.should_checkpoint(5.0, 4)

    def test_fast_path(self):
        assert StaticCountPolicy(5).fixed_task_count(10.0) == 5
        assert StaticCountPolicy(5).work_threshold(10.0) is None

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            StaticCountPolicy(0)


class TestStaticOptimalPolicy:
    def test_matches_static_strategy(self, paper_normal_tasks, paper_checkpoint_law):
        p = StaticOptimalPolicy(paper_normal_tasks, paper_checkpoint_law)
        assert p.fixed_task_count(30.0) == 7

    def test_cache_by_reservation_length(self, paper_normal_tasks, paper_checkpoint_law):
        p = StaticOptimalPolicy(paper_normal_tasks, paper_checkpoint_law)
        assert p.fixed_task_count(30.0) == p.fixed_task_count(30.0)
        assert len(p._cache) == 1

    def test_requires_reset_before_decisions(self, paper_normal_tasks, paper_checkpoint_law):
        p = StaticOptimalPolicy(paper_normal_tasks, paper_checkpoint_law)
        with pytest.raises(RuntimeError, match="reset"):
            p.should_checkpoint(0.0, 0)

    def test_decision_sequence(self, paper_normal_tasks, paper_checkpoint_law):
        p = StaticOptimalPolicy(paper_normal_tasks, paper_checkpoint_law)
        p.reset(30.0)
        assert not p.should_checkpoint(18.0, 6)
        assert p.should_checkpoint(21.0, 7)


class TestDynamicPolicy:
    def test_threshold_matches_strategy(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        p = DynamicPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        dyn = DynamicStrategy(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)
        assert p.work_threshold(29.0) == pytest.approx(dyn.crossing_point())

    def test_threshold_mode_decisions(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        p = DynamicPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        p.reset(29.0)
        w_int = p.work_threshold(29.0)
        assert not p.should_checkpoint(w_int - 1.0, 6)
        assert p.should_checkpoint(w_int + 1.0, 7)

    def test_exact_mode_agrees_with_threshold_mode(
        self, paper_gamma_tasks, paper_gamma_checkpoint_law
    ):
        fast = DynamicPolicy(paper_gamma_tasks, paper_gamma_checkpoint_law)
        exact = DynamicPolicy(paper_gamma_tasks, paper_gamma_checkpoint_law, exact=True)
        fast.reset(10.0)
        exact.reset(10.0)
        for w in (1.0, 4.0, 6.0, 7.0, 9.0):
            assert fast.should_checkpoint(w, 3) == exact.should_checkpoint(w, 3)

    def test_requires_reset(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        p = DynamicPolicy(paper_gamma_tasks, paper_gamma_checkpoint_law)
        with pytest.raises(RuntimeError, match="reset"):
            p.should_checkpoint(1.0, 1)


class TestOptimalStoppingPolicy:
    def test_threshold_available(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        p = OptimalStoppingPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        t = p.work_threshold(29.0)
        assert 18.0 <= t <= 22.0

    def test_decisions(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        p = OptimalStoppingPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        p.reset(29.0)
        t = p.work_threshold(29.0)
        assert not p.should_checkpoint(t - 0.5, 5)
        assert p.should_checkpoint(t + 0.5, 8)

    def test_requires_reset(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        p = OptimalStoppingPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        with pytest.raises(RuntimeError, match="reset"):
            p.should_checkpoint(1.0, 1)
