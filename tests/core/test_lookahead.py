"""Unit tests for the k-step lookahead strategies."""

import pytest

from repro.core import (
    DynamicStrategy,
    LookaheadStrategy,
    OptimalStoppingSolver,
)
from repro.distributions import Gamma, Normal, Poisson, Uniform, truncate


@pytest.fixture
def laws(paper_gamma_tasks, paper_gamma_checkpoint_law):
    return paper_gamma_tasks, paper_gamma_checkpoint_law


class TestHorizonOne:
    """Horizon 1 must reproduce the paper's dynamic rule exactly."""

    def test_crossing_matches_dynamic(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=1)
        dyn = DynamicStrategy(10.0, tasks, ckpt)
        assert la.crossing_point() == pytest.approx(dyn.crossing_point(), abs=1e-6)

    def test_continuation_matches_dynamic(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=1)
        dyn = DynamicStrategy(10.0, tasks, ckpt)
        for w in (1.0, 4.0, 7.0):
            assert la.expected_if_continue_k(w, 1) == pytest.approx(
                dyn.expected_if_continue(w), rel=1e-9
            )

    def test_decisions_match(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=1)
        dyn = DynamicStrategy(10.0, tasks, ckpt)
        for w in (2.0, 6.0, 6.7, 8.0):
            assert la.should_checkpoint(w) == dyn.should_checkpoint(w)


class TestHorizonMonotonicity:
    def test_value_monotone_in_horizon(self, laws):
        tasks, ckpt = laws
        la1 = LookaheadStrategy(10.0, tasks, ckpt, horizon=1)
        la4 = LookaheadStrategy(10.0, tasks, ckpt, horizon=4)
        for w in (0.0, 2.0, 5.0, 7.0):
            v1 = max(la1.best_continuation(w)[1], la1.expected_if_checkpoint(w))
            v4 = max(la4.best_continuation(w)[1], la4.expected_if_checkpoint(w))
            assert v4 >= v1 - 1e-9

    def test_bounded_by_bellman(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=5)
        sol = OptimalStoppingSolver(10.0, tasks, ckpt).solve()
        import numpy as np

        for w in (0.0, 2.0, 5.0):
            v = max(la.best_continuation(w)[1], la.expected_if_checkpoint(w))
            bellman = float(np.interp(w, sol.w_grid, sol.value))
            assert v <= bellman + 5e-3

    def test_deep_lookahead_prefers_multi_task_plans_early(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=6)
        k_star, _ = la.best_continuation(0.0)
        # With no work done, a single task then checkpoint is clearly
        # suboptimal (mean task is 0.5 in a 10s reservation).
        assert k_star > 1


class TestLawSupport:
    def test_poisson_tasks(self, paper_checkpoint_law):
        la = LookaheadStrategy(29.0, Poisson(3.0), paper_checkpoint_law, horizon=3)
        assert 0.0 < la.crossing_point() < 29.0

    def test_generic_tasks_via_fft(self, paper_checkpoint_law):
        la = LookaheadStrategy(29.0, Uniform(2.0, 4.0), paper_checkpoint_law, horizon=3)
        v2 = la.expected_if_continue_k(10.0, 2)
        assert v2 > 0.0

    def test_trunc_normal_tasks_match_fig8_at_horizon1(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        la = LookaheadStrategy(29.0, paper_trunc_normal_tasks, paper_checkpoint_law, horizon=1)
        assert la.crossing_point() == pytest.approx(20.3, abs=0.15)


class TestValidation:
    def test_rejects_bad_horizon(self, laws):
        tasks, ckpt = laws
        with pytest.raises(ValueError):
            LookaheadStrategy(10.0, tasks, ckpt, horizon=0)

    def test_rejects_k_beyond_horizon(self, laws):
        tasks, ckpt = laws
        la = LookaheadStrategy(10.0, tasks, ckpt, horizon=2)
        with pytest.raises(ValueError, match="exceeds horizon"):
            la.expected_if_continue_k(1.0, 3)

    def test_rejects_negative_support(self, paper_checkpoint_law):
        with pytest.raises(ValueError):
            LookaheadStrategy(10.0, Normal(3.0, 0.5), paper_checkpoint_law)
