"""Unit tests for the Section 4.4 continuation advisor."""

import pytest

from repro.core import BillingModel, ContinuationAdvisor
from repro.distributions import Normal, truncate


@pytest.fixture
def laws(paper_trunc_normal_tasks, paper_checkpoint_law):
    return paper_trunc_normal_tasks, paper_checkpoint_law


class TestExpectedAdditionalWork:
    def test_zero_when_checkpoint_cannot_fit(self, paper_trunc_normal_tasks):
        # C_min = 2 via truncation: 1.5s of budget can never host a ckpt.
        law = truncate(Normal(5.0, 0.4), 2.0)
        adv = ContinuationAdvisor(paper_trunc_normal_tasks, law)
        assert adv.expected_additional_work(1.5) == 0.0

    def test_positive_with_ample_budget(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt)
        assert adv.expected_additional_work(20.0) > 5.0

    def test_monotone_in_budget(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt)
        vals = [adv.expected_additional_work(b) for b in (8.0, 15.0, 25.0)]
        assert vals[0] <= vals[1] <= vals[2]

    def test_rejects_negative_budget(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt)
        with pytest.raises(ValueError):
            adv.expected_additional_work(-1.0)


class TestDecide:
    def test_by_reservation_continues_when_work_available(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt, billing=BillingModel.BY_RESERVATION)
        decision = adv.decide(20.0)
        assert decision.continue_execution
        assert decision.expected_additional_cost == 0.0

    def test_by_reservation_drops_when_hopeless(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt, billing=BillingModel.BY_RESERVATION)
        assert not adv.decide(0.5).continue_execution

    def test_by_usage_price_sensitivity(self, laws):
        tasks, ckpt = laws
        cheap = ContinuationAdvisor(
            tasks, ckpt, billing=BillingModel.BY_USAGE,
            price_per_second=0.01, value_per_work_unit=1.0,
        )
        pricey = ContinuationAdvisor(
            tasks, ckpt, billing=BillingModel.BY_USAGE,
            price_per_second=100.0, value_per_work_unit=1.0,
        )
        assert cheap.decide(20.0).continue_execution
        assert not pricey.decide(20.0).continue_execution

    def test_by_usage_reports_cost(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(
            tasks, ckpt, billing=BillingModel.BY_USAGE,
            price_per_second=2.0,
        )
        d = adv.decide(20.0)
        assert d.expected_additional_cost > 0.0
        assert d.expected_additional_cost <= 2.0 * 20.0

    def test_summary_renders(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(tasks, ckpt)
        assert "CONTINUE" in adv.decide(20.0).summary() or "DROP" in adv.decide(20.0).summary()

    def test_rejects_bad_value(self, laws):
        tasks, ckpt = laws
        with pytest.raises(ValueError):
            ContinuationAdvisor(tasks, ckpt, value_per_work_unit=0.0)
