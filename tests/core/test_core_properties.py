"""Property-based tests for the core solvers' structural invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core import DynamicStrategy, StaticStrategy, solve
from repro.core.preemptible import expected_work, uniform_optimal_margin
from repro.distributions import Gamma, Normal, Uniform, truncate


@settings(max_examples=40, deadline=None)
@given(
    a=hst.floats(min_value=0.1, max_value=3.0),
    width=hst.floats(min_value=0.2, max_value=5.0),
    slack=hst.floats(min_value=0.0, max_value=10.0),
)
def test_uniform_optimum_dominates_grid(a, width, slack):
    """X_opt from the closed form beats every grid margin."""
    b = a + width
    R = b + slack
    law = Uniform(a, b)
    x_opt = uniform_optimal_margin(a, b, R)
    best = float(expected_work(R, law, x_opt))
    grid = np.linspace(a, R, 301)
    assert best >= float(np.max(expected_work(R, law, grid))) - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    mu=hst.floats(min_value=1.0, max_value=6.0),
    sigma=hst.floats(min_value=0.2, max_value=2.0),
    slack=hst.floats(min_value=0.5, max_value=8.0),
)
def test_solve_bounds_for_truncated_normal(mu, sigma, slack):
    """The generic solver's optimum lies in [a, b] and gains >= 1."""
    a, b = 0.5, 7.0
    R = b + slack
    law = truncate(Normal(mu, sigma), a, b)
    sol = solve(R, law)
    assert a - 1e-9 <= sol.x_opt <= b + 1e-9
    assert sol.gain >= 1.0 - 1e-9
    assert 0.0 <= sol.expected_work_opt <= R - a


@settings(max_examples=25, deadline=None)
@given(
    margin_frac=hst.floats(min_value=0.0, max_value=1.0),
    a=hst.floats(min_value=0.2, max_value=2.0),
    width=hst.floats(min_value=0.2, max_value=4.0),
)
def test_expected_work_bounded_by_remaining_time(margin_frac, a, width):
    """E(W(X)) <= R - X always (you cannot save more than you ran)."""
    b = a + width
    R = b + 3.0
    law = Uniform(a, b)
    # clamp: a + 1.0 * (R - a) can exceed R by one ulp in floating point
    X = min(a + margin_frac * (R - a), R)
    val = float(expected_work(R, law, X))
    assert val <= (R - X) + 1e-12
    assert val >= 0.0


@settings(max_examples=15, deadline=None)
@given(
    k=hst.floats(min_value=0.5, max_value=3.0),
    theta=hst.floats(min_value=0.2, max_value=1.0),
    mu_c=hst.floats(min_value=1.0, max_value=3.0),
)
def test_static_expected_work_nonnegative_and_bounded(k, theta, mu_c):
    """0 <= E(n) <= R for every n, for Gamma tasks."""
    R = 10.0
    strat = StaticStrategy(R, Gamma(k, theta), truncate(Normal(mu_c, 0.3), 0.0))
    for n in (1, 3, 7, 15):
        v = strat.expected_work(n)
        assert -1e-9 <= v <= R + 1e-9


@settings(max_examples=10, deadline=None)
@given(
    mu=hst.floats(min_value=2.0, max_value=4.0),
    sigma=hst.floats(min_value=0.2, max_value=1.0),
)
def test_dynamic_crossing_within_reservation(mu, sigma):
    """W_int in [0, R] and the rule is consistent on either side."""
    R = 25.0
    tasks = truncate(Normal(mu, sigma), 0.0)
    ckpt = truncate(Normal(4.0, 0.4), 0.0)
    dyn = DynamicStrategy(R, tasks, ckpt)
    w_int = dyn.crossing_point()
    assert 0.0 <= w_int <= R
    if 1.0 < w_int < R - 1.0:
        assert not dyn.should_checkpoint(max(w_int - 1.0, 0.0))
        assert dyn.should_checkpoint(min(w_int + 1.0, R))


@settings(max_examples=10, deadline=None)
@given(n=hst.integers(min_value=1, max_value=12))
def test_static_deterministic_reduction(n):
    """Deterministic tasks: E(n) = n*x * F_C(R - n*x) exactly (the
    paper's remark that constant D_X reduces to Section 3)."""
    from repro.distributions import Deterministic

    x, R = 2.0, 20.0
    ckpt = truncate(Normal(3.0, 0.5), 0.0)
    strat = StaticStrategy(R, Deterministic(x), ckpt)
    s = n * x
    expected = s * float(ckpt.cdf(R - s)) if s <= R else 0.0
    if s == R:
        expected = 0.0
    assert strat.expected_work(n) == pytest.approx(expected, rel=1e-9, abs=1e-12)
