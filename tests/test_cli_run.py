"""Unit tests for the `repro run` subcommand (durable reservation runs)."""

import os

import pytest

from repro.cli import main

# Calibration: size-8 Jacobi converges in ~253 iterations (~2.8s of
# virtual time at 1e5 flop/s), so R=3 finishes in one booking and R=1
# needs several — the partial-campaign tests rely on the latter.
def _args(*extra, R="3.0", reservations="30"):
    return [
        "run", "--solver", "jacobi", "--size", "8",
        "-R", R, "--checkpoint-law", "uniform:0.01,0.02",
        "--every", "50", "--flops", "1e5", "--noise-cv", "0",
        "--reservations", reservations, "--seed", "0", *extra,
    ]


BASE = _args()


def _gen_files(path):
    return [n for n in os.listdir(path) if n.endswith(".ckpt")]


class TestInMemoryRun:
    def test_converges_and_reports(self, capsys):
        rc = main(BASE)
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out
        assert "store:" in out

    def test_budget_exhaustion_is_nonzero_exit(self, capsys):
        rc = main(_args(R="1.0", reservations="1"))
        out = capsys.readouterr().out
        assert rc == 1
        assert "INCOMPLETE" in out

    @pytest.mark.parametrize(
        "solver", ["jacobi", "gauss-seidel", "sor", "cg", "gmres"]
    )
    def test_all_solvers_accepted(self, capsys, solver):
        args = list(BASE)
        args[args.index("--solver") + 1] = solver
        assert main(args) == 0

    def test_advisor_policy_reports_model_expectation(self, capsys):
        rc = main(BASE + ["--task-law", "uniform:0.02,0.03"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(model " in out


class TestDurableRun:
    def test_writes_generations(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        rc = main(BASE + ["--store-dir", store_dir])
        assert rc == 0
        assert _gen_files(store_dir)
        assert "MANIFEST.json" in os.listdir(store_dir)

    def test_refuses_nonempty_store_without_resume(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        assert main(BASE + ["--store-dir", store_dir]) == 0
        capsys.readouterr()
        rc = main(BASE + ["--store-dir", store_dir])
        err = capsys.readouterr().err
        assert rc == 2
        assert "--resume" in err

    def test_resume_continues_campaign(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        # First booking only: leaves a partial campaign behind.
        assert main(
            _args("--store-dir", store_dir, R="1.0", reservations="1")
        ) == 1
        capsys.readouterr()
        rc = main(BASE + ["--store-dir", store_dir, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed gen" in out
        assert "converged" in out


class TestFaultInjection:
    def test_fault_requires_store_dir(self, capsys):
        rc = main(BASE + ["--inject-fault", "bitflip"])
        assert rc == 2
        assert "--store-dir" in capsys.readouterr().err

    def test_crash_then_resume_recovers(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        rc = main(BASE + [
            "--store-dir", store_dir, "--inject-fault", "crash",
            "--fault-seed", "1",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulated crash" in out
        assert "--resume" in out
        rc = main(BASE + ["--store-dir", store_dir, "--resume"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "converged" in out

    def test_bitflip_quarantines_and_still_converges(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        # Partial campaign to give the fault a generation to damage.
        main(_args("--store-dir", store_dir, R="1.0", reservations="1"))
        capsys.readouterr()
        rc = main(BASE + [
            "--store-dir", store_dir, "--resume",
            "--inject-fault", "bitflip", "--fault-seed", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "injected fault: bitflip (applied=True)" in out
        assert "1 quarantined" in out
        assert "converged" in out
        assert any(n.endswith(".corrupt") for n in os.listdir(store_dir))

    def test_manifest_gone_is_invisible_to_the_campaign(self, tmp_path, capsys):
        store_dir = str(tmp_path / "ckpts")
        main(_args("--store-dir", store_dir, R="1.0", reservations="1"))
        capsys.readouterr()
        rc = main(BASE + [
            "--store-dir", store_dir, "--resume",
            "--inject-fault", "manifest-gone",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resumed gen" in out
        assert "converged" in out
