"""Unit tests for the failure-aware Monte-Carlo simulators."""

import numpy as np
import pytest

from repro.core import (
    WindowPredictor,
    daly_period,
    final_only_expected_work,
    periodic_expected_work,
    restart_expected_work,
    young_period,
)
from repro.distributions import Deterministic, Gamma, Normal, Uniform, truncate
from repro.simulation import (
    SimulationSummary,
    simulate_dynamic_with_failures,
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
    simulate_preemptible,
    simulate_restart_with_failures,
)


def assert_5sigma(samples, analytic, label):
    """CLT anchor: the MC mean must sit within 5 standard errors."""
    mc = SimulationSummary.from_samples(samples)
    assert abs(mc.mean - analytic) <= 5.0 * mc.sem, (
        f"{label}: mc {mc.summary()} vs analytic {analytic:.4f} "
        f"(z = {abs(mc.mean - analytic) / mc.sem:.2f})"
    )


@pytest.fixture
def ckpt():
    return truncate(Normal(5.0, 0.4), 0.0)


class TestFinalOnly:
    def test_zero_rate_matches_failure_free_simulator(self, rng):
        law = Uniform(1.0, 7.5)
        a = simulate_final_only_with_failures(10.0, law, 5.5, 0.0, 100_000, 3)
        b = simulate_preemptible(10.0, law, 5.5, 100_000, 3)
        assert a.mean() == pytest.approx(b.mean(), abs=0.05)

    def test_matches_analytic(self, rng, ckpt):
        for lam in (0.0, 0.005, 0.02):
            analytic = final_only_expected_work(100.0, ckpt, 6.0, lam)
            mc = SimulationSummary.from_samples(
                simulate_final_only_with_failures(100.0, ckpt, 6.0, lam, 300_000, rng)
            )
            assert mc.contains(analytic), f"lam={lam}: {mc.summary()} vs {analytic}"

    def test_saved_values_binary(self, rng, ckpt):
        saved = simulate_final_only_with_failures(100.0, ckpt, 6.0, 0.01, 1000, rng)
        assert set(np.unique(saved)).issubset({0.0, 94.0})

    def test_high_rate_kills_everything(self, rng, ckpt):
        saved = simulate_final_only_with_failures(100.0, ckpt, 6.0, 1.0, 2000, rng)
        assert saved.mean() < 0.5


class TestPeriodic:
    def test_no_failures_banks_almost_everything(self, rng):
        # Deterministic checkpoint of 1s, period 10s, R=100: 9 full
        # segments of work = 90 minus the final partial fit.
        saved = simulate_periodic_with_failures(
            100.0, Deterministic(1.0), 10.0, 0.0, 200, rng
        )
        assert np.all(saved > 85.0)
        assert np.all(saved <= 100.0)

    def test_survives_failures_unlike_final_only(self, rng, ckpt):
        lam = 0.02  # MTBF 50s << R=200: final-only almost always dies.
        R = 200.0
        final = simulate_final_only_with_failures(R, ckpt, 6.0, lam, 50_000, rng).mean()
        periodic = simulate_periodic_with_failures(
            R, ckpt, young_period(5.0, lam), lam, 20_000, rng, recovery=2.0
        ).mean()
        assert periodic > 2.0 * final

    def test_young_period_near_optimal(self, rng, ckpt):
        lam = 0.01
        R = 300.0
        T_star = young_period(5.0, lam)
        means = {}
        for T in (0.25 * T_star, T_star, 4.0 * T_star):
            means[T] = simulate_periodic_with_failures(
                R, ckpt, T, lam, 30_000, rng, recovery=2.0
            ).mean()
        assert means[T_star] >= means[0.25 * T_star] - 0.5
        assert means[T_star] >= means[4.0 * T_star] - 0.5

    def test_saved_bounded_by_reservation(self, rng, ckpt):
        saved = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.05, 5000, rng)
        assert np.all(saved >= 0.0)
        assert np.all(saved <= 50.0)

    def test_reproducible(self, ckpt):
        a = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.02, 500, 9)
        b = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.02, 500, 9)
        np.testing.assert_array_equal(a, b)

    def test_infeasible_checkpoint_saves_zero(self, rng):
        law = truncate(Normal(100.0, 1.0), 0.0)
        saved = simulate_periodic_with_failures(10.0, law, 5.0, 0.0, 200, rng)
        assert np.all(saved == 0.0)


class TestAnalyticAnchors:
    """Satellite anchors: each analytic form pinned against its
    simulator within 5 CLT standard errors."""

    def test_final_only_anchor_5sigma(self, rng, ckpt):
        for lam in (0.0, 0.01):
            analytic = final_only_expected_work(100.0, ckpt, 6.0, lam)
            samples = simulate_final_only_with_failures(
                100.0, ckpt, 6.0, lam, 200_000, rng
            )
            assert_5sigma(samples, analytic, f"final-only lam={lam}")

    @pytest.mark.parametrize("period_fn", [young_period, daly_period])
    def test_periodic_anchor_at_tuned_periods_5sigma(self, rng, ckpt, period_fn):
        # The classical period formulas feed the *exact* renewal value,
        # and the simulator must agree at both tuning points.
        lam = 0.02
        T = period_fn(5.0, lam)
        analytic = periodic_expected_work(100.0, ckpt, T, lam, recovery=2.0)
        samples = simulate_periodic_with_failures(
            100.0, ckpt, T, lam, 100_000, rng, recovery=2.0
        )
        assert_5sigma(samples, analytic, f"periodic {period_fn.__name__}")

    @pytest.mark.parametrize("recovery", [0.0, 2.0])
    def test_restart_anchor_5sigma(self, rng, recovery):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        analytic = restart_expected_work(100.0, ck, 5.0, 0.01, recovery=recovery)
        samples = simulate_restart_with_failures(
            100.0, ck, 5.0, 0.01, 100_000, rng, recovery=recovery
        )
        assert_5sigma(samples, analytic, f"restart recovery={recovery}")


class TestRestart:
    def test_zero_rate_survivors_bank_the_attempt(self, rng):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        saved = simulate_restart_with_failures(50.0, ck, 4.0, 0.0, 2000, rng)
        # Without strikes the outcome is binary: the checkpoint fits the
        # margin (bank budget - margin) or the reservation dies torn.
        assert set(np.unique(saved)).issubset({0.0, 46.0})
        assert saved.mean() == pytest.approx(
            final_only_expected_work(50.0, ck, 4.0, 0.0), abs=0.5
        )

    def test_strikes_restart_from_scratch(self, rng):
        # Every struck trial re-runs in full: saved is either 0 or the
        # work of the last (complete) attempt, never a partial sum.
        ck = Deterministic(2.0)
        saved = simulate_restart_with_failures(
            60.0, ck, 3.0, 0.05, 5000, rng, recovery=1.0
        )
        assert np.all(saved >= 0.0)
        assert np.all(saved <= 57.0)

    def test_reproducible(self):
        ck = truncate(Normal(2.0, 0.4), 0.5, 3.5)
        a = simulate_restart_with_failures(60.0, ck, 4.0, 0.02, 500, 9)
        b = simulate_restart_with_failures(60.0, ck, 4.0, 0.02, 500, 9)
        np.testing.assert_array_equal(a, b)


class TestDynamic:
    TASK = Gamma(2.0, 1.5)
    CKPT = truncate(Normal(2.0, 0.4), 0.5, 3.5)

    def test_bounded_and_reproducible(self):
        a = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.03, 1000, 7, recovery=2.0
        )
        b = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.03, 1000, 7, recovery=2.0
        )
        np.testing.assert_array_equal(a, b)
        assert np.all(a >= 0.0)
        assert np.all(a <= 60.0)

    def test_failures_hurt(self, rng):
        free = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.0, 10_000, 11
        ).mean()
        struck = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.05, 10_000, 11, recovery=2.0
        ).mean()
        assert struck < free

    def test_stats_account_for_every_trial_event(self):
        saved, stats = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.03, 2000, 5, recovery=2.0,
            return_stats=True,
        )
        assert stats.checkpoints > 0
        assert stats.strikes > 0
        assert stats.tasks > 0
        assert stats.proactive_checkpoints == 0  # no predictor attached
        # Trials that banked anything committed at least one checkpoint.
        assert stats.checkpoints >= int(np.count_nonzero(saved))


class TestPredictorDegeneracies:
    """The two pinned degeneracies of the prediction-window model."""

    TASK = Gamma(2.0, 1.5)
    CKPT = truncate(Normal(2.0, 0.4), 0.5, 3.5)

    def test_zero_recall_is_sample_path_identical_to_no_predictor(self):
        # The predictor owns its own stream; with recall 0 and precision
        # 1 it raises no windows and must not perturb a single draw.
        blind = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.03, 2000, 11, recovery=2.0
        )
        zero = simulate_dynamic_with_failures(
            60.0, self.TASK, self.CKPT, 0.03, 2000, 11,
            predictor=WindowPredictor(0.0, 1.0, 8.0, seed=5), recovery=2.0,
        )
        assert np.array_equal(blind, zero)

    def test_perfect_predictor_recovers_omniscient_proactive_policy(self):
        # recall = precision = 1 with lead = width: every strike is
        # announced in advance and never false-alarmed. The proactive
        # rule must beat the blind rule decisively (the gap measured
        # here is > 100 combined standard errors) and actually exercise
        # the proactive path.
        blind = simulate_dynamic_with_failures(
            100.0, self.TASK, self.CKPT, 0.03, 20_000, 7, recovery=2.0
        )
        perfect, stats = simulate_dynamic_with_failures(
            100.0, self.TASK, self.CKPT, 0.03, 20_000, 7,
            predictor=WindowPredictor(1.0, 1.0, 8.0, lead=8.0, seed=5),
            recovery=2.0, return_stats=True,
        )
        sem = np.hypot(
            SimulationSummary.from_samples(blind).sem,
            SimulationSummary.from_samples(perfect).sem,
        )
        assert perfect.mean() - blind.mean() > 10.0 * sem
        assert stats.proactive_checkpoints > 0
        assert stats.window_decisions > 0
