"""Unit tests for the failure-aware Monte-Carlo simulators."""

import numpy as np
import pytest

from repro.core import final_only_expected_work, young_period
from repro.distributions import Deterministic, Normal, Uniform, truncate
from repro.simulation import (
    SimulationSummary,
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
    simulate_preemptible,
)


@pytest.fixture
def ckpt():
    return truncate(Normal(5.0, 0.4), 0.0)


class TestFinalOnly:
    def test_zero_rate_matches_failure_free_simulator(self, rng):
        law = Uniform(1.0, 7.5)
        a = simulate_final_only_with_failures(10.0, law, 5.5, 0.0, 100_000, 3)
        b = simulate_preemptible(10.0, law, 5.5, 100_000, 3)
        assert a.mean() == pytest.approx(b.mean(), abs=0.05)

    def test_matches_analytic(self, rng, ckpt):
        for lam in (0.0, 0.005, 0.02):
            analytic = final_only_expected_work(100.0, ckpt, 6.0, lam)
            mc = SimulationSummary.from_samples(
                simulate_final_only_with_failures(100.0, ckpt, 6.0, lam, 300_000, rng)
            )
            assert mc.contains(analytic), f"lam={lam}: {mc.summary()} vs {analytic}"

    def test_saved_values_binary(self, rng, ckpt):
        saved = simulate_final_only_with_failures(100.0, ckpt, 6.0, 0.01, 1000, rng)
        assert set(np.unique(saved)).issubset({0.0, 94.0})

    def test_high_rate_kills_everything(self, rng, ckpt):
        saved = simulate_final_only_with_failures(100.0, ckpt, 6.0, 1.0, 2000, rng)
        assert saved.mean() < 0.5


class TestPeriodic:
    def test_no_failures_banks_almost_everything(self, rng):
        # Deterministic checkpoint of 1s, period 10s, R=100: 9 full
        # segments of work = 90 minus the final partial fit.
        saved = simulate_periodic_with_failures(
            100.0, Deterministic(1.0), 10.0, 0.0, 200, rng
        )
        assert np.all(saved > 85.0)
        assert np.all(saved <= 100.0)

    def test_survives_failures_unlike_final_only(self, rng, ckpt):
        lam = 0.02  # MTBF 50s << R=200: final-only almost always dies.
        R = 200.0
        final = simulate_final_only_with_failures(R, ckpt, 6.0, lam, 50_000, rng).mean()
        periodic = simulate_periodic_with_failures(
            R, ckpt, young_period(5.0, lam), lam, 20_000, rng, recovery=2.0
        ).mean()
        assert periodic > 2.0 * final

    def test_young_period_near_optimal(self, rng, ckpt):
        lam = 0.01
        R = 300.0
        T_star = young_period(5.0, lam)
        means = {}
        for T in (0.25 * T_star, T_star, 4.0 * T_star):
            means[T] = simulate_periodic_with_failures(
                R, ckpt, T, lam, 30_000, rng, recovery=2.0
            ).mean()
        assert means[T_star] >= means[0.25 * T_star] - 0.5
        assert means[T_star] >= means[4.0 * T_star] - 0.5

    def test_saved_bounded_by_reservation(self, rng, ckpt):
        saved = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.05, 5000, rng)
        assert np.all(saved >= 0.0)
        assert np.all(saved <= 50.0)

    def test_reproducible(self, ckpt):
        a = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.02, 500, 9)
        b = simulate_periodic_with_failures(50.0, ckpt, 10.0, 0.02, 500, 9)
        np.testing.assert_array_equal(a, b)

    def test_infeasible_checkpoint_saves_zero(self, rng):
        law = truncate(Normal(100.0, 1.0), 0.0)
        saved = simulate_periodic_with_failures(10.0, law, 5.0, 0.0, 200, rng)
        assert np.all(saved == 0.0)
