"""Seeded Monte-Carlo conformance of the analytic solvers.

For each law family the analytic expectation must sit inside the
confidence interval of a seeded Monte-Carlo estimate of the very
quantity it claims to compute:

* Section 3 (preemptible): ``E(W(X*)) = (R - X*) P(C <= X*)`` — MC
  draws checkpoint durations and scores ``(R - X*) 1[C <= X*]``;
* Section 4.2 (static): ``E(n_opt) = E[S_n 1[S_n + C <= R]]`` with
  ``S_n`` the sum of ``n_opt`` IID task durations — MC draws the tasks
  and the checkpoint and scores the saved work directly.

Both use a fixed seed, so the tests are deterministic; the tolerance is
a 5-sigma CLT half-width plus a small absolute epsilon (the estimator
is bounded by ``R``, so the CLT is safely in force at ``n = 40_000``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import parse_law
from repro.core import StaticStrategy, preemptible

R = 10.0
N_TRIALS = 40_000
SEED = 20230710  # arbitrary but frozen: these tests must be deterministic
Z = 5.0  # CLT half-width multiplier; false-failure odds ~ 6e-7 per law
EPS = 1e-3  # guards the degenerate zero-variance corner


def _ci_check(samples: np.ndarray, analytic: float, label: str) -> None:
    mc_mean = float(np.mean(samples))
    half_width = Z * float(np.std(samples)) / np.sqrt(samples.size) + EPS
    assert abs(mc_mean - analytic) <= half_width, (
        f"{label}: MC {mc_mean:.6g} vs analytic {analytic:.6g} "
        f"(|diff| {abs(mc_mean - analytic):.3g} > {half_width:.3g})"
    )


class TestPreemptibleMargin:
    """E(W(X*)) of Section 3 against direct simulation of W(X*)."""

    # Bounded-support checkpoint laws (the Section 3 standing assumption):
    # plain uniform, truncated exponential, truncated lognormal.
    LAWS = (
        "uniform:0.5,1.5",
        "exponential:1@[0.2,2]",
        "lognormal:0,0.4@[0.3,2.5]",
    )

    @pytest.mark.parametrize("spec", LAWS)
    def test_expected_work_at_optimum(self, spec):
        law = parse_law(spec)
        solution = preemptible.solve(R, law)
        rng = np.random.default_rng(SEED)
        durations = law.sample(N_TRIALS, rng)
        work = (R - solution.x_opt) * (durations <= solution.x_opt)
        _ci_check(work, solution.expected_work_opt, f"preemptible {spec}")

    @pytest.mark.parametrize("spec", LAWS)
    def test_optimum_beats_nearby_margins(self, spec):
        """X* is a maximizer: MC at X* >= MC at perturbed margins."""
        law = parse_law(spec)
        solution = preemptible.solve(R, law)
        rng = np.random.default_rng(SEED)
        durations = law.sample(N_TRIALS, rng)

        def mc(x: float) -> float:
            return float(np.mean((R - x) * (durations <= x)))

        at_opt = mc(solution.x_opt)
        slack = 2e-3  # MC noise allowance on a shared sample
        for delta in (-0.2, 0.2):
            x = solution.x_opt + delta
            if 0.0 < x <= R:
                assert mc(x) <= at_opt + slack, f"{spec}: margin {x} beats X*"


class TestStaticTaskCount:
    """E(n_opt) of Section 4.2 against direct simulation of the workflow."""

    CKPT = "normal:1,0.2@[0,inf]"
    # exponential exercises the closed-family (real-n) path; uniform and
    # lognormal exercise the FFT convolution fallback.
    TASK_LAWS = ("exponential:1", "uniform:0.5,1.5", "lognormal:0,0.5")

    @pytest.mark.parametrize("spec", TASK_LAWS)
    def test_expected_work_at_n_opt(self, spec):
        task_law = parse_law(spec)
        ckpt_law = parse_law(self.CKPT)
        strategy = StaticStrategy(R, task_law, ckpt_law)
        solution = strategy.solve()
        assert solution.n_opt >= 1

        rng = np.random.default_rng(SEED)
        sums = task_law.sample((N_TRIALS, solution.n_opt), rng).sum(axis=1)
        checkpoints = ckpt_law.sample(N_TRIALS, rng)
        work = np.where(sums + checkpoints <= R, sums, 0.0)
        _ci_check(work, solution.expected_work_opt, f"static {spec} n={solution.n_opt}")

    @pytest.mark.parametrize("spec", TASK_LAWS)
    def test_n_opt_beats_neighbors(self, spec):
        """The integer optimum dominates n_opt +- 1 under the same draws."""
        task_law = parse_law(spec)
        ckpt_law = parse_law(self.CKPT)
        strategy = StaticStrategy(R, task_law, ckpt_law)
        solution = strategy.solve()

        def mc(n: int) -> float:
            rng = np.random.default_rng(SEED)
            sums = task_law.sample((N_TRIALS, n), rng).sum(axis=1)
            checkpoints = ckpt_law.sample(N_TRIALS, rng)
            return float(np.mean(np.where(sums + checkpoints <= R, sums, 0.0)))

        at_opt = mc(solution.n_opt)
        slack = 5e-2  # MC noise + genuinely flat objectives near the top
        for n in (solution.n_opt - 1, solution.n_opt + 1):
            if n >= 1:
                assert mc(n) <= at_opt + slack, f"{spec}: n={n} beats n_opt"
