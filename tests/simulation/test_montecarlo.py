"""Unit tests for the vectorized Monte-Carlo simulators."""

import numpy as np
import pytest

from repro.core import (
    DynamicPolicy,
    DynamicStrategy,
    OptimalStoppingSolver,
    StaticCountPolicy,
    StaticStrategy,
)
from repro.core.preemptible import expected_work
from repro.core.policies import WorkflowPolicy
from repro.distributions import Gamma, Normal, Poisson, Uniform, truncate
from repro.simulation import (
    SimulationSummary,
    simulate_fixed_count,
    simulate_oracle,
    simulate_policy,
    simulate_preemptible,
    simulate_threshold,
)

N = 150_000


class TestPreemptible:
    def test_matches_equation_1(self, rng, paper_uniform_law):
        for X in (2.0, 5.5, 7.0, 9.0):
            saved = simulate_preemptible(10.0, paper_uniform_law, X, N, rng)
            s = SimulationSummary.from_samples(saved)
            assert s.contains(float(expected_work(10.0, paper_uniform_law, X)))

    def test_saved_is_zero_or_remaining(self, rng, paper_uniform_law):
        saved = simulate_preemptible(10.0, paper_uniform_law, 5.5, 1000, rng)
        assert set(np.unique(saved)).issubset({0.0, 4.5})

    def test_margin_below_a_never_saves(self, rng, paper_uniform_law):
        saved = simulate_preemptible(10.0, paper_uniform_law, 0.5, 1000, rng)
        assert np.all(saved == 0.0)

    def test_margin_at_b_always_saves(self, rng, paper_uniform_law):
        saved = simulate_preemptible(10.0, paper_uniform_law, 7.5, 1000, rng)
        assert np.all(saved == 2.5)

    def test_rejects_margin_out_of_range(self, rng, paper_uniform_law):
        with pytest.raises(ValueError):
            simulate_preemptible(10.0, paper_uniform_law, 11.0, 10, rng)

    def test_reproducible_with_seed(self, paper_uniform_law):
        a = simulate_preemptible(10.0, paper_uniform_law, 5.5, 100, rng=9)
        b = simulate_preemptible(10.0, paper_uniform_law, 5.5, 100, rng=9)
        np.testing.assert_array_equal(a, b)


class TestFixedCount:
    def test_matches_equation_3_normal(self, rng, paper_normal_tasks, paper_checkpoint_law):
        strat = StaticStrategy(30.0, paper_normal_tasks, paper_checkpoint_law)
        for n in (5, 7, 9):
            saved = simulate_fixed_count(
                30.0, paper_normal_tasks, paper_checkpoint_law, n, N, rng
            )
            s = SimulationSummary.from_samples(saved)
            assert s.contains(strat.expected_work(n)), f"n={n}: {s.summary()}"

    def test_matches_equation_3_gamma(self, rng, paper_gamma_tasks, paper_gamma_checkpoint_law):
        strat = StaticStrategy(10.0, paper_gamma_tasks, paper_gamma_checkpoint_law)
        saved = simulate_fixed_count(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, 12, N, rng
        )
        assert SimulationSummary.from_samples(saved).contains(strat.expected_work(12))

    def test_matches_equation_3_poisson(self, rng, paper_poisson_tasks, paper_checkpoint_law):
        strat = StaticStrategy(29.0, paper_poisson_tasks, paper_checkpoint_law)
        saved = simulate_fixed_count(
            29.0, paper_poisson_tasks, paper_checkpoint_law, 6, N, rng
        )
        assert SimulationSummary.from_samples(saved).contains(strat.expected_work(6))

    def test_overrun_saves_nothing(self, rng, paper_checkpoint_law):
        # 12 tasks of ~3s never fit in R=30.
        saved = simulate_fixed_count(
            30.0, Normal(3.0, 0.5), paper_checkpoint_law, 12, 1000, rng
        )
        assert np.all(saved == 0.0)


class TestThreshold:
    def test_matches_bellman_policy_value(
        self, rng, paper_trunc_normal_tasks, paper_checkpoint_law
    ):
        dyn = DynamicStrategy(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)
        th = dyn.crossing_point()
        solver = OptimalStoppingSolver(29.0, paper_trunc_normal_tasks, paper_checkpoint_law)
        analytic = solver.threshold_policy_value(th)
        saved = simulate_threshold(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, th, N, rng
        )
        assert SimulationSummary.from_samples(saved).contains(analytic)

    def test_counts_returned(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        saved, counts = simulate_threshold(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, 20.0, 1000, rng,
            return_counts=True,
        )
        assert counts.shape == saved.shape
        # ~20 work units at ~3 per task: around 7 tasks.
        assert 6.0 <= counts.mean() <= 8.5

    def test_zero_threshold_saves_nothing(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        saved = simulate_threshold(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, 0.0, 100, rng
        )
        assert np.all(saved == 0.0)

    def test_discrete_tasks(self, rng, paper_poisson_tasks, paper_checkpoint_law):
        saved = simulate_threshold(
            29.0, paper_poisson_tasks, paper_checkpoint_law, 18.9, 5000, rng
        )
        positive = saved[saved > 0.0]
        assert positive.size > 0
        np.testing.assert_array_equal(positive, np.floor(positive))


class TestOracle:
    def test_dominates_every_policy(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        oracle = simulate_oracle(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, N, rng
        ).mean()
        dyn_th = DynamicStrategy(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law
        ).crossing_point()
        dyn = simulate_threshold(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, dyn_th, N, rng
        ).mean()
        static = simulate_fixed_count(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, 7, N, rng
        ).mean()
        assert oracle >= dyn - 0.02
        assert oracle >= static - 0.02

    def test_saved_plus_c_fits(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        saved = simulate_oracle(29.0, paper_trunc_normal_tasks, paper_checkpoint_law, 2000, rng)
        # The oracle never saves more than R - C_min... weak bound: < R.
        assert np.all(saved < 29.0)
        assert np.all(saved >= 0.0)

    def test_infeasible_checkpoint_saves_zero(self, rng, paper_trunc_normal_tasks):
        law = truncate(Normal(100.0, 1.0), 0.0)
        saved = simulate_oracle(10.0, paper_trunc_normal_tasks, law, 500, rng)
        assert np.all(saved == 0.0)


class TestSimulatePolicy:
    def test_fast_path_fixed_count(self, rng, paper_normal_tasks, paper_checkpoint_law):
        saved = simulate_policy(
            30.0, paper_normal_tasks, paper_checkpoint_law, StaticCountPolicy(7), 50_000, rng
        )
        strat = StaticStrategy(30.0, paper_normal_tasks, paper_checkpoint_law)
        assert SimulationSummary.from_samples(saved).contains(strat.expected_work(7))

    def test_fast_path_threshold(self, rng, paper_trunc_normal_tasks, paper_checkpoint_law):
        policy = DynamicPolicy(paper_trunc_normal_tasks, paper_checkpoint_law)
        saved = simulate_policy(
            29.0, paper_trunc_normal_tasks, paper_checkpoint_law, policy, 50_000, rng
        )
        assert saved.mean() > 20.0

    def test_slow_path_matches_fast_path(self, rng, paper_gamma_tasks, paper_gamma_checkpoint_law):
        class SlowStatic(WorkflowPolicy):
            """Fixed-count policy without fast-path hooks."""

            def __init__(self, n):
                self.n = n

            def should_checkpoint(self, work_done, tasks_done):
                return tasks_done >= self.n

        slow = simulate_policy(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, SlowStatic(12), 20_000, rng
        )
        fast = simulate_fixed_count(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, 12, 100_000, rng
        )
        assert slow.mean() == pytest.approx(fast.mean(), abs=3 * 4.0 / np.sqrt(20_000))
