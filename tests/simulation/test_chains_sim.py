"""Unit tests for chain Monte-Carlo simulation."""

import numpy as np
import pytest

from repro.core import GeneralStaticSolver
from repro.distributions import Gamma, Normal, truncate
from repro.simulation import (
    SimulationSummary,
    chain_thresholds,
    simulate_chain_dynamic,
    simulate_chain_fixed_stage,
)
from repro.workflows import LinearWorkflow, WorkflowTask


@pytest.fixture
def hetero_chain():
    return LinearWorkflow(
        [
            WorkflowTask("a", Gamma(4.0, 0.5), truncate(Normal(1.0, 0.2), 0.0)),
            WorkflowTask("b", Gamma(2.0, 0.5), truncate(Normal(3.0, 0.4), 0.0)),
            WorkflowTask("c", Gamma(2.0, 0.5), truncate(Normal(0.5, 0.1), 0.0)),
        ]
    )


class TestThresholds:
    def test_final_stage_always_checkpoints(self, hetero_chain):
        th = chain_thresholds(6.0, hetero_chain)
        assert th.shape == (3,)
        assert th[-1] == 0.0

    def test_cyclic_requires_max_stages(self, paper_gamma_tasks, paper_gamma_checkpoint_law):
        wf = LinearWorkflow.iid(paper_gamma_tasks, paper_gamma_checkpoint_law)
        with pytest.raises(ValueError, match="max_stages"):
            chain_thresholds(10.0, wf)

    def test_iid_chain_thresholds_match_dynamic_crossing(
        self, paper_gamma_tasks, paper_gamma_checkpoint_law
    ):
        from repro.core import DynamicStrategy

        wf = LinearWorkflow.iid(paper_gamma_tasks, paper_gamma_checkpoint_law)
        th = chain_thresholds(10.0, wf, max_stages=10)
        w_int = DynamicStrategy(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law
        ).crossing_point()
        # Every non-final stage of an IID chain has the same rule.
        np.testing.assert_allclose(th[:-1], w_int, atol=1e-6)


class TestFixedStage:
    def test_matches_general_static_analytic(self, hetero_chain, rng):
        solver = GeneralStaticSolver(6.0, hetero_chain)
        for k in (1, 2, 3):
            mc = SimulationSummary.from_samples(
                simulate_chain_fixed_stage(6.0, hetero_chain, k, 150_000, rng)
            )
            analytic = solver.expected_work(k, "exact")
            assert abs(mc.mean - analytic) < 4 * mc.sem + 0.01, f"k={k}"

    def test_saved_zero_on_overrun(self, rng):
        wf = LinearWorkflow(
            [WorkflowTask("big", Gamma(100.0, 1.0), truncate(Normal(1.0, 0.1), 0.0))]
        )
        saved = simulate_chain_fixed_stage(5.0, wf, 1, 1000, rng)
        assert np.all(saved == 0.0)


class TestDynamicChain:
    def test_bounded_and_reproducible(self, hetero_chain):
        a = simulate_chain_dynamic(6.0, hetero_chain, 2000, 5)
        b = simulate_chain_dynamic(6.0, hetero_chain, 2000, 5)
        np.testing.assert_array_equal(a, b)
        assert np.all((a >= 0.0) & (a <= 6.0))

    def test_iid_chain_matches_threshold_simulator(
        self, paper_gamma_tasks, paper_gamma_checkpoint_law, rng
    ):
        from repro.core import DynamicStrategy
        from repro.simulation import simulate_threshold

        wf = LinearWorkflow.iid(paper_gamma_tasks, paper_gamma_checkpoint_law)
        chain_mc = simulate_chain_dynamic(10.0, wf, 150_000, rng, max_stages=60)
        w_int = DynamicStrategy(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law
        ).crossing_point()
        ref = simulate_threshold(
            10.0, paper_gamma_tasks, paper_gamma_checkpoint_law, w_int, 150_000, rng
        )
        assert chain_mc.mean() == pytest.approx(ref.mean(), abs=0.05)

    def test_one_step_rule_is_myopic_on_heterogeneous_chains(self, hetero_chain, rng):
        """Documented finding: with an expensive checkpoint at stage 2
        and a cheap one at stage 3, the one-step rule checkpoints at
        stage 1 (it cannot see past stage 2's cost) and loses to the
        exact static plan. The paper's 'easy' dynamic extension is not
        uniformly better once checkpoint costs vary per stage."""
        solver = GeneralStaticSolver(6.0, hetero_chain)
        static_best = solver.solve("exact").expected_work_opt
        dynamic_mc = simulate_chain_dynamic(6.0, hetero_chain, 100_000, rng).mean()
        assert dynamic_mc < static_best - 0.1
