"""Unit tests for the multi-reservation campaign runner."""

import pytest

from repro.core import BillingModel, DynamicPolicy, StaticCountPolicy
from repro.distributions import Deterministic
from repro.simulation import run_campaign


class TestDeterministicCampaign:
    """Deterministic laws: campaign arithmetic is exactly checkable."""

    @pytest.fixture
    def result(self):
        # Each reservation: 2 tasks x 3s + 1s ckpt = 7s of 10s, saves 6.
        # Target 20 -> 4 reservations (6, 12, 18, 24).
        return run_campaign(
            20.0,
            10.0,
            Deterministic(3.0),
            Deterministic(1.0),
            StaticCountPolicy(2),
            rng=0,
            recovery=1.0,
        )

    def test_reservation_count(self, result):
        assert result.reservations_used == 4

    def test_completed(self, result):
        assert result.completed
        assert result.work_done == pytest.approx(24.0)

    def test_reserved_time(self, result):
        assert result.total_reserved_time == pytest.approx(40.0)

    def test_used_time_includes_recovery(self, result):
        # First: 7s; later three: 8s each (1s recovery).
        assert result.total_used_time == pytest.approx(7.0 + 3 * 8.0)

    def test_by_reservation_cost(self, result):
        assert result.total_cost == pytest.approx(40.0)

    def test_by_usage_cost(self):
        res = run_campaign(
            20.0, 10.0, Deterministic(3.0), Deterministic(1.0),
            StaticCountPolicy(2), rng=0, recovery=1.0,
            billing=BillingModel.BY_USAGE, price_per_second=2.0,
        )
        assert res.total_cost == pytest.approx(2.0 * (7.0 + 3 * 8.0))

    def test_utilization(self, result):
        assert result.utilization == pytest.approx(24.0 / 40.0)

    def test_summary_renders(self, result):
        assert "completed" in result.summary()


class TestVariableReservationLengths:
    """R may be a sequence, cycled per reservation (provider-driven)."""

    def test_cycled_lengths(self):
        # Segments save 6 each; lengths alternate 10, 8.
        res = run_campaign(
            20.0, [10.0, 8.0], Deterministic(3.0), Deterministic(1.0),
            StaticCountPolicy(2), rng=0, recovery=1.0,
        )
        assert res.completed
        assert res.reservations_used == 4
        assert res.total_reserved_time == pytest.approx(10.0 + 8.0 + 10.0 + 8.0)

    def test_scalar_equivalent_to_singleton_sequence(self):
        a = run_campaign(
            20.0, 10.0, Deterministic(3.0), Deterministic(1.0),
            StaticCountPolicy(2), rng=0,
        )
        b = run_campaign(
            20.0, [10.0], Deterministic(3.0), Deterministic(1.0),
            StaticCountPolicy(2), rng=0,
        )
        assert a.work_done == b.work_done
        assert a.total_reserved_time == b.total_reserved_time

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError, match="must not be empty"):
            run_campaign(
                20.0, [], Deterministic(3.0), Deterministic(1.0),
                StaticCountPolicy(2),
            )

    def test_short_slot_in_rotation_contributes_less(self):
        # An 8s slot fits 2x3s + 1s ckpt = 7s; a 5s slot fits only 1 task
        # + ckpt if policy asks for 2 -> actually expires: saves 0.
        res = run_campaign(
            18.0, [8.0, 5.0], Deterministic(3.0), Deterministic(1.0),
            StaticCountPolicy(2), rng=0,
        )
        # Progress comes from the 8s slots only: 6 per pair of slots.
        assert res.completed
        saves = [rec.work_saved for rec in res.records]
        assert all(s in (0.0, 6.0) for s in saves)


class TestStochasticCampaign:
    def test_dynamic_policy_completes(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        res = run_campaign(
            100.0, 29.0, paper_trunc_normal_tasks, paper_checkpoint_law,
            DynamicPolicy(paper_trunc_normal_tasks, paper_checkpoint_law),
            rng=1, recovery=1.0,
        )
        assert res.completed
        assert res.work_done >= 100.0
        assert len(res.records) == res.reservations_used

    def test_max_reservations_bounds_hopeless_campaign(self, paper_trunc_normal_tasks):
        from repro.distributions import Normal, truncate

        # Checkpoint never fits: no progress is ever made.
        impossible_ckpt = truncate(Normal(100.0, 1.0), 0.0)
        res = run_campaign(
            50.0, 10.0, paper_trunc_normal_tasks, impossible_ckpt,
            StaticCountPolicy(2), rng=2, max_reservations=5,
        )
        assert not res.completed
        assert res.reservations_used == 5
        assert res.work_done == 0.0

    def test_rng_threading_reproducible(self, paper_trunc_normal_tasks, paper_checkpoint_law):
        kwargs = dict(
            target_work=50.0, R=29.0, tasks=paper_trunc_normal_tasks,
            checkpoint_law=paper_checkpoint_law,
            policy=DynamicPolicy(paper_trunc_normal_tasks, paper_checkpoint_law),
        )
        a = run_campaign(rng=7, **kwargs)
        b = run_campaign(rng=7, **kwargs)
        assert a.work_done == b.work_done
        assert a.reservations_used == b.reservations_used

    def test_continue_after_checkpoint_uses_fewer_reservations(
        self, paper_trunc_normal_tasks, paper_checkpoint_law
    ):
        policy = StaticCountPolicy(4)  # deliberately early checkpoint
        base = run_campaign(
            150.0, 29.0, paper_trunc_normal_tasks, paper_checkpoint_law,
            policy, rng=3,
        )
        cont = run_campaign(
            150.0, 29.0, paper_trunc_normal_tasks, paper_checkpoint_law,
            policy, rng=3, continue_after_checkpoint=True,
        )
        assert cont.reservations_used <= base.reservations_used
