"""Unit tests for task-duration sources."""

import numpy as np
import pytest

from repro.distributions import Gamma
from repro.simulation import (
    CallbackTaskSource,
    DistributionTaskSource,
    TraceTaskSource,
    as_task_source,
)


class TestDistributionSource:
    def test_draws_from_law(self, rng):
        src = DistributionTaskSource(Gamma(2.0, 1.0))
        vals = [src.next_duration(rng) for _ in range(2000)]
        assert np.mean(vals) == pytest.approx(2.0, rel=0.1)

    def test_coercion(self):
        src = as_task_source(Gamma(1.0, 1.0))
        assert isinstance(src, DistributionTaskSource)


class TestTraceSource:
    def test_replays_in_order(self, rng):
        src = TraceTaskSource([1.0, 2.0, 3.0])
        assert [src.next_duration(rng) for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_cycles_by_default(self, rng):
        src = TraceTaskSource([1.0, 2.0])
        vals = [src.next_duration(rng) for _ in range(5)]
        assert vals == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_non_cyclic_exhausts(self, rng):
        src = TraceTaskSource([1.0], cycle=False)
        src.next_duration(rng)
        with pytest.raises(StopIteration):
            src.next_duration(rng)

    def test_reset_rewinds(self, rng):
        src = TraceTaskSource([1.0, 2.0])
        src.next_duration(rng)
        src.reset()
        assert src.next_duration(rng) == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceTaskSource([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="nonnegative"):
            TraceTaskSource([1.0, -2.0])


class TestCallbackSource:
    def test_calls_function(self, rng):
        src = CallbackTaskSource(lambda gen: 42.0)
        assert src.next_duration(rng) == 42.0

    def test_coercion_rejects_junk(self):
        with pytest.raises(TypeError, match="TaskSource"):
            as_task_source("nope")
