"""Unit tests for result aggregation."""

import math

import numpy as np
import pytest

from repro.simulation import PolicyComparison, SimulationSummary, compare_policies


class TestSimulationSummary:
    def test_basic_moments(self):
        s = SimulationSummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.n_trials == 4

    def test_ci_contains_mean(self):
        s = SimulationSummary.from_samples(np.arange(100, dtype=float))
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_width_shrinks_with_n(self, rng):
        small = SimulationSummary.from_samples(rng.normal(0, 1, 100))
        large = SimulationSummary.from_samples(rng.normal(0, 1, 10_000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_ci_coverage_calibration(self, rng):
        # ~95% of CIs from N(0,1) samples should contain 0.
        hits = 0
        trials = 300
        for _ in range(trials):
            s = SimulationSummary.from_samples(rng.normal(0.0, 1.0, 200))
            hits += s.contains(0.0)
        assert 0.90 <= hits / trials <= 0.99

    def test_success_rate(self):
        s = SimulationSummary.from_samples([0.0, 0.0, 1.0, 2.0])
        assert s.success_rate == pytest.approx(0.5)

    def test_single_sample(self):
        s = SimulationSummary.from_samples([3.0])
        assert s.mean == 3.0
        assert s.sem == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SimulationSummary.from_samples([])

    def test_summary_renders(self):
        assert "mean=" in SimulationSummary.from_samples([1.0, 2.0]).summary()


class TestPolicyComparison:
    @pytest.fixture
    def cmp(self):
        return compare_policies(
            {
                "good": np.array([10.0, 11.0, 9.0]),
                "bad": np.array([1.0, 2.0, 0.0]),
            }
        )

    def test_winner(self, cmp):
        assert cmp.winner == "good"

    def test_ratio(self, cmp):
        assert cmp.ratio("good", "bad") == pytest.approx(10.0)

    def test_ratio_zero_baseline(self):
        cmp = compare_policies({"a": [1.0, 1.0], "z": [0.0, 0.0]})
        assert math.isinf(cmp.ratio("a", "z"))

    def test_table_sorted_best_first(self, cmp):
        lines = cmp.table().splitlines()
        assert "good" in lines[1]
        assert "bad" in lines[2]
