"""Unit tests for the sequential event-level engine."""

import numpy as np
import pytest

from repro.core import (
    BillingModel,
    ContinuationAdvisor,
    DynamicPolicy,
    StaticCountPolicy,
)
from repro.distributions import Deterministic, Normal, truncate
from repro.simulation import EventKind, TraceTaskSource, run_reservation


@pytest.fixture
def laws(paper_trunc_normal_tasks, paper_checkpoint_law):
    return paper_trunc_normal_tasks, paper_checkpoint_law


class TestDeterministicTimeline:
    """Fully deterministic laws make the timeline exactly predictable."""

    def test_static_two_tasks(self):
        tasks = Deterministic(3.0)
        ckpt = Deterministic(1.0)
        rec = run_reservation(10.0, tasks, ckpt, StaticCountPolicy(2), rng=0)
        assert rec.work_saved == pytest.approx(6.0)
        assert rec.tasks_completed == 2
        assert rec.checkpoints_succeeded == 1
        assert rec.time_used == pytest.approx(7.0)
        kinds = [e.kind for e in rec.events]
        assert kinds == [
            EventKind.TASK_COMPLETED,
            EventKind.TASK_COMPLETED,
            EventKind.CHECKPOINT_STARTED,
            EventKind.CHECKPOINT_SUCCEEDED,
            EventKind.RESERVATION_DROPPED,
        ]

    def test_checkpoint_failure(self):
        # 3 tasks of 3s + 2s checkpoint = 11 > R=10: failure, nothing saved.
        rec = run_reservation(
            10.0, Deterministic(3.0), Deterministic(2.0), StaticCountPolicy(3), rng=0
        )
        assert rec.work_saved == 0.0
        assert rec.checkpoints_failed == 1
        assert rec.events[-1].kind == EventKind.RESERVATION_EXPIRED

    def test_task_cut_short(self):
        # 4 tasks of 3s overruns R=10 mid-task.
        rec = run_reservation(
            10.0, Deterministic(3.0), Deterministic(1.0), StaticCountPolicy(4), rng=0
        )
        assert rec.work_saved == 0.0
        assert any(e.kind == EventKind.TASK_CUT_SHORT for e in rec.events)

    def test_recovery_consumes_budget(self):
        rec = run_reservation(
            10.0,
            Deterministic(3.0),
            Deterministic(1.0),
            StaticCountPolicy(2),
            rng=0,
            recovery=2.0,
        )
        assert rec.events[0].kind == EventKind.RECOVERY
        assert rec.time_used == pytest.approx(2.0 + 6.0 + 1.0)

    def test_recovery_too_large_rejected(self):
        with pytest.raises(ValueError, match="consumes"):
            run_reservation(
                5.0, Deterministic(1.0), Deterministic(1.0), StaticCountPolicy(1),
                recovery=5.0,
            )


class TestContinuation:
    def test_continue_after_checkpoint_accumulates(self):
        # R=20: segment of 2 tasks (6s) + ckpt (1s) = 7s; continuing fits
        # two full segments and part of a third.
        rec = run_reservation(
            20.0,
            Deterministic(3.0),
            Deterministic(1.0),
            StaticCountPolicy(2),
            rng=0,
            continue_after_checkpoint=True,
        )
        assert rec.checkpoints_succeeded >= 2
        assert rec.work_saved >= 12.0

    def test_advisor_can_veto(self, laws):
        tasks, ckpt = laws
        adv = ContinuationAdvisor(
            tasks, ckpt, billing=BillingModel.BY_USAGE,
            price_per_second=1e9,
        )
        rec = run_reservation(
            29.0, tasks, ckpt, DynamicPolicy(tasks, ckpt), rng=1,
            continue_after_checkpoint=True, advisor=adv,
        )
        # Prohibitive price: behaves like drop-after-first-checkpoint.
        assert rec.checkpoints_succeeded <= 1

    def test_drop_records_event(self, laws):
        tasks, ckpt = laws
        rec = run_reservation(29.0, tasks, ckpt, DynamicPolicy(tasks, ckpt), rng=2)
        if rec.checkpoints_succeeded:
            assert rec.events[-1].kind == EventKind.RESERVATION_DROPPED


class TestStochastic:
    def test_dynamic_policy_run(self, laws):
        tasks, ckpt = laws
        rec = run_reservation(29.0, tasks, ckpt, DynamicPolicy(tasks, ckpt), rng=3)
        assert 0.0 <= rec.work_saved < 29.0
        assert rec.utilization == pytest.approx(rec.work_saved / 29.0)

    def test_mean_matches_vectorized_simulator(self, laws):
        from repro.simulation import simulate_threshold

        tasks, ckpt = laws
        policy = DynamicPolicy(tasks, ckpt)
        gen = np.random.default_rng(42)
        engine_mean = np.mean(
            [
                run_reservation(29.0, tasks, ckpt, policy, gen).work_saved
                for _ in range(800)
            ]
        )
        fast = simulate_threshold(
            29.0, tasks, ckpt, policy.work_threshold(29.0), 100_000, 43
        ).mean()
        assert engine_mean == pytest.approx(fast, abs=0.35)

    def test_trace_source_in_engine(self, paper_checkpoint_law):
        trace = TraceTaskSource([3.0, 3.1, 2.9, 3.0, 3.2, 2.8, 3.0, 3.1])
        rec = run_reservation(
            29.0, trace, paper_checkpoint_law, StaticCountPolicy(7), rng=4
        )
        assert rec.tasks_completed == 7
        assert rec.work_saved == pytest.approx(sum([3.0, 3.1, 2.9, 3.0, 3.2, 2.8, 3.0]))
