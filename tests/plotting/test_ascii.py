"""Unit tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.analysis import Series
from repro.plotting import render_chart


@pytest.fixture
def parabola():
    x = np.linspace(0.0, 10.0, 101)
    return Series(x, -(x - 5.0) ** 2 + 25.0, "parabola")


class TestRenderChart:
    def test_contains_glyph_and_legend(self, parabola):
        out = render_chart([parabola])
        assert "*" in out
        assert "parabola" in out

    def test_title_rendered(self, parabola):
        out = render_chart([parabola], title="My Figure")
        assert "My Figure" in out

    def test_markers_drawn(self, parabola):
        out = render_chart([parabola], markers={"X_opt": 5.0})
        assert "|" in out
        assert "X_opt = 5" in out

    def test_two_series_distinct_glyphs(self, parabola):
        other = Series(parabola.x, parabola.x, "line")
        out = render_chart([parabola, other])
        assert "*" in out and "o" in out

    def test_dimensions_respected(self, parabola):
        out = render_chart([parabola], width=40, height=10)
        plot_rows = [l for l in out.splitlines() if "|" in l and "+" not in l]
        assert len(plot_rows) >= 10

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            render_chart([])

    def test_rejects_tiny_canvas(self, parabola):
        with pytest.raises(ValueError):
            render_chart([parabola], width=4)

    def test_constant_series_no_crash(self):
        s = Series(np.array([0.0, 1.0]), np.array([2.0, 2.0]), "flat")
        out = render_chart([s])
        assert "flat" in out

    def test_axis_ticks_present(self, parabola):
        out = render_chart([parabola])
        assert "25" in out  # max y tick (with headroom ~26 -> formatted)
