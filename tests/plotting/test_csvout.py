"""Unit tests for CSV series export/import."""

import numpy as np
import pytest

from repro.analysis import Series
from repro.plotting import read_series_csv, write_series_csv


class TestRoundTrip:
    def test_single_series(self, tmp_path):
        s = Series(np.array([0.0, 1.0, 2.0]), np.array([5.0, 6.0, 7.0]), "vals")
        path = str(tmp_path / "out.csv")
        write_series_csv(path, [s])
        (back,) = read_series_csv(path)
        assert back.label == "vals"
        np.testing.assert_allclose(back.x, s.x)
        np.testing.assert_allclose(back.y, s.y)

    def test_shared_grid(self, tmp_path):
        x = np.linspace(0, 1, 5)
        a = Series(x, x, "a")
        b = Series(x, 2 * x, "b")
        path = str(tmp_path / "two.csv")
        write_series_csv(path, [a, b])
        back = read_series_csv(path)
        assert [s.label for s in back] == ["a", "b"]
        np.testing.assert_allclose(back[1].y, 2 * x)

    def test_disjoint_grids_leave_gaps(self, tmp_path):
        a = Series(np.array([0.0, 1.0]), np.array([1.0, 2.0]), "a")
        b = Series(np.array([2.0, 3.0]), np.array([3.0, 4.0]), "b")
        path = str(tmp_path / "gap.csv")
        write_series_csv(path, [a, b])
        with open(path) as fh:
            content = fh.read()
        # Row for x=3.0 must have an empty cell for series a.
        assert ",,'" not in content  # sanity: no quoting weirdness
        back = read_series_csv(path)
        assert back[0].x.max() == 1.0
        assert back[1].x.min() == 2.0

    def test_full_precision_roundtrip(self, tmp_path):
        x = np.array([0.1, 0.2, 0.3])
        y = np.array([1.0 / 3.0, 2.0 / 3.0, 1.0 / 7.0])
        path = str(tmp_path / "prec.csv")
        write_series_csv(path, [Series(x, y, "p")])
        (back,) = read_series_csv(path)
        np.testing.assert_array_equal(back.y, y)

    def test_rejects_empty_list(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            write_series_csv(str(tmp_path / "x.csv"), [])

    def test_creates_parent_dirs(self, tmp_path):
        s = Series(np.array([0.0, 1.0]), np.array([0.0, 1.0]), "s")
        path = str(tmp_path / "deep" / "dir" / "out.csv")
        write_series_csv(path, [s])
        assert read_series_csv(path)
