"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_law
from repro.distributions import (
    Beta,
    Deterministic,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    TruncatedContinuous,
    Uniform,
    Weibull,
)


class TestParseLaw:
    def test_uniform(self):
        law = parse_law("uniform:1,7.5")
        assert isinstance(law, Uniform)
        assert law.support == (1.0, 7.5)

    def test_all_families(self):
        cases = {
            "exponential:0.5": Exponential,
            "normal:3,0.5": Normal,
            "lognormal:1,0.5": LogNormal,
            "gamma:1,0.5": Gamma,
            "weibull:1.5,2": Weibull,
            "poisson:3": Poisson,
            "deterministic:4": Deterministic,
            "beta:2,5": Beta,
            "beta:2,5,1,7.5": Beta,
        }
        for spec, cls in cases.items():
            assert isinstance(parse_law(spec), cls), spec

    def test_truncation_suffix(self):
        law = parse_law("normal:5,0.4@[0,inf]")
        assert isinstance(law, TruncatedContinuous)
        assert law.support[0] == 0.0

    def test_bounded_truncation(self):
        law = parse_law("exponential:0.5@[1,5]")
        assert law.support == (1.0, 5.0)

    def test_whitespace_tolerated(self):
        assert isinstance(parse_law("  normal:3,0.5 "), Normal)

    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            parse_law("cauchy:0,1")

    def test_wrong_arity(self):
        with pytest.raises(ValueError, match="parameter"):
            parse_law("normal:3")

    def test_bad_truncation_suffix(self):
        with pytest.raises(ValueError, match="lo,hi"):
            parse_law("normal:3,0.5@0-5")


class TestCommands:
    def test_margin(self, capsys):
        rc = main(["margin", "-R", "10", "--checkpoint-law", "uniform:1,7.5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "X_opt               = 5.5" in out
        assert "1.2462x" in out

    def test_static(self, capsys):
        rc = main(
            [
                "static", "-R", "30",
                "--task-law", "normal:3,0.5",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "n_opt        = 7" in out

    def test_static_show_curve(self, capsys):
        rc = main(
            [
                "static", "-R", "10",
                "--task-law", "gamma:1,0.5",
                "--checkpoint-law", "normal:2,0.4@[0,inf]",
                "--show-curve",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "E( 12)" in out

    def test_dynamic_with_decision(self, capsys):
        rc = main(
            [
                "dynamic", "-R", "29",
                "--task-law", "normal:3,0.5@[0,inf]",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
                "--work", "22",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "W_int = 20.26" in out
        assert "CHECKPOINT" in out

    def test_fit(self, tmp_path, capsys, rng):
        trace = tmp_path / "trace.txt"
        np.savetxt(trace, Gamma(2.0, 0.8).sample(3000, rng))
        rc = main(["fit", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "best: gamma" in out

    def test_simulate_preemptible_default_margin(self, capsys):
        rc = main(
            [
                "simulate", "--mode", "preemptible", "-R", "10",
                "--checkpoint-law", "uniform:1,7.5",
                "--trials", "20000", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "optimal margin X = 5.5" in out
        assert "mean=3.1" in out

    def test_simulate_oracle(self, capsys):
        rc = main(
            [
                "simulate", "--mode", "oracle", "-R", "29",
                "--task-law", "normal:3,0.5@[0,inf]",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
                "--trials", "20000", "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "mean=22" in out

    def test_simulate_workflow_requires_task_law(self, capsys):
        rc = main(
            [
                "simulate", "--mode", "dynamic", "-R", "29",
                "--checkpoint-law", "normal:5,0.4@[0,inf]",
            ]
        )
        assert rc == 2
        assert "task-law" in capsys.readouterr().err

    def test_error_reporting(self, capsys):
        rc = main(["margin", "-R", "10", "--checkpoint-law", "cauchy:0,1"])
        assert rc == 2
        assert "unknown family" in capsys.readouterr().err

    def test_fit_missing_file(self, capsys):
        rc = main(["fit", "/nonexistent/trace.txt"])
        assert rc == 2
