"""Instrumentation seams outside the service: engine and FFT memo."""

from __future__ import annotations

from repro.cli import parse_law
from repro.core.policies import StaticCountPolicy
from repro.distributions import Exponential, iid_sum
from repro.distributions.sums import fft_sum_cache_clear
from repro.obs import DurationRecorder, MetricsRegistry, global_registry, set_global_registry
from repro.simulation import run_reservation


class TestEngineCounters:
    def test_run_reservation_feeds_the_global_registry(self):
        fresh = MetricsRegistry()
        previous = set_global_registry(fresh)
        try:
            record = run_reservation(
                10.0,
                Exponential(1.0),
                parse_law("normal:0.5,0.05@[0,inf]"),
                StaticCountPolicy(3),
                rng=7,
            )
            assert fresh.counter("sim.reservations") == 1
            assert fresh.counter("sim.tasks_completed") == record.tasks_completed
            assert (
                fresh.counter("sim.checkpoints_succeeded")
                == record.checkpoints_succeeded
            )
            snap = fresh.snapshot()
            assert snap["histograms"]["sim.work_saved"]["count"] == 1
        finally:
            set_global_registry(previous)

    def test_engine_feeds_duration_recorder_with_canonical_key(self):
        ckpt = parse_law("normal:0.5,0.05@[0,inf]")
        recorder = DurationRecorder(min_samples=5)
        for seed in range(8):
            run_reservation(
                10.0,
                Exponential(1.0),
                ckpt,
                StaticCountPolicy(3),
                rng=seed,
                duration_recorder=recorder,
            )
        assert recorder.keys() == [ckpt.spec()]
        assert recorder.count(ckpt.spec()) >= 8
        # the recorded durations come from the assumed law: no drift
        assert recorder.check_drift(ckpt.spec()).drifted is False

    def test_explicit_recorder_key_wins(self):
        recorder = DurationRecorder()
        run_reservation(
            10.0,
            Exponential(1.0),
            parse_law("normal:0.5,0.05@[0,inf]"),
            StaticCountPolicy(3),
            rng=0,
            duration_recorder=recorder,
            recorder_key="rack-42",
        )
        assert recorder.keys() == ["rack-42"]


class TestFftMemoCounters:
    def test_fft_fallback_mirrors_into_the_registry(self):
        fresh = MetricsRegistry()
        previous = set_global_registry(fresh)
        try:
            fft_sum_cache_clear()
            law = parse_law("uniform:0.5,1.5")  # no closed-form sum: FFT path
            iid_sum(law, 4)
            iid_sum(law, 4)
            assert fresh.counter("fft_sum.misses") == 1
            assert fresh.counter("fft_sum.hits") == 1
            snap = fresh.snapshot()
            assert snap["histograms"]["fft_sum.build_seconds"]["count"] == 1
        finally:
            set_global_registry(previous)
            fft_sum_cache_clear()
