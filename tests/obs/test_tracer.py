"""Unit tests for the span tracer: lifecycle, nesting, ring, export."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import NULL_SPAN, Span, Tracer, new_span_id, new_trace_id


class TestIds:
    def test_trace_ids_are_32_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 32 and int(i, 16) >= 0 for i in ids)

    def test_span_ids_are_16_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)


class TestSpanLifecycle:
    def test_context_manager_records_interval(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            assert not span.finished
        assert span.finished
        assert span.end >= span.start
        assert span.status == "ok"

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert span.status == "error"
        assert span.finished

    def test_tags_survive_to_export(self):
        tracer = Tracer()
        with tracer.span("op", tags={"a": 1}) as span:
            span.set_tag("b", "two")
        [exported] = tracer.spans()
        assert exported.tags == {"a": 1, "b": "two"}

    def test_to_dict_is_json_serializable(self):
        tracer = Tracer()
        with tracer.span("op", tags={"k": "v"}):
            pass
        [span] = tracer.spans()
        round_tripped = json.loads(json.dumps(span.to_dict()))
        assert round_tripped["name"] == "op"
        assert round_tripped["tags"] == {"k": "v"}


class TestNesting:
    def test_child_inherits_trace_and_parent_ids(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id

    def test_child_interval_nests_inside_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                pass
        assert parent.start <= child.start
        assert child.end <= parent.end

    def test_sibling_traces_are_independent(self):
        tracer = Tracer()
        with tracer.span("first") as a:
            pass
        with tracer.span("second") as b:
            pass
        assert a.trace_id != b.trace_id
        assert b.parent_id is None

    def test_explicit_trace_context_joins_remote_trace(self):
        tracer = Tracer()
        with tracer.span("server.op", trace_id="f" * 32, parent_id="a" * 16) as span:
            pass
        assert span.trace_id == "f" * 32
        assert span.parent_id == "a" * 16

    def test_current_span_tracks_ambient_context(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None

    def test_context_propagates_into_threads_via_copy_context(self):
        import contextvars

        tracer = Tracer()
        seen: list[Span] = []

        with tracer.span("parent") as parent:
            ctx = contextvars.copy_context()

            def child_work() -> None:
                with tracer.span("child") as child:
                    seen.append(child)

            thread = threading.Thread(target=lambda: ctx.run(child_work))
            thread.start()
            thread.join()
        [child] = seen
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id


class TestRingBuffer:
    def test_drops_oldest_first(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        names = [span.name for span in tracer.spans()]
        assert names == ["s2", "s3", "s4"]
        assert tracer.stats()["dropped"] == 2

    def test_spans_filter_by_trace_id(self):
        tracer = Tracer()
        with tracer.span("keep") as keep:
            pass
        with tracer.span("other"):
            pass
        assert [s.name for s in tracer.spans(keep.trace_id)] == ["keep"]

    def test_open_spans_balance(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.open_spans == 2
        assert tracer.open_spans == 0

    def test_clear_resets_buffer_not_counters(self):
        tracer = Tracer(capacity=2)
        for _ in range(3):
            with tracer.span("s"):
                pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.stats()["buffered"] == 0


class TestDisabledTracer:
    def test_disabled_span_is_the_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN

    def test_null_span_tolerates_full_span_protocol(self):
        with Tracer(enabled=False).span("op") as span:
            span.set_tag("k", "v")
            span.status = "error"  # attribute writes are silently ignored
        assert span is NULL_SPAN

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("op"):
            pass
        assert tracer.spans() == []
        assert tracer.stats()["started"] == 0


class TestExport:
    def test_export_jsonl_one_object_per_line(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b", tags={"n": 2}):
            pass
        lines = tracer.export_jsonl().strip().splitlines()
        objects = [json.loads(line) for line in lines]
        assert [o["name"] for o in objects] == ["a", "b"]
        assert objects[1]["tags"] == {"n": 2}
