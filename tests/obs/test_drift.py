"""Checkpoint-duration telemetry and KS policy-drift detection.

The acceptance pair for the drift detector is deterministic and seeded:
samples drawn from the assumed law must NOT raise the signal (false
alarms bounded by the DKW-derived threshold), while samples from a
shifted law MUST raise it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cli import parse_law
from repro.obs import DriftReport, DurationRecorder, ks_distance, ks_threshold

ASSUMED = "normal:2,0.4@[0,inf]"


def _samples(spec: str, n: int, seed: int) -> np.ndarray:
    return parse_law(spec).sample(n, np.random.default_rng(seed))


class TestKsMath:
    def test_ks_distance_zero_for_exact_cdf_match(self):
        law = parse_law("uniform:0,1")
        # the ECDF of the quantile mid-grid is maximally close to the CDF
        grid = (np.arange(1, 101) - 0.5) / 100
        assert ks_distance(grid, law) <= 0.5 / 100 + 1e-12

    def test_ks_distance_one_for_disjoint_support(self):
        law = parse_law("uniform:0,1")
        assert ks_distance(np.full(50, 10.0), law) == pytest.approx(1.0)

    def test_ks_distance_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_distance(np.array([]), parse_law("uniform:0,1"))

    def test_threshold_shrinks_with_n(self):
        assert ks_threshold(1000) < ks_threshold(100) < ks_threshold(10)

    def test_threshold_grows_as_alpha_shrinks(self):
        assert ks_threshold(100, alpha=0.001) > ks_threshold(100, alpha=0.1)

    def test_threshold_validates_inputs(self):
        with pytest.raises(ValueError):
            ks_threshold(0)
        with pytest.raises(ValueError):
            ks_threshold(10, alpha=1.5)

    def test_false_alarm_rate_bounded_under_null(self):
        """Seeded sweep: drift signals on same-law samples stay rare."""
        law = parse_law(ASSUMED)
        alarms = sum(
            ks_distance(law.sample(200, np.random.default_rng(seed)), law)
            > ks_threshold(200, alpha=0.01)
            for seed in range(100)
        )
        assert alarms <= 3  # alpha = 1% over 100 trials


class TestRecorder:
    def test_record_and_window(self):
        rec = DurationRecorder(window=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            rec.record("k", value)
        assert rec.count("k") == 4
        assert list(rec.samples("k")) == [2.0, 3.0, 4.0, 5.0]  # oldest dropped
        assert rec.total_recorded == 5

    def test_record_many_returns_count(self):
        rec = DurationRecorder()
        assert rec.record_many("k", [0.1, 0.2, 0.3]) == 3

    def test_rejects_negative_and_non_finite(self):
        rec = DurationRecorder()
        with pytest.raises(ValueError):
            rec.record("k", -1.0)
        with pytest.raises(ValueError):
            rec.record("k", math.nan)
        with pytest.raises(ValueError):
            rec.record_many("k", [0.1, math.inf])

    def test_empirical_materializes_the_window(self):
        rec = DurationRecorder()
        rec.record_many("k", [1.0, 2.0, 3.0])
        law = rec.empirical("k")
        assert law.mean() == pytest.approx(2.0)

    def test_refit_recovers_the_family(self):
        rec = DurationRecorder()
        rec.record_many("k", _samples("normal:2,0.4@[0,inf]", 400, seed=7))
        report = rec.refit("k", families=["normal", "lognormal"])
        assert report.best is not None

    def test_clear_one_key(self):
        rec = DurationRecorder()
        rec.record("a", 1.0)
        rec.record("b", 1.0)
        rec.clear("a")
        assert rec.keys() == ["b"]


class TestDriftVerdicts:
    def test_same_law_samples_do_not_signal(self):
        rec = DurationRecorder(min_samples=30)
        rec.record_many(ASSUMED, _samples(ASSUMED, 500, seed=42))
        report = rec.check_drift(ASSUMED)
        assert report.drifted is False
        assert report.ks is not None and report.ks < report.threshold

    def test_shifted_law_samples_signal(self):
        rec = DurationRecorder(min_samples=30)
        # hardware regressed: durations now centred on 3, policy assumes 2
        rec.record_many(ASSUMED, _samples("normal:3,0.4@[0,inf]", 500, seed=42))
        report = rec.check_drift(ASSUMED)
        assert report.drifted is True
        assert report.ks > report.threshold

    def test_widened_law_signals_too(self):
        rec = DurationRecorder(min_samples=30)
        rec.record_many(ASSUMED, _samples("normal:2,1.2@[0,inf]", 500, seed=11))
        assert rec.check_drift(ASSUMED).drifted is True

    def test_insufficient_samples_is_undecided(self):
        rec = DurationRecorder(min_samples=30)
        rec.record_many(ASSUMED, _samples(ASSUMED, 10, seed=0))
        report = rec.check_drift(ASSUMED)
        assert report.drifted is None
        assert report.ks is None

    def test_explicit_assumed_law_object(self):
        rec = DurationRecorder(min_samples=10)
        rec.record_many("opaque-key", _samples(ASSUMED, 100, seed=3))
        report = rec.check_drift("opaque-key", assumed=parse_law(ASSUMED))
        assert report.drifted is False

    def test_fixed_threshold_overrides_dkw(self):
        rec = DurationRecorder(min_samples=10, threshold=0.9)
        rec.record_many(ASSUMED, _samples("normal:3,0.4@[0,inf]", 200, seed=1))
        assert rec.check_drift(ASSUMED).drifted is False  # 0.9 is unreachable

    def test_check_all_tolerates_unparseable_keys(self):
        rec = DurationRecorder(min_samples=5)
        rec.record_many("not a law spec", [0.1] * 10)
        rec.record_many(ASSUMED, _samples(ASSUMED, 100, seed=5))
        reports = rec.check_all()
        assert reports["not a law spec"].drifted is None
        assert reports[ASSUMED].drifted is False

    def test_snapshot_lists_drifted_keys_and_is_json(self):
        import json

        rec = DurationRecorder(min_samples=30)
        rec.record_many(ASSUMED, _samples("normal:3,0.4@[0,inf]", 300, seed=42))
        snap = json.loads(json.dumps(rec.snapshot()))
        assert snap["drifted"] == [ASSUMED]
        assert snap["keys"][ASSUMED]["drifted"] is True

    def test_report_to_dict_round_trips(self):
        report = DriftReport("k", 10, 0.5, 0.2, True)
        assert report.to_dict()["ks_distance"] == 0.5
