"""Shared helpers for the observability tests.

Adds ``tests/service`` to ``sys.path`` so the loopback tests can reuse
the thread-hosted server harnesses, and provides the minimal Prometheus
text-exposition checker required by the CI artifact step: every line of
an exposition must be a well-formed comment or sample, every sample's
family must be typed, and histogram bucket counts must be cumulative.
"""

from __future__ import annotations

import math
import re
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "service"))

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _family(name: str) -> str:
    """Strip histogram sample suffixes back to the declared family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_prometheus_exposition(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Validate Prometheus text-format 0.0.4; returns samples per family.

    Raises ``AssertionError`` on the first malformed line, sample of an
    undeclared family, non-cumulative histogram, or histogram without a
    ``+Inf`` bucket.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict, float]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        assert line == line.strip(), f"line {lineno}: stray whitespace: {line!r}"
        assert line, f"line {lineno}: blank line"
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            assert len(parts) >= 4, f"line {lineno}: malformed HELP: {line!r}"
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            assert len(parts) == 4, f"line {lineno}: malformed TYPE: {line!r}"
            _, _, name, kind = parts
            assert kind in _TYPES, f"line {lineno}: unknown type {kind!r}"
            assert name not in types, f"line {lineno}: duplicate TYPE for {name}"
            types[name] = kind
            continue
        assert not line.startswith("#"), f"line {lineno}: unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"line {lineno}: malformed sample: {line!r}"
        name = match.group("name")
        family = _family(name)
        assert family in types or name in types, (
            f"line {lineno}: sample {name!r} has no preceding TYPE"
        )
        labels: dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for pair in raw[1:-1].split(","):
                assert _LABEL_RE.match(pair), f"line {lineno}: bad label {pair!r}"
                key, _, value = pair.partition("=")
                labels[key] = value[1:-1]
        value = float(match.group("value"))
        samples.setdefault(family if family in types else name, []).append(
            (labels | {"__name__": name}, value)
        )
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [
            (float(labels["le"].replace("+Inf", "inf")), value)
            for labels, value in samples.get(family, [])
            if labels["__name__"] == f"{family}_bucket"
        ]
        assert buckets, f"histogram {family} has no buckets"
        assert math.isinf(buckets[-1][0]), f"histogram {family} lacks a +Inf bucket"
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), f"histogram {family} is not cumulative"
        count_samples = [
            value
            for labels, value in samples[family]
            if labels["__name__"] == f"{family}_count"
        ]
        assert count_samples and count_samples[0] == counts[-1], (
            f"histogram {family}: _count disagrees with the +Inf bucket"
        )
    return samples


@pytest.fixture
def prom_check():
    return check_prometheus_exposition
