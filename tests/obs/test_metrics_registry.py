"""Unified metrics registry: counters, histograms, strict JSON, Prometheus."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry, global_registry
from repro.service import ServiceMetrics


def _reject(_constant: str):  # json parse_constant hook
    raise AssertionError(f"non-strict JSON constant emitted: {_constant}")


def strict_round_trip(payload) -> dict:
    """Serialize and re-parse, failing on NaN/Infinity tokens."""
    return json.loads(json.dumps(payload), parse_constant=_reject)


class TestHistogram:
    def test_quantile_capped_at_max_observed(self):
        hist = Histogram()
        for value in (0.5, 2.0, 10.0):
            hist.observe(value)
        assert hist.quantile(1.0) >= 10.0
        assert hist.quantile(1.0) <= 10.0 + 1e-9  # capped, not bucket upper bound
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_empty_quantile_is_nan_but_snapshot_is_null(self):
        hist = Histogram()
        assert math.isnan(hist.quantile(0.5))
        snap = strict_round_trip(hist.snapshot())
        assert snap["count"] == 0
        assert snap["mean_seconds"] is None
        assert snap["p99_seconds"] is None

    def test_infinite_observation_lands_in_overflow_bucket(self):
        hist = Histogram()
        hist.observe(math.inf)
        snap = strict_round_trip(hist.snapshot())
        assert snap["count"] == 1
        # non-finite statistics (max, sum, mean) are nulled, not leaked
        assert snap["max_seconds"] is None
        assert snap["sum_seconds"] is None

    def test_default_buckets_cover_decades_and_end_at_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf
        assert all(b1 < b2 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.incr("a")
        reg.incr("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.5)
        reg.set_gauge("g", 2.5)
        assert reg.gauge("g") == 2.5

    def test_time_context_observes_a_duration(self):
        reg = MetricsRegistry()
        with reg.time("op"):
            pass
        snap = reg.snapshot()
        assert snap["histograms"]["op"]["count"] == 1

    def test_snapshot_is_strict_json(self):
        reg = MetricsRegistry()
        reg.incr("c", 3)
        reg.set_gauge("g", 0.5)
        reg.observe("h", 1.0)
        MetricsRegistry()  # an empty one must also round-trip
        snap = strict_round_trip(reg.snapshot())
        assert snap["counters"]["c"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_absorb_merges_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("shared", 2)
        b.incr("shared", 3)
        b.incr("only_b")
        a.observe("lat", 0.1)
        b.observe("lat", 0.2)
        a.absorb(b)
        assert a.counter("shared") == 5
        assert a.counter("only_b") == 1
        assert a.snapshot()["histograms"]["lat"]["count"] == 2

    def test_reset_empties_everything(self):
        reg = MetricsRegistry()
        reg.incr("c")
        reg.observe("h", 1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()
        assert isinstance(global_registry(), MetricsRegistry)


class TestPrometheusExposition:
    def test_render_passes_the_format_checker(self, prom_check):
        reg = MetricsRegistry()
        reg.incr("requests.ping", 3)
        reg.set_gauge("inflight", 2.0)
        reg.observe("latency.advise", 0.005)
        reg.observe("latency.advise", 0.120)
        samples = prom_check(reg.render_prometheus())
        flat = {
            labels["__name__"]: value
            for family in samples.values()
            for labels, value in family
            if "le" not in labels
        }
        assert flat["repro_requests_ping_total"] == 3.0
        assert flat["repro_inflight"] == 2.0
        assert flat["repro_latency_advise_count"] == 2.0

    def test_bucket_counts_are_cumulative(self, prom_check):
        reg = MetricsRegistry()
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            reg.observe("h", value)
        samples = prom_check(reg.render_prometheus(namespace="x"))
        buckets = [v for labels, v in samples["x_h"] if "le" in labels]
        assert buckets[-1] == 5.0

    def test_names_are_sanitized(self, prom_check):
        reg = MetricsRegistry()
        reg.incr("weird-name.with/chars")
        text = reg.render_prometheus()
        prom_check(text)
        assert "repro_weird_name_with_chars_total" in text


class TestServiceMetricsCompat:
    """The service facade delegates to the registry without breaking API."""

    def test_snapshot_separates_latency_histograms(self):
        metrics = ServiceMetrics()
        metrics.observe_latency("advise", 0.01)
        metrics.observe("advise.batch_size", 128.0)
        snap = strict_round_trip(metrics.snapshot())
        assert "advise" in snap["latency"]
        assert "advise.batch_size" in snap["histograms"]

    def test_empty_latency_snapshot_is_strict_json(self):
        metrics = ServiceMetrics()
        metrics.observe_latency("never_completed", math.inf)
        strict_round_trip(metrics.snapshot())

    def test_render_mentions_counters(self):
        metrics = ServiceMetrics()
        metrics.incr("requests.ping")
        assert "requests.ping" in metrics.render()

    def test_is_a_registry(self):
        assert isinstance(ServiceMetrics(), MetricsRegistry)
