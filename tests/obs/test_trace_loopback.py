"""End-to-end trace invariants over a real loopback server.

One request with tracing enabled on both sides must produce a single
consistent trace: the response echoes the request's trace id, every
span opened is closed, and in-process child spans (server -> advisor ->
cache-compile, via the executor) nest inside their parent's interval.
The degraded path is covered too: a resilient client talking to a dead
port must tag its hop ``source: local-fallback``.

The Prometheus exposition scraped from the live server doubles as the
CI build artifact: set ``REPRO_PROM_ARTIFACT`` to a path and the
scrape test writes it there.
"""

from __future__ import annotations

import os

import pytest

from harness import ServerThread, free_port
from repro.obs import DurationRecorder, Tracer
from repro.service import Client, ResilientClient, RetryPolicy

FIG9 = {
    "reservation": 10.0,
    "task_law": "gamma:1,0.5",
    "checkpoint_law": "normal:2,0.4@[0,inf]",
}


@pytest.fixture(scope="module")
def traced_stack():
    """One traced server + its tracer pair, shared across the module."""
    server_tracer = Tracer(capacity=512)
    recorder = DurationRecorder(min_samples=5)
    with ServerThread(
        tracer=server_tracer, recorder=recorder, drift_check=True
    ) as stack:
        yield stack, server_tracer


def _spans_by_name(tracer: Tracer, trace_id: str) -> dict:
    return {span.name: span for span in tracer.spans(trace_id)}


class TestTraceIdPropagation:
    def test_response_echoes_the_request_trace_id(self, traced_stack):
        stack, _ = traced_stack
        client_tracer = Tracer()
        with Client(port=stack.port, tracer=client_tracer) as client:
            client.ping()
        [client_span] = client_tracer.spans()
        assert client.last_response_trace_id == client_span.trace_id

    def test_server_span_joins_the_client_trace(self, traced_stack):
        stack, server_tracer = traced_stack
        client_tracer = Tracer()
        with Client(port=stack.port, tracer=client_tracer) as client:
            client.warm(**FIG9)
        [client_span] = client_tracer.spans()
        server_spans = server_tracer.spans(client_span.trace_id)
        assert any(s.name == "server.warm" for s in server_spans)
        [server_span] = [s for s in server_spans if s.name == "server.warm"]
        assert server_span.parent_id == client_span.span_id

    def test_untraced_client_still_gets_service(self, traced_stack):
        stack, _ = traced_stack
        with Client(port=stack.port) as client:
            assert client.ping() is True
        assert client.last_response_trace_id is None


class TestSpanInvariants:
    def test_every_opened_span_is_closed(self, traced_stack):
        stack, server_tracer = traced_stack
        with Client(port=stack.port, tracer=Tracer()) as client:
            client.warm(**FIG9)
            client.advise(**FIG9, work=5.0)
            client.advise_batch(**FIG9, work=[1.0, 5.0, 9.0])
        stats = server_tracer.stats()
        assert stats["started"] == stats["finished"]
        assert server_tracer.open_spans == 0

    def test_child_spans_nest_in_parent_interval(self, traced_stack):
        stack, server_tracer = traced_stack
        client_tracer = Tracer()
        reservation = 10.0 + free_port() % 97  # force a compile (fresh key)
        with Client(port=stack.port, tracer=client_tracer) as client:
            client.advise_batch(
                reservation,
                FIG9["task_law"],
                FIG9["checkpoint_law"],
                work=[1.0, 5.0],
            )
        [client_span] = client_tracer.spans()
        spans = _spans_by_name(server_tracer, client_span.trace_id)
        server_span = spans["server.advise_batch"]
        advisor_span = spans["advisor.advise_batch"]
        compile_span = spans["cache.compile"]
        # executor threads inherit the ambient span via copy_context():
        # advisor under server, compile under advisor — by id and by time
        assert advisor_span.parent_id == server_span.span_id
        assert compile_span.parent_id == advisor_span.span_id
        assert server_span.start <= advisor_span.start
        assert advisor_span.end <= server_span.end
        assert advisor_span.start <= compile_span.start
        assert compile_span.end <= advisor_span.end

    def test_error_envelope_marks_server_span(self, traced_stack):
        from repro.service import ServiceError

        stack, server_tracer = traced_stack
        client_tracer = Tracer()
        with Client(port=stack.port, tracer=client_tracer) as client:
            with pytest.raises(ServiceError):
                client.advise(**FIG9, work=-1.0)
        [client_span] = client_tracer.spans()
        assert client_span.status == "error"
        assert client_span.tags["error_kind"] == "invalid-params"
        spans = _spans_by_name(server_tracer, client_span.trace_id)
        assert spans["server.advise"].status == "error"


class TestObserveAndDriftOverLoopback:
    def test_observe_feeds_the_drift_detector(self, traced_stack):
        stack, _ = traced_stack
        import numpy as np

        shifted = np.random.default_rng(42).normal(3.0, 0.4, size=200)
        with Client(port=stack.port) as client:
            report = client.observe(
                FIG9["checkpoint_law"], [float(abs(v)) for v in shifted]
            )
        assert report["key"] == FIG9["checkpoint_law"]
        assert report["drift"]["drifted"] is True
        # drift_check=True: the degraded flag must surface in health
        with Client(port=stack.port) as client:
            health = client.health()
        assert health["drift"]["enabled"] is True
        assert FIG9["checkpoint_law"] in health["drift"]["drifted"]
        assert health["degraded"] is True


class TestPrometheusOverLoopback:
    def test_exposition_parses_and_is_uploaded(self, traced_stack, prom_check):
        stack, _ = traced_stack
        with Client(port=stack.port) as client:
            client.ping()
            text = client.metrics_prometheus()
        samples = prom_check(text)
        names = {
            labels["__name__"]
            for family in samples.values()
            for labels, _ in family
        }
        assert "repro_requests_ping_total" in names
        assert any(n.startswith("repro_latency_") for n in names)
        artifact = os.environ.get("REPRO_PROM_ARTIFACT")
        if artifact:
            with open(artifact, "w", encoding="utf-8") as fh:
                fh.write(text)

    def test_stats_json_includes_tracing(self, traced_stack):
        stack, _ = traced_stack
        with Client(port=stack.port) as client:
            stats = client.stats(format="json")
        assert stats["tracing"]["enabled"] is True
        assert stats["tracing"]["dropped"] >= 0


class TestFallbackTagging:
    def test_dead_port_hop_is_tagged_local_fallback(self):
        tracer = Tracer()
        with ResilientClient(
            port=free_port(),  # nothing listens here
            timeout=0.2,
            deadline=1.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            tracer=tracer,
            sleep=lambda _s: None,
        ) as client:
            result = client.advise_batch(**FIG9, work=[1.0, 9.0])
        assert result["source"] == "local-fallback"
        [rpc_span] = [s for s in tracer.spans() if s.name == "rpc.advise_batch"]
        assert rpc_span.tags["source"] == "local-fallback"
        assert rpc_span.tags["fallback_cause"] in {
            "ConnectionRefusedError",
            "OSError",
            "TimeoutError",
        }
        # the local advisor's spans join the same trace as the rpc hop
        advisor_spans = [
            s
            for s in tracer.spans(rpc_span.trace_id)
            if s.name == "advisor.advise_batch"
        ]
        assert advisor_spans, "local fallback advisor did not trace under the hop"

    def test_server_hop_is_tagged_server(self, traced_stack):
        stack, _ = traced_stack
        tracer = Tracer()
        with ResilientClient(port=stack.port, tracer=tracer) as client:
            result = client.advise(**FIG9, work=5.0)
        assert result["source"] == "server"
        [rpc_span] = [s for s in tracer.spans() if s.name == "rpc.advise"]
        assert rpc_span.tags["source"] == "server"


class TestRingUnderLoad:
    def test_ring_drops_oldest_and_server_stays_healthy(self):
        tracer = Tracer(capacity=8)
        with ServerThread(tracer=tracer) as stack:
            with Client(port=stack.port, tracer=Tracer()) as client:
                for _ in range(20):
                    client.ping()
            stats = tracer.stats()
            assert stats["buffered"] == 8
            assert stats["dropped"] == stats["finished"] - 8
            names = [span.name for span in tracer.spans()]
            assert names == ["server.ping"] * 8
