"""Unit tests for the crash-safe file primitives (repro.runtime.atomic)."""

import json
import os

import pytest

from repro.runtime import atomic
from repro.runtime.faults import FaultInjector, SimulatedCrash


class TestEnvelope:
    def test_wrap_open_roundtrip(self):
        payload = {"b": [1, 2], "a": "x"}
        env = atomic.wrap_envelope(payload, fmt=3, payload_key="policy")
        assert env["persist_format"] == 3
        assert atomic.open_envelope(env, fmt=3, payload_key="policy") == payload

    def test_canonical_bytes_key_order_invariant(self):
        a = atomic.canonical_json_bytes({"x": 1, "y": 2})
        b = atomic.canonical_json_bytes({"y": 2, "x": 1})
        assert a == b

    @pytest.mark.parametrize(
        "data",
        [
            None,
            [],
            {"persist_format": 2, "crc32": 0},  # no payload
            {"persist_format": 1, "crc32": 0, "payload": {}},  # wrong version
            {"persist_format": 2, "payload": {}},  # no checksum
        ],
    )
    def test_foreign_layouts_are_format_errors(self, data):
        with pytest.raises(atomic.EnvelopeFormatError):
            atomic.open_envelope(data, fmt=2)

    def test_crc_mismatch_is_corruption(self):
        env = atomic.wrap_envelope({"v": 1}, fmt=2)
        env["payload"]["v"] = 2  # mutate after checksumming
        with pytest.raises(atomic.EnvelopeCorruptionError):
            atomic.open_envelope(env, fmt=2)

    def test_corruption_is_not_format_error(self):
        # Readers must be able to tell "stale layout" from "damage".
        env = atomic.wrap_envelope({"v": 1}, fmt=2)
        env["crc32"] ^= 1
        with pytest.raises(atomic.EnvelopeError) as exc_info:
            atomic.open_envelope(env, fmt=2)
        assert not isinstance(exc_info.value, atomic.EnvelopeFormatError)


class TestAtomicWrite:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        atomic.atomic_write_json(path, {"k": 1}, fmt=7)
        assert atomic.read_json_envelope(path, fmt=7) == {"k": 1}

    def test_replaces_existing_content_completely(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        atomic.atomic_write_json(path, {"k": 1}, fmt=7)
        atomic.atomic_write_json(path, {"k": 2}, fmt=7)
        assert atomic.read_json_envelope(path, fmt=7) == {"k": 2}

    def test_no_tmp_leftover_after_success(self, tmp_path):
        atomic.atomic_write_bytes(str(tmp_path / "f"), b"data")
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []

    def test_stages_reported_in_protocol_order(self, tmp_path):
        seen = []
        atomic.atomic_write_bytes(
            str(tmp_path / "f"), b"data", fault_hook=seen.append
        )
        assert tuple(seen) == atomic.WRITE_STAGES

    def test_oserror_unlinks_tmp_and_reraises(self, tmp_path):
        path = str(tmp_path / "f")
        atomic.atomic_write_bytes(path, b"old")

        def hook(stage):
            if stage == "tmp-written":
                raise OSError(28, "No space left on device")

        with pytest.raises(OSError):
            atomic.atomic_write_bytes(path, b"new", fault_hook=hook)
        # Old content intact, no tmp debris.
        with open(path, "rb") as fh:
            assert fh.read() == b"old"
        assert [n for n in os.listdir(tmp_path) if ".tmp." in n] == []

    @pytest.mark.parametrize("stage", atomic.WRITE_STAGES)
    def test_crash_at_every_stage_never_tears_destination(self, tmp_path, stage):
        """The destination holds the complete old bytes or the complete
        new bytes after a crash at any protocol stage — never a mix."""
        path = str(tmp_path / "f")
        atomic.atomic_write_bytes(path, b"old-content")
        injector = FaultInjector(seed=0)
        with pytest.raises(SimulatedCrash):
            atomic.atomic_write_bytes(
                path, b"new-content", fault_hook=injector.crash_hook(stage)
            )
        with open(path, "rb") as fh:
            content = fh.read()
        if stage in ("replaced", "dir-fsynced"):
            assert content == b"new-content"
        else:
            assert content == b"old-content"

    def test_crash_before_rename_leaves_tmp_for_sweep(self, tmp_path):
        injector = FaultInjector(seed=0)
        with pytest.raises(SimulatedCrash):
            atomic.atomic_write_bytes(
                str(tmp_path / "f"),
                b"data",
                fault_hook=injector.crash_hook("tmp-written"),
            )
        # The dead process cleaned nothing; the next startup does.
        assert any(".tmp." in n for n in os.listdir(tmp_path))
        assert atomic.sweep_stale_tmp(str(tmp_path)) == 1
        assert os.listdir(tmp_path) == []


class TestReadEnvelope:
    def test_missing_file_is_oserror(self, tmp_path):
        with pytest.raises(OSError):
            atomic.read_json_envelope(str(tmp_path / "absent.json"), fmt=1)

    def test_non_json_bytes_are_corruption(self, tmp_path):
        # A complete write is always valid JSON, so anything else can
        # only be a torn write.
        path = str(tmp_path / "torn.json")
        with open(path, "wb") as fh:
            fh.write(b'{"persist_format": 1, "crc32": 12')
        with pytest.raises(atomic.EnvelopeCorruptionError):
            atomic.read_json_envelope(path, fmt=1)

    def test_valid_json_wrong_shape_is_format_error(self, tmp_path):
        path = str(tmp_path / "foreign.json")
        with open(path, "w") as fh:
            json.dump({"something": "else"}, fh)
        with pytest.raises(atomic.EnvelopeFormatError):
            atomic.read_json_envelope(path, fmt=1)


class TestSweep:
    def test_only_marked_files_removed(self, tmp_path):
        (tmp_path / "keep.json").write_text("{}")
        (tmp_path / "a.json.tmp.123").write_text("junk")
        (tmp_path / "b.tmp.999").write_text("junk")
        assert atomic.sweep_stale_tmp(str(tmp_path)) == 2
        assert os.listdir(tmp_path) == ["keep.json"]

    def test_custom_marker(self, tmp_path):
        (tmp_path / "a.json.tmp.123").write_text("junk")
        (tmp_path / "b.tmp.999").write_text("junk")
        assert atomic.sweep_stale_tmp(str(tmp_path), marker=".json.tmp.") == 1
        assert sorted(os.listdir(tmp_path)) == ["b.tmp.999"]

    def test_missing_directory_is_quietly_zero(self, tmp_path):
        assert atomic.sweep_stale_tmp(str(tmp_path / "nope")) == 0
