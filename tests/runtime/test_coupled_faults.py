"""Process-level fault harness for consistent-cut coordination.

Marked ``faults``: CI runs this file in its own step under a hard
timeout and uploads the recovery log (``REPRO_FAULTS_LOG``) as a build
artifact, so a failing fault sequence is replayable from its seeds.

Two harnesses, one invariant — **after any single-component fault the
workflow restarts from the newest fully-consistent cut, and no
component ever resumes from a cut missing a peer's generation**:

* :class:`TestCoupledFaultMatrix` drives a seeded matrix of faults
  against each component's member store and against the shared cut
  log in turn — simulated crashes and disk-full at random atomic-write
  stages mid-cut, bit flips and torn writes on committed member
  generations, garbage cut manifests — each followed by a cold-restart
  recovery checked against an independent on-disk oracle that
  re-validates every member generation of every cut.
* :class:`TestCoupledSigkill` SIGKILLs a real cut-committing subprocess
  (``_coupled_crash_worker.py``) at random wall-clock points, asserts
  the same oracle invariant plus monotone progress across kills, and
  finally that the many-times-killed campaign converges to the bitwise
  identical solution of an uninterrupted run.
* :class:`TestCoupledKernelSigkill` runs the same kill loop against a
  worker whose cut cadence is the *table-kernel* AdvisorPolicy (the
  vectorized fast path), and compares the survivor bitwise against an
  uninterrupted in-process campaign on the *exact* scalar kernel — the
  kernels must be indistinguishable under SIGKILL.
"""

import importlib.util
import json
import os
import random
import re
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.runtime import (
    CheckpointCorruptionError,
    DurableCheckpointStore,
    FaultInjector,
    SimulatedCrash,
    atomic,
)

pytestmark = pytest.mark.faults

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
_WORKER_PATH = os.path.join(os.path.dirname(__file__), "_coupled_crash_worker.py")
_CUT_RE = re.compile(r"^cut-(\d{8})\.json$")

_spec = importlib.util.spec_from_file_location("_coupled_crash_worker", _WORKER_PATH)
assert _spec is not None and _spec.loader is not None
worker = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(worker)


def _newest_consistent_cut(store_root):
    """Independent on-disk oracle: decode every cut manifest under
    ``store_root/cuts`` and return ``(cut_payload, member_payloads)``
    for the newest cut whose *every* member generation fully validates
    (or ``None``). Shares no code with the recovery path beyond the
    file-format decoders."""
    cuts_dir = os.path.join(store_root, "cuts")
    if not os.path.isdir(cuts_dir):
        return None
    best = None
    for name in sorted(os.listdir(cuts_dir)):
        if not _CUT_RE.match(name):
            continue
        try:
            cut = atomic.read_json_envelope(
                os.path.join(cuts_dir, name), fmt=1, payload_key="cut"
            )
        except (OSError, atomic.EnvelopeError):
            continue
        payloads = {}
        consistent = True
        for member, generation in cut["members"].items():
            gen_path = os.path.join(
                store_root, member, f"gen-{int(generation):08d}.ckpt"
            )
            try:
                with open(gen_path, "rb") as fh:
                    _, payloads[member] = DurableCheckpointStore._decode(fh.read())
            except (OSError, CheckpointCorruptionError):
                consistent = False
                break
        if consistent:
            best = (cut, payloads)
    return best


def _append_fault_log(entries):
    """Append log lines to the CI artifact named by REPRO_FAULTS_LOG."""
    target = os.environ.get("REPRO_FAULTS_LOG")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry) + "\n")


def _advance(graph, iteration):
    """One macro-iteration of the reference loop (mirrors the worker)."""
    graph.exchange(iteration)
    for name in graph.names:
        app = graph.components[name].app
        if not app.converged:
            app.iterate()
    return iteration + 1


class TestCoupledFaultMatrix:
    SIZE = 12
    TOLERANCE = 1e-6
    ROUNDS = 3  # 3 rounds x 6 kinds = 18 injected faults, targets rotating

    #: One fault per cut-protocol weak point: a member store crashing or
    #: filling up mid-cut, a committed member generation torn or
    #: bit-flipped afterwards, the cut manifest itself dying mid-write
    #: or rotting in place.
    KINDS = (
        "crash-member",
        "crash-cut-manifest",
        "disk-full-member",
        "bitflip-member",
        "torn-member",
        "cut-manifest-garbage",
    )

    def test_matrix_zero_invariant_violations(self, tmp_path):
        injector = FaultInjector(seed=0xC0FA17)
        root = str(tmp_path / "wf")
        graph = worker.build_graph(self.SIZE, self.TOLERANCE)
        coordinator = worker.build_coordinator(root)
        iteration = 0
        recovery_log = []
        faults = 0

        for round_no in range(self.ROUNDS):
            for kind_no, kind in enumerate(self.KINDS):
                target = worker.NAMES[
                    (round_no * len(self.KINDS) + kind_no) % len(worker.NAMES)
                ]
                # Real progress plus one clean baseline cut, so every
                # fault has a consistent cut behind it.
                for _ in range(2):
                    iteration = _advance(graph, iteration)
                coordinator.commit_cut(graph.apps, iteration)
                baseline = iteration

                iteration = _advance(graph, iteration)
                if kind == "crash-member":
                    coordinator.stores[target].fault_hook = injector.crash_hook()
                    try:
                        coordinator.commit_cut(graph.apps, iteration)
                    except SimulatedCrash:
                        pass
                elif kind == "crash-cut-manifest":
                    coordinator.cut_log.fault_hook = injector.crash_hook()
                    try:
                        coordinator.commit_cut(graph.apps, iteration)
                    except SimulatedCrash:
                        pass
                elif kind == "disk-full-member":
                    coordinator.stores[target].fault_hook = injector.disk_full_hook()
                    with pytest.raises(OSError):
                        coordinator.commit_cut(graph.apps, iteration)
                elif kind == "bitflip-member":
                    coordinator.commit_cut(graph.apps, iteration)
                    assert injector.flip_bits(coordinator.stores[target])
                elif kind == "torn-member":
                    coordinator.commit_cut(graph.apps, iteration)
                    assert injector.truncate_latest(coordinator.stores[target])
                else:  # cut-manifest-garbage
                    manifest = coordinator.commit_cut(graph.apps, iteration)
                    cut_path = os.path.join(
                        root, "cuts", f"cut-{manifest.cut:08d}.json"
                    )
                    garbage = bytes(
                        injector.rng.randrange(256) for _ in range(64)
                    )
                    with open(cut_path, "wb") as fh:
                        fh.write(garbage)
                    injector._note("cut-manifest-garbage", f"cut {manifest.cut}")
                faults += 1

                # Cold restart: a fresh process opens the store root.
                survivor = worker.build_coordinator(root)
                oracle = _newest_consistent_cut(root)
                assert oracle is not None, f"{kind}: no consistent cut survived"
                oracle_cut, oracle_payloads = oracle
                recovered = worker.build_graph(self.SIZE, self.TOLERANCE)
                manifest = survivor.recover(recovered.apps)

                # THE invariant: the newest fully-consistent cut, every
                # component on the same cut, at most one cut's work lost.
                assert manifest.cut == oracle_cut["cut"], kind
                assert manifest.iteration == oracle_cut["iteration"], kind
                if kind == "crash-cut-manifest":
                    # A crash at the post-rename stages leaves the cut
                    # manifest durable — the cut legitimately committed.
                    assert manifest.iteration in (baseline, iteration), kind
                else:
                    assert manifest.iteration == baseline, kind
                for name in worker.NAMES:
                    assert (
                        recovered.components[name].app.serialize_state()
                        == oracle_payloads[name]
                    ), f"{kind}: component {name} off-cut"
                recovery_log.append(
                    {
                        "harness": "coupled-matrix",
                        "round": round_no,
                        "kind": kind,
                        "target": target,
                        "recovered_cut": manifest.cut,
                        "recovered_iteration": manifest.iteration,
                        "cuts_quarantined": survivor.cut_log.quarantined,
                    }
                )
                # Continue the campaign from the recovered state.
                graph, coordinator, iteration = (
                    recovered,
                    survivor,
                    manifest.iteration,
                )

        assert faults == self.ROUNDS * len(self.KINDS)
        assert injector.injected >= faults
        _append_fault_log(
            [{"harness": "coupled-matrix", "injected": kind, "detail": detail}
             for kind, detail in injector.log]
        )
        _append_fault_log(recovery_log)

        # After 18 faults the campaign still converges to the exact
        # solution of an uninterrupted run.
        while not graph.converged:
            iteration = _advance(graph, iteration)
        clean = worker.build_graph(self.SIZE, self.TOLERANCE)
        clean_iteration = 0
        while not clean.converged:
            clean_iteration = _advance(clean, clean_iteration)
        assert iteration == clean_iteration
        for name in worker.NAMES:
            assert (
                graph.components[name].app.serialize_state()
                == clean.components[name].app.serialize_state()
            )


class TestCoupledSigkill:
    KILLS = 12
    SIZE = 16
    TOLERANCE = 1e-7

    def _spawn(self, store_root):
        env = {**os.environ, "PYTHONPATH": _SRC_DIR}
        return subprocess.Popen(
            [
                sys.executable,
                _WORKER_PATH,
                store_root,
                str(self.SIZE),
                str(self.TOLERANCE),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def _cut_names(store_root):
        cuts_dir = os.path.join(store_root, "cuts")
        if not os.path.isdir(cuts_dir):
            return set()
        return {n for n in os.listdir(cuts_dir) if _CUT_RE.match(n)}

    @classmethod
    def _wait_for_new_cut(cls, proc, store_root, known, timeout=60.0):
        """Block until the worker commits a cut not in ``known`` (i.e.
        it imported, resumed and is actively cutting)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if cls._cut_names(store_root) - known:
                return True
            if proc.poll() is not None:
                return False  # worker finished before committing anything new
            time.sleep(0.005)
        raise TimeoutError("worker never committed a new cut")

    def test_sigkill_mid_cut_recovers_newest_consistent_cut(self, tmp_path):
        store_root = str(tmp_path / "wf")
        rng = random.Random(0xC0D1E)
        recovery_log = []
        prev_iteration = 0
        kills = 0

        for kill_no in range(self.KILLS):
            known = self._cut_names(store_root)
            proc = self._spawn(store_root)
            try:
                progressing = self._wait_for_new_cut(proc, store_root, known)
                if not progressing:
                    break  # converged before we could kill it
                time.sleep(rng.uniform(0.05, 0.25))
                if proc.poll() is not None:
                    break  # converged during the delay
                proc.send_signal(signal.SIGKILL)
                kills += 1
            finally:
                proc.wait(timeout=30)
                proc.stdout.close()
                proc.stderr.close()

            # Cold-restart recovery after a real SIGKILL — possibly
            # delivered mid-member-write or mid-manifest-rename.
            survivor = worker.build_coordinator(store_root)
            oracle = _newest_consistent_cut(store_root)
            assert oracle is not None, "no consistent cut survived the kill"
            oracle_cut, oracle_payloads = oracle
            recovered = worker.build_graph(self.SIZE, self.TOLERANCE)
            manifest = survivor.recover(recovered.apps)

            assert manifest.cut == oracle_cut["cut"]
            assert manifest.iteration == oracle_cut["iteration"]
            # No component resumes from a cut missing a peer's
            # generation: all restored states are the oracle's, bitwise.
            for name in worker.NAMES:
                assert (
                    recovered.components[name].app.serialize_state()
                    == oracle_payloads[name]
                ), f"component {name} off-cut after kill {kill_no}"
            # Monotone progress: each kill loses at most the in-flight
            # cut, never previously committed work.
            assert manifest.iteration >= prev_iteration
            prev_iteration = manifest.iteration
            recovery_log.append(
                {
                    "harness": "coupled-sigkill",
                    "kill": kill_no,
                    "recovered_cut": manifest.cut,
                    "recovered_iteration": manifest.iteration,
                    "cuts_quarantined": survivor.cut_log.quarantined,
                }
            )

        assert kills >= 10, f"worker converged too fast to kill ({kills} kills)"
        _append_fault_log(recovery_log)

        # Let the campaign finish uninterrupted and compare bitwise
        # against a never-killed in-process run.
        proc = self._spawn(store_root)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        assert "CONVERGED" in out

        final = worker.build_graph(self.SIZE, self.TOLERANCE)
        final_coordinator = worker.build_coordinator(store_root)
        manifest = final_coordinator.recover(final.apps)
        assert final.converged

        clean = worker.build_graph(self.SIZE, self.TOLERANCE)
        clean_iteration = 0
        while not clean.converged:
            clean_iteration = _advance(clean, clean_iteration)
        assert manifest.iteration == clean_iteration
        for name in worker.NAMES:
            assert (
                final.components[name].app.serialize_state()
                == clean.components[name].app.serialize_state()
            )
        _append_fault_log(
            [
                {
                    "harness": "coupled-sigkill",
                    "kills": kills,
                    "final_iteration": manifest.iteration,
                    "bitwise_match": True,
                }
            ]
        )


class TestCoupledKernelSigkill:
    """SIGKILL campaign on the table kernel vs an exact-kernel baseline.

    The worker runs policy-driven reservations
    (``AdvisorPolicy(kernel="table")`` deciding *cut now or one more
    macro-iteration*); the parent kills it mid-flight, checks the
    consistent-cut invariant after every kill, lets it finish, and then
    requires the final state to be bitwise identical to an
    *uninterrupted in-process* campaign on ``kernel="exact"``. The
    application math is a pure function of the macro-iteration number,
    so any divergence can only come from the kernels disagreeing on a
    cut decision.
    """

    KILLS = 8
    SIZE = 16
    TOLERANCE = 1e-7

    def _spawn(self, store_root, kernel="table"):
        env = {**os.environ, "PYTHONPATH": _SRC_DIR}
        return subprocess.Popen(
            [
                sys.executable,
                _WORKER_PATH,
                store_root,
                str(self.SIZE),
                str(self.TOLERANCE),
                kernel,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    def test_table_kernel_kill_loop_matches_exact_baseline(self, tmp_path):
        store_root = str(tmp_path / "wf")
        rng = random.Random(0x7AB1E)
        recovery_log = []
        prev_iteration = 0
        kills = 0

        for kill_no in range(self.KILLS):
            known = TestCoupledSigkill._cut_names(store_root)
            proc = self._spawn(store_root)
            try:
                progressing = TestCoupledSigkill._wait_for_new_cut(
                    proc, store_root, known
                )
                if not progressing:
                    break  # converged before we could kill it
                time.sleep(rng.uniform(0.02, 0.2))
                if proc.poll() is not None:
                    break  # converged during the delay
                proc.send_signal(signal.SIGKILL)
                kills += 1
            finally:
                proc.wait(timeout=30)
                proc.stdout.close()
                proc.stderr.close()

            survivor = worker.build_coordinator(store_root)
            oracle = _newest_consistent_cut(store_root)
            assert oracle is not None, "no consistent cut survived the kill"
            oracle_cut, oracle_payloads = oracle
            recovered = worker.build_graph(self.SIZE, self.TOLERANCE)
            manifest = survivor.recover(recovered.apps)
            assert manifest.cut == oracle_cut["cut"]
            assert manifest.iteration == oracle_cut["iteration"]
            for name in worker.NAMES:
                assert (
                    recovered.components[name].app.serialize_state()
                    == oracle_payloads[name]
                ), f"component {name} off-cut after kill {kill_no}"
            assert manifest.iteration >= prev_iteration
            prev_iteration = manifest.iteration
            recovery_log.append(
                {
                    "harness": "coupled-kernel-sigkill",
                    "kernel": "table",
                    "kill": kill_no,
                    "recovered_cut": manifest.cut,
                    "recovered_iteration": manifest.iteration,
                }
            )

        assert kills >= 3, f"worker converged too fast to kill ({kills} kills)"
        _append_fault_log(recovery_log)

        # Let the table-kernel campaign finish uninterrupted.
        proc = self._spawn(store_root)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        assert "CONVERGED" in out

        final = worker.build_graph(self.SIZE, self.TOLERANCE)
        manifest = worker.build_coordinator(store_root).recover(final.apps)
        assert final.converged

        # Uninterrupted in-process baseline on the exact scalar kernel.
        from repro.workflows.coupled import run_coupled_campaign

        clean_root = str(tmp_path / "clean")
        clean = worker.build_graph(self.SIZE, self.TOLERANCE)
        clean_runner = worker.build_runner(
            clean, worker.build_coordinator(clean_root), clean_root, "exact"
        )
        run_coupled_campaign(
            clean_runner, worker.RESERVATION, max_reservations=100_000
        )
        assert clean.converged

        assert manifest.iteration == clean_runner.macro_iteration
        for name in worker.NAMES:
            assert (
                final.components[name].app.serialize_state()
                == clean.components[name].app.serialize_state()
            ), f"kernels diverged on component {name}"
        _append_fault_log(
            [
                {
                    "harness": "coupled-kernel-sigkill",
                    "kills": kills,
                    "final_iteration": manifest.iteration,
                    "baseline_kernel": "exact",
                    "bitwise_match": True,
                }
            ]
        )
