"""Unit tests for ReservationRunner: deadline abort, resume, campaigns."""

import numpy as np
import pytest

from repro.core import StaticCountPolicy
from repro.distributions import Normal, Uniform, truncate
from repro.runtime import (
    AdvisorPolicy,
    InMemoryCheckpointStore,
    ReservationRunner,
    estimate_checkpoint_duration,
)
from repro.service import Advisor
from repro.workflows import JacobiSolver, MachineModel, manufactured_rhs, poisson_2d


def make_app(tolerance=1e-8):
    A = poisson_2d(8)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b, tolerance=tolerance)


def make_runner(app, *, checkpoint_law, policy=None, task_seconds=0.01, **kwargs):
    """Noiseless machine calibrated so one iteration costs ``task_seconds``
    of virtual time — reservations become exactly countable."""
    machine = MachineModel(flops_per_second=app.work_per_iteration / task_seconds)
    return ReservationRunner(
        app,
        InMemoryCheckpointStore(),
        machine=machine,
        checkpoint_law=checkpoint_law,
        policy=policy,
        rng=0,
        **kwargs,
    )


class TestEstimator:
    def test_pessimistic_uses_upper_bound(self):
        assert estimate_checkpoint_duration(Uniform(1.0, 7.5)) == 7.5

    def test_pessimistic_unbounded_falls_back_to_extreme_quantile(self):
        law = Normal(5.0, 0.4)
        assert estimate_checkpoint_duration(law) == pytest.approx(law.ppf(0.999))

    def test_mean(self):
        assert estimate_checkpoint_duration(Uniform(1.0, 3.0), "mean") == 2.0

    def test_quantile(self):
        est = estimate_checkpoint_duration(Uniform(0.0, 1.0), 0.25)
        assert est == pytest.approx(0.25)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -1.0, 2.0])
    def test_invalid_quantile_rejected(self, bad):
        with pytest.raises(ValueError, match="estimator"):
            estimate_checkpoint_duration(Uniform(0.0, 1.0), bad)


class TestSingleReservation:
    def test_checkpoints_save_work(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(10),
        )
        outcome = runner.run_reservation(1.0)
        assert outcome.checkpoints_succeeded > 0
        assert outcome.iterations_saved == 10 * outcome.checkpoints_succeeded
        assert outcome.work_saved == pytest.approx(
            0.01 * outcome.iterations_saved, rel=1e-9
        )
        assert outcome.time_used <= 1.0
        assert outcome.utilization > 0.0
        assert runner.store.checkpointed_iteration == outcome.iterations_saved

    def test_deadline_abort_never_starts_doomed_checkpoint(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.4, 0.5),
            policy=StaticCountPolicy(1),
        )
        # After one checkpoint (~0.45s) plus a task there is no room for
        # another pessimistic 0.5s write before R=0.6.
        outcome = runner.run_reservation(0.6)
        assert outcome.checkpoints_skipped_deadline >= 1
        assert outcome.checkpoints_failed == 0
        kinds = [kind for kind, _ in outcome.events]
        assert "checkpoint-skipped-deadline" in kinds

    def test_optimistic_estimate_produces_torn_generation(self):
        app = make_app()
        # The 5th-percentile estimate (~0.29) says "fits easily"; the
        # realization (mean 1.1) overruns R and tears the write.
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.2, 2.0),
            policy=StaticCountPolicy(1),
            deadline_estimator=0.05,
        )
        outcome = runner.run_reservation(0.5)
        assert outcome.checkpoints_failed == 1
        assert ("checkpoint-torn", 0.5) in outcome.events
        # The torn generation exists but recovery skips it: the next
        # reservation restarts from scratch.
        assert runner.store.has_checkpoint
        second = runner.run_reservation(0.5)
        assert second.recovered_generation is None
        assert ("restart-from-scratch", 0.0) in second.events

    def test_task_cut_short_at_reservation_end(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.4, 0.5),
            policy=StaticCountPolicy(10**6),  # never checkpoint
        )
        outcome = runner.run_reservation(0.105)
        # Tasks at t=0.01k; the 11th would end at 0.11 > R.
        assert outcome.iterations_run == 10
        assert outcome.time_used == pytest.approx(0.105)
        assert ("task-cut-short", 0.105) in outcome.events
        assert outcome.work_saved == 0.0

    def test_recovery_cost_charged_on_resume_only(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(5),
            recovery=0.1,
        )
        first = runner.run_reservation(0.5)
        assert first.recovered_generation is None  # nothing to resume
        assert ("recovery-cost", 0.1) not in first.events
        second = runner.run_reservation(0.5)
        assert second.recovered_generation is not None
        assert ("recovery-cost", 0.1) in second.events

    def test_recovery_must_fit_reservation(self):
        app = make_app()
        runner = make_runner(
            app, checkpoint_law=Uniform(0.004, 0.006), recovery=0.5
        )
        with pytest.raises(ValueError, match="recovery"):
            runner.run_reservation(0.5)

    def test_iteration_budget_guard(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(10**6),
            max_iterations_per_reservation=10,
        )
        with pytest.raises(RuntimeError, match="iteration budget"):
            runner.run_reservation(10_000.0)


class TestResume:
    def test_resume_carries_work_across_reservations(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(10),
        )
        first = runner.run_reservation(0.3)
        saved = runner.store.checkpointed_iteration
        assert saved > 0
        second = runner.run_reservation(0.3)
        assert second.recovered_generation is not None
        assert app.iteration_count > saved

    def test_no_checkpoint_restarts_pristine(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(10.0, 11.0),  # never fits: R < C_min
            policy=StaticCountPolicy(1),
        )
        first = runner.run_reservation(0.5)
        assert first.checkpoints_succeeded == 0
        assert app.iteration_count > 0  # work done, none saved
        second = runner.run_reservation(0.5)
        assert ("restart-from-scratch", 0.0) in second.events
        # The second reservation redid the same iterations.
        assert second.iterations_run == first.iterations_run


class TestCampaign:
    def test_campaign_matches_uninterrupted_solution_bitwise(self):
        clean = make_app(tolerance=1e-6)
        while not clean.converged:
            clean.iterate()

        app = make_app(tolerance=1e-6)
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.01, 0.02),
            policy=StaticCountPolicy(25),
        )
        campaign = runner.run_campaign(1.0, max_reservations=50)
        assert campaign.converged
        assert campaign.solution_saved
        assert campaign.final_iteration == clean.iteration_count
        # Checkpoint/restore round-trips are bitwise exact, so replayed
        # iterations reproduce the uninterrupted trajectory exactly.
        np.testing.assert_array_equal(app.x, clean.x)
        assert campaign.reservations_used > 1
        assert campaign.total_work_saved > 0.0
        assert "converged" in campaign.summary()

    def test_final_checkpoint_saves_solution(self):
        app = make_app(tolerance=1e-6)
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(10**6),  # only the final write happens
        )
        campaign = runner.run_campaign(10.0, max_reservations=5)
        assert campaign.solution_saved
        last = campaign.reservations[-1]
        assert last.converged
        assert last.checkpoints_succeeded == 1
        assert runner.store.checkpointed_iteration == campaign.final_iteration

    def test_budget_exhaustion_reported_incomplete(self):
        app = make_app()
        runner = make_runner(
            app,
            checkpoint_law=Uniform(0.004, 0.006),
            policy=StaticCountPolicy(10),
        )
        campaign = runner.run_campaign(0.3, max_reservations=2)
        assert not campaign.converged
        assert not campaign.solution_saved
        assert campaign.reservations_used == 2
        assert "INCOMPLETE" in campaign.summary()


class TestAdvisorPolicy:
    def test_decisions_require_reset(self):
        policy = AdvisorPolicy(
            Advisor(), Normal(3.0, 0.5), truncate(Normal(5.0, 0.4), 0.0)
        )
        with pytest.raises(RuntimeError, match="reset"):
            policy.should_checkpoint(1.0, 1)

    def test_threshold_and_expected_work_come_from_compiled_policy(self):
        advisor = Advisor()
        task_law = truncate(Normal(3.0, 0.5), 0.0)
        ckpt_law = truncate(Normal(5.0, 0.4), 0.0)
        policy = AdvisorPolicy(advisor, task_law, ckpt_law)
        policy.reset(50.0)
        compiled = advisor.policy(50.0, task_law, ckpt_law)
        assert policy.work_threshold(50.0) == compiled.w_int
        assert policy.expected_work(50.0) == compiled.static_expected_work
        # Below the threshold: keep working; at/above it: checkpoint.
        assert not policy.should_checkpoint(0.0, 1)
        assert policy.should_checkpoint(compiled.w_int, 1)

    def test_runner_accepts_advisor_policy(self):
        app = make_app(tolerance=1e-6)
        policy = AdvisorPolicy(
            Advisor(), Uniform(0.009, 0.011), Uniform(0.01, 0.02)
        )
        runner = make_runner(
            app, checkpoint_law=Uniform(0.01, 0.02), policy=policy
        )
        outcome = runner.run_reservation(1.0)
        assert outcome.expected_work is not None
        assert outcome.checkpoints_succeeded > 0
