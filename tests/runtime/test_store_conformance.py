"""Interface-conformance suite run against BOTH store implementations.

Drivers (the reservation runner, examples, the CLI) are store-agnostic;
this suite pins the behaviours they rely on — generation numbering,
validation on recovery, quarantine-and-fallback — to the shared
:class:`repro.runtime.store.CheckpointStore` contract rather than to
one implementation.
"""

import numpy as np
import pytest

from repro.runtime import (
    CheckpointRecord,
    DurableCheckpointStore,
    FaultInjector,
    InMemoryCheckpointStore,
    NoCheckpointError,
)
from repro.workflows import JacobiSolver, manufactured_rhs, poisson_2d


@pytest.fixture
def app():
    A = poisson_2d(8)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b)


@pytest.fixture(params=["memory", "durable"])
def make_store(request, tmp_path):
    """Factory so tests can choose ``keep``; parametrized over both
    implementations."""
    counter = [0]

    def factory(keep=3):
        if request.param == "memory":
            return InMemoryCheckpointStore(keep=keep)
        counter[0] += 1
        return DurableCheckpointStore(str(tmp_path / f"s{counter[0]}"), keep=keep)

    return factory


def _corrupt_newest(store):
    """Damage the newest generation, whichever implementation."""
    if isinstance(store, InMemoryCheckpointStore):
        store.corrupt_generation(max(g.generation for g in store.generations()))
    else:
        FaultInjector(seed=11).flip_bits(store)


class TestConformance:
    def test_empty_recover_raises(self, make_store, app):
        with pytest.raises(NoCheckpointError, match="no checkpoint"):
            make_store().recover(app)

    def test_write_returns_record(self, make_store, app):
        app.iterate()
        record = make_store().write(app)
        assert isinstance(record, CheckpointRecord)
        assert record.generation == 1
        assert record.iteration == 1
        assert record.residual == pytest.approx(app.residual)
        assert record.payload_size == app.state_size_bytes

    def test_generations_monotonic_oldest_first(self, make_store, app):
        store = make_store()
        for _ in range(3):
            app.iterate()
            store.write(app)
        gens = store.generations()
        assert [r.generation for r in gens] == [1, 2, 3]
        assert [r.iteration for r in gens] == [1, 2, 3]

    def test_recover_rolls_back_to_newest(self, make_store, app):
        store = make_store()
        app.iterate()
        store.write(app)
        app.iterate()
        store.write(app)
        x2 = app.x.copy()
        for _ in range(4):
            app.iterate()
        record = store.recover(app)
        assert record.generation == 2
        np.testing.assert_array_equal(app.x, x2)
        assert app.iteration_count == 2

    def test_prune_to_keep(self, make_store, app):
        store = make_store(keep=2)
        for _ in range(5):
            store.write(app)
        assert [r.generation for r in store.generations()] == [4, 5]

    def test_counters(self, make_store, app):
        store = make_store()
        store.write(app)
        store.write(app)
        store.recover(app)
        assert (store.writes, store.recoveries, store.quarantined) == (2, 1, 0)

    def test_checkpointed_iteration(self, make_store, app):
        store = make_store()
        assert store.checkpointed_iteration == 0
        app.iterate()
        app.iterate()
        store.write(app)
        assert store.checkpointed_iteration == 2

    def test_corrupt_newest_falls_back_and_quarantines(self, make_store, app):
        store = make_store()
        app.iterate()
        store.write(app)
        x1 = app.x.copy()
        app.iterate()
        store.write(app)
        _corrupt_newest(store)
        record = store.recover(app)
        assert record.generation == 1
        np.testing.assert_array_equal(app.x, x1)
        assert store.quarantined == 1
        # The quarantined generation is gone from the index.
        assert [r.generation for r in store.generations()] == [1]

    def test_write_torn_is_never_recovered(self, make_store, app):
        store = make_store()
        app.iterate()
        store.write(app)
        app.iterate()
        store.write_torn(app)
        record = store.recover(app)
        assert record.generation == 1
        assert app.iteration_count == 1

    def test_only_torn_snapshots_raises_no_valid(self, make_store, app):
        store = make_store()
        store.write_torn(app)
        with pytest.raises(NoCheckpointError, match="no valid checkpoint"):
            store.recover(app)

    def test_keep_validation(self, make_store):
        with pytest.raises(ValueError, match="keep"):
            make_store(keep=0)


class TestLoadGeneration:
    """The consistent-cut primitive: validate one pinned generation
    without mutating any application."""

    def test_returns_record_and_payload(self, make_store, app):
        store = make_store()
        app.iterate()
        store.write(app)
        record, payload = store.load_generation(1)
        assert record.generation == 1
        assert payload == app.serialize_state()

    def test_missing_generation_raises_no_checkpoint(self, make_store, app):
        store = make_store()
        store.write(app)
        with pytest.raises(NoCheckpointError, match="does not exist"):
            store.load_generation(7)

    def test_does_not_mutate_the_application(self, make_store, app):
        store = make_store()
        app.iterate()
        store.write(app)
        app.iterate()
        live = app.serialize_state()
        store.load_generation(1)
        assert app.serialize_state() == live

    def test_corrupt_generation_quarantined_and_raises(self, make_store, app):
        from repro.runtime import CheckpointCorruptionError

        store = make_store()
        app.iterate()
        store.write(app)
        _corrupt_newest(store)
        with pytest.raises(CheckpointCorruptionError):
            store.load_generation(1)
        assert store.quarantined == 1
        # Once quarantined, the generation no longer exists.
        with pytest.raises(NoCheckpointError):
            store.load_generation(1)

    def test_pinned_recover_restores_exactly_that_generation(
        self, make_store, app
    ):
        store = make_store()
        app.iterate()
        store.write(app)
        x1 = app.x.copy()
        app.iterate()
        store.write(app)
        app.iterate()
        record = store.recover(app, generation=1)
        assert record.generation == 1
        np.testing.assert_array_equal(app.x, x1)

    def test_pinned_recover_missing_raises_without_fallback(
        self, make_store, app
    ):
        store = make_store()
        app.iterate()
        store.write(app)
        before = app.serialize_state()
        with pytest.raises(NoCheckpointError):
            store.recover(app, generation=9)
        assert app.serialize_state() == before  # no fallback, no mutation

    def test_generation_numbers_not_reused_after_quarantine(
        self, make_store, app
    ):
        """A quarantined generation's number stays retired — a workflow
        cut manifest may still reference it, and reusing it would make
        that manifest silently bind different bytes."""
        from repro.runtime import CheckpointCorruptionError

        store = make_store()
        app.iterate()
        store.write(app)
        app.iterate()
        store.write(app)
        _corrupt_newest(store)
        with pytest.raises(CheckpointCorruptionError):
            store.load_generation(2)
        record = store.write(app)
        assert record.generation == 3  # number 2 is never recycled


class TestMultiComponentLayout:
    """Conformance over a *layout* of stores — one per component, as the
    snapshot coordinator arranges them."""

    NAMES = ("alpha", "beta", "gamma")

    def make_layout(self, make_store):
        A = poisson_2d(8)
        apps = {}
        for i, name in enumerate(self.NAMES):
            b, _ = manufactured_rhs(A, rng=i)
            apps[name] = JacobiSolver(A, b)
        return apps, {name: make_store() for name in self.NAMES}

    def test_generation_sequences_are_independent(self, make_store, app):
        apps, stores = self.make_layout(make_store)
        for name in self.NAMES:
            apps[name].iterate()
        records = {n: stores[n].write(apps[n]) for n in self.NAMES}
        assert all(r.generation == 1 for r in records.values())
        stores["beta"].write(apps["beta"])
        assert stores["beta"].latest().generation == 2
        assert stores["alpha"].latest().generation == 1

    def test_partially_durable_layout_detected_member_by_member(
        self, make_store, app
    ):
        """A crash between member writes: the members written before the
        crash validate, the rest report missing — exactly the signal
        cut recovery uses to reject the torn cut."""
        apps, stores = self.make_layout(make_store)
        stores["alpha"].write(apps["alpha"])
        stores["beta"].write(apps["beta"])
        # gamma's write never happened
        assert stores["alpha"].load_generation(1)[0].generation == 1
        assert stores["beta"].load_generation(1)[0].generation == 1
        with pytest.raises(NoCheckpointError):
            stores["gamma"].load_generation(1)

    def test_torn_member_invalidates_only_its_own_sequence(
        self, make_store, app
    ):
        from repro.runtime import CheckpointCorruptionError

        apps, stores = self.make_layout(make_store)
        for n in self.NAMES:
            stores[n].write(apps[n])
        stores["beta"].write_torn(apps["beta"])
        for n in ("alpha", "gamma"):
            stores[n].write(apps[n])
        # beta's generation 2 is torn: pinned load quarantines it ...
        with pytest.raises((NoCheckpointError, CheckpointCorruptionError)):
            stores["beta"].load_generation(2)
        # ... while the peers' generation 2 and everyone's generation 1
        # remain fully valid.
        for n in ("alpha", "gamma"):
            assert stores[n].load_generation(2)[0].generation == 2
        for n in self.NAMES:
            assert stores[n].load_generation(1)[0].generation == 1
