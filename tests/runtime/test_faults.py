"""Process-level fault harness for the durable checkpoint path.

Marked ``faults``: CI runs this file as its own Linux step under a hard
timeout and uploads the recovery log (``REPRO_FAULTS_LOG``) as a build
artifact, so a failing fault sequence is replayable from its seeds.

Two harnesses, one invariant — **after any crash, recovery lands on a
valid checkpoint and loses at most the work since the last completed
one**:

* :class:`TestFaultMatrix` drives the seeded in-process matrix
  (:data:`repro.runtime.faults.FAULT_KINDS`) — simulated crashes at
  every atomic-write stage, torn files, bit flips, manifest corruption
  and deletion, disk-full — 54 faults per run, each followed by a
  cold-restart recovery checked against an independent on-disk oracle.
* :class:`TestSigkill` SIGKILLs a real checkpointing subprocess
  (``_crash_worker.py``) at random wall-clock points, then asserts the
  same invariant plus monotone progress across kills, and finally that
  the many-times-killed campaign converges to the bitwise-identical
  solution of an uninterrupted run.
* :class:`TestKernelFaultEquivalence` runs the same seeded fault
  campaign twice — once with the advisor's ``table`` kernel, once with
  the ``exact`` scalar oracle — through :class:`AdvisorPolicy`-driven
  reservations, and asserts the two campaigns are *bitwise identical*:
  same events, same recovered generations, same final state. Faults
  must not be able to tell the kernels apart.
"""

import json
import os
import random
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.distributions import Uniform
from repro.runtime import (
    FAULT_KINDS,
    AdvisorPolicy,
    CheckpointCorruptionError,
    DurableCheckpointStore,
    FaultInjector,
    ReservationRunner,
    SimulatedCrash,
)
from repro.service import Advisor
from repro.workflows import JacobiSolver, MachineModel, manufactured_rhs, poisson_2d

pytestmark = pytest.mark.faults

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
_WORKER = os.path.join(os.path.dirname(__file__), "_crash_worker.py")
_GEN_RE = re.compile(r"^gen-(\d{8})\.ckpt$")


def _fresh_app(size=10, tolerance=1e-6):
    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b, tolerance=tolerance)


def _newest_valid_generation(path):
    """Independent oracle: decode every generation file on disk and
    return the newest record that fully validates (or ``None``)."""
    best = None
    for name in sorted(os.listdir(path)):
        m = _GEN_RE.match(name)
        if not m:
            continue
        try:
            with open(os.path.join(path, name), "rb") as fh:
                record, _ = DurableCheckpointStore._decode(fh.read())
        except (OSError, CheckpointCorruptionError):
            continue
        best = record
    return best


def _append_fault_log(entries):
    """Append log lines to the CI artifact named by REPRO_FAULTS_LOG."""
    target = os.environ.get("REPRO_FAULTS_LOG")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry) + "\n")


class TestFaultMatrix:
    ROUNDS = 9  # 9 rounds x 6 kinds = 54 injected faults

    def test_matrix_zero_invariant_violations(self, tmp_path):
        injector = FaultInjector(seed=0xFA117)
        path = str(tmp_path / "ckpts")
        app = _fresh_app()
        store = DurableCheckpointStore(path)
        recovery_log = []

        for round_no in range(self.ROUNDS):
            for kind in FAULT_KINDS:
                # Make real progress and land one clean checkpoint so
                # every fault has a completed generation behind it.
                store.fault_hook = None
                for _ in range(3):
                    if not app.converged:
                        app.iterate()
                store.write(app)
                iterations_at_fault = app.iteration_count

                if kind == "crash":
                    store.fault_hook = injector.crash_hook()
                    try:
                        app.iterate()
                        store.write(app)
                    except SimulatedCrash:
                        pass
                elif kind == "disk-full":
                    store.fault_hook = injector.disk_full_hook()
                    app.iterate()
                    with pytest.raises(OSError):
                        store.write(app)
                else:
                    assert injector.apply_storage_fault(store, kind)

                # Cold restart: a new process opens the directory.
                survivor = DurableCheckpointStore(path)
                oracle = _newest_valid_generation(path)
                assert oracle is not None, f"{kind}: no valid generation survived"
                recovered = _fresh_app()
                record = survivor.recover(recovered)

                # THE invariant: newest valid generation, nothing older,
                # nothing torn, at most one checkpoint's work lost.
                assert record.generation == oracle.generation, kind
                assert record.iteration == oracle.iteration, kind
                assert record.iteration <= iterations_at_fault + 1, kind
                assert recovered.iteration_count == record.iteration, kind
                assert recovered.residual == pytest.approx(
                    record.residual, rel=1e-12
                ), kind
                recovery_log.append(
                    {
                        "harness": "matrix",
                        "round": round_no,
                        "kind": kind,
                        "recovered_generation": record.generation,
                        "recovered_iteration": record.iteration,
                        "quarantined": survivor.quarantined,
                    }
                )
                # Continue the campaign from the recovered state.
                app, store = recovered, survivor

        assert injector.injected >= 54
        assert len(injector.log) == injector.injected
        _append_fault_log(
            [{"harness": "matrix", "injected": kind, "detail": detail}
             for kind, detail in injector.log]
        )
        _append_fault_log(recovery_log)

        # After 54 faults the campaign still converges to the exact
        # solution of an uninterrupted run.
        store.fault_hook = None
        while not app.converged:
            app.iterate()
        clean = _fresh_app()
        while not clean.converged:
            clean.iterate()
        assert app.iteration_count == clean.iteration_count
        np.testing.assert_array_equal(app.x, clean.x)


class TestKernelFaultEquivalence:
    """Twin seeded fault campaigns: table kernel vs exact oracle.

    Continuous laws make both kernels the same policy (the differential
    suite proves the decisions agree everywhere off the threshold), so
    a fault campaign driven by one must replay *bitwise* under the
    other: identical checkpoint placement, identical recovered
    generations after every injected fault, identical final solution.
    """

    ROUNDS = 2  # 2 x len(FAULT_KINDS) injected faults per campaign

    TASK_LAW = Uniform(0.009, 0.011)
    CKPT_LAW = Uniform(0.01, 0.02)

    def _campaign(self, store_dir, kernel):
        app = _fresh_app(size=10, tolerance=1e-6)
        store = DurableCheckpointStore(store_dir)
        machine = MachineModel(flops_per_second=app.work_per_iteration / 0.01)
        policy = AdvisorPolicy(
            Advisor(kernel=kernel), self.TASK_LAW, self.CKPT_LAW, kernel=kernel
        )
        runner = ReservationRunner(
            app,
            store,
            machine=machine,
            checkpoint_law=self.CKPT_LAW,
            policy=policy,
            rng=11,
        )
        injector = FaultInjector(seed=0xBEEF)
        trace = []
        for round_no in range(self.ROUNDS):
            for kind in FAULT_KINDS:
                outcome = runner.run_reservation(1.0)
                trace.append(
                    (
                        round_no,
                        kind,
                        outcome.recovered_generation,
                        outcome.checkpoints_succeeded,
                        outcome.iterations_saved,
                        tuple(outcome.events),
                        app.serialize_state(),
                    )
                )
                # Inject the fault *between* reservations; the next
                # run_reservation cold-recovers through runner.resume.
                if kind == "crash":
                    store.fault_hook = injector.crash_hook()
                    try:
                        store.write(app)
                    except SimulatedCrash:
                        pass
                    store.fault_hook = None
                elif kind == "disk-full":
                    store.fault_hook = injector.disk_full_hook()
                    try:
                        store.write(app)
                    except OSError:
                        pass
                    store.fault_hook = None
                else:
                    assert injector.apply_storage_fault(store, kind)
        # Drive to convergence after the last fault.
        while not app.converged:
            runner.run_reservation(1.0)
        assert injector.injected >= self.ROUNDS * len(FAULT_KINDS) - 2
        return trace, app.serialize_state(), app.iteration_count

    def test_table_and_exact_campaigns_bitwise_identical(self, tmp_path):
        table_trace, table_state, table_iters = self._campaign(
            str(tmp_path / "table"), "table"
        )
        exact_trace, exact_state, exact_iters = self._campaign(
            str(tmp_path / "exact"), "exact"
        )
        assert len(table_trace) == len(exact_trace) == self.ROUNDS * len(FAULT_KINDS)
        for step_table, step_exact in zip(table_trace, exact_trace):
            assert step_table == step_exact, (
                f"campaigns diverged at round={step_table[0]} kind={step_table[1]}"
            )
        assert table_iters == exact_iters
        assert table_state == exact_state  # bitwise
        _append_fault_log(
            [
                {
                    "harness": "kernel-equivalence",
                    "rounds": self.ROUNDS,
                    "kinds": list(FAULT_KINDS),
                    "final_iteration": table_iters,
                    "bitwise_match": True,
                }
            ]
        )


class TestSigkill:
    KILLS = 10
    SIZE = 24
    TOLERANCE = 1e-8

    def _spawn(self, store_dir):
        env = {**os.environ, "PYTHONPATH": _SRC_DIR}
        return subprocess.Popen(
            [sys.executable, _WORKER, store_dir, str(self.SIZE), str(self.TOLERANCE)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def _wait_for_new_generation(proc, store_dir, known, timeout=60.0):
        """Block until the worker writes a generation not in ``known``
        (i.e. it imported, resumed and is actively checkpointing)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.isdir(store_dir):
                names = {n for n in os.listdir(store_dir) if _GEN_RE.match(n)}
                if names - known:
                    return True
            if proc.poll() is not None:
                return False  # worker finished before writing anything new
            time.sleep(0.005)
        raise TimeoutError("worker never wrote a new generation")

    def test_sigkill_mid_campaign_recovers_and_converges(self, tmp_path):
        store_dir = str(tmp_path / "ckpts")
        rng = random.Random(0xD1E)
        recovery_log = []
        prev_iteration = 0
        kills = 0

        for kill_no in range(self.KILLS):
            known = (
                {n for n in os.listdir(store_dir) if _GEN_RE.match(n)}
                if os.path.isdir(store_dir)
                else set()
            )
            proc = self._spawn(store_dir)
            try:
                progressing = self._wait_for_new_generation(proc, store_dir, known)
                if not progressing:
                    break  # converged before we could kill it
                time.sleep(rng.uniform(0.05, 0.25))
                if proc.poll() is not None:
                    break  # converged during the delay
                proc.send_signal(signal.SIGKILL)
                kills += 1
            finally:
                proc.wait(timeout=30)
                proc.stdout.close()
                proc.stderr.close()

            # Cold-restart recovery after a real SIGKILL.
            survivor = DurableCheckpointStore(store_dir)
            oracle = _newest_valid_generation(store_dir)
            assert oracle is not None, "no valid generation survived the kill"
            app = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
            record = survivor.recover(app)
            assert record.generation == oracle.generation
            assert record.iteration == oracle.iteration
            # Monotone progress: each kill loses at most the in-flight
            # write, never previously checkpointed work.
            assert record.iteration >= prev_iteration
            assert app.iteration_count == record.iteration
            assert app.residual == pytest.approx(record.residual, rel=1e-12)
            prev_iteration = record.iteration
            recovery_log.append(
                {
                    "harness": "sigkill",
                    "kill": kill_no,
                    "recovered_generation": record.generation,
                    "recovered_iteration": record.iteration,
                    "quarantined": survivor.quarantined,
                }
            )

        assert kills >= 3, f"worker converged too fast to kill ({kills} kills)"
        _append_fault_log(recovery_log)

        # Let the campaign finish uninterrupted and compare bitwise
        # against a never-killed in-process run.
        proc = self._spawn(store_dir)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        assert "CONVERGED" in out

        final = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
        DurableCheckpointStore(store_dir).recover(final)
        assert final.converged

        clean = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
        while not clean.converged:
            clean.iterate()
        assert final.iteration_count == clean.iteration_count
        np.testing.assert_array_equal(final.x, clean.x)
        _append_fault_log(
            [
                {
                    "harness": "sigkill",
                    "kills": kills,
                    "final_iteration": final.iteration_count,
                    "bitwise_match": True,
                }
            ]
        )
