"""Subprocess worker for the strike SIGKILL harness.

Runs a :class:`repro.runtime.ReservationRunner` campaign under a seeded
mid-reservation :class:`~repro.runtime.StrikeProcess` against a durable
store, checkpointing at every iteration boundary. The parent test
(``test_strikes.py``) SIGKILLs this process at random wall-clock points
— so real process death lands on top of the simulated strike/torn-write
machinery — and then asserts the store's recovery invariant.

Not a pytest file (no ``test_`` prefix): invoked as
``python _strike_worker.py STORE_DIR SIZE TOLERANCE RATE SEED``.
Prints ``CONVERGED <iteration> STRIKES <total>`` and exits 0 when the
campaign finishes with the solution durably saved.
"""

import sys


def main() -> int:
    store_dir = sys.argv[1]
    size, tolerance = int(sys.argv[2]), float(sys.argv[3])
    rate, seed = float(sys.argv[4]), int(sys.argv[5])

    from repro.core import StaticCountPolicy
    from repro.distributions import Uniform
    from repro.runtime import DurableCheckpointStore, FaultInjector, ReservationRunner
    from repro.workflows import JacobiSolver, MachineModel, manufactured_rhs, poisson_2d

    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=0)
    app = JacobiSolver(A, b, tolerance=tolerance)
    store = DurableCheckpointStore(store_dir)
    machine = MachineModel(flops_per_second=app.work_per_iteration / 0.01)
    runner = ReservationRunner(
        app,
        store,
        machine=machine,
        checkpoint_law=Uniform(0.005, 0.015),
        policy=StaticCountPolicy(1),
        recovery=0.05,
        rng=seed,
        strikes=FaultInjector(seed=seed).strike_process(rate),
    )
    strikes = 0
    while True:
        outcome = runner.run_reservation(5.0)
        strikes += outcome.strikes
        print(
            f"RESERVATION strikes={outcome.strikes} "
            f"recovered={outcome.strike_recoveries} "
            f"saved={outcome.work_saved:.3f}",
            flush=True,
        )
        if outcome.converged and outcome.solution_saved:
            break
    print(f"CONVERGED {app.iteration_count} STRIKES {strikes}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
