"""Subprocess worker for the coupled SIGKILL fault harness.

Runs a 3-component one-way-coupled diffusion chain that commits a
consistent cut after *every* macro-iteration, resuming from the newest
fully-consistent cut when the store root already holds one. The parent
test (``test_coupled_faults.py``) SIGKILLs this process at random
points — possibly mid-member-write or mid-manifest-rename — and then
asserts the consistent-cut recovery invariant: every component restores
from the same cut, and that cut is the newest one whose every member
generation validates.

Not a pytest file (no ``test_`` prefix): invoked as
``python _coupled_crash_worker.py STORE_ROOT SIZE TOLERANCE [KERNEL]``.
Prints ``CONVERGED <macro-iteration>`` and exits 0 when every component
meets its tolerance.

The optional fourth argument selects the cut cadence: ``every`` (the
default) commits after each macro-iteration; ``table`` / ``exact``
drive a :class:`repro.workflows.coupled.CoupledReservationRunner` with
the paper-optimal :class:`repro.runtime.AdvisorPolicy` on that advisor
kernel, persisting compiled policies under ``STORE_ROOT/policy-cache``
so repeated spawns (the kill loop) skip recompilation.
"""

import os
import sys

#: Component names, also the per-component store subdirectories.
NAMES = ("c1", "c2", "c3")

#: Generations retained per member store. Generous on purpose: every
#: kill mid-cut leaves orphan generations that count toward the keep
#: window, and a referenced generation must never be pruned out from
#: under a retained cut.
KEEP_GENERATIONS = 48

#: Cut manifests retained.
KEEP_CUTS = 6


def build_graph(size, tolerance):
    """The workflow under test — one deterministic construction shared
    by the worker, the parent harness, and the clean reference run."""
    from repro.distributions import Uniform
    from repro.workflows import (
        BoundaryCoupledDiffusion,
        Channel,
        CoupledComponent,
        WorkflowGraph,
    )

    components = [
        CoupledComponent(
            name,
            BoundaryCoupledDiffusion(size, tolerance=tolerance),
            Uniform(0.08, 0.12),
            Uniform(0.3, 0.5),
        )
        for name in NAMES
    ]
    channels = [Channel(a, b) for a, b in zip(NAMES, NAMES[1:])]
    return WorkflowGraph(components, channels, seed=0)


def build_coordinator(store_root):
    """Per-component durable stores plus the shared durable cut log."""
    from repro.runtime import DurableCheckpointStore
    from repro.workflows.coupled import DurableCutLog, SnapshotCoordinator

    stores = {
        name: DurableCheckpointStore(
            os.path.join(store_root, name), keep=KEEP_GENERATIONS
        )
        for name in NAMES
    }
    cut_log = DurableCutLog(os.path.join(store_root, "cuts"), keep=KEEP_CUTS)
    return SnapshotCoordinator(stores, cut_log)


#: Reservation length for the policy-driven (``table`` / ``exact``)
#: cadence — a dozen-ish macro-iterations per reservation, so a kill
#: lands mid-reservation more often than not.
RESERVATION = 2.0


def build_runner(graph, coordinator, store_root, kernel):
    """Policy-driven runner: the advisor's compiled policy (on the
    given kernel) decides *cut now or run one more macro-iteration*."""
    from repro.runtime import AdvisorPolicy
    from repro.service import Advisor, PolicyCache
    from repro.workflows.coupled import CoupledReservationRunner

    cache = PolicyCache(path=os.path.join(store_root, "policy-cache"), kernel=kernel)
    advisor = Advisor(cache, kernel=kernel)
    policy = AdvisorPolicy(
        advisor, graph.macro_task_law(), graph.cut_checkpoint_law(), kernel=kernel
    )
    return CoupledReservationRunner(graph, coordinator, policy=policy, rng=0)


def main() -> int:
    store_root, size, tolerance = (
        sys.argv[1],
        int(sys.argv[2]),
        float(sys.argv[3]),
    )
    kernel = sys.argv[4] if len(sys.argv) > 4 else "every"

    from repro.runtime import NoCheckpointError

    graph = build_graph(size, tolerance)
    coordinator = build_coordinator(store_root)

    if kernel != "every":
        from repro.workflows.coupled import run_coupled_campaign

        runner = build_runner(graph, coordinator, store_root, kernel)
        run_coupled_campaign(runner, RESERVATION, max_reservations=100_000)
        print(f"CONVERGED {runner.macro_iteration}", flush=True)
        return 0

    apps = graph.apps
    try:
        manifest = coordinator.recover(apps)
        iteration = manifest.iteration
    except NoCheckpointError:
        iteration = 0

    while not graph.converged:
        graph.exchange(iteration)
        for name in graph.names:
            app = graph.components[name].app
            if not app.converged:
                app.iterate()
        iteration += 1
        coordinator.commit_cut(apps, iteration)
    print(f"CONVERGED {iteration}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
