"""Subprocess worker for the coupled SIGKILL fault harness.

Runs a 3-component one-way-coupled diffusion chain that commits a
consistent cut after *every* macro-iteration, resuming from the newest
fully-consistent cut when the store root already holds one. The parent
test (``test_coupled_faults.py``) SIGKILLs this process at random
points — possibly mid-member-write or mid-manifest-rename — and then
asserts the consistent-cut recovery invariant: every component restores
from the same cut, and that cut is the newest one whose every member
generation validates.

Not a pytest file (no ``test_`` prefix): invoked as
``python _coupled_crash_worker.py STORE_ROOT SIZE TOLERANCE``.
Prints ``CONVERGED <macro-iteration>`` and exits 0 when every component
meets its tolerance.
"""

import os
import sys

#: Component names, also the per-component store subdirectories.
NAMES = ("c1", "c2", "c3")

#: Generations retained per member store. Generous on purpose: every
#: kill mid-cut leaves orphan generations that count toward the keep
#: window, and a referenced generation must never be pruned out from
#: under a retained cut.
KEEP_GENERATIONS = 48

#: Cut manifests retained.
KEEP_CUTS = 6


def build_graph(size, tolerance):
    """The workflow under test — one deterministic construction shared
    by the worker, the parent harness, and the clean reference run."""
    from repro.distributions import Uniform
    from repro.workflows import (
        BoundaryCoupledDiffusion,
        Channel,
        CoupledComponent,
        WorkflowGraph,
    )

    components = [
        CoupledComponent(
            name,
            BoundaryCoupledDiffusion(size, tolerance=tolerance),
            Uniform(0.08, 0.12),
            Uniform(0.3, 0.5),
        )
        for name in NAMES
    ]
    channels = [Channel(a, b) for a, b in zip(NAMES, NAMES[1:])]
    return WorkflowGraph(components, channels, seed=0)


def build_coordinator(store_root):
    """Per-component durable stores plus the shared durable cut log."""
    from repro.runtime import DurableCheckpointStore
    from repro.workflows.coupled import DurableCutLog, SnapshotCoordinator

    stores = {
        name: DurableCheckpointStore(
            os.path.join(store_root, name), keep=KEEP_GENERATIONS
        )
        for name in NAMES
    }
    cut_log = DurableCutLog(os.path.join(store_root, "cuts"), keep=KEEP_CUTS)
    return SnapshotCoordinator(stores, cut_log)


def main() -> int:
    store_root, size, tolerance = (
        sys.argv[1],
        int(sys.argv[2]),
        float(sys.argv[3]),
    )

    from repro.runtime import NoCheckpointError

    graph = build_graph(size, tolerance)
    coordinator = build_coordinator(store_root)
    apps = graph.apps
    try:
        manifest = coordinator.recover(apps)
        iteration = manifest.iteration
    except NoCheckpointError:
        iteration = 0

    while not graph.converged:
        graph.exchange(iteration)
        for name in graph.names:
            app = graph.components[name].app
            if not app.converged:
                app.iterate()
        iteration += 1
        coordinator.commit_cut(apps, iteration)
    print(f"CONVERGED {iteration}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
