"""Subprocess worker for the SIGKILL fault harness.

Runs a Jacobi solve that checkpoints durably after *every* iteration,
resuming from the newest valid generation when the store directory
already holds one. The parent test (``test_faults.py``) SIGKILLs this
process at random points and then asserts the store's recovery
invariant; killed mid-``os.replace`` or mid-fsync, the on-disk state
must still recover to a valid generation.

Not a pytest file (no ``test_`` prefix): invoked as
``python _crash_worker.py STORE_DIR SIZE TOLERANCE``.
Prints ``CONVERGED <iteration>`` and exits 0 when the solve finishes.
"""

import sys


def main() -> int:
    store_dir, size, tolerance = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])

    from repro.runtime import DurableCheckpointStore, NoCheckpointError
    from repro.workflows import JacobiSolver, manufactured_rhs, poisson_2d

    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=0)
    app = JacobiSolver(A, b, tolerance=tolerance)
    store = DurableCheckpointStore(store_dir)
    try:
        store.recover(app)
    except NoCheckpointError:
        pass
    while not app.converged:
        app.iterate()
        store.write(app)
    print(f"CONVERGED {app.iteration_count}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
