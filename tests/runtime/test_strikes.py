"""Mid-reservation strike harness for the reservation runner.

Marked ``failures``: CI runs this file as its own Linux step under a
hard timeout and uploads the recovery log (``REPRO_FAULTS_LOG``) as a
build artifact, so a failing strike sequence is replayable from its
seeds.

The invariant is the same one the crash/SIGKILL harnesses assert
(``test_faults.py``) — **after any crash, recovery lands on the newest
valid checkpoint and loses at most the work since the last completed
one** — now exercised *mid-reservation* by seeded exponential strikes
(:class:`repro.runtime.StrikeProcess`):

* :class:`TestStrikeMatrix` drives seeded strike campaigns across a
  rate x seed matrix against a real Jacobi solve on a durable store
  whose every recovery is checked against an independent on-disk
  oracle, then asserts the many-times-struck campaign converges to the
  bitwise-identical solution of an uninterrupted run, and that the
  whole campaign replays bit-for-bit from its seeds.
* :class:`TestStrikeTornCheckpoint` pins the deterministic mid-write
  semantics: a strike during a checkpoint write leaves a real torn
  generation which recovery quarantines, never reusing its number.
* :class:`TestPredictedWindows` attaches a
  :class:`~repro.core.WindowPredictor` and asserts the proactive
  checkpoint path actually fires under predicted windows, with
  ``failures.*`` metrics and ``failures.recover`` tracer spans to
  match.
* :class:`TestSigkillUnderStrikes` SIGKILLs a real striking subprocess
  (``_strike_worker.py``) so actual process death lands on top of the
  simulated strike machinery, then asserts the same oracle invariant.
"""

import json
import os
import random
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

import repro
from repro.core import FailureAwareDynamicPolicy, StaticCountPolicy, WindowPredictor
from repro.distributions import Deterministic, Gamma, Uniform
from repro.obs import Tracer, global_registry
from repro.runtime import (
    CheckpointCorruptionError,
    DurableCheckpointStore,
    FaultInjector,
    NoCheckpointError,
    ReservationRunner,
    StrikeSchedule,
)
from repro.workflows import JacobiSolver, MachineModel, manufactured_rhs, poisson_2d

pytestmark = pytest.mark.failures

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
_WORKER = os.path.join(os.path.dirname(__file__), "_strike_worker.py")
_GEN_RE = re.compile(r"^gen-(\d{8})\.ckpt$")


def _fresh_app(size=10, tolerance=1e-6):
    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b, tolerance=tolerance)


def _newest_valid_generation(path):
    """Independent oracle: decode every generation file on disk and
    return the newest record that fully validates (or ``None``)."""
    best = None
    for name in sorted(os.listdir(path)):
        m = _GEN_RE.match(name)
        if not m:
            continue
        try:
            with open(os.path.join(path, name), "rb") as fh:
                record, _ = DurableCheckpointStore._decode(fh.read())
        except (OSError, CheckpointCorruptionError):
            continue
        best = record
    return best


def _append_fault_log(entries):
    """Append log lines to the CI artifact named by REPRO_FAULTS_LOG."""
    target = os.environ.get("REPRO_FAULTS_LOG")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry) + "\n")


class _OracleStore(DurableCheckpointStore):
    """Durable store whose every recovery is cross-checked against the
    independent on-disk oracle — a strike recovery that lands anywhere
    but the newest valid generation fails the test on the spot."""

    def __init__(self, path):
        super().__init__(path)
        self.oracle_checks = 0

    def recover(self, app):
        oracle = _newest_valid_generation(self.path)
        try:
            record = super().recover(app)
        except NoCheckpointError:
            assert oracle is None, "store missed a valid on-disk generation"
            raise
        assert oracle is not None, "store recovered where the oracle sees nothing"
        assert record.generation == oracle.generation
        assert record.iteration == oracle.iteration
        self.oracle_checks += 1
        return record


def _strike_runner(app, store, *, rate, seed, policy=None, predictor=None, **kwargs):
    machine = MachineModel(flops_per_second=app.work_per_iteration / 0.01)
    return ReservationRunner(
        app,
        store,
        machine=machine,
        checkpoint_law=Uniform(0.01, 0.03),
        policy=policy if policy is not None else StaticCountPolicy(3),
        recovery=0.05,
        rng=seed,
        strikes=FaultInjector(seed=seed).strike_process(rate, predictor=predictor),
        **kwargs,
    )


class TestStrikeMatrix:
    RATES = (0.2, 0.8)
    SEEDS = (1, 2, 3)

    def _campaign(self, store_dir, rate, seed):
        app = _fresh_app()
        store = _OracleStore(store_dir)
        runner = _strike_runner(app, store, rate=rate, seed=seed)
        campaign = runner.run_campaign(2.0, max_reservations=300)
        return app, store, campaign

    def test_matrix_zero_invariant_violations(self, tmp_path):
        recovery_log = []
        total_strikes = 0
        torn_by_strike = 0
        for rate in self.RATES:
            for seed in self.SEEDS:
                store_dir = str(tmp_path / f"rate{rate}-seed{seed}")
                app, store, campaign = self._campaign(store_dir, rate, seed)
                assert campaign.converged and campaign.solution_saved, (
                    f"rate={rate} seed={seed}: {campaign.summary()}"
                )
                strikes = 0
                for res in campaign.reservations:
                    # Every strike is accounted for: it either recovered
                    # from a checkpoint or restarted from scratch.
                    assert res.strikes == res.strike_recoveries + res.strike_restarts
                    assert res.work_lost >= 0.0
                    assert res.work_saved <= res.R
                    assert res.time_used <= res.R + 1e-9
                    strikes += res.strikes
                    torn_by_strike += sum(
                        1 for kind, _ in res.events if kind == "checkpoint-strike-torn"
                    )
                total_strikes += strikes
                # The struck campaign still converges to the exact
                # solution of an uninterrupted run.
                clean = _fresh_app()
                while not clean.converged:
                    clean.iterate()
                assert app.iteration_count == clean.iteration_count
                np.testing.assert_array_equal(app.x, clean.x)
                recovery_log.append(
                    {
                        "harness": "strike-matrix",
                        "rate": rate,
                        "seed": seed,
                        "strikes": strikes,
                        "oracle_checks": store.oracle_checks,
                        "quarantined": store.quarantined,
                        "reservations": campaign.reservations_used,
                        "final_iteration": app.iteration_count,
                    }
                )
        assert total_strikes >= 10, f"matrix too quiet: {total_strikes} strikes"
        # At least one strike landed mid-write somewhere in the matrix,
        # so the torn-generation recovery path really ran.
        assert torn_by_strike >= 1
        _append_fault_log(recovery_log)

    def test_campaign_replays_bitwise_from_seeds(self, tmp_path):
        traces = []
        for run in ("a", "b"):
            app, _, campaign = self._campaign(str(tmp_path / run), 0.8, 7)
            traces.append(
                [
                    (res.strikes, res.work_saved, res.work_lost, tuple(res.events))
                    for res in campaign.reservations
                ]
                + [app.serialize_state()]
            )
        assert traces[0] == traces[1]

    def test_zero_rate_strike_process_changes_nothing(self, tmp_path):
        outcomes = []
        for name, strikes in (
            ("none", None),
            ("zero", FaultInjector(seed=3).strike_process(0.0)),
        ):
            app = _fresh_app()
            store = DurableCheckpointStore(str(tmp_path / name))
            machine = MachineModel(flops_per_second=app.work_per_iteration / 0.01)
            runner = ReservationRunner(
                app,
                store,
                machine=machine,
                checkpoint_law=Uniform(0.01, 0.03),
                policy=StaticCountPolicy(3),
                rng=5,
                strikes=strikes,
            )
            outcome = runner.run_reservation(2.0)
            outcomes.append((tuple(outcome.events), outcome.work_saved, app.serialize_state()))
        assert outcomes[0] == outcomes[1]


class _FixedStrikes:
    """Stub strike source replaying a preset per-reservation schedule."""

    def __init__(self, *per_reservation):
        self._times = [np.asarray(t, dtype=float) for t in per_reservation]

    def schedule(self, R):
        times = self._times.pop(0) if self._times else np.array([])
        return StrikeSchedule(strikes=times)


class TestStrikeTornCheckpoint:
    def _runner(self, store, *, strikes, recovery=0.0, ckpt=0.6):
        app = _fresh_app(size=8, tolerance=1e-10)
        machine = MachineModel(flops_per_second=app.work_per_iteration / 0.5)
        return app, ReservationRunner(
            app,
            store,
            machine=machine,
            checkpoint_law=Deterministic(ckpt),
            policy=StaticCountPolicy(2),
            recovery=recovery,
            rng=0,
            strikes=strikes,
        )

    def test_mid_write_strike_leaves_quarantined_torn_generation(self, tmp_path):
        # Deterministic timeline, R=2: two 0.5s tasks, boundary at
        # t=1.0, checkpoint write spans [1.0, 1.6] — the strike at 1.3
        # lands mid-write, the torn generation is the *newest* thing on
        # disk, and nothing else fits before the reservation ends.
        store = DurableCheckpointStore(str(tmp_path / "ckpts"))
        app, runner = self._runner(store, strikes=_FixedStrikes([1.3]))
        outcome = runner.run_reservation(2.0)
        kinds = [kind for kind, _ in outcome.events]
        assert ("checkpoint-strike-torn", 1.3) in outcome.events
        assert ("strike", 1.3) in outcome.events
        # Nothing durable existed before the strike: restart from scratch.
        assert "restart-from-scratch" in kinds
        assert outcome.strikes == 1
        assert outcome.strike_restarts == 1
        assert outcome.strike_recoveries == 0
        assert outcome.work_lost == pytest.approx(1.0)  # the two 0.5s tasks
        assert outcome.checkpoints_failed == 1
        assert outcome.checkpoints_succeeded == 0
        assert outcome.work_saved == 0.0

        # The runner's *own* mid-reservation recovery already walked the
        # invariant: it quarantined the torn generation on its way to
        # "nothing valid left" (one recovery fallback), so the evidence
        # survives as a ``.corrupt`` file and no live generation remains.
        assert outcome.recovery_fallbacks == 1
        assert store.quarantined == 1
        assert not any(_GEN_RE.match(n) for n in os.listdir(store.path))
        corrupt = [n for n in os.listdir(store.path) if n.endswith(".corrupt")]
        assert len(corrupt) == 1

        # Cold restart agrees: nothing valid on disk.
        survivor = DurableCheckpointStore(store.path)
        assert _newest_valid_generation(store.path) is None
        with pytest.raises(NoCheckpointError):
            survivor.recover(_fresh_app(size=8, tolerance=1e-10))

        # A quarantined number is never reused by the next write.
        torn_gen = int(re.match(r"^gen-(\d{8})", corrupt[0]).group(1))
        record = survivor.write(app)
        assert record.generation > torn_gen

    def test_torn_then_commit_recovers_newest_valid(self, tmp_path):
        # Same opening, but R=4 leaves room to rebuild: the in-flight
        # recovery quarantines the torn write at 1.3, the campaign
        # restarts, commits a later generation, and cold recovery lands
        # on it.
        store = DurableCheckpointStore(str(tmp_path / "ckpts"))
        app, runner = self._runner(store, strikes=_FixedStrikes([1.3]))
        outcome = runner.run_reservation(4.0)
        assert ("checkpoint-strike-torn", 1.3) in outcome.events
        assert outcome.checkpoints_succeeded >= 1
        assert outcome.work_saved > 0.0

        corrupt = [n for n in os.listdir(store.path) if n.endswith(".corrupt")]
        assert len(corrupt) == 1  # the torn write, preserved as evidence
        torn_gen = int(re.match(r"^gen-(\d{8})", corrupt[0]).group(1))
        survivor = DurableCheckpointStore(store.path)
        oracle = _newest_valid_generation(store.path)
        assert oracle is not None
        assert oracle.generation > torn_gen
        recovered = _fresh_app(size=8, tolerance=1e-10)
        record = survivor.recover(recovered)
        assert record.generation == oracle.generation
        assert recovered.iteration_count == record.iteration

    def test_strike_during_task_rolls_back_to_last_commit(self, tmp_path):
        # First reservation commits cleanly; the second is struck during
        # a *task* (mid-iteration, not mid-write) and must recover the
        # committed generation, paying the recovery cost.
        store = _OracleStore(str(tmp_path / "ckpts"))
        app, runner = self._runner(
            store, strikes=_FixedStrikes([], [1.9]), recovery=0.1, ckpt=0.2
        )
        first = runner.run_reservation(4.0)
        assert first.strikes == 0
        assert first.checkpoints_succeeded >= 1

        # Second reservation: resume costs 0.1, tasks [0.1,0.6],
        # [0.6,1.1], commit [1.1,1.3], task [1.3,1.8] banks 0.5 of open
        # segment, strike at 1.9 voids the in-flight second task.
        second = runner.run_reservation(4.0)
        assert second.strikes == 1
        assert second.strike_recoveries == 1
        assert second.strike_restarts == 0
        assert ("strike", 1.9) in second.events
        assert any(
            k == "recovery-cost" and t == pytest.approx(2.0)
            for k, t in second.events
        )
        # The roll-back landed exactly on the last committed generation.
        assert any(
            k.startswith("recovered-gen-") and t == 1.9 for k, t in second.events
        )
        assert second.work_lost == pytest.approx(0.5)
        assert store.oracle_checks >= 2
        assert app.iteration_count >= store.checkpointed_iteration


class TestPredictedWindows:
    def test_proactive_path_fires_under_predicted_windows(self, tmp_path):
        task = Gamma(2.0, 0.4)
        ckpt = Uniform(0.3, 0.7)
        predictor = WindowPredictor(0.9, 0.8, 3.0, seed=11)
        policy = FailureAwareDynamicPolicy(task, ckpt, 0.05, predictor=predictor)
        app = _fresh_app(size=8, tolerance=1e-8)
        store = _OracleStore(str(tmp_path / "ckpts"))
        machine = MachineModel(flops_per_second=app.work_per_iteration / 0.8)
        tracer = Tracer(capacity=4096)
        registry = global_registry()
        strikes_before = registry.snapshot()["counters"].get("failures.strikes", 0)
        runner = ReservationRunner(
            app,
            store,
            machine=machine,
            checkpoint_law=ckpt,
            policy=policy,
            recovery=0.5,
            rng=17,
            strikes=FaultInjector(seed=17).strike_process(0.05, predictor=predictor),
            tracer=tracer,
        )
        campaign = runner.run_campaign(40.0, max_reservations=100)
        assert campaign.converged and campaign.solution_saved

        total_strikes = sum(r.strikes for r in campaign.reservations)
        total_proactive = sum(r.proactive_checkpoints for r in campaign.reservations)
        assert total_strikes >= 1
        assert total_proactive >= 1, "no proactive checkpoint fired under a window"
        assert policy.proactive_decisions == total_proactive
        for res in campaign.reservations:
            assert res.strikes == res.strike_recoveries + res.strike_restarts

        # Observability: one failures.recover span per strike, tagged
        # with the restored generation; failures.* counters advanced.
        spans = [s for s in tracer.spans() if s.name == "failures.recover"]
        assert len(spans) == total_strikes
        assert all("generation" in s.tags for s in spans)
        counters = registry.snapshot()["counters"]
        assert counters.get("failures.strikes", 0) - strikes_before == total_strikes
        assert counters.get("failures.proactive_checkpoints", 0) >= total_proactive

        _append_fault_log(
            [
                {
                    "harness": "predicted-windows",
                    "strikes": total_strikes,
                    "proactive_checkpoints": total_proactive,
                    "reservations": campaign.reservations_used,
                    "final_iteration": campaign.final_iteration,
                }
            ]
        )


class TestSigkillUnderStrikes:
    KILLS = 6
    SIZE = 24
    TOLERANCE = 1e-8
    RATE = 0.4
    SEED = 0xA11CE

    def _spawn(self, store_dir):
        env = {**os.environ, "PYTHONPATH": _SRC_DIR}
        return subprocess.Popen(
            [
                sys.executable,
                _WORKER,
                store_dir,
                str(self.SIZE),
                str(self.TOLERANCE),
                str(self.RATE),
                str(self.SEED),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def _wait_for_new_generation(proc, store_dir, known, timeout=60.0):
        """Block until the worker writes a generation not in ``known``
        (i.e. it imported, resumed and is actively checkpointing)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if os.path.isdir(store_dir):
                names = {n for n in os.listdir(store_dir) if _GEN_RE.match(n)}
                if names - known:
                    return True
            if proc.poll() is not None:
                return False  # worker finished before writing anything new
            time.sleep(0.005)
        raise TimeoutError("worker never wrote a new generation")

    def test_sigkill_on_top_of_strikes_recovers_and_converges(self, tmp_path):
        store_dir = str(tmp_path / "ckpts")
        rng = random.Random(0x57121)
        recovery_log = []
        prev_iteration = 0
        kills = 0

        for kill_no in range(self.KILLS):
            known = (
                {n for n in os.listdir(store_dir) if _GEN_RE.match(n)}
                if os.path.isdir(store_dir)
                else set()
            )
            proc = self._spawn(store_dir)
            try:
                progressing = self._wait_for_new_generation(proc, store_dir, known)
                if not progressing:
                    break  # converged before we could kill it
                time.sleep(rng.uniform(0.05, 0.25))
                if proc.poll() is not None:
                    break  # converged during the delay
                proc.send_signal(signal.SIGKILL)
                kills += 1
            finally:
                proc.wait(timeout=30)
                proc.stdout.close()
                proc.stderr.close()

            # Cold-restart recovery after a real SIGKILL on top of the
            # strike campaign's torn generations.
            survivor = DurableCheckpointStore(store_dir)
            oracle = _newest_valid_generation(store_dir)
            assert oracle is not None, "no valid generation survived the kill"
            app = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
            record = survivor.recover(app)
            assert record.generation == oracle.generation
            assert record.iteration == oracle.iteration
            # Monotone progress: each kill loses at most the in-flight
            # write, never previously checkpointed work.
            assert record.iteration >= prev_iteration
            assert app.iteration_count == record.iteration
            prev_iteration = record.iteration
            recovery_log.append(
                {
                    "harness": "strike-sigkill",
                    "kill": kill_no,
                    "recovered_generation": record.generation,
                    "recovered_iteration": record.iteration,
                    "quarantined": survivor.quarantined,
                }
            )

        assert kills >= 2, f"worker converged too fast to kill ({kills} kills)"
        _append_fault_log(recovery_log)

        # Let the campaign finish uninterrupted: it must converge, and
        # must have seen real strikes along the way.
        proc = self._spawn(store_dir)
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        converged = [line for line in out.splitlines() if line.startswith("CONVERGED")]
        assert converged, out

        final = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
        DurableCheckpointStore(store_dir).recover(final)
        assert final.converged

        clean = _fresh_app(size=self.SIZE, tolerance=self.TOLERANCE)
        while not clean.converged:
            clean.iterate()
        assert final.iteration_count == clean.iteration_count
        np.testing.assert_array_equal(final.x, clean.x)
        _append_fault_log(
            [
                {
                    "harness": "strike-sigkill",
                    "kills": kills,
                    "final_iteration": final.iteration_count,
                    "bitwise_match": True,
                }
            ]
        )
