"""Unit tests for DurableCheckpointStore's on-disk behaviour.

The interface contract shared with the in-memory store is covered by
``test_store_conformance.py``; this file tests what only a durable
store has: files, manifests, quarantine renames, crash leftovers.
"""

import os

import numpy as np
import pytest

from repro.runtime import (
    CheckpointCorruptionError,
    DurableCheckpointStore,
    FaultInjector,
    NoCheckpointError,
    SimulatedCrash,
)
from repro.workflows import JacobiSolver, manufactured_rhs, poisson_2d


@pytest.fixture
def app():
    A = poisson_2d(8)
    b, _ = manufactured_rhs(A, rng=0)
    return JacobiSolver(A, b)


@pytest.fixture
def store(tmp_path):
    return DurableCheckpointStore(str(tmp_path / "ckpts"))


def _gen_files(store):
    return sorted(n for n in os.listdir(store.path) if n.endswith(".ckpt"))


class TestLifecycle:
    def test_write_creates_gen_file_and_manifest(self, store, app):
        record = store.write(app)
        assert record.generation == 1
        assert _gen_files(store) == ["gen-00000001.ckpt"]
        assert "MANIFEST.json" in os.listdir(store.path)

    def test_recover_restores_exact_state(self, store, app):
        for _ in range(5):
            app.iterate()
        store.write(app)
        x5 = app.x.copy()
        for _ in range(7):
            app.iterate()
        record = store.recover(app)
        np.testing.assert_array_equal(app.x, x5)
        assert app.iteration_count == 5
        assert record.iteration == 5

    def test_reopen_resumes_generation_numbering(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        store.write(app)
        store.write(app)
        # A new process opens the same directory.
        reopened = DurableCheckpointStore(path)
        record = reopened.write(app)
        assert record.generation == 3

    def test_prune_keeps_newest(self, tmp_path, app):
        store = DurableCheckpointStore(str(tmp_path / "ckpts"), keep=2)
        for _ in range(5):
            app.iterate()
            store.write(app)
        assert _gen_files(store) == ["gen-00000004.ckpt", "gen-00000005.ckpt"]
        assert [r.generation for r in store.generations()] == [4, 5]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            DurableCheckpointStore(str(tmp_path / "ckpts"), keep=0)

    def test_init_sweeps_stale_tmp(self, tmp_path):
        path = tmp_path / "ckpts"
        path.mkdir()
        (path / "gen-00000001.ckpt.tmp.4242").write_bytes(b"junk")
        DurableCheckpointStore(str(path))
        assert "gen-00000001.ckpt.tmp.4242" not in os.listdir(path)


class TestQuarantine:
    def test_bitflip_quarantined_with_fallback(self, store, app):
        app.iterate()
        store.write(app)
        x1 = app.x.copy()
        app.iterate()
        store.write(app)
        FaultInjector(seed=3).flip_bits(store)
        record = store.recover(app)
        assert record.generation == 1
        np.testing.assert_array_equal(app.x, x1)
        assert store.quarantined == 1
        assert "gen-00000002.ckpt.corrupt" in os.listdir(store.path)

    def test_torn_write_quarantined_with_fallback(self, store, app):
        store.write(app)
        store.write_torn(app)  # gen 2, truncated
        record = store.recover(app)
        assert record.generation == 1
        assert "gen-00000002.ckpt.corrupt" in os.listdir(store.path)

    def test_all_invalid_raises_after_quarantining(self, store, app):
        store.write(app)
        injector = FaultInjector(seed=5)
        injector.truncate_latest(store)
        with pytest.raises(NoCheckpointError, match="no valid checkpoint"):
            store.recover(app)
        assert store.quarantined == 1

    def test_empty_store_message_differs(self, store, app):
        with pytest.raises(NoCheckpointError, match="no checkpoint to recover"):
            store.recover(app)

    def test_torn_generation_number_never_reused(self, store, app):
        store.write_torn(app)  # gen 1 is torn, on disk, not in manifest
        record = store.write(app)
        assert record.generation == 2


class TestManifest:
    def test_deleted_manifest_rebuilt_from_scan(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        app.iterate()
        store.write(app)
        FaultInjector(seed=0).delete_manifest(store)
        reopened = DurableCheckpointStore(path)
        record = reopened.recover(app)
        assert record.generation == 1
        assert record.iteration == 1

    def test_corrupt_manifest_rebuilt_from_scan(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        store.write(app)
        store.write(app)
        FaultInjector(seed=0).corrupt_manifest(store)
        reopened = DurableCheckpointStore(path)
        assert reopened.quarantined == 1  # the manifest itself
        assert [r.generation for r in reopened.generations()] == [1, 2]
        assert reopened.recover(app).generation == 2

    def test_manifest_never_resurrects_pruned_generation(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path, keep=2)
        for _ in range(3):
            store.write(app)
        # gen 1 was pruned; a rebuilt manifest must not list it.
        FaultInjector(seed=0).delete_manifest(store)
        reopened = DurableCheckpointStore(path, keep=2)
        assert [r.generation for r in reopened.generations()] == [2, 3]


class TestCrashInterleavings:
    def test_crash_before_rename_loses_only_inflight_write(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        app.iterate()
        store.write(app)
        app.iterate()
        store.fault_hook = FaultInjector(seed=0).crash_hook("tmp-fsynced")
        with pytest.raises(SimulatedCrash):
            store.write(app)
        survivor = DurableCheckpointStore(path)
        record = survivor.recover(app)
        assert record.generation == 1
        assert record.iteration == 1

    def test_crash_after_rename_keeps_new_generation(self, tmp_path, app):
        """Crash between the gen rename and the manifest write: the
        unmanifested file is found by the scan and recovered."""
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        store.write(app)
        app.iterate()
        store.fault_hook = FaultInjector(seed=0).crash_hook("replaced")
        with pytest.raises(SimulatedCrash):
            store.write(app)
        survivor = DurableCheckpointStore(path)
        assert survivor.has_checkpoint
        record = survivor.recover(app)
        assert record.generation == 2
        assert record.iteration == 1

    def test_disk_full_fails_write_but_store_stays_usable(self, store, app):
        store.write(app)
        store.fault_hook = FaultInjector(seed=0).disk_full_hook("tmp-written")
        with pytest.raises(OSError):
            store.write(app)
        store.fault_hook = None
        record = store.write(app)  # space freed: next write succeeds
        assert record.generation >= 2
        assert store.recover(app).generation == record.generation


class TestLatest:
    def test_latest_sees_unmanifested_generation(self, tmp_path, app):
        path = str(tmp_path / "ckpts")
        store = DurableCheckpointStore(path)
        store.fault_hook = FaultInjector(seed=0).crash_hook("replaced")
        with pytest.raises(SimulatedCrash):
            store.write(app)
        survivor = DurableCheckpointStore(path)
        latest = survivor.latest()
        assert latest is not None and latest.generation == 1

    def test_latest_none_on_empty(self, store):
        assert store.latest() is None
        assert not store.has_checkpoint


class TestDecode:
    @pytest.mark.parametrize(
        "blob, match",
        [
            (b"NOTMAGIC\n{}\npayload", "bad magic"),
            (b"REPROCKPT1\nno-payload-separator", "truncated before payload"),
            (b"REPROCKPT1\nnot json\n\x00", "undecodable header"),
        ],
    )
    def test_corruption_messages_name_the_check(self, blob, match):
        with pytest.raises(CheckpointCorruptionError, match=match):
            DurableCheckpointStore._decode(blob)
