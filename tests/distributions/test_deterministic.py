"""Unit tests for the Deterministic (point mass) law."""

import numpy as np
import pytest

from repro.distributions import Deterministic


class TestBasics:
    def test_support_is_point(self):
        d = Deterministic(3.0)
        assert d.support == (3.0, 3.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            Deterministic(float("inf"))

    def test_cdf_step(self):
        d = Deterministic(3.0)
        assert float(d.cdf(2.999)) == 0.0
        assert float(d.cdf(3.0)) == 1.0
        assert float(d.cdf(4.0)) == 1.0

    def test_moments(self):
        d = Deterministic(5.5)
        assert d.mean() == 5.5
        assert d.var() == 0.0
        assert d.std() == 0.0

    def test_ppf_constant(self):
        d = Deterministic(2.0)
        np.testing.assert_array_equal(d.ppf([0.0, 0.5, 1.0]), [2.0, 2.0, 2.0])

    def test_sample_constant(self, rng):
        s = Deterministic(7.0).sample(100, rng)
        np.testing.assert_array_equal(s, 7.0)

    def test_negative_value_allowed(self):
        assert Deterministic(-1.0).mean() == -1.0
