"""Property-based tests for the FFT lattice laws (sums, hetsum)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.distributions import (
    FFTConvolutionSum,
    Gamma,
    HeterogeneousSum,
    Normal,
    Uniform,
    truncate,
)

shape = hst.floats(min_value=0.5, max_value=6.0)
scale = hst.floats(min_value=0.2, max_value=2.0)
count = hst.integers(min_value=2, max_value=8)


@settings(max_examples=15, deadline=None)
@given(k=shape, theta=scale, n=count)
def test_fft_sum_matches_gamma_closure(k, theta, n):
    """The generic FFT path must agree with the exact Gamma family."""
    fft = FFTConvolutionSum(Gamma(k, theta), n, grid_points=4096)
    exact = Gamma(n * k, theta)
    probe = np.linspace(exact.ppf(0.05), exact.ppf(0.95), 9)
    np.testing.assert_allclose(fft.cdf(probe), exact.cdf(probe), atol=3e-3)


@settings(max_examples=15, deadline=None)
@given(k=shape, theta=scale, n=count)
def test_fft_sum_moments(k, theta, n):
    fft = FFTConvolutionSum(Gamma(k, theta), n, grid_points=4096)
    assert fft.mean() == pytest.approx(n * k * theta, rel=5e-3)
    assert fft.var() == pytest.approx(n * k * theta**2, rel=3e-2)


@settings(max_examples=15, deadline=None)
@given(
    widths=hst.lists(
        hst.floats(min_value=0.3, max_value=3.0), min_size=2, max_size=5
    ),
    lo=hst.floats(min_value=0.0, max_value=2.0),
)
def test_hetsum_uniform_support_and_moments(widths, lo):
    """Sums of shifted uniforms: support and moments are exact sums."""
    laws = [Uniform(lo, lo + w) for w in widths]
    h = HeterogeneousSum(laws, grid_points=2048)
    lo_sum = len(widths) * lo
    hi_sum = lo_sum + sum(widths)
    s_lo, s_hi = h.support
    # The lattice quantizes each summand's width up to a whole number of
    # cells, so the upper support may overshoot by a step per summand.
    step = sum(widths) / (2048 - 1)
    assert s_lo == pytest.approx(lo_sum, abs=1e-6)
    assert hi_sum - 1e-9 <= s_hi <= hi_sum + (len(widths) + 1) * step
    assert h.mean() == pytest.approx(sum(l.mean() for l in laws), rel=1e-3, abs=1e-3)
    assert h.var() == pytest.approx(sum(l.var() for l in laws), rel=3e-2)


@settings(max_examples=10, deadline=None)
@given(
    mus=hst.lists(hst.floats(min_value=1.0, max_value=5.0), min_size=2, max_size=4),
    sigma=hst.floats(min_value=0.2, max_value=1.0),
)
def test_hetsum_truncated_normals_cdf_monotone(mus, sigma):
    laws = [truncate(Normal(mu, sigma), 0.0) for mu in mus]
    h = HeterogeneousSum(laws, grid_points=2048)
    xs = np.linspace(h.support[0] - 1.0, h.support[1] + 1.0, 64)
    cdf = np.asarray(h.cdf(xs))
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[0] == pytest.approx(0.0, abs=1e-9)
    assert cdf[-1] == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(k=shape, theta=scale, n=hst.integers(min_value=2, max_value=5))
def test_hetsum_agrees_with_fft_sum_for_identical_summands(k, theta, n):
    """Two independent lattice implementations must agree."""
    het = HeterogeneousSum([Gamma(k, theta)] * n, grid_points=4096)
    fft = FFTConvolutionSum(Gamma(k, theta), n, grid_points=4096)
    probe = np.linspace(het.support[0], min(het.support[1], fft.support[1]), 11)[1:-1]
    np.testing.assert_allclose(het.cdf(probe), fft.cdf(probe), atol=5e-3)
