"""Unit tests for the Empirical distribution."""

import numpy as np
import pytest

from repro.distributions import Empirical


class TestConstruction:
    def test_requires_two_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            Empirical([1.0])

    def test_rejects_constant_sample(self):
        with pytest.raises(ValueError, match="Deterministic"):
            Empirical([2.0, 2.0, 2.0])

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            Empirical([1.0, np.inf])

    def test_support_is_sample_range(self):
        e = Empirical([3.0, 1.0, 2.0])
        assert e.support == (1.0, 3.0)


class TestECDF:
    def test_ecdf_steps(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0])
        assert float(e.cdf(0.5)) == 0.0
        assert float(e.cdf(1.0)) == 0.25
        assert float(e.cdf(2.5)) == 0.5
        assert float(e.cdf(4.0)) == 1.0

    def test_moments_match_sample(self, rng):
        data = rng.gamma(2.0, 1.5, 500)
        e = Empirical(data)
        assert e.mean() == pytest.approx(data.mean())
        assert e.var() == pytest.approx(data.var())

    def test_ppf_is_sample_quantile(self, rng):
        data = rng.normal(0.0, 1.0, 200)
        e = Empirical(data)
        assert float(e.ppf(0.5)) == pytest.approx(np.median(data))

    def test_cdf_close_to_true_law(self, rng):
        data = rng.exponential(2.0, 5000)
        e = Empirical(data)
        xs = np.linspace(0.1, 8.0, 9)
        true = 1.0 - np.exp(-xs / 2.0)
        np.testing.assert_allclose(e.cdf(xs), true, atol=0.03)


class TestSampling:
    def test_bootstrap_draws_from_sample(self, rng):
        data = np.array([1.0, 2.0, 3.0])
        s = Empirical(data).sample(1000, rng)
        assert set(np.unique(s)).issubset(set(data))

    def test_pdf_nonnegative(self, rng):
        e = Empirical(rng.normal(0, 1, 300))
        xs = np.linspace(-4, 4, 101)
        assert np.all(e.pdf(xs) >= 0.0)
