"""Unit tests for the Uniform law."""

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Uniform


class TestConstruction:
    def test_valid(self):
        u = Uniform(1.0, 7.5)
        assert u.support == (1.0, 7.5)

    def test_rejects_equal_bounds(self):
        with pytest.raises(ValueError, match="a < b"):
            Uniform(2.0, 2.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError, match="a < b"):
            Uniform(5.0, 1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Uniform(float("nan"), 1.0)

    def test_repr_mentions_params(self):
        assert "7.5" in repr(Uniform(1.0, 7.5))


class TestProbability:
    def test_pdf_matches_scipy(self):
        u = Uniform(1.0, 7.5)
        ref = st.uniform(loc=1.0, scale=6.5)
        xs = np.linspace(0.0, 9.0, 37)
        np.testing.assert_allclose(u.pdf(xs), ref.pdf(xs), atol=1e-14)

    def test_cdf_matches_scipy(self):
        u = Uniform(1.0, 7.5)
        ref = st.uniform(loc=1.0, scale=6.5)
        xs = np.linspace(0.0, 9.0, 37)
        np.testing.assert_allclose(u.cdf(xs), ref.cdf(xs), atol=1e-14)

    def test_pdf_zero_outside_support(self):
        u = Uniform(2.0, 3.0)
        assert float(u.pdf(1.99)) == 0.0
        assert float(u.pdf(3.01)) == 0.0

    def test_pdf_constant_inside(self):
        u = Uniform(2.0, 4.0)
        np.testing.assert_allclose(u.pdf([2.1, 3.0, 3.9]), 0.5)

    def test_cdf_saturates(self):
        u = Uniform(2.0, 4.0)
        assert float(u.cdf(1.0)) == 0.0
        assert float(u.cdf(5.0)) == 1.0

    def test_ppf_inverts_cdf(self):
        u = Uniform(1.0, 7.5)
        qs = np.linspace(0.0, 1.0, 21)
        np.testing.assert_allclose(u.cdf(u.ppf(qs)), qs, atol=1e-12)

    def test_ppf_rejects_bad_levels(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            Uniform(0.0, 1.0).ppf(1.5)

    def test_sf_complements_cdf(self):
        u = Uniform(1.0, 7.5)
        xs = np.linspace(1.0, 7.5, 11)
        np.testing.assert_allclose(u.sf(xs), 1.0 - u.cdf(xs), atol=1e-14)


class TestMoments:
    def test_mean(self):
        assert Uniform(1.0, 7.5).mean() == pytest.approx(4.25)

    def test_var(self):
        assert Uniform(1.0, 7.5).var() == pytest.approx(6.5**2 / 12.0)

    def test_std_consistent_with_var(self):
        u = Uniform(0.0, 2.0)
        assert u.std() == pytest.approx(np.sqrt(u.var()))

    def test_cv(self):
        u = Uniform(1.0, 3.0)
        assert u.cv() == pytest.approx(u.std() / 2.0)


class TestSampling:
    def test_samples_within_support(self, rng):
        s = Uniform(1.0, 7.5).sample(10_000, rng)
        assert s.min() >= 1.0 and s.max() <= 7.5

    def test_sample_mean_converges(self, rng):
        s = Uniform(1.0, 7.5).sample(200_000, rng)
        assert s.mean() == pytest.approx(4.25, abs=0.02)

    def test_seed_reproducibility(self):
        a = Uniform(0.0, 1.0).sample(10, rng=123)
        b = Uniform(0.0, 1.0).sample(10, rng=123)
        np.testing.assert_array_equal(a, b)

    def test_sample_shape_tuple(self, rng):
        s = Uniform(0.0, 1.0).sample((3, 4), rng)
        assert s.shape == (3, 4)
