"""Unit tests for the Exponential law."""

import math

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Exponential


class TestConstruction:
    def test_valid(self):
        e = Exponential(0.5)
        assert e.lam == 0.5
        assert e.support == (0.0, math.inf)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="> 0"):
            Exponential(0.0)

    def test_from_mean(self):
        e = Exponential.from_mean(2.0)
        assert e.lam == pytest.approx(0.5)
        assert e.mean() == pytest.approx(2.0)


class TestProbability:
    def test_pdf_matches_scipy(self):
        e = Exponential(0.5)
        ref = st.expon(scale=2.0)
        xs = np.linspace(0.0, 20.0, 41)
        np.testing.assert_allclose(e.pdf(xs), ref.pdf(xs), rtol=1e-12)

    def test_cdf_matches_scipy(self):
        e = Exponential(0.5)
        ref = st.expon(scale=2.0)
        xs = np.linspace(0.0, 20.0, 41)
        np.testing.assert_allclose(e.cdf(xs), ref.cdf(xs), rtol=1e-12, atol=1e-15)

    def test_pdf_zero_for_negative(self):
        assert float(Exponential(1.0).pdf(-0.5)) == 0.0

    def test_sf_deep_tail_precision(self):
        # sf must retain relative precision where 1 - cdf would be 0.
        e = Exponential(1.0)
        assert float(e.sf(100.0)) == pytest.approx(math.exp(-100.0), rel=1e-12)

    def test_ppf_inverts_cdf(self):
        e = Exponential(0.7)
        qs = np.linspace(0.01, 0.99, 33)
        np.testing.assert_allclose(e.cdf(e.ppf(qs)), qs, rtol=1e-12)

    def test_memorylessness(self):
        # P(Z > s + t | Z > s) = P(Z > t)
        e = Exponential(0.3)
        s, t = 2.0, 5.0
        cond = float(e.sf(s + t)) / float(e.sf(s))
        assert cond == pytest.approx(float(e.sf(t)), rel=1e-12)


class TestMoments:
    def test_mean(self):
        assert Exponential(0.25).mean() == pytest.approx(4.0)

    def test_var(self):
        assert Exponential(0.25).var() == pytest.approx(16.0)

    def test_cv_is_one(self):
        assert Exponential(3.0).cv() == pytest.approx(1.0)


class TestSampling:
    def test_sample_mean_converges(self, rng):
        s = Exponential(0.5).sample(200_000, rng)
        assert s.mean() == pytest.approx(2.0, rel=0.02)

    def test_samples_nonnegative(self, rng):
        assert Exponential(2.0).sample(10_000, rng).min() >= 0.0
