"""Canonical spec() round-trip: parse -> spec -> parse is the identity.

The service's content-addressed cache keys rely on two properties of
:meth:`Distribution.spec`: the emitted string re-parses to an equal law,
and equal laws always emit identical strings (idempotence after one
round trip through :func:`repro.cli.parse_law`).
"""

from __future__ import annotations

import math

import pytest

from repro.cli import parse_law
from repro.distributions import (
    Beta,
    Empirical,
    FFTConvolutionSum,
    Normal,
    Uniform,
    iid_sum,
    spec_number,
    truncate,
)

#: Every family of the CLI grammar, plus truncations of each kind.
ROUND_TRIP_SPECS = [
    "uniform:1,7.5",
    "exponential:0.5",
    "normal:3,0.5",
    "normal:-2,1",
    "lognormal:1,0.5",
    "gamma:1,0.5",
    "weibull:1.5,2",
    "poisson:3",
    "deterministic:3",
    "beta:2,5,1,7.5",
    # truncations: half-line, bounded, discrete, tail
    "normal:5,0.4@[0,inf]",
    "normal:3,0.5@[0,inf]",
    "exponential:0.5@[1,5]",
    "uniform:1,7.5@[2,6]",
    "poisson:3@[1,inf]",
    "poisson:5@[2,8]",
    "lognormal:0,1@[0.5,4]",
    "gamma:2,0.5@[0.25,inf]",
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
    def test_parse_spec_parse_identity(self, spec):
        law = parse_law(spec)
        canonical = law.spec()
        law2 = parse_law(canonical)
        assert law2.spec() == canonical
        assert type(law2) is type(law)
        # same law, not just the same string
        assert law2.mean() == pytest.approx(law.mean())
        assert law2.var() == pytest.approx(law.var())
        assert law2.support == law.support

    @pytest.mark.parametrize("spec", ROUND_TRIP_SPECS)
    def test_spec_is_idempotent_cache_key(self, spec):
        canonical = parse_law(spec).spec()
        assert parse_law(canonical).spec() == canonical

    def test_constructed_equals_parsed(self):
        assert Uniform(1.0, 7.5).spec() == parse_law("uniform:1,7.5").spec()
        assert (
            truncate(Normal(5.0, 0.4), 0.0).spec()
            == parse_law("normal:5,0.4@[0,inf]").spec()
        )

    def test_non_canonical_spellings_converge(self):
        variants = ["gamma:1,0.5", "gamma:1.0,0.50", "gamma:1.,.5"]
        specs = {parse_law(v).spec() for v in variants}
        assert specs == {"gamma:1,0.5"}

    def test_beta_default_bounds_made_explicit(self):
        assert parse_law("beta:2,5").spec() == "beta:2,5,0,1"
        assert Beta(2.0, 5.0).spec() == "beta:2,5,0,1"


class TestTruncationSpecs:
    def test_half_line_keeps_inf(self):
        assert truncate(Normal(5.0, 0.4), 0.0).spec() == "normal:5,0.4@[0,inf]"

    def test_bounds_clip_to_base_support(self):
        # effective bounds (the intersection) are emitted, not the raw ones
        law = truncate(Uniform(1.0, 7.5), 0.0, 100.0)
        assert law.spec() == "uniform:1,7.5@[1,7.5]"

    def test_nested_truncations_flatten(self):
        inner = truncate(Normal(5.0, 0.4), 0.0)
        outer = truncate(inner, 4.0, 6.0)
        assert outer.spec() == "normal:5,0.4@[4,6]"
        reparsed = parse_law(outer.spec())
        assert reparsed.mean() == pytest.approx(outer.mean())

    def test_discrete_truncation(self):
        law = parse_law("poisson:3@[1,inf]")
        assert law.spec() == "poisson:3@[1,inf]"
        assert law.lower == 1.0 and math.isinf(law.upper)


class TestUnspecables:
    def test_empirical_has_no_spec(self):
        with pytest.raises(NotImplementedError, match="Empirical"):
            Empirical([1.0, 2.0, 3.0]).spec()

    def test_fft_sum_has_no_spec(self):
        law = iid_sum(Uniform(0.0, 1.0), 3)
        assert isinstance(law, FFTConvolutionSum)
        with pytest.raises(NotImplementedError):
            law.spec()


class TestSpecNumber:
    def test_integers_lose_trailing_zero(self):
        assert spec_number(3.0) == "3"
        assert spec_number(-2.0) == "-2"

    def test_floats_round_trip_exactly(self):
        for v in (0.5, 0.1, 1 / 3, 1e-12, 12345.6789, 1e16):
            assert float(spec_number(v)) == v

    def test_infinities(self):
        assert spec_number(math.inf) == "inf"
        assert spec_number(-math.inf) == "-inf"
