"""Unit tests for the order-statistic (max) law."""

import math

import numpy as np
import pytest

from repro.cli import parse_law
from repro.distributions import (
    Deterministic,
    LogNormal,
    MaxOf,
    Normal,
    Uniform,
    max_of,
    truncate,
)


@pytest.fixture
def pair():
    return [Uniform(1.0, 3.0), truncate(Normal(2.0, 0.5), 0.0)]


class TestDispatch:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            max_of([])

    def test_single_law_passthrough(self):
        law = Uniform(0.0, 1.0)
        assert max_of([law]) is law

    def test_all_deterministic_collapses(self):
        law = max_of([Deterministic(2.0), Deterministic(5.0), Deterministic(1.0)])
        assert isinstance(law, Deterministic)
        assert law.value == pytest.approx(5.0)

    def test_dominant_support_shortcut(self):
        slow = Uniform(10.0, 12.0)
        fast = Uniform(0.0, 2.0)
        assert max_of([fast, slow]) is slow

    def test_general_case_builds_maxof(self, pair):
        assert isinstance(max_of(pair), MaxOf)

    def test_deterministic_member_rejected_by_maxof(self):
        with pytest.raises(TypeError, match="Deterministic"):
            MaxOf([Deterministic(1.0), Uniform(0.0, 2.0)])

    def test_discrete_member_rejected(self):
        from repro.distributions import Poisson

        with pytest.raises(TypeError, match="continuous"):
            MaxOf([Poisson(3.0), Uniform(0.0, 2.0)])

    def test_needs_two_members(self, pair):
        with pytest.raises(ValueError, match="at least 2"):
            MaxOf(pair[:1])


class TestProbability:
    def test_cdf_is_product(self, pair):
        law = MaxOf(pair)
        xs = np.linspace(0.0, 4.0, 21)
        expected = pair[0].cdf(xs) * pair[1].cdf(xs)
        np.testing.assert_allclose(law.cdf(xs), expected, atol=1e-12)

    def test_support_is_max_of_bounds(self, pair):
        law = MaxOf(pair)
        assert law.lower == pytest.approx(1.0)
        assert math.isinf(law.upper)

    def test_pdf_integrates_to_one(self, pair):
        law = MaxOf(pair)
        xs = np.linspace(law.lower, float(law.ppf(1.0 - 1e-12)), 20001)
        mass = np.sum(law.pdf(xs)) * (xs[1] - xs[0])
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_pdf_is_cdf_derivative(self, pair):
        law = MaxOf(pair)
        xs = np.linspace(1.1, 3.5, 17)
        h = 1e-6
        numeric = (law.cdf(xs + h) - law.cdf(xs - h)) / (2.0 * h)
        np.testing.assert_allclose(law.pdf(xs), numeric, rtol=1e-4, atol=1e-6)

    def test_iid_uniform_closed_form(self):
        # max of n iid U(0,1): cdf x^n, mean n/(n+1).
        members = [Uniform(0.0, 1.0) for _ in range(3)]
        law = MaxOf(members)
        xs = np.linspace(0.0, 1.0, 11)
        np.testing.assert_allclose(law.cdf(xs), xs**3, atol=1e-12)
        assert law.mean() == pytest.approx(0.75, abs=1e-6)
        assert law.var() == pytest.approx(3.0 / 80.0, abs=1e-6)

    def test_ppf_inverts_cdf(self, pair):
        law = MaxOf(pair)
        for q in (0.05, 0.25, 0.5, 0.9, 0.999):
            x = float(law.ppf(q))
            assert float(law.cdf(x)) == pytest.approx(q, abs=1e-9)


class TestMomentsAndSampling:
    def test_moments_match_monte_carlo(self, pair):
        law = MaxOf(pair)
        samples = law.sample(200_000, rng=7)
        assert law.mean() == pytest.approx(float(np.mean(samples)), rel=5e-3)
        assert law.var() == pytest.approx(float(np.var(samples)), rel=5e-2)

    def test_sampling_is_seeded(self, pair):
        law = MaxOf(pair)
        np.testing.assert_array_equal(law.sample(64, rng=3), law.sample(64, rng=3))

    def test_samples_within_support(self):
        law = MaxOf([Uniform(1.0, 3.0), Uniform(0.0, 2.5)])
        samples = law.sample(10_000, rng=1)
        assert samples.min() >= 1.0 - 1e-12
        assert samples.max() <= 3.0 + 1e-12

    def test_mean_exceeds_member_means(self, pair):
        law = MaxOf(pair)
        assert law.mean() >= max(m.mean() for m in pair)


class TestSpecGrammar:
    def test_spec_is_canonical_and_sorted(self):
        a, b = Uniform(1.0, 3.0), LogNormal(0.1, 0.4)
        assert MaxOf([a, b]).spec() == MaxOf([b, a]).spec()
        assert MaxOf([a, b]).spec().startswith("max(")

    def test_spec_round_trips_through_parse_law(self, pair):
        law = MaxOf(pair)
        parsed = parse_law(law.spec())
        assert isinstance(parsed, MaxOf)
        assert parsed.spec() == law.spec()
        xs = np.linspace(0.5, 4.0, 9)
        np.testing.assert_allclose(parsed.cdf(xs), law.cdf(xs), atol=1e-12)

    def test_parse_law_with_truncated_members(self):
        law = parse_law("max(normal:2,0.5@[0,inf]|uniform:1,3)")
        assert isinstance(law, MaxOf)
        assert law.lower == pytest.approx(1.0)

    def test_parse_rejects_single_member(self):
        with pytest.raises(ValueError, match="at least two"):
            parse_law("max(uniform:1,3)")

    def test_parse_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            parse_law("max(uniform:1,3|max(uniform:0,1|uniform:0,2)")

    def test_parse_rejects_empty_member(self):
        with pytest.raises(ValueError, match="empty member"):
            parse_law("max(uniform:1,3|)")

    def test_nested_max_parses(self):
        law = parse_law("max(max(uniform:0,1|uniform:0,2)|uniform:1,3)")
        assert isinstance(law, MaxOf)
