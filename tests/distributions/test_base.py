"""Unit tests for the Distribution base-class machinery."""

import math

import numpy as np
import pytest

from repro.distributions import (
    ContinuousDistribution,
    Exponential,
    Normal,
    Poisson,
    Uniform,
)


class _NoPpf(ContinuousDistribution):
    """Minimal law exposing only cdf/pdf, to exercise the default ppf."""

    @property
    def support(self):
        return (0.0, math.inf)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0.0, np.exp(-np.maximum(x, 0.0)), 0.0)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x > 0.0, -np.expm1(-np.maximum(x, 0.0)), 0.0)

    def mean(self):
        return 1.0

    def var(self):
        return 1.0


class TestDefaultPpf:
    def test_bisection_matches_closed_form(self):
        generic = _NoPpf()
        exact = Exponential(1.0)
        qs = np.linspace(0.05, 0.95, 10)
        np.testing.assert_allclose(generic.ppf(qs), exact.ppf(qs), rtol=1e-6)

    def test_boundary_levels(self):
        generic = _NoPpf()
        assert float(generic.ppf(0.0)) == 0.0
        assert math.isinf(float(generic.ppf(1.0)))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _NoPpf().ppf(-0.1)

    def test_default_sampler_uses_inverse_transform(self, rng):
        s = _NoPpf().sample(50_000, rng)
        assert s.mean() == pytest.approx(1.0, rel=0.03)

    def test_discrete_default_ppf(self):
        p = Poisson(3.0)
        # Smallest k with cdf(k) >= q.
        q = float(p.cdf(3))
        assert float(p._ppf_scalar(q)) == 3.0
        assert float(p._ppf_scalar(q + 1e-9)) == 4.0


class TestProbInterval:
    def test_continuous(self):
        u = Uniform(0.0, 10.0)
        assert u.prob_interval(2.0, 5.0) == pytest.approx(0.3)

    def test_empty_interval(self):
        assert Uniform(0.0, 1.0).prob_interval(0.8, 0.2) == 0.0

    def test_discrete_includes_endpoints(self):
        p = Poisson(3.0)
        expected = float(p.pmf(np.array([2.0, 3.0, 4.0])).sum())
        assert p.prob_interval(2.0, 4.0) == pytest.approx(expected, rel=1e-10)

    def test_whole_support(self):
        n = Normal(0.0, 1.0)
        assert n.prob_interval(-40.0, 40.0) == pytest.approx(1.0)


class TestMisc:
    def test_cv_zero_mean_raises(self):
        with pytest.raises(ZeroDivisionError):
            Normal(0.0, 1.0).cv()

    def test_lower_upper_accessors(self):
        u = Uniform(2.0, 3.0)
        assert (u.lower, u.upper) == (2.0, 3.0)

    def test_rng_coercion_rejects_junk(self):
        with pytest.raises(TypeError, match="rng"):
            Uniform(0.0, 1.0).sample(3, rng="not-an-rng")

    def test_generator_state_threads_through(self):
        gen = np.random.default_rng(7)
        a = Uniform(0.0, 1.0).sample(5, gen)
        b = Uniform(0.0, 1.0).sample(5, gen)
        assert not np.array_equal(a, b)

    def test_logpdf_matches_log_of_pdf(self):
        n = Normal(0.0, 1.0)
        xs = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(n.logpdf(xs), np.log(n.pdf(xs)), rtol=1e-12)

    def test_logpmf_off_support_is_neg_inf(self):
        p = Poisson(2.0)
        assert float(p.logpmf(-1)) == -math.inf
