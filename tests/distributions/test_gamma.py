"""Unit tests for the Gamma law."""

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Gamma


class TestConstruction:
    def test_valid(self):
        g = Gamma(2.0, 0.5)
        assert (g.k, g.theta) == (2.0, 0.5)

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError, match="> 0"):
            Gamma(0.0, 1.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="> 0"):
            Gamma(1.0, -2.0)

    def test_from_moments(self):
        g = Gamma.from_moments(6.0, 2.0)
        assert g.mean() == pytest.approx(6.0)
        assert g.std() == pytest.approx(2.0)


class TestProbability:
    @pytest.mark.parametrize("k,theta", [(1.0, 0.5), (2.5, 1.3), (0.7, 2.0), (10.0, 0.1)])
    def test_pdf_matches_scipy(self, k, theta):
        g = Gamma(k, theta)
        ref = st.gamma(a=k, scale=theta)
        xs = np.linspace(0.01, 10.0, 41)
        np.testing.assert_allclose(g.pdf(xs), ref.pdf(xs), rtol=1e-10)

    @pytest.mark.parametrize("k,theta", [(1.0, 0.5), (2.5, 1.3), (0.7, 2.0)])
    def test_cdf_matches_scipy(self, k, theta):
        g = Gamma(k, theta)
        ref = st.gamma(a=k, scale=theta)
        xs = np.linspace(0.0, 10.0, 41)
        np.testing.assert_allclose(g.cdf(xs), ref.cdf(xs), rtol=1e-10, atol=1e-14)

    def test_exponential_special_case_at_zero(self):
        # Gamma(1, theta) = Exp(1/theta): density positive at x = 0.
        g = Gamma(1.0, 0.5)
        assert float(g.pdf(0.0)) == pytest.approx(2.0)

    def test_pdf_zero_for_negative(self):
        assert float(Gamma(2.0, 1.0).pdf(-0.1)) == 0.0

    def test_ppf_inverts_cdf(self):
        g = Gamma(3.0, 0.7)
        qs = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(g.cdf(g.ppf(qs)), qs, rtol=1e-10)

    def test_sf_complements(self):
        g = Gamma(2.0, 1.0)
        xs = np.linspace(0.0, 10.0, 21)
        np.testing.assert_allclose(g.sf(xs) + g.cdf(xs), 1.0, rtol=1e-12)


class TestMoments:
    def test_mean_var(self):
        g = Gamma(2.0, 0.5)
        assert g.mean() == pytest.approx(1.0)
        assert g.var() == pytest.approx(0.5)


class TestSampling:
    def test_sample_moments(self, rng):
        g = Gamma(2.0, 0.5)
        s = g.sample(200_000, rng)
        assert s.mean() == pytest.approx(1.0, rel=0.02)
        assert s.var() == pytest.approx(0.5, rel=0.05)
