"""Unit tests for the scaled Beta law."""

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Beta, Uniform


class TestConstruction:
    def test_valid(self):
        b = Beta(2.0, 5.0, 1.0, 7.5)
        assert b.support == (1.0, 7.5)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Beta(0.0, 1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            Beta(1.0, 1.0, 5.0, 1.0)

    def test_from_mode(self):
        b = Beta.from_mode(3.0, 10.0, 1.0, 7.0)
        # Mode of Beta(a,b) on unit interval: (a-1)/(a+b-2), mapped back.
        unit_mode = (b.alpha - 1.0) / (b.alpha + b.beta - 2.0)
        assert 1.0 + unit_mode * 6.0 == pytest.approx(3.0)

    def test_from_mode_rejects_boundary_mode(self):
        with pytest.raises(ValueError, match="strictly inside"):
            Beta.from_mode(1.0, 10.0, 1.0, 7.0)

    def test_from_mode_rejects_small_concentration(self):
        with pytest.raises(ValueError, match="exceed 2"):
            Beta.from_mode(3.0, 2.0, 1.0, 7.0)


class TestProbability:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (1.0, 1.0), (2.0, 5.0), (7.0, 2.0)])
    def test_unit_interval_matches_scipy(self, a, b):
        ours = Beta(a, b)
        ref = st.beta(a, b)
        xs = np.linspace(0.01, 0.99, 25)
        np.testing.assert_allclose(ours.pdf(xs), ref.pdf(xs), rtol=1e-10)
        np.testing.assert_allclose(ours.cdf(xs), ref.cdf(xs), rtol=1e-10)

    def test_scaled_matches_scipy_loc_scale(self):
        ours = Beta(2.0, 5.0, 1.0, 7.5)
        ref = st.beta(2.0, 5.0, loc=1.0, scale=6.5)
        xs = np.linspace(1.0, 7.5, 27)
        np.testing.assert_allclose(ours.pdf(xs), ref.pdf(xs), rtol=1e-10)
        np.testing.assert_allclose(ours.cdf(xs), ref.cdf(xs), rtol=1e-9, atol=1e-14)

    def test_uniform_special_case(self):
        b = Beta(1.0, 1.0, 2.0, 4.0)
        u = Uniform(2.0, 4.0)
        xs = np.linspace(2.0, 4.0, 11)
        np.testing.assert_allclose(b.pdf(xs), u.pdf(xs), rtol=1e-10)
        np.testing.assert_allclose(b.cdf(xs), u.cdf(xs), rtol=1e-10, atol=1e-14)

    def test_zero_outside_support(self):
        b = Beta(2.0, 3.0, 1.0, 5.0)
        assert float(b.pdf(0.5)) == 0.0
        assert float(b.cdf(0.5)) == 0.0
        assert float(b.cdf(6.0)) == 1.0

    def test_ppf_inverts(self):
        b = Beta(2.0, 5.0, 1.0, 7.5)
        qs = np.linspace(0.01, 0.99, 15)
        np.testing.assert_allclose(b.cdf(b.ppf(qs)), qs, rtol=1e-9)


class TestMoments:
    def test_mean_var_match_scipy(self):
        b = Beta(2.0, 5.0, 1.0, 7.5)
        ref = st.beta(2.0, 5.0, loc=1.0, scale=6.5)
        assert b.mean() == pytest.approx(ref.mean(), rel=1e-12)
        assert b.var() == pytest.approx(ref.var(), rel=1e-12)


class TestSampling:
    def test_samples_in_support(self, rng):
        s = Beta(2.0, 5.0, 1.0, 7.5).sample(10_000, rng)
        assert s.min() >= 1.0 and s.max() <= 7.5

    def test_sample_mean(self, rng):
        b = Beta(2.0, 5.0, 1.0, 7.5)
        s = b.sample(200_000, rng)
        assert s.mean() == pytest.approx(b.mean(), rel=0.01)


class TestAsCheckpointLaw:
    def test_preemptible_solver_accepts_beta(self):
        from repro.core import solve

        law = Beta.from_mode(3.0, 12.0, 1.0, 7.5)
        sol = solve(10.0, law)
        assert 1.0 <= sol.x_opt <= 7.5
        assert sol.gain >= 1.0

    def test_skew_moves_the_optimum(self):
        from repro.core import solve

        # Mass near a: checkpoint can start later (smaller margin).
        early = Beta(2.0, 8.0, 1.0, 7.5)
        late = Beta(8.0, 2.0, 1.0, 7.5)
        assert solve(10.0, early).x_opt < solve(10.0, late).x_opt
