"""Property-based tests (hypothesis) for distribution invariants.

Each property is checked across randomized parameters for every family,
covering the axioms the solvers rely on: CDF monotonicity and range,
PDF nonnegativity, ppf/cdf inversion, truncation consistency, and the
additivity of IID-sum moments.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    Weibull,
    iid_sum,
    truncate,
)

# Bounded, well-conditioned parameter ranges.
pos = hst.floats(min_value=0.05, max_value=20.0, allow_nan=False, allow_infinity=False)
real = hst.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)


def _families():
    return [
        lambda p1, p2: Uniform(min(p1, p2) - 0.5, max(p1, p2) + 0.5),
        lambda p1, p2: Exponential(p1),
        lambda p1, p2: Normal(p2, p1),
        lambda p1, p2: LogNormal(math.log(p1), min(p2 % 2.0 + 0.1, 2.0)),
        lambda p1, p2: Gamma(p1, p2 % 5.0 + 0.1),
        lambda p1, p2: Weibull(p1 % 4.0 + 0.3, p2 % 5.0 + 0.1),
    ]


@settings(max_examples=40, deadline=None)
@given(p1=pos, p2=pos, fam=hst.integers(min_value=0, max_value=5))
def test_cdf_monotone_and_bounded(p1, p2, fam):
    dist = _families()[fam](p1, p2)
    lo = dist.lower if math.isfinite(dist.lower) else dist.mean() - 6 * dist.std()
    hi = dist.upper if math.isfinite(dist.upper) else dist.mean() + 6 * dist.std()
    xs = np.linspace(lo - 1.0, hi + 1.0, 64)
    cdf = np.asarray(dist.cdf(xs), dtype=float)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert np.all((cdf >= -1e-12) & (cdf <= 1.0 + 1e-12))


@settings(max_examples=40, deadline=None)
@given(p1=pos, p2=pos, fam=hst.integers(min_value=0, max_value=5))
def test_pdf_nonnegative(p1, p2, fam):
    dist = _families()[fam](p1, p2)
    lo = dist.lower if math.isfinite(dist.lower) else dist.mean() - 6 * dist.std()
    hi = dist.upper if math.isfinite(dist.upper) else dist.mean() + 6 * dist.std()
    xs = np.linspace(lo - 1.0, hi + 1.0, 64)
    assert np.all(np.asarray(dist.pdf(xs)) >= 0.0)


@settings(max_examples=30, deadline=None)
@given(
    p1=pos,
    p2=pos,
    fam=hst.integers(min_value=0, max_value=5),
    q=hst.floats(min_value=0.01, max_value=0.99),
)
def test_ppf_cdf_inversion(p1, p2, fam, q):
    dist = _families()[fam](p1, p2)
    x = float(dist.ppf(q))
    assert float(dist.cdf(x)) == pytest.approx(q, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(p1=pos, p2=pos, fam=hst.integers(min_value=0, max_value=5))
def test_sf_complements_cdf(p1, p2, fam):
    dist = _families()[fam](p1, p2)
    x = dist.mean()
    assert float(dist.cdf(x)) + float(dist.sf(x)) == pytest.approx(1.0, abs=1e-10)


@settings(max_examples=30, deadline=None)
@given(
    mu=real,
    sigma=hst.floats(min_value=0.1, max_value=5.0),
    width=hst.floats(min_value=0.5, max_value=6.0),
)
def test_truncation_renormalizes(mu, sigma, width):
    base = Normal(mu, sigma)
    lo = mu - width
    hi = mu + width
    t = truncate(base, lo, hi)
    assert float(t.cdf(hi)) == pytest.approx(1.0, abs=1e-9)
    assert float(t.cdf(lo)) == pytest.approx(0.0, abs=1e-9)
    mid = 0.5 * (lo + hi)
    # Conditional probability identity.
    expected = (float(base.cdf(mid)) - float(base.cdf(lo))) / (
        float(base.cdf(hi)) - float(base.cdf(lo))
    )
    assert float(t.cdf(mid)) == pytest.approx(expected, rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    k=hst.floats(min_value=0.3, max_value=8.0),
    theta=hst.floats(min_value=0.1, max_value=4.0),
    n=hst.integers(min_value=1, max_value=20),
)
def test_iid_sum_moment_additivity_gamma(k, theta, n):
    base = Gamma(k, theta)
    s = iid_sum(base, n)
    assert s.mean() == pytest.approx(n * base.mean(), rel=1e-9)
    assert s.var() == pytest.approx(n * base.var(), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(lam=hst.floats(min_value=0.2, max_value=10.0), n=hst.integers(min_value=1, max_value=15))
def test_iid_sum_poisson_closure(lam, n):
    s = iid_sum(Poisson(lam), n)
    assert isinstance(s, Poisson)
    assert s.lam == pytest.approx(n * lam)


@settings(max_examples=20, deadline=None)
@given(
    mu=hst.floats(min_value=0.5, max_value=10.0),
    sigma=hst.floats(min_value=0.1, max_value=2.0),
    n=hst.integers(min_value=1, max_value=30),
)
def test_iid_sum_normal_distributional_identity(mu, sigma, n):
    # Not just moments: the full CDF of the sum law must equal
    # N(n mu, n sigma^2) pointwise.
    s = iid_sum(Normal(mu, sigma), n)
    xs = np.linspace(n * mu - 4 * sigma * math.sqrt(n), n * mu + 4 * sigma * math.sqrt(n), 17)
    ref = Normal(n * mu, sigma * math.sqrt(n))
    np.testing.assert_allclose(s.cdf(xs), ref.cdf(xs), rtol=1e-10)


@settings(max_examples=20, deadline=None)
@given(
    lo=hst.floats(min_value=-5.0, max_value=5.0),
    width=hst.floats(min_value=0.5, max_value=5.0),
    q=hst.floats(min_value=0.0, max_value=1.0),
)
def test_truncated_ppf_stays_inside(lo, width, q):
    t = truncate(Normal(lo, 2.0), lo, lo + width)
    x = float(t.ppf(q))
    assert lo - 1e-9 <= x <= lo + width + 1e-9
