"""Unit tests for interval truncation (the paper's Section 3.1 construction)."""

import math

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import (
    Exponential,
    Normal,
    Poisson,
    TruncatedContinuous,
    TruncatedDiscrete,
    Uniform,
    truncate,
)


class TestFactory:
    def test_continuous_dispatch(self):
        t = truncate(Normal(3.5, 1.0), 1.0, 7.0)
        assert isinstance(t, TruncatedContinuous)

    def test_discrete_dispatch(self):
        t = truncate(Poisson(3.0), 1.0, 8.0)
        assert isinstance(t, TruncatedDiscrete)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError, match="lo < hi"):
            truncate(Normal(0.0, 1.0), 2.0, 2.0)

    def test_rejects_disjoint_interval(self):
        with pytest.raises(ValueError, match="does not intersect"):
            truncate(Uniform(0.0, 1.0), 5.0, 6.0)

    def test_rejects_zero_mass_interval(self):
        with pytest.raises(ValueError, match="zero probability"):
            truncate(Normal(0.0, 1.0), 100.0, 101.0)

    def test_intersects_with_base_support(self):
        t = truncate(Exponential(1.0), -5.0, 2.0)
        assert t.support == (0.0, 2.0)

    def test_half_line_truncation(self):
        t = truncate(Normal(5.0, 0.4), 0.0)
        assert t.support == (0.0, math.inf)


class TestPaperFormulas:
    """Section 3.1: F_C(x) = (F(x) - F(a)) / (F(b) - F(a)) on [a, b]."""

    def test_cdf_formula(self):
        base = Normal(3.5, 1.0)
        a, b = 1.0, 7.0
        t = truncate(base, a, b)
        xs = np.linspace(a, b, 23)
        expected = (base.cdf(xs) - float(base.cdf(a))) / (
            float(base.cdf(b)) - float(base.cdf(a))
        )
        np.testing.assert_allclose(t.cdf(xs), expected, rtol=1e-10)

    def test_pdf_formula(self):
        base = Exponential(0.5)
        a, b = 1.0, 5.0
        t = truncate(base, a, b)
        xs = np.linspace(a, b, 23)
        mass = float(base.cdf(b)) - float(base.cdf(a))
        np.testing.assert_allclose(t.pdf(xs), base.pdf(xs) / mass, rtol=1e-10)

    def test_cdf_boundaries(self):
        t = truncate(Normal(0.0, 1.0), -1.0, 2.0)
        assert float(t.cdf(-1.0)) == pytest.approx(0.0, abs=1e-14)
        assert float(t.cdf(2.0)) == pytest.approx(1.0, rel=1e-12)

    def test_matches_scipy_truncnorm(self):
        mu, sigma, a, b = 3.5, 1.0, 1.0, 7.0
        t = truncate(Normal(mu, sigma), a, b)
        ref = st.truncnorm((a - mu) / sigma, (b - mu) / sigma, loc=mu, scale=sigma)
        xs = np.linspace(a, b, 23)
        np.testing.assert_allclose(t.cdf(xs), ref.cdf(xs), rtol=1e-9)
        np.testing.assert_allclose(t.pdf(xs), ref.pdf(xs), rtol=1e-9)
        assert t.mean() == pytest.approx(ref.mean(), rel=1e-6)
        assert t.var() == pytest.approx(ref.var(), rel=1e-5)

    def test_deep_upper_tail_truncation_stable(self):
        # Exponential truncated far in the tail: naive CDF differences
        # would lose all precision.
        t = truncate(Exponential(1.0), 50.0, 60.0)
        assert float(t.cdf(55.0)) == pytest.approx(
            (1 - math.exp(-5.0)) / (1 - math.exp(-10.0)), rel=1e-9
        )


class TestTruncatedContinuous:
    def test_pdf_zero_outside(self):
        t = truncate(Normal(0.0, 1.0), -1.0, 1.0)
        assert float(t.pdf(-1.5)) == 0.0
        assert float(t.pdf(1.5)) == 0.0

    def test_pdf_integrates_to_one(self):
        from scipy.integrate import quad

        t = truncate(Normal(3.5, 1.0), 1.0, 7.0)
        val, _ = quad(lambda x: float(t.pdf(x)), 1.0, 7.0)
        assert val == pytest.approx(1.0, rel=1e-8)

    def test_ppf_inverts(self):
        t = truncate(Exponential(0.5), 1.0, 5.0)
        qs = np.linspace(0.01, 0.99, 17)
        np.testing.assert_allclose(t.cdf(t.ppf(qs)), qs, rtol=1e-9)

    def test_samples_in_interval(self, rng):
        t = truncate(Normal(5.0, 3.0), 2.0, 6.0)
        s = t.sample(20_000, rng)
        assert s.min() >= 2.0 and s.max() <= 6.0

    def test_sample_mean_matches(self, rng):
        t = truncate(Normal(5.0, 3.0), 2.0, 6.0)
        s = t.sample(200_000, rng)
        assert s.mean() == pytest.approx(t.mean(), abs=0.02)

    def test_rejects_discrete_base(self):
        with pytest.raises(TypeError, match="continuous"):
            TruncatedContinuous(Poisson(3.0), 1.0, 5.0)

    def test_nested_truncation(self):
        inner = truncate(Normal(0.0, 2.0), -3.0, 3.0)
        outer = truncate(inner, -1.0, 1.0)
        direct = truncate(Normal(0.0, 2.0), -1.0, 1.0)
        xs = np.linspace(-1.0, 1.0, 11)
        np.testing.assert_allclose(outer.cdf(xs), direct.cdf(xs), rtol=1e-9)


class TestTruncatedDiscrete:
    def test_pmf_renormalized(self):
        base = Poisson(3.0)
        t = truncate(base, 1.0, 8.0)
        ks = np.arange(1, 9)
        mass = float(base.pmf(ks).sum())
        np.testing.assert_allclose(t.pmf(ks), base.pmf(ks) / mass, rtol=1e-10)

    def test_pmf_zero_outside(self):
        t = truncate(Poisson(3.0), 1.0, 8.0)
        assert float(t.pmf(0)) == 0.0
        assert float(t.pmf(9)) == 0.0

    def test_pmf_sums_to_one(self):
        t = truncate(Poisson(3.0), 1.0, 8.0)
        assert float(t.pmf(np.arange(1, 9)).sum()) == pytest.approx(1.0, rel=1e-12)

    def test_mean_by_direct_sum(self):
        t = truncate(Poisson(3.0), 1.0, 8.0)
        ks = np.arange(1, 9)
        expected = float((ks * t.pmf(ks)).sum())
        assert t.mean() == pytest.approx(expected, rel=1e-9)

    def test_half_line_discrete(self):
        t = truncate(Poisson(3.0), 2.0)
        assert t.lower == 2.0
        assert float(t.cdf(1.0)) == 0.0
        assert t.mean() > 3.0

    def test_samples_integer_and_bounded(self, rng):
        t = truncate(Poisson(3.0), 1.0, 6.0)
        s = t.sample(10_000, rng)
        assert s.min() >= 1.0 and s.max() <= 6.0
        np.testing.assert_array_equal(s, np.floor(s))

    def test_fractional_bounds_rounded_inward(self):
        t = truncate(Poisson(3.0), 0.5, 6.5)
        assert t.support == (1.0, 6.0)
