"""Unit tests for the Poisson law."""

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Poisson


class TestConstruction:
    def test_valid(self):
        p = Poisson(3.0)
        assert p.lam == 3.0
        assert p.is_discrete

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="> 0"):
            Poisson(0.0)

    def test_real_lam_supported(self):
        # The static relaxation evaluates Poisson(y * lam) for real y.
        p = Poisson(2.75)
        assert float(p.pmf(0)) == pytest.approx(np.exp(-2.75))


class TestProbability:
    def test_pmf_matches_scipy(self):
        p = Poisson(3.0)
        ks = np.arange(0, 25)
        np.testing.assert_allclose(p.pmf(ks), st.poisson(3.0).pmf(ks), rtol=1e-10)

    def test_cdf_matches_scipy(self):
        p = Poisson(3.0)
        ks = np.arange(0, 25)
        np.testing.assert_allclose(p.cdf(ks), st.poisson(3.0).cdf(ks), rtol=1e-10)

    def test_cdf_step_between_integers(self):
        p = Poisson(2.0)
        assert float(p.cdf(3.7)) == pytest.approx(float(p.cdf(3.0)))

    def test_pmf_zero_off_support(self):
        p = Poisson(2.0)
        assert float(p.pmf(-1)) == 0.0
        assert float(p.pmf(2.5)) == 0.0

    def test_pmf_sums_to_one(self):
        p = Poisson(4.0)
        assert float(p.pmf(np.arange(0, 100)).sum()) == pytest.approx(1.0, rel=1e-12)

    def test_ppf_integer_valued(self):
        p = Poisson(3.0)
        qs = np.linspace(0.05, 0.95, 11)
        vals = p.ppf(qs)
        np.testing.assert_array_equal(vals, np.floor(vals))

    def test_ppf_matches_scipy(self):
        p = Poisson(3.0)
        qs = np.linspace(0.05, 0.95, 11)
        np.testing.assert_allclose(p.ppf(qs), st.poisson(3.0).ppf(qs))


class TestMoments:
    def test_mean_var_equal_lam(self):
        p = Poisson(3.5)
        assert p.mean() == 3.5
        assert p.var() == 3.5


class TestSampling:
    def test_sample_integer_valued(self, rng):
        s = Poisson(3.0).sample(10_000, rng)
        np.testing.assert_array_equal(s, np.floor(s))

    def test_sample_mean(self, rng):
        s = Poisson(3.0).sample(200_000, rng)
        assert s.mean() == pytest.approx(3.0, rel=0.02)
