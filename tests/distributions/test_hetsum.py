"""Unit tests for heterogeneous sum laws."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Gamma,
    HeterogeneousSum,
    Normal,
    Poisson,
    Uniform,
    normal_approximation,
    sum_of,
    truncate,
)


class TestClosedFormDispatch:
    def test_all_normal(self):
        s = sum_of([Normal(1.0, 0.5), Normal(2.0, 0.5), Normal(3.0, 1.0)])
        assert isinstance(s, Normal)
        assert s.mu == pytest.approx(6.0)
        assert s.sigma == pytest.approx(np.sqrt(0.25 + 0.25 + 1.0))

    def test_all_deterministic(self):
        s = sum_of([Deterministic(1.0), Deterministic(2.5)])
        assert s.mean() == 3.5
        assert s.var() == 0.0

    def test_gamma_shared_scale(self):
        s = sum_of([Gamma(2.0, 0.5), Gamma(3.0, 0.5)])
        assert isinstance(s, Gamma)
        assert (s.k, s.theta) == (5.0, 0.5)

    def test_gamma_mixed_scale_falls_back(self):
        s = sum_of([Gamma(2.0, 0.5), Gamma(2.0, 1.0)])
        assert isinstance(s, HeterogeneousSum)

    def test_single_law_passthrough(self):
        g = Gamma(2.0, 0.5)
        assert sum_of([g]) is g

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            sum_of([])


class TestHeterogeneousSum:
    def test_matches_gamma_closure(self):
        h = HeterogeneousSum([Gamma(2.0, 0.5), Gamma(3.0, 0.5)], grid_points=8192)
        exact = Gamma(5.0, 0.5)
        xs = np.linspace(0.5, 8.0, 25)
        np.testing.assert_allclose(h.cdf(xs), exact.cdf(xs), atol=2e-4)

    def test_matches_normal_closure(self):
        h = HeterogeneousSum([Normal(2.0, 0.3), Normal(5.0, 0.4)], grid_points=8192)
        exact = Normal(7.0, 0.5)
        xs = np.linspace(5.0, 9.0, 21)
        np.testing.assert_allclose(h.cdf(xs), exact.cdf(xs), atol=2e-4)

    def test_moments_additive(self):
        laws = [Uniform(0.0, 1.0), Gamma(2.0, 0.5), truncate(Normal(3.0, 0.5), 0.0)]
        h = HeterogeneousSum(laws)
        assert h.mean() == pytest.approx(sum(l.mean() for l in laws), rel=1e-3)
        assert h.var() == pytest.approx(sum(l.var() for l in laws), rel=1e-2)

    def test_support_is_sum_of_supports(self):
        h = HeterogeneousSum([Uniform(1.0, 2.0), Uniform(3.0, 5.0)])
        lo, hi = h.support
        assert lo == pytest.approx(4.0, abs=1e-6)
        assert hi == pytest.approx(7.0, abs=1e-6)

    def test_sampling_matches_cdf(self, rng):
        h = HeterogeneousSum([Uniform(0.0, 1.0), Gamma(2.0, 0.5)])
        draws = h.sample(100_000, rng)
        for q in (0.25, 0.5, 0.75):
            emp = np.quantile(draws, q)
            assert float(h.cdf(emp)) == pytest.approx(q, abs=0.01)

    def test_rejects_single_summand(self):
        with pytest.raises(ValueError, match="at least 2"):
            HeterogeneousSum([Uniform(0.0, 1.0)])

    def test_rejects_discrete(self):
        with pytest.raises(TypeError, match="continuous"):
            HeterogeneousSum([Poisson(3.0), Uniform(0.0, 1.0)])

    def test_pdf_normalized(self):
        h = HeterogeneousSum([Uniform(0.0, 1.0), Uniform(0.0, 2.0)])
        xs = np.linspace(-0.5, 3.5, 1001)
        assert np.trapezoid(h.pdf(xs), xs) == pytest.approx(1.0, abs=5e-3)

    def test_three_uniforms_irwin_hall_shape(self):
        h = HeterogeneousSum([Uniform(0.0, 1.0)] * 3, grid_points=8192)
        # Irwin-Hall(3): cdf(1.5) = 0.5 by symmetry.
        assert float(h.cdf(1.5)) == pytest.approx(0.5, abs=2e-3)


class TestNormalApproximation:
    def test_moment_matching(self):
        laws = [Gamma(2.0, 0.5), Uniform(1.0, 3.0)]
        approx = normal_approximation(laws)
        assert approx.mean() == pytest.approx(sum(l.mean() for l in laws))
        assert approx.var() == pytest.approx(sum(l.var() for l in laws))

    def test_exact_for_normals(self):
        laws = [Normal(1.0, 0.2), Normal(2.0, 0.3)]
        approx = normal_approximation(laws)
        exact = sum_of(laws)
        xs = np.linspace(2.0, 4.0, 11)
        np.testing.assert_allclose(approx.cdf(xs), exact.cdf(xs), rtol=1e-12)

    def test_clt_convergence(self):
        # Many skewed summands: the CLT approximation approaches the
        # exact convolution.
        law = Gamma(1.0, 1.0)
        few_exact = HeterogeneousSum([law] * 3, grid_points=8192)
        few_clt = normal_approximation([law] * 3)
        many_exact = HeterogeneousSum([law] * 40, grid_points=8192)
        many_clt = normal_approximation([law] * 40)

        def max_err(a, b, lo, hi):
            xs = np.linspace(lo, hi, 101)
            return float(np.max(np.abs(np.asarray(a.cdf(xs)) - np.asarray(b.cdf(xs)))))

        err_few = max_err(few_exact, few_clt, 0.0, 10.0)
        err_many = max_err(many_exact, many_clt, 20.0, 60.0)
        assert err_many < err_few

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            normal_approximation([])

    def test_rejects_zero_variance(self):
        with pytest.raises(ValueError, match="variance"):
            normal_approximation([Deterministic(1.0)])
