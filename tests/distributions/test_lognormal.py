"""Unit tests for the LogNormal law."""

import math

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import LogNormal


class TestConstruction:
    def test_valid(self):
        ln = LogNormal(1.0, 0.5)
        assert ln.support == (0.0, math.inf)

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError, match="> 0"):
            LogNormal(0.0, -1.0)

    def test_from_moments_roundtrip(self):
        ln = LogNormal.from_moments(4.0, 1.5)
        assert ln.mean() == pytest.approx(4.0, rel=1e-12)
        assert ln.std() == pytest.approx(1.5, rel=1e-12)

    def test_from_moments_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError, match="> 0"):
            LogNormal.from_moments(-1.0, 1.0)

    def test_paper_moment_formulas(self):
        # mu* = exp(mu + sigma^2/2), sigma* per Section 3.2.4.
        mu, sigma = 1.2, 0.6
        ln = LogNormal(mu, sigma)
        assert ln.mean() == pytest.approx(math.exp(mu + sigma**2 / 2))
        expected_var = (math.exp(sigma**2) - 1.0) * math.exp(2 * mu + sigma**2)
        assert ln.var() == pytest.approx(expected_var)


class TestProbability:
    def test_pdf_matches_scipy(self):
        ln = LogNormal(1.0, 0.5)
        ref = st.lognorm(s=0.5, scale=math.exp(1.0))
        xs = np.linspace(0.01, 15.0, 41)
        np.testing.assert_allclose(ln.pdf(xs), ref.pdf(xs), rtol=1e-10)

    def test_cdf_matches_scipy(self):
        ln = LogNormal(1.0, 0.5)
        ref = st.lognorm(s=0.5, scale=math.exp(1.0))
        xs = np.linspace(0.01, 15.0, 41)
        np.testing.assert_allclose(ln.cdf(xs), ref.cdf(xs), rtol=1e-10, atol=1e-14)

    def test_zero_below_support(self):
        ln = LogNormal(0.0, 1.0)
        assert float(ln.pdf(-1.0)) == 0.0
        assert float(ln.cdf(0.0)) == 0.0

    def test_ppf_inverts_cdf(self):
        ln = LogNormal(0.5, 0.8)
        qs = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(ln.cdf(ln.ppf(qs)), qs, rtol=1e-9)

    def test_log_relationship(self):
        # P(LN <= x) = Phi((ln x - mu)/sigma)
        ln = LogNormal(0.3, 0.7)
        assert float(ln.cdf(math.exp(0.3))) == pytest.approx(0.5, rel=1e-12)


class TestSampling:
    def test_sample_positive(self, rng):
        assert LogNormal(0.0, 1.0).sample(10_000, rng).min() > 0.0

    def test_sample_mean(self, rng):
        ln = LogNormal.from_moments(3.0, 0.5)
        s = ln.sample(200_000, rng)
        assert s.mean() == pytest.approx(3.0, rel=0.01)
