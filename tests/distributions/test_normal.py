"""Unit tests for the Normal law and the phi/Phi helpers."""

import math

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Normal, Phi, Phi_inv, phi


class TestHelpers:
    def test_phi_matches_scipy(self):
        xs = np.linspace(-5.0, 5.0, 41)
        np.testing.assert_allclose(phi(xs), st.norm.pdf(xs), rtol=1e-12)

    def test_Phi_matches_scipy(self):
        xs = np.linspace(-8.0, 8.0, 41)
        np.testing.assert_allclose(Phi(xs), st.norm.cdf(xs), rtol=1e-12, atol=1e-300)

    def test_Phi_inv_roundtrip(self):
        qs = np.linspace(0.001, 0.999, 31)
        np.testing.assert_allclose(Phi(Phi_inv(qs)), qs, rtol=1e-10)

    def test_Phi_deep_tail(self):
        # erfc-based Phi keeps relative precision in the lower tail.
        assert float(Phi(-10.0)) == pytest.approx(st.norm.cdf(-10.0), rel=1e-10)


class TestConstruction:
    def test_valid(self):
        n = Normal(3.0, 0.5)
        assert (n.mu, n.sigma) == (3.0, 0.5)

    def test_rejects_zero_sigma(self):
        with pytest.raises(ValueError, match="> 0"):
            Normal(0.0, 0.0)

    def test_rejects_infinite_mu(self):
        with pytest.raises(ValueError, match="finite"):
            Normal(math.inf, 1.0)


class TestProbability:
    def test_pdf_matches_scipy(self):
        n = Normal(3.0, 0.5)
        xs = np.linspace(0.0, 6.0, 37)
        np.testing.assert_allclose(n.pdf(xs), st.norm(3.0, 0.5).pdf(xs), rtol=1e-12)

    def test_cdf_matches_scipy(self):
        n = Normal(-1.0, 2.0)
        xs = np.linspace(-9.0, 7.0, 37)
        np.testing.assert_allclose(n.cdf(xs), st.norm(-1.0, 2.0).cdf(xs), rtol=1e-10)

    def test_symmetry(self):
        n = Normal(5.0, 1.5)
        assert float(n.cdf(5.0)) == pytest.approx(0.5, rel=1e-12)
        assert float(n.cdf(4.0)) == pytest.approx(float(n.sf(6.0)), rel=1e-10)

    def test_ppf_matches_scipy(self):
        n = Normal(3.0, 0.5)
        qs = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(n.ppf(qs), st.norm(3.0, 0.5).ppf(qs), rtol=1e-9)


class TestMoments:
    def test_mean_var(self):
        n = Normal(3.0, 0.5)
        assert n.mean() == 3.0
        assert n.var() == pytest.approx(0.25)


class TestSampling:
    def test_sample_moments(self, rng):
        s = Normal(3.0, 0.5).sample(200_000, rng)
        assert s.mean() == pytest.approx(3.0, abs=0.01)
        assert s.std() == pytest.approx(0.5, abs=0.01)
