"""Unit tests for the Weibull law."""

import math

import numpy as np
import pytest
import scipy.stats as st

from repro.distributions import Weibull


class TestConstruction:
    def test_valid(self):
        w = Weibull(1.5, 2.0)
        assert (w.shape, w.scale) == (1.5, 2.0)

    def test_rejects_nonpositive_shape(self):
        with pytest.raises(ValueError, match="> 0"):
            Weibull(0.0, 1.0)


class TestProbability:
    @pytest.mark.parametrize("shape,scale", [(0.8, 1.0), (1.0, 2.0), (1.5, 0.5), (3.0, 4.0)])
    def test_pdf_matches_scipy(self, shape, scale):
        w = Weibull(shape, scale)
        ref = st.weibull_min(c=shape, scale=scale)
        xs = np.linspace(0.01, 8.0, 41)
        np.testing.assert_allclose(w.pdf(xs), ref.pdf(xs), rtol=1e-10)

    @pytest.mark.parametrize("shape,scale", [(0.8, 1.0), (1.5, 0.5), (3.0, 4.0)])
    def test_cdf_matches_scipy(self, shape, scale):
        w = Weibull(shape, scale)
        ref = st.weibull_min(c=shape, scale=scale)
        xs = np.linspace(0.0, 8.0, 41)
        np.testing.assert_allclose(w.cdf(xs), ref.cdf(xs), rtol=1e-10, atol=1e-15)

    def test_shape_one_is_exponential(self):
        w = Weibull(1.0, 2.0)
        xs = np.linspace(0.0, 10.0, 21)
        np.testing.assert_allclose(w.cdf(xs), 1.0 - np.exp(-xs / 2.0), rtol=1e-12)

    def test_ppf_inverts_cdf(self):
        w = Weibull(1.7, 1.3)
        qs = np.linspace(0.01, 0.99, 21)
        np.testing.assert_allclose(w.cdf(w.ppf(qs)), qs, rtol=1e-10)


class TestMoments:
    def test_mean_matches_gamma_formula(self):
        w = Weibull(2.0, 3.0)
        assert w.mean() == pytest.approx(3.0 * math.gamma(1.5))

    def test_var_matches_scipy(self):
        w = Weibull(2.0, 3.0)
        assert w.var() == pytest.approx(st.weibull_min(c=2.0, scale=3.0).var(), rel=1e-10)


class TestSampling:
    def test_sample_mean(self, rng):
        w = Weibull(1.5, 2.0)
        s = w.sample(200_000, rng)
        assert s.mean() == pytest.approx(w.mean(), rel=0.02)
