"""Unit tests for IID sum laws (static strategy substrate)."""

import numpy as np
import pytest

from repro.distributions import (
    Deterministic,
    Exponential,
    FFTConvolutionSum,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    iid_sum,
)


class TestClosedForms:
    def test_normal_sum(self):
        s = iid_sum(Normal(3.0, 0.5), 7)
        assert isinstance(s, Normal)
        assert s.mu == pytest.approx(21.0)
        assert s.sigma == pytest.approx(0.5 * np.sqrt(7.0))

    def test_normal_real_n(self):
        s = iid_sum(Normal(3.0, 0.5), 7.4)
        assert s.mean() == pytest.approx(22.2)

    def test_gamma_sum(self):
        s = iid_sum(Gamma(2.0, 0.5), 5)
        assert isinstance(s, Gamma)
        assert (s.k, s.theta) == (10.0, 0.5)

    def test_exponential_sum_is_erlang(self):
        s = iid_sum(Exponential(2.0), 3)
        assert isinstance(s, Gamma)
        assert s.k == 3.0
        assert s.theta == pytest.approx(0.5)

    def test_poisson_sum(self):
        s = iid_sum(Poisson(3.0), 6)
        assert isinstance(s, Poisson)
        assert s.lam == 18.0

    def test_deterministic_sum(self):
        s = iid_sum(Deterministic(2.5), 4)
        assert s.mean() == 10.0

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError, match="> 0"):
            iid_sum(Normal(0.0, 1.0), 0)

    def test_generic_rejects_real_n(self):
        with pytest.raises(ValueError, match="integral"):
            iid_sum(Uniform(0.0, 1.0), 2.5)

    def test_moment_additivity(self):
        base = Gamma(1.7, 0.9)
        s = iid_sum(base, 11)
        assert s.mean() == pytest.approx(11 * base.mean())
        assert s.var() == pytest.approx(11 * base.var())


class TestFFTFallback:
    def test_uniform_sum_dispatches_to_fft(self):
        s = iid_sum(Uniform(0.0, 1.0), 3)
        assert isinstance(s, FFTConvolutionSum)

    def test_irwin_hall_cdf(self):
        # Sum of 2 U(0,1): triangular law; CDF at 1.0 is exactly 0.5.
        s = iid_sum(Uniform(0.0, 1.0), 2)
        assert float(s.cdf(1.0)) == pytest.approx(0.5, abs=2e-3)
        assert float(s.cdf(0.5)) == pytest.approx(0.125, abs=2e-3)

    def test_moments_additive(self):
        base = Uniform(1.0, 3.0)
        s = iid_sum(base, 5)
        assert s.mean() == pytest.approx(5 * base.mean(), rel=1e-3)
        assert s.var() == pytest.approx(5 * base.var(), rel=1e-2)

    def test_matches_closed_form_for_gamma(self):
        # Cross-check the FFT machinery against an exact family.
        base = Gamma(2.0, 0.5)
        fft = FFTConvolutionSum(base, 4, grid_points=8192)
        exact = Gamma(8.0, 0.5)
        xs = np.linspace(0.5, 10.0, 25)
        np.testing.assert_allclose(fft.cdf(xs), exact.cdf(xs), atol=2e-3)

    def test_support_scales_with_n(self):
        s = FFTConvolutionSum(Uniform(1.0, 2.0), 3)
        lo, hi = s.support
        assert lo == pytest.approx(3.0, abs=1e-9)
        assert hi == pytest.approx(6.0, abs=1e-9)

    def test_sampling_sums_draws(self, rng):
        base = Uniform(0.0, 1.0)
        s = iid_sum(base, 10)
        draws = s.sample(50_000, rng)
        assert draws.mean() == pytest.approx(5.0, abs=0.02)
        assert draws.min() >= 0.0 and draws.max() <= 10.0

    def test_lognormal_sum_mean(self):
        base = LogNormal.from_moments(2.0, 0.4)
        s = iid_sum(base, 6)
        assert s.mean() == pytest.approx(12.0, rel=1e-2)

    def test_rejects_discrete(self):
        with pytest.raises((NotImplementedError, TypeError)):
            FFTConvolutionSum(Poisson(3.0), 2)

    def test_pdf_nonnegative_and_normalized(self):
        s = FFTConvolutionSum(Uniform(0.0, 1.0), 4)
        xs = np.linspace(-1.0, 5.0, 301)
        pdf = s.pdf(xs)
        assert np.all(pdf >= 0.0)
        # Trapezoid integral ~ 1.
        assert np.trapezoid(pdf, xs) == pytest.approx(1.0, abs=5e-3)


class TestFFTSumMemo:
    """iid_sum memoizes the FFT fallback keyed on the summand's spec()."""

    def setup_method(self):
        from repro.distributions import fft_sum_cache_clear

        fft_sum_cache_clear()

    def test_repeat_requests_hit_the_memo(self):
        from repro.distributions import Weibull, fft_sum_cache_info

        first = iid_sum(Weibull(1.5, 2.0), 5)
        second = iid_sum(Weibull(1.5, 2.0), 5)  # equal but distinct object
        assert second is first
        info = fft_sum_cache_info()
        assert (info["hits"], info["misses"]) == (1, 1)

    def test_distinct_n_and_params_miss(self):
        from repro.distributions import Weibull, fft_sum_cache_info

        iid_sum(Weibull(1.5, 2.0), 4)
        iid_sum(Weibull(1.5, 2.0), 5)
        iid_sum(Weibull(1.6, 2.0), 5)
        assert fft_sum_cache_info()["misses"] == 3

    def test_closed_families_bypass_the_memo(self):
        from repro.distributions import fft_sum_cache_info

        iid_sum(Normal(3.0, 0.5), 7)
        assert fft_sum_cache_info() == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "maxsize": 128,
        }

    def test_unspecable_laws_build_uncached(self):
        from repro.distributions import Empirical, fft_sum_cache_info

        base = Empirical([0.5, 1.0, 1.5, 2.0, 2.5])
        a = iid_sum(base, 3)
        b = iid_sum(base, 3)
        assert a is not b  # no spec() -> no memo key
        assert fft_sum_cache_info()["size"] == 0

    def test_clear_resets(self):
        from repro.distributions import Weibull, fft_sum_cache_clear, fft_sum_cache_info

        iid_sum(Weibull(1.5, 2.0), 3)
        fft_sum_cache_clear()
        info = fft_sum_cache_info()
        assert info["size"] == 0 and info["misses"] == 0
