"""Figure 3: E(W(X)) for a truncated Normal law — both cases.

Panel (a): N(3.5, 1) truncated to [1, 7], R=10 — interior optimum found
numerically (the paper proves existence/uniqueness via the concavity
analysis of Section 3.2.3 but gives no closed form).
Panel (b): truncation to [1, 4.7] — the optimum saturates at b.
"""

import numpy as np
from _common import AnchorRow, report

from repro.analysis import expected_work_curve
from repro.core import solve
from repro.core.preemptible import expected_work
from repro.distributions import Normal, truncate


def test_fig03a_interior_optimum(benchmark):
    law = truncate(Normal(3.5, 1.0), 1.0, 7.0)
    sol = benchmark(solve, 10.0, law)
    grid = np.linspace(1.0, 7.0, 4001)
    grid_max = float(np.max(expected_work(10.0, law, grid)))
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) N(3.5,1) [1,7] R=10")
    report(
        "fig03a",
        "Truncated Normal, interior optimum (paper Fig. 3a)",
        [
            AnchorRow("E(W(X_opt)) vs dense grid max", grid_max, sol.expected_work_opt, 1e-6),
            AnchorRow("optimum strictly inside (X_opt < b)", 0.0, float(sol.x_opt >= 7.0), 0.5),
            AnchorRow("gain over pessimistic > 1", 1.0, min(sol.gain, 1.0), 1e-9),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt, "b": 7.0},
        extra_lines=[f"  X_opt = {sol.x_opt:.4f}, gain = {sol.gain:.3f}x"],
    )


def test_fig03b_boundary_optimum(benchmark):
    law = truncate(Normal(3.5, 1.0), 1.0, 4.7)
    sol = benchmark(solve, 10.0, law)
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) N(3.5,1) [1,4.7] R=10")
    report(
        "fig03b",
        "Truncated Normal, optimum at b (paper Fig. 3b)",
        [
            AnchorRow("X_opt = b", 4.7, sol.x_opt, 1e-6),
            AnchorRow("E(W(b)) = R - b", 5.3, sol.expected_work_opt, 1e-6),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt},
    )


def test_fig03_concavity_structure():
    """Section 3.2.3's second-derivative analysis: E(W(X)) is concave on
    the relevant interval, so the grid max is a unique interior peak."""
    law = truncate(Normal(3.5, 1.0), 1.0, 7.0)
    xs = np.linspace(1.0, 7.0, 801)
    vals = np.asarray(expected_work(10.0, law, xs))
    second = np.diff(vals, 2)
    # Concave over the bulk: allow boundary noise only.
    assert np.mean(second <= 1e-9) > 0.95
