"""Figure 4: E(W(X)) for a truncated LogNormal law — both cases.

The paper chooses log-scale parameters so that the natural-scale mean
mu* = exp(mu + sigma^2/2) lies inside [a, b] and reports the same
qualitative dichotomy as Figures 1-3. Panel captions: (a) a=1, b=7,
R=10, mu=1, sigma=0.5 (interior); (b) a=1, b=4.7, R=10, mu=3.5, sigma=1
(optimum at b).
"""

import math

import numpy as np
from _common import AnchorRow, report

from repro.analysis import expected_work_curve
from repro.core import solve
from repro.core.preemptible import expected_work
from repro.distributions import LogNormal, truncate


def test_fig04a_interior_optimum(benchmark):
    base = LogNormal(1.0, 0.5)
    law = truncate(base, 1.0, 7.0)
    sol = benchmark(solve, 10.0, law)
    grid = np.linspace(1.0, 7.0, 4001)
    grid_max = float(np.max(expected_work(10.0, law, grid)))
    mu_star = base.mean()
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) LogN(1,0.5) [1,7] R=10")
    report(
        "fig04a",
        "Truncated LogNormal, interior optimum (paper Fig. 4a)",
        [
            AnchorRow("mu* = exp(mu + s^2/2) in [a,b]", math.exp(1.125), mu_star, 1e-9),
            AnchorRow("E(W(X_opt)) vs dense grid max", grid_max, sol.expected_work_opt, 1e-6),
            AnchorRow("optimum strictly inside (X_opt < b)", 0.0, float(sol.x_opt >= 7.0), 0.5),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt, "b": 7.0},
        extra_lines=[f"  X_opt = {sol.x_opt:.4f}, gain = {sol.gain:.3f}x"],
    )


def test_fig04b_boundary_optimum(benchmark):
    # Paper Fig. 4b: mu=3.5, sigma=1 -> heavy mass above b=4.7.
    law = truncate(LogNormal(3.5, 1.0), 1.0, 4.7)
    sol = benchmark(solve, 10.0, law)
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) LogN(3.5,1) [1,4.7] R=10")
    report(
        "fig04b",
        "Truncated LogNormal, optimum at b (paper Fig. 4b)",
        [
            AnchorRow("X_opt = b", 4.7, sol.x_opt, 1e-6),
            AnchorRow("E(W(b)) = R - b", 5.3, sol.expected_work_opt, 1e-6),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt},
    )
