"""Ablation: end-to-end on a real iterative application.

The paper's motivating workload — an iterative sparse solver — executed
for real: instrument a Jacobi solve (synthetic machine model with
LogNormal contention noise), *learn* D_X from the recorded trace and
D_C from a synthetic checkpoint trace (bandwidth model), then compare
the learned-law policies against the pessimistic baseline by replaying
the real iteration stream through the event engine.

Expected shape (asserted): the calibrated dynamic policy saves more
work per reservation than the pessimistic margin rule, and the fitted
families are plausible (KS p-value not catastrophic).
"""

import numpy as np
from _common import AnchorRow, report

from repro.core import DynamicPolicy, StaticCountPolicy
from repro.distributions import LogNormal, Uniform, truncate
from repro.simulation import TraceTaskSource, run_reservation
from repro.traces import select_best, synthetic_checkpoint_trace
from repro.workflows import (
    JacobiSolver,
    MachineModel,
    manufactured_rhs,
    poisson_2d,
    run_instrumented,
)


def _pipeline(rng: np.random.Generator) -> dict:
    # 1. real application, instrumented.
    A = poisson_2d(16)
    b, _ = manufactured_rhs(A, rng)
    app = JacobiSolver(A, b, tolerance=1e-7)
    machine = MachineModel(5e7, noise_law=LogNormal.from_moments(1.0, 0.15))
    trace = run_instrumented(app, machine, rng=rng)
    durations = trace.as_array()

    # 2. learn the laws.
    task_report = select_best(durations)
    task_law = task_report.best.distribution
    mean_task = float(durations.mean())
    ckpt_trace = synthetic_checkpoint_trace(
        400, volume=8.0 * mean_task * 1e9, bandwidth_law=Uniform(2e9, 6e9),
        latency=0.2 * mean_task, rng=rng,
    )
    ckpt_report = select_best(ckpt_trace)
    ckpt_law = truncate(
        ckpt_report.best.distribution, float(ckpt_trace.min()), float(ckpt_trace.max())
    )

    # 3. run reservations over the *recorded* iteration stream.
    R = 14.0 * mean_task
    c_max = float(ckpt_trace.max())
    # Pessimistic rule: checkpoint as soon as remaining budget <= C_max
    # plus one mean task (classic worst-case margin at task granularity).
    mean_per_task = mean_task

    dyn = DynamicPolicy(task_law, ckpt_law)
    n_pess = max(1, int((R - c_max) / mean_per_task) - 1)
    pess = StaticCountPolicy(n_pess)

    def replay(policy) -> float:
        saved = []
        for rep in range(60):
            start = (rep * 137) % max(1, durations.size - 1)
            src = TraceTaskSource(np.roll(durations, -start))
            rec = run_reservation(R, src, ckpt_law, policy, rng)
            saved.append(rec.work_saved)
        return float(np.mean(saved))

    return {
        "task_family": task_report.best.family,
        "task_ks_p": task_report.ks_p,
        "ckpt_family": ckpt_report.best.family,
        "dyn_saved": replay(dyn),
        "pess_saved": replay(pess),
        "iterations": durations.size,
        "R": R,
    }


def test_solver_trace_pipeline(benchmark, rng):
    out = benchmark.pedantic(lambda: _pipeline(rng), rounds=1, iterations=1)
    ratio = out["dyn_saved"] / max(out["pess_saved"], 1e-12)
    report(
        "solver_traces",
        "Calibrated policies on a real Jacobi iteration stream",
        [
            AnchorRow("dynamic >= 0.98x pessimistic", 1.0, min(ratio / 0.98, 1.0), 1e-9),
            AnchorRow("task-law fit not rejected (KS p > 1e-4)", 1.0, float(out["task_ks_p"] > 1e-4), 0.0),
        ],
        extra_lines=[
            f"  Jacobi iterations recorded: {out['iterations']}",
            f"  learned task law family:    {out['task_family']} (KS p={out['task_ks_p']:.3f})",
            f"  learned ckpt law family:    {out['ckpt_family']}",
            f"  reservation length:         {out['R']:.3f}s",
            f"  mean saved work/reservation: dynamic={out['dyn_saved']:.3f} "
            f"pessimistic={out['pess_saved']:.3f} (ratio {ratio:.3f})",
        ],
    )
