"""Extension bench: fail-stop errors within the reservation.

The paper's closing future-work item. Exponential failures of rate
``lam`` strike during a long reservation (R=300, checkpoint ~ truncN(5,
0.4)). Compared strategies:

* final-only (the paper's single end-of-reservation checkpoint);
* periodic checkpoints at Young's period, at Daly's period, and at
  deliberately mistuned periods (T/4 and 4T).

Expected shape (asserted): final-only collapses exponentially in
``lam R`` (analytic formula cross-checked by MC); periodic
checkpointing degrades gracefully and dominates final-only at every
tested rate on this long reservation (final-only only approaches parity
as ``lam -> 0``, where Young's period exceeds R and periodic degenerates
to a single final checkpoint); Young/Daly periods dominate the mistuned
ones.
"""

import math

import numpy as np
from _common import AnchorRow, report

from repro.analysis import Series
from repro.core import (
    WindowPredictor,
    daly_period,
    final_only_expected_work,
    preemptible,
    restart_expected_work,
    young_period,
)
from repro.distributions import Normal, Weibull, truncate
from repro.simulation import (
    SimulationSummary,
    simulate_dynamic_with_failures,
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
    simulate_restart_with_failures,
)

R = 300.0
MARGIN = 6.0
RECOVERY = 2.0
RATES = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2e-2]
N = 40_000


def _sweep(rng) -> dict[str, list[float]]:
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    out: dict[str, list[float]] = {
        "final-only": [], "young": [], "daly": [], "quarterT": [], "fourT": [],
    }
    for lam in RATES:
        out["final-only"].append(
            simulate_final_only_with_failures(R, ckpt, MARGIN, lam, N, rng).mean()
        )
        T_y = young_period(5.0, lam)
        T_d = daly_period(5.0, lam)
        for key, T in (("young", T_y), ("daly", T_d), ("quarterT", T_y / 4), ("fourT", 4 * T_y)):
            out[key].append(
                simulate_periodic_with_failures(R, ckpt, T, lam, N, rng, recovery=RECOVERY).mean()
            )
    return out


def test_failure_sweep(benchmark, rng):
    data = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    # Analytic cross-check of final-only at one rate.
    lam0 = 1e-3
    analytic = final_only_expected_work(R, ckpt, MARGIN, lam0)
    mc = SimulationSummary.from_samples(
        simulate_final_only_with_failures(R, ckpt, MARGIN, lam0, 300_000, rng)
    )
    rates = np.array(RATES)
    series = [
        Series(rates, np.array(vals), name) for name, vals in data.items()
    ]
    lines = [f"  {'lam':>8} {'final-only':>11} {'young':>9} {'daly':>9} {'T/4':>9} {'4T':>9}"]
    for i, lam in enumerate(RATES):
        lines.append(
            f"  {lam:>8.4f} {data['final-only'][i]:>11.2f} {data['young'][i]:>9.2f} "
            f"{data['daly'][i]:>9.2f} {data['quarterT'][i]:>9.2f} {data['fourT'][i]:>9.2f}"
        )
    # Shape assertions.
    collapse = data["final-only"][-1] < 0.05 * data["final-only"][0]
    graceful = data["young"][-1] > 0.4 * data["young"][0]
    tuned_vs_quarter = data["young"][3] >= data["quarterT"][3] - 1.0
    tuned_vs_four = data["young"][3] >= data["fourT"][3] - 1.0
    # Final-only approaches (but never beats) periodic as lam -> 0: its
    # fixed margin wastes slightly more than one checkpoint's worth.
    parity_at_rare = data["final-only"][0] >= 0.96 * data["young"][0]
    dominance = all(y >= f - 1.0 for y, f in zip(data["young"], data["final-only"]))
    report(
        "failures",
        "Fail-stop errors inside the reservation (future-work extension)",
        [
            AnchorRow("final-only MC vs analytic (lam=1e-3)", analytic, mc.mean, 4 * mc.sem),
            AnchorRow("final-only collapses at high lam", 1.0, float(collapse), 0.0),
            AnchorRow("Young-period degrades gracefully", 1.0, float(graceful), 0.0),
            AnchorRow("Young beats T/4 at lam=5e-3", 1.0, float(tuned_vs_quarter), 0.0),
            AnchorRow("Young beats 4T at lam=5e-3", 1.0, float(tuned_vs_four), 0.0),
            AnchorRow("final-only near-parity as lam -> 0", 1.0, float(parity_at_rare), 0.0),
            AnchorRow("periodic dominates final-only throughout", 1.0, float(dominance), 0.0),
        ],
        series=series,
        extra_lines=lines + [
            "  -> the paper's failure-free model is the lam*R << 1 limit: there",
            "     final-only is within a few percent of periodic. Once failures",
            "     are plausible within one reservation, intermediate checkpoints",
            "     at the Young/Daly period are mandatory - final-only collapses.",
        ],
    )


# ---------------------------------------------------------------------------
# Restart-vs-checkpoint regime map (PR 9)
# ---------------------------------------------------------------------------

#: Regime-map grid: strike rates x Weibull task-law shapes (mean fixed
#: at 3.0, so shape is pure tail weight: k<1 heavy, k>1 light).
MAP_R = 60.0
MAP_RATES = [0.002, 0.01, 0.03, 0.08]
MAP_SHAPES = [0.7, 1.0, 1.5, 3.0]
MAP_RECOVERY = 2.0
MAP_TRIALS = 4_000


def _regime_map(rng) -> dict:
    """Expected saved work per (lam, shape) cell for three strategies:
    restart-without-checkpoint (analytic DP), the blind failure-aware
    dynamic rule (MC), and the same rule with a good-but-imperfect
    predictor (recall 0.9, precision 0.8, width 6 >> E[C])."""
    ckpt = truncate(Normal(2.0, 0.4), 0.5, 3.5)
    margin = preemptible.solve(MAP_R, ckpt).x_opt
    restart = {
        lam: restart_expected_work(MAP_R, ckpt, margin, lam, recovery=MAP_RECOVERY)
        for lam in MAP_RATES
    }
    blind: dict[tuple[float, float], float] = {}
    predicted: dict[tuple[float, float], float] = {}
    for k in MAP_SHAPES:
        task = Weibull(k, 3.0 / math.gamma(1.0 + 1.0 / k))
        for lam in MAP_RATES:
            seed = int(rng.integers(2**32))
            blind[lam, k] = float(
                simulate_dynamic_with_failures(
                    MAP_R, task, ckpt, lam, MAP_TRIALS,
                    np.random.default_rng(seed), recovery=MAP_RECOVERY,
                ).mean()
            )
            predictor = WindowPredictor(
                recall=0.9, precision=0.8, width=6.0, lead=6.0, seed=seed
            )
            predicted[lam, k] = float(
                simulate_dynamic_with_failures(
                    MAP_R, task, ckpt, lam, MAP_TRIALS,
                    np.random.default_rng(seed),
                    predictor=predictor, recovery=MAP_RECOVERY,
                ).mean()
            )
    return {"margin": margin, "restart": restart, "blind": blind,
            "predicted": predicted, "ckpt": ckpt}


def test_restart_vs_checkpoint_regime_map(benchmark, rng):
    data = benchmark.pedantic(lambda: _regime_map(rng), rounds=1, iterations=1)
    restart, blind, predicted = data["restart"], data["blind"], data["predicted"]

    # MC anchor for the restart DP at a mid-map rate.
    lam0 = 0.01
    mc = SimulationSummary.from_samples(
        simulate_restart_with_failures(
            MAP_R, data["ckpt"], data["margin"], lam0, 100_000, rng,
            recovery=MAP_RECOVERY,
        )
    )

    # The map: winner per cell ('restart' or 'ckpt'), '+P' marking cells
    # the predictor flips from restart to dynamic checkpointing.
    lines = [
        "  regime map (rows: Weibull shape k, cols: strike rate lam);",
        "  winner of restart-vs-dynamic-checkpoint, +P = predictor flips it",
        "  " + " ".join(f"{'lam=' + format(lam, 'g'):>12}" for lam in MAP_RATES),
    ]
    for k in MAP_SHAPES:
        cells = []
        for lam in MAP_RATES:
            blind_wins = blind[lam, k] > restart[lam]
            pred_wins = predicted[lam, k] > restart[lam]
            cell = "ckpt" if blind_wins else ("ckpt+P" if pred_wins else "restart")
            cells.append(f"{cell:>12}")
        lines.append(f"  k={k:<4} " + " ".join(cells))
    lines.append("")
    lines.append(f"  {'lam':>6} {'restart':>9} " + " ".join(
        f"{'k=' + format(k, 'g') + ' blind':>12} {'k=' + format(k, 'g') + ' pred':>12}"
        for k in MAP_SHAPES
    ))
    for lam in MAP_RATES:
        lines.append(
            f"  {lam:>6.3f} {restart[lam]:>9.2f} " + " ".join(
                f"{blind[lam, k]:>12.2f} {predicted[lam, k]:>12.2f}"
                for k in MAP_SHAPES
            )
        )

    rates = np.array(MAP_RATES)
    series = [Series(rates, np.array([restart[lam] for lam in MAP_RATES]), "restart")]
    for k in MAP_SHAPES:
        series.append(Series(
            rates, np.array([blind[lam, k] for lam in MAP_RATES]), f"dyn k={k:g}"
        ))
        series.append(Series(
            rates, np.array([predicted[lam, k] for lam in MAP_RATES]), f"dyn+P k={k:g}"
        ))

    # Regime structure (each asserted with generous slack over MC noise):
    # restart owns the rare-strike corner, dynamic owns the frequent-
    # strike half, and a predictor only ever moves the frontier toward
    # restart's corner.
    restart_corner = all(restart[MAP_RATES[0]] > blind[MAP_RATES[0], k] for k in MAP_SHAPES)
    dynamic_half = all(
        blind[lam, k] > restart[lam] for lam in MAP_RATES[2:] for k in MAP_SHAPES
    )
    frontier = all(
        (not blind[MAP_RATES[0], k] > restart[MAP_RATES[0]])
        and blind[MAP_RATES[-1], k] > restart[MAP_RATES[-1]]
        for k in MAP_SHAPES
    )
    predictor_safe = all(
        predicted[lam, k] >= blind[lam, k] - 1.5
        for lam in MAP_RATES for k in MAP_SHAPES
    )
    gains = [predicted[lam0, k] - blind[lam0, k] for k in MAP_SHAPES]
    gain_monotone = all(g2 >= g1 - 0.5 for g1, g2 in zip(gains, gains[1:]))
    flips = sum(
        1 for lam in MAP_RATES for k in MAP_SHAPES
        if predicted[lam, k] > restart[lam] >= blind[lam, k]
    )
    report(
        "failures_regime",
        "Restart-vs-checkpoint regime map (strikes x tail weight x prediction)",
        [
            AnchorRow("restart DP vs MC (lam=0.01)", restart[lam0], mc.mean, 5 * mc.sem),
            AnchorRow("restart owns the rare-strike corner", 1.0, float(restart_corner), 0.0),
            AnchorRow("dynamic owns lam >= 0.03", 1.0, float(dynamic_half), 0.0),
            AnchorRow("every shape row crosses a frontier", 1.0, float(frontier), 0.0),
            AnchorRow("predictor never hurts (within noise)", 1.0, float(predictor_safe), 0.0),
            AnchorRow("prediction gain grows with lighter tails", 1.0, float(gain_monotone), 0.0),
            AnchorRow("predictor flips at least one cell", 1.0, float(flips >= 1), 0.0),
        ],
        series=series,
        extra_lines=lines + [
            "  -> with strikes rare within a reservation, re-running from",
            "     scratch beats paying intermediate checkpoints; once a strike",
            "     is likely (lam*R >~ 2) the frontier flips and the dynamic",
            "     rule dominates. A decent predictor moves the frontier toward",
            "     the restart corner, and its gain grows as the task law's",
            "     tail lightens (long tasks are what proactive checkpoints",
            "     protect)."
        ],
    )
