"""Extension bench: fail-stop errors within the reservation.

The paper's closing future-work item. Exponential failures of rate
``lam`` strike during a long reservation (R=300, checkpoint ~ truncN(5,
0.4)). Compared strategies:

* final-only (the paper's single end-of-reservation checkpoint);
* periodic checkpoints at Young's period, at Daly's period, and at
  deliberately mistuned periods (T/4 and 4T).

Expected shape (asserted): final-only collapses exponentially in
``lam R`` (analytic formula cross-checked by MC); periodic
checkpointing degrades gracefully and dominates final-only at every
tested rate on this long reservation (final-only only approaches parity
as ``lam -> 0``, where Young's period exceeds R and periodic degenerates
to a single final checkpoint); Young/Daly periods dominate the mistuned
ones.
"""

import numpy as np
from _common import AnchorRow, report

from repro.analysis import Series
from repro.core import daly_period, final_only_expected_work, young_period
from repro.distributions import Normal, truncate
from repro.simulation import (
    SimulationSummary,
    simulate_final_only_with_failures,
    simulate_periodic_with_failures,
)

R = 300.0
MARGIN = 6.0
RECOVERY = 2.0
RATES = [1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 2e-2]
N = 40_000


def _sweep(rng) -> dict[str, list[float]]:
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    out: dict[str, list[float]] = {
        "final-only": [], "young": [], "daly": [], "quarterT": [], "fourT": [],
    }
    for lam in RATES:
        out["final-only"].append(
            simulate_final_only_with_failures(R, ckpt, MARGIN, lam, N, rng).mean()
        )
        T_y = young_period(5.0, lam)
        T_d = daly_period(5.0, lam)
        for key, T in (("young", T_y), ("daly", T_d), ("quarterT", T_y / 4), ("fourT", 4 * T_y)):
            out[key].append(
                simulate_periodic_with_failures(R, ckpt, T, lam, N, rng, recovery=RECOVERY).mean()
            )
    return out


def test_failure_sweep(benchmark, rng):
    data = benchmark.pedantic(lambda: _sweep(rng), rounds=1, iterations=1)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    # Analytic cross-check of final-only at one rate.
    lam0 = 1e-3
    analytic = final_only_expected_work(R, ckpt, MARGIN, lam0)
    mc = SimulationSummary.from_samples(
        simulate_final_only_with_failures(R, ckpt, MARGIN, lam0, 300_000, rng)
    )
    rates = np.array(RATES)
    series = [
        Series(rates, np.array(vals), name) for name, vals in data.items()
    ]
    lines = [f"  {'lam':>8} {'final-only':>11} {'young':>9} {'daly':>9} {'T/4':>9} {'4T':>9}"]
    for i, lam in enumerate(RATES):
        lines.append(
            f"  {lam:>8.4f} {data['final-only'][i]:>11.2f} {data['young'][i]:>9.2f} "
            f"{data['daly'][i]:>9.2f} {data['quarterT'][i]:>9.2f} {data['fourT'][i]:>9.2f}"
        )
    # Shape assertions.
    collapse = data["final-only"][-1] < 0.05 * data["final-only"][0]
    graceful = data["young"][-1] > 0.4 * data["young"][0]
    tuned_vs_quarter = data["young"][3] >= data["quarterT"][3] - 1.0
    tuned_vs_four = data["young"][3] >= data["fourT"][3] - 1.0
    # Final-only approaches (but never beats) periodic as lam -> 0: its
    # fixed margin wastes slightly more than one checkpoint's worth.
    parity_at_rare = data["final-only"][0] >= 0.96 * data["young"][0]
    dominance = all(y >= f - 1.0 for y, f in zip(data["young"], data["final-only"]))
    report(
        "failures",
        "Fail-stop errors inside the reservation (future-work extension)",
        [
            AnchorRow("final-only MC vs analytic (lam=1e-3)", analytic, mc.mean, 4 * mc.sem),
            AnchorRow("final-only collapses at high lam", 1.0, float(collapse), 0.0),
            AnchorRow("Young-period degrades gracefully", 1.0, float(graceful), 0.0),
            AnchorRow("Young beats T/4 at lam=5e-3", 1.0, float(tuned_vs_quarter), 0.0),
            AnchorRow("Young beats 4T at lam=5e-3", 1.0, float(tuned_vs_four), 0.0),
            AnchorRow("final-only near-parity as lam -> 0", 1.0, float(parity_at_rare), 0.0),
            AnchorRow("periodic dominates final-only throughout", 1.0, float(dominance), 0.0),
        ],
        series=series,
        extra_lines=lines + [
            "  -> the paper's failure-free model is the lam*R << 1 limit: there",
            "     final-only is within a few percent of periodic. Once failures",
            "     are plausible within one reservation, intermediate checkpoints",
            "     at the Young/Daly period are mandatory - final-only collapses.",
        ],
    )
