"""Figure 8: dynamic strategy, truncated Normal tasks (Section 4.3.1).

Tasks ~ N(3, 0.5^2) truncated to [0, inf), checkpoint ~ N(5, 0.4^2)
truncated to [0, inf), R=29. Paper anchor: the E(W_C) and E(W_+1)
curves intersect at W_int ~= 20.3; checkpointing wins above, continuing
below. The bench regenerates both curves and Monte-Carlo-validates the
threshold policy's value.
"""

from _common import AnchorRow, report

from repro.analysis import dynamic_decision_curves
from repro.core import DynamicStrategy, OptimalStoppingSolver
from repro.distributions import Normal, truncate
from repro.simulation import SimulationSummary, simulate_threshold


def _strategy() -> DynamicStrategy:
    return DynamicStrategy(
        29.0, truncate(Normal(3.0, 0.5), 0.0), truncate(Normal(5.0, 0.4), 0.0)
    )


def test_fig08_dynamic_truncated_normal(benchmark, rng):
    strat = _strategy()
    w_int = benchmark(lambda: DynamicStrategy(
        29.0, strat.task_law, strat.checkpoint_law
    ).crossing_point())
    ckpt_curve, cont_curve = dynamic_decision_curves(strat, points=121)
    policy_value = OptimalStoppingSolver(
        29.0, strat.task_law, strat.checkpoint_law
    ).threshold_policy_value(w_int)
    mc = SimulationSummary.from_samples(
        simulate_threshold(29.0, strat.task_law, strat.checkpoint_law, w_int, 200_000, rng)
    )
    report(
        "fig08",
        "Dynamic strategy, truncated Normal tasks (paper Fig. 8)",
        [
            AnchorRow("W_int (curve crossing)", 20.3, w_int, 0.1),
            AnchorRow("rule: continue below W_int", 0.0, float(strat.should_checkpoint(w_int - 1.0)), 0.5),
            AnchorRow("rule: checkpoint above W_int", 1.0, float(strat.should_checkpoint(w_int + 1.0)), 0.5),
            AnchorRow("MC value of threshold policy", policy_value, mc.mean, 4 * mc.sem),
        ],
        series=[ckpt_curve, cont_curve],
        markers={"W_int": w_int},
        extra_lines=[f"  expected saved work under the rule: {policy_value:.3f}"],
    )
