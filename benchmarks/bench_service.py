"""Service-layer benchmark: cold vs warm advice latency, batch throughput.

The advisor's contract is that compiling a policy once (quadrature +
root-finding) turns every later query into an O(1) threshold lookup.
This bench quantifies the contract on the paper's Figure 9 instance:

* cold `advise` (fresh cache, includes compilation) vs warm `advise`
  (cached policy) — asserted >= 10x apart (it is orders of magnitude);
* `advise_batch` throughput on large query batches;
* elementwise agreement of the batched decisions with per-query
  `DynamicStrategy.should_checkpoint` on a 1000-point work grid.
"""

from __future__ import annotations

import time

import numpy as np
from _common import AnchorRow, report

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.service import Advisor, PolicyCache

R = 10.0
TASK = "gamma:1,0.5"
CKPT = "normal:2,0.4@[0,inf]"
WARM_QUERIES = 200
BATCH_SIZE = 100_000


def _cold_advise_seconds() -> float:
    advisor = Advisor(PolicyCache())  # nothing compiled yet
    t0 = time.perf_counter()
    advisor.advise(R, TASK, CKPT, work=7.0)
    return time.perf_counter() - t0


def _warm_advise_seconds(advisor: Advisor) -> float:
    t0 = time.perf_counter()
    for _ in range(WARM_QUERIES):
        advisor.advise(R, TASK, CKPT, work=7.0)
    return (time.perf_counter() - t0) / WARM_QUERIES


def test_cold_vs_warm_latency(benchmark):
    cold = _cold_advise_seconds()
    advisor = Advisor(PolicyCache())
    advisor.warm(R, TASK, CKPT)
    warm = benchmark.pedantic(_warm_advise_seconds, args=(advisor,), rounds=1, iterations=1)
    speedup = cold / warm
    rows = [
        AnchorRow("warm advise >= 10x faster than cold", 1.0, float(speedup >= 10.0), 0.0),
    ]
    report(
        "service_latency",
        "Cached checkpoint advice: cold compile vs warm lookup",
        rows,
        extra_lines=[
            f"  cold advise (compile + query)   {cold * 1e3:>10.2f} ms",
            f"  warm advise (cached policy)     {warm * 1e6:>10.2f} us",
            f"  speedup                         {speedup:>10.0f} x",
            f"  cache stats                     {advisor.cache.stats()}",
        ],
    )


def test_batch_throughput(benchmark):
    advisor = Advisor(PolicyCache())
    advisor.warm(R, TASK, CKPT)
    work = np.random.default_rng(0xBE7C4).uniform(0.0, R, BATCH_SIZE)

    def run() -> float:
        t0 = time.perf_counter()
        decisions = advisor.decide_batch(R, TASK, CKPT, work)
        elapsed = time.perf_counter() - t0
        assert decisions.shape == work.shape
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    qps = BATCH_SIZE / elapsed
    rows = [
        AnchorRow("batched throughput above 1M q/s", 1.0, float(qps >= 1e6), 0.0),
    ]
    report(
        "service_throughput",
        "Vectorized advise_batch throughput (warm cache)",
        rows,
        extra_lines=[
            f"  batch size                      {BATCH_SIZE}",
            f"  elapsed                         {elapsed * 1e3:>10.2f} ms",
            f"  throughput                      {qps / 1e6:>10.2f} M queries/s",
        ],
    )


def test_saturation_delta_table_vs_exact(benchmark):
    """Saturated warm-path delta between the two advisor kernels.

    Both advisors hold a fully-warmed cache; the only difference is the
    decision kernel, so the gap is pure per-query cost: one vectorized
    boundary search vs one adaptive quadrature per query.
    """
    queries = np.random.default_rng(0x5A7).uniform(0.0, R, 1_000)
    table_advisor = Advisor(PolicyCache(), kernel="table")
    exact_advisor = Advisor(PolicyCache(kernel="exact"), kernel="exact")
    table_advisor.warm(R, TASK, CKPT)
    exact_advisor.warm(R, TASK, CKPT)
    table_advisor.advise_batch(R, TASK, CKPT, queries[:8])
    exact_advisor.advise_batch(R, TASK, CKPT, queries[:8])

    t0 = time.perf_counter()
    exact_advisor.advise_batch(R, TASK, CKPT, queries)
    exact_s = time.perf_counter() - t0

    def run() -> float:
        t0 = time.perf_counter()
        table_advisor.advise_batch(R, TASK, CKPT, queries)
        return time.perf_counter() - t0

    table_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = exact_s / table_s
    rows = [
        AnchorRow("saturated speedup >= 10x", 1.0, float(speedup >= 10.0), 0.0),
    ]
    report(
        "service_saturation",
        "Saturated advise_batch: table kernel vs exact scalar kernel",
        rows,
        extra_lines=[
            f"  queries                         {queries.size}",
            f"  exact kernel                    {exact_s * 1e3:>10.1f} ms",
            f"  table kernel                    {table_s * 1e3:>10.2f} ms",
            f"  saturation delta                {(exact_s - table_s) * 1e3:>10.1f} ms",
            f"  speedup                         {speedup:>10.0f} x",
        ],
    )


def test_batch_agrees_with_dynamic_strategy(benchmark):
    """1000-point elementwise agreement with the exact per-query rule."""
    advisor = Advisor(PolicyCache())
    grid = np.linspace(0.0, R, 1000)

    def batched() -> list[bool]:
        return [a.checkpoint for a in advisor.advise_batch(R, TASK, CKPT, grid)]

    got = benchmark.pedantic(batched, rounds=1, iterations=1)
    dyn = DynamicStrategy(R, parse_law(TASK), parse_law(CKPT))
    expected = [dyn.should_checkpoint(float(w)) for w in grid]
    mismatches = int(np.sum(np.asarray(got) != np.asarray(expected)))
    rows = [
        AnchorRow("elementwise mismatches on 1000-pt grid", 0.0, float(mismatches), 0.0),
    ]
    report(
        "service_agreement",
        "advise_batch vs per-query DynamicStrategy.should_checkpoint",
        rows,
        extra_lines=[
            f"  grid points                     {grid.size}",
            f"  threshold W_int                 {dyn.crossing_point():.6g}",
            f"  mismatches                      {mismatches}",
        ],
    )
