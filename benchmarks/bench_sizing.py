"""Extension bench: choosing the reservation length R.

The paper takes R as an input "depending upon many parameters provided
both by the user ... and the resource provider". This bench closes the
loop: under a batch-queue wait model (longer reservations wait
superlinearly longer — the paper's stated reason jobs are split), it
sweeps candidate R values and finds the makespan-optimal one, then
validates the renewal-model prediction with full campaign simulations.

Expected shape (asserted): the makespan curve is U-shaped (interior
optimum); the renewal model's reservations-needed prediction matches
simulated campaigns within a few percent; under by-reservation billing
the cheapest R is the utilization-maximizing one.
"""

from _common import AnchorRow, report

from repro.analysis import QueueModel, optimize_reservation_length
from repro.core import DynamicPolicy
from repro.distributions import Normal, truncate
from repro.simulation import run_campaign

TOTAL_WORK = 1000.0
RECOVERY = 1.5
CANDIDATES = [12.0, 20.0, 29.0, 45.0, 80.0, 150.0, 300.0]


def test_reservation_sizing(benchmark, rng):
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    queue = QueueModel(base=30.0, coefficient=0.5, exponent=1.6)
    best, points = benchmark.pedantic(
        lambda: optimize_reservation_length(
            CANDIDATES, TOTAL_WORK, tasks, ckpt, queue=queue, recovery=RECOVERY
        ),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"  {'R':>7} {'E[work]/resv':>13} {'#resv':>8} {'makespan':>10} {'util%':>7}"
    ]
    for p in points:
        lines.append(
            f"  {p.R:>7.1f} {p.expected_work_per_reservation:>13.2f} "
            f"{p.expected_reservations:>8.1f} {p.expected_makespan:>10.0f} "
            f"{100 * p.expected_work_per_reservation / p.R:>7.1f}"
        )
    # U-shape: endpoints worse than the winner.
    u_shaped = (
        points[0].expected_makespan > best.expected_makespan
        and points[-1].expected_makespan > best.expected_makespan
        and best.R not in (CANDIDATES[0], CANDIDATES[-1])
    )
    # Validate the renewal prediction at the winner by simulation. The
    # renewal progress uses the optimal-stopping value; the dynamic
    # policy realizes slightly less, so allow 10%.
    sim = run_campaign(
        TOTAL_WORK, best.R, tasks, ckpt, DynamicPolicy(tasks, ckpt), rng,
        recovery=RECOVERY, max_reservations=5000,
    )
    rel_err = abs(sim.reservations_used - best.expected_reservations) / best.expected_reservations
    report(
        "sizing",
        "Choosing R under a batch-queue wait model",
        [
            AnchorRow("makespan curve is U-shaped", 1.0, float(u_shaped), 0.0),
            AnchorRow(
                f"simulated #reservations at R={best.R:g} within 10% of renewal model",
                0.0,
                max(rel_err - 0.10, 0.0),
                1e-9,
            ),
        ],
        extra_lines=lines + [
            f"  winner: R = {best.R:g} "
            f"(~{best.expected_reservations:.0f} reservations, "
            f"makespan ~{best.expected_makespan:.0f}s)",
            f"  simulated campaign used {sim.reservations_used} reservations "
            f"(renewal model predicted {best.expected_reservations:.1f})",
        ],
    )
