"""Ablation: static vs dynamic strategy as task variability grows.

The paper's conclusion asserts "the dynamic strategy is to be preferred
whenever its use is possible" and Section 4.3 motivates it by the risk
of the static count checkpointing "much too early or much too late"
when D_X has a large standard deviation.

This bench quantifies that claim: sweeping the task-duration CV
(Gamma tasks with fixed mean, growing variance), it Monte-Carlo
evaluates the static-optimal, dynamic and oracle policies. Expected
shape (asserted): at small CV static ~ dynamic; the dynamic advantage
grows with CV.
"""

import numpy as np
from _common import AnchorRow, report

from repro.analysis import Series, sweep
from repro.core import DynamicStrategy, StaticStrategy
from repro.distributions import Gamma, Normal, truncate
from repro.simulation import simulate_fixed_count, simulate_oracle, simulate_threshold

R = 29.0
MEAN_TASK = 3.0
N_TRIALS = 120_000
CVS = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


def _evaluate(cv: float, rng: np.random.Generator) -> dict[str, float]:
    tasks = Gamma.from_moments(MEAN_TASK, cv * MEAN_TASK)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    n_opt = StaticStrategy(R, tasks, ckpt).solve().n_opt
    w_int = DynamicStrategy(R, tasks, ckpt).crossing_point()
    static = simulate_fixed_count(R, tasks, ckpt, n_opt, N_TRIALS, rng).mean()
    dynamic = simulate_threshold(R, tasks, ckpt, w_int, N_TRIALS, rng).mean()
    oracle = simulate_oracle(R, tasks, ckpt, N_TRIALS, rng).mean()
    return {"static": static, "dynamic": dynamic, "oracle": oracle}


def test_static_vs_dynamic_cv_sweep(benchmark, rng):
    result = benchmark.pedantic(
        lambda: sweep("task CV", CVS, lambda cv: _evaluate(cv, rng)),
        rounds=1,
        iterations=1,
    )
    static = result.series["static"]
    dynamic = result.series["dynamic"]
    advantage = Series(static.x, dynamic.y / static.y, "dynamic/static")
    low_cv_ratio = float(advantage.y[0])
    high_cv_ratio = float(advantage.y[-1])
    report(
        "static_vs_dynamic",
        "Dynamic vs static saved work as task-duration CV grows",
        [
            AnchorRow("dynamic ~ static at CV=0.05", 1.0, low_cv_ratio, 0.02),
            AnchorRow("dynamic beats static at CV=1.0 (ratio > 1.05)", 1.0, min(high_cv_ratio, 1.0), 1e-9),
            AnchorRow("advantage grows with CV", 1.0, float(high_cv_ratio > low_cv_ratio), 0.0),
        ],
        series=[static, dynamic, result.series["oracle"]],
        extra_lines=[
            "",
            result.table(),
            "",
            f"  dynamic/static ratio: {low_cv_ratio:.4f} (CV=0.05) -> {high_cv_ratio:.4f} (CV=1.0)",
            "  -> confirms the paper's conclusion: dynamic is preferred, and its",
            "     edge widens exactly where the paper predicts (large sigma).",
        ],
    )
