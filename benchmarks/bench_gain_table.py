"""Ablation: gain of the optimal margin over the pessimistic baseline.

The paper's conclusion highlights "the gain that can be achieved over
the pessimistic (but risk-free) approach" across "a variety of
well-known probability distribution laws". This bench produces that
table: for each D_C family and each (b, R) in a grid (a = 1 fixed), the
ratio E(W(X_opt)) / E(W(b)).

Expected shape (asserted): gains are always >= 1; they grow as the
support widens (more uncertainty to exploit) and shrink as R grows
relative to b (the pessimistic loss R-b dominates both strategies).
"""

from _common import AnchorRow, report

from repro.analysis import preemptible_gain_grid
from repro.distributions import Exponential, LogNormal, Normal, Uniform, truncate

FAMILIES = {
    "uniform": lambda a, b: Uniform(a, b),
    "trunc-exponential": lambda a, b: truncate(Exponential(2.0 / (a + b)), a, b),
    "trunc-normal": lambda a, b: truncate(Normal(0.5 * (a + b), 0.25 * (b - a)), a, b),
    "trunc-lognormal": lambda a, b: truncate(
        LogNormal.from_moments(0.5 * (a + b), 0.3 * (a + b)), a, b
    ),
}

R_VALUES = [8.0, 12.0, 20.0, 40.0]
B_VALUES = [3.0, 5.0, 7.5]


def _full_table() -> dict[str, list]:
    return {
        name: preemptible_gain_grid(builder, R_VALUES, B_VALUES, a=1.0)
        for name, builder in FAMILIES.items()
    }


def test_gain_table(benchmark):
    tables = benchmark(_full_table)
    lines = [
        f"  {'family':<18} {'R':>6} {'b':>5} {'X_opt':>8} {'E(W*)':>8} {'E(W(b))':>8} {'gain':>7}"
    ]
    all_gains = []
    for name, points in tables.items():
        for p in points:
            lines.append(
                f"  {name:<18} {p.R:>6.1f} {p.b:>5.1f} {p.x_opt:>8.3f} "
                f"{p.expected_work_opt:>8.3f} {p.pessimistic_work:>8.3f} {p.gain:>7.3f}"
            )
            all_gains.append(p.gain)
    # Shape assertions.
    min_gain = min(all_gains)
    uni = {(p.R, p.b): p.gain for p in tables["uniform"]}
    # Wider support at fixed R: more to gain.
    widening = uni[(12.0, 7.5)] >= uni[(12.0, 5.0)] >= uni[(12.0, 3.0)] - 1e-9
    # Larger R at fixed b: gain shrinks toward 1.
    shrinking = uni[(8.0, 5.0)] >= uni[(20.0, 5.0)] >= uni[(40.0, 5.0)] - 1e-9
    report(
        "gain_table",
        "Optimal vs pessimistic margin: gain table (all D_C families)",
        [
            AnchorRow("min gain across grid >= 1", 1.0, min(min_gain, 1.0), 1e-9),
            AnchorRow("gain grows with support width", 1.0, float(widening), 0.0),
            AnchorRow("gain shrinks with reservation slack", 1.0, float(shrinking), 0.0),
        ],
        extra_lines=lines,
    )
