"""Observability overhead benchmark: tracing must be ~free when off.

The acceptance bar for the tracing layer is that a *disabled* tracer
leaves the advisor's warm path within 5% of the untraced baseline —
the per-request cost is one attribute check returning the shared
``NULL_SPAN``. An *enabled* tracer pays for real span objects, a lock
and two clock reads; this bench quantifies both against the same warm
FIG9 policy.

Min-of-runs timing is used (not mean): the minimum over several
generous runs is the standard low-variance estimator for a sub-µs
operation under scheduler noise.
"""

from __future__ import annotations

import time

import numpy as np
from _common import AnchorRow, report

from repro.obs import Tracer
from repro.service import Advisor, PolicyCache

R = 10.0
TASK = "gamma:1,0.5"
CKPT = "normal:2,0.4@[0,inf]"
BATCH = np.linspace(0.0, R, 64)
RUNS = 7
ITERATIONS = 2_000


def _warm_advisor(tracer: Tracer | None) -> Advisor:
    advisor = Advisor(PolicyCache(curve_points=17, tracer=tracer), tracer=tracer)
    advisor.warm(R, TASK, CKPT)
    return advisor


def _batch_seconds(advisor: Advisor) -> float:
    """Min-of-runs per-call time of the warm advise_batch path."""
    best = float("inf")
    for _ in range(RUNS):
        t0 = time.perf_counter()
        for _ in range(ITERATIONS):
            advisor.decide_batch(R, TASK, CKPT, BATCH)
        best = min(best, (time.perf_counter() - t0) / ITERATIONS)
    return best


def _span_seconds(tracer: Tracer) -> float:
    best = float("inf")
    for _ in range(RUNS):
        t0 = time.perf_counter()
        for _ in range(ITERATIONS):
            with tracer.span("bench"):
                pass
        best = min(best, (time.perf_counter() - t0) / ITERATIONS)
    return best


def test_disabled_tracer_overhead(benchmark):
    baseline = _warm_advisor(tracer=None)
    disabled = _warm_advisor(tracer=Tracer(enabled=False))

    base_s = _batch_seconds(baseline)
    disabled_s = benchmark.pedantic(
        _batch_seconds, args=(disabled,), rounds=1, iterations=1
    )
    ratio = disabled_s / base_s
    rows = [
        # ratio 1.0 +- 5%: the acceptance criterion for the PR
        AnchorRow("disabled-tracer warm-path ratio", 1.0, ratio, 0.05),
    ]
    report(
        "obs_disabled_overhead",
        "Warm decide_batch: untraced vs disabled tracer",
        rows,
        extra_lines=[
            f"  untraced per call               {base_s * 1e6:>10.2f} us",
            f"  disabled tracer per call        {disabled_s * 1e6:>10.2f} us",
            f"  ratio                           {ratio:>10.3f}",
        ],
    )


def test_enabled_tracer_span_cost(benchmark):
    disabled = Tracer(enabled=False)
    enabled = Tracer(capacity=1024)

    null_s = _span_seconds(disabled)
    real_s = benchmark.pedantic(_span_seconds, args=(enabled,), rounds=1, iterations=1)
    rows = [
        # a real span should stay well under 100 us on any machine
        AnchorRow("enabled span cost under 100 us", 1.0, float(real_s < 100e-6), 0.0),
    ]
    report(
        "obs_span_cost",
        "Span open/close cost: NULL_SPAN vs recording span",
        rows,
        extra_lines=[
            f"  disabled (NULL_SPAN) per span   {null_s * 1e9:>10.1f} ns",
            f"  enabled span per span           {real_s * 1e6:>10.3f} us",
            f"  ring stats                      {enabled.stats()}",
        ],
    )
