"""Figure 1: E(W(X)) for a Uniform checkpoint law — both cases.

Panel (a): a=1, b=7.5, R=10 — interior optimum X_opt = (R+a)/2 = 5.5,
E(W) ~ 3.1; the pessimistic margin saves 2.5 (80% of optimal).
Panel (b): a=1, b=5, R=10 — the worst-case margin is optimal (X_opt=b).
"""

from _common import AnchorRow, report

from repro.analysis import expected_work_curve
from repro.core import solve
from repro.core.preemptible import expected_work
from repro.distributions import Uniform


def test_fig01a_interior_optimum(benchmark):
    law = Uniform(1.0, 7.5)
    sol = benchmark(solve, 10.0, law)
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) a=1 b=7.5 R=10")
    report(
        "fig01a",
        "Uniform law, interior optimum (paper Fig. 1a)",
        [
            AnchorRow("X_opt = (R+a)/2", 5.5, sol.x_opt, 1e-9),
            AnchorRow("E(W(X_opt))", 3.1, sol.expected_work_opt, 0.05),
            AnchorRow("pessimistic E(W(b)) = R-b", 2.5, sol.pessimistic_work, 1e-9),
            AnchorRow(
                "pessimistic / optimal",
                0.80,
                sol.pessimistic_work / sol.expected_work_opt,
                0.01,
            ),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt, "b": 7.5},
    )


def test_fig01b_boundary_optimum(benchmark):
    law = Uniform(1.0, 5.0)
    sol = benchmark(solve, 10.0, law)
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) a=1 b=5 R=10")
    report(
        "fig01b",
        "Uniform law, optimum at b (paper Fig. 1b)",
        [
            AnchorRow("X_opt = b", 5.0, sol.x_opt, 1e-9),
            AnchorRow("E(W(b)) = R-b", 5.0, sol.expected_work_opt, 1e-9),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt},
        extra_lines=[
            f"  at_worst_case: {sol.at_worst_case} "
            "(pessimistic strategy IS optimal here, as the paper notes)"
        ],
    )


def test_fig01_curve_shape():
    """Linear decrease from X=b to X=R (paper text)."""
    import numpy as np

    law = Uniform(1.0, 7.5)
    xs = np.linspace(7.5, 10.0, 11)
    vals = expected_work(10.0, law, xs)
    np.testing.assert_allclose(vals, 10.0 - xs, rtol=1e-12)
