"""Durable checkpoint store throughput: write, recover, fallback.

The runtime's write path pays for durability twice per generation —
an fsync of the payload and one of the manifest — so the questions
this bench answers are (a) what one durable generation costs end to
end versus the in-memory store's pure-serialization floor, and (b)
that recovery stays cheap even when it has to quarantine corrupt
generations and fall back.

Min-of-runs timing, as in ``bench_obs.py``: the minimum over several
runs is the standard low-variance estimator under scheduler noise.
"""

from __future__ import annotations

import time

from _common import AnchorRow, report

from repro.runtime import (
    DurableCheckpointStore,
    FaultInjector,
    InMemoryCheckpointStore,
)
from repro.workflows import JacobiSolver, manufactured_rhs, poisson_2d

SIZE = 32  # 1024 unknowns, ~16 KiB payload
RUNS = 5
WRITES = 200


def _app():
    A = poisson_2d(SIZE)
    b, _ = manufactured_rhs(A, rng=0)
    app = JacobiSolver(A, b)
    app.iterate()
    return app


def _write_seconds(make_store) -> float:
    """Min-of-runs per-write cost over WRITES generations."""
    app = _app()
    best = float("inf")
    for _ in range(RUNS):
        store = make_store()
        t0 = time.perf_counter()
        for _ in range(WRITES):
            store.write(app)
        best = min(best, (time.perf_counter() - t0) / WRITES)
    return best


def test_durable_write_throughput(benchmark, tmp_path):
    counter = [0]

    def durable():
        counter[0] += 1
        return DurableCheckpointStore(str(tmp_path / f"d{counter[0]}"), keep=3)

    memory_s = _write_seconds(lambda: InMemoryCheckpointStore(keep=3))
    durable_s = benchmark.pedantic(
        _write_seconds, args=(durable,), rounds=1, iterations=1
    )
    app = _app()
    payload_kib = app.state_size_bytes / 1024.0
    rows = [
        # Atomic-protocol overhead must stay bounded: a durable write
        # (2 fsyncs + rename + manifest) under 50 ms even on slow CI disks.
        AnchorRow("durable write under 50 ms", 1.0, float(durable_s < 50e-3), 0.0),
    ]
    report(
        "runtime_write_throughput",
        f"Checkpoint write cost, {payload_kib:.1f} KiB payload",
        rows,
        extra_lines=[
            f"  in-memory write (serialize floor) {memory_s * 1e6:>10.1f} us",
            f"  durable write (atomic + manifest) {durable_s * 1e6:>10.1f} us",
            f"  durability overhead               {durable_s / memory_s:>10.1f} x",
            f"  implied throughput                {payload_kib / 1024 / durable_s:>10.2f} MiB/s",
        ],
    )


def test_recover_and_fallback_cost(benchmark, tmp_path):
    app = _app()

    def _recover_seconds(with_fallback: bool) -> float:
        best = float("inf")
        for run in range(RUNS):
            path = str(tmp_path / f"r{int(with_fallback)}{run}")
            store = DurableCheckpointStore(path, keep=3)
            for _ in range(3):
                store.write(app)
            if with_fallback:
                FaultInjector(seed=run).flip_bits(store)
            t0 = time.perf_counter()
            store.recover(app)
            best = min(best, time.perf_counter() - t0)
        return best

    clean_s = _recover_seconds(False)
    fallback_s = benchmark.pedantic(
        _recover_seconds, args=(True,), rounds=1, iterations=1
    )
    rows = [
        # Fallback = one wasted decode + quarantine rename on top of a
        # clean recovery; it must stay the same order of magnitude.
        AnchorRow("fallback recovery under 50 ms", 1.0, float(fallback_s < 50e-3), 0.0),
    ]
    report(
        "runtime_recover_cost",
        "Recovery cost: newest-valid vs quarantine-then-fallback",
        rows,
        extra_lines=[
            f"  recover newest generation         {clean_s * 1e6:>10.1f} us",
            f"  recover with 1 corrupt fallback   {fallback_s * 1e6:>10.1f} us",
        ],
    )
