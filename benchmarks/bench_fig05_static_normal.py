"""Figure 5: static strategy, Normal task law (Section 4.2.1).

mu=3, sigma=0.5, checkpoint ~ N(5, 0.4^2) truncated to [0, inf), R=30.
Paper anchors: y_opt ~= 7.4, f(7) ~= 20.9, f(8) ~= 17.6, n_opt = 7.
The bench regenerates the full relaxation curve f(y) and additionally
cross-validates E(7) by Monte Carlo.
"""

from _common import AnchorRow, report

from repro.analysis import static_relaxation_curve
from repro.core import StaticStrategy
from repro.distributions import Normal, truncate
from repro.simulation import SimulationSummary, simulate_fixed_count


def _strategy() -> StaticStrategy:
    return StaticStrategy(30.0, Normal(3.0, 0.5), truncate(Normal(5.0, 0.4), 0.0))


def test_fig05_static_normal(benchmark, rng):
    strat = _strategy()
    sol = benchmark(strat.solve)
    curve = static_relaxation_curve(strat, y_max=12.0, points=121, label="f(y), R=30")
    mc = SimulationSummary.from_samples(
        simulate_fixed_count(
            30.0, strat.task_law, strat.checkpoint_law, 7, 200_000, rng
        )
    )
    report(
        "fig05",
        "Static strategy, Normal tasks (paper Fig. 5)",
        [
            AnchorRow("f(7)", 20.9, sol.evaluations[7], 0.1),
            AnchorRow("f(8)", 17.6, sol.evaluations[8], 0.1),
            AnchorRow("y_opt", 7.4, sol.y_opt, 0.1),
            AnchorRow("n_opt", 7, sol.n_opt, 0),
            AnchorRow("Monte-Carlo E(7) (200k trials)", sol.evaluations[7], mc.mean, 4 * mc.sem),
        ],
        series=[curve],
        markers={"y_opt": sol.y_opt},
        extra_lines=[f"  MC check: {mc.summary()}"],
    )
