"""Ablation: simulator-vs-analytics consistency sweep.

Every closed-form or quadrature result in repro.core is re-derived by
the independent Monte-Carlo path and must land inside 4 standard errors.
This is the "simulation campaign" the paper's conclusion calls for,
turned into a regression gate.
"""

from _common import AnchorRow, report

from repro.core import DynamicStrategy, OptimalStoppingSolver, StaticStrategy, solve
from repro.distributions import (
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    truncate,
)
from repro.simulation import (
    SimulationSummary,
    simulate_fixed_count,
    simulate_preemptible,
    simulate_threshold,
)

N = 250_000


def _preemptible_rows(rng) -> list[AnchorRow]:
    rows = []
    for name, law in [
        ("uniform[1,7.5]", Uniform(1.0, 7.5)),
        ("trunc-exp(1/2)[1,5]", truncate(Exponential(0.5), 1.0, 5.0)),
        ("trunc-N(3.5,1)[1,7]", truncate(Normal(3.5, 1.0), 1.0, 7.0)),
        ("trunc-LogN(1,.5)[1,7]", truncate(LogNormal(1.0, 0.5), 1.0, 7.0)),
    ]:
        sol = solve(10.0, law)
        mc = SimulationSummary.from_samples(
            simulate_preemptible(10.0, law, sol.x_opt, N, rng)
        )
        rows.append(
            AnchorRow(f"Eq.(1) {name}", sol.expected_work_opt, mc.mean, 4 * mc.sem)
        )
    return rows


def _static_rows(rng) -> list[AnchorRow]:
    rows = []
    cases = [
        ("normal n=7", 30.0, Normal(3.0, 0.5), truncate(Normal(5.0, 0.4), 0.0), 7),
        ("gamma n=12", 10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0), 12),
        ("poisson n=6", 29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0), 6),
    ]
    for name, R, tasks, ckpt, n in cases:
        analytic = StaticStrategy(R, tasks, ckpt).expected_work(n)
        mc = SimulationSummary.from_samples(
            simulate_fixed_count(R, tasks, ckpt, n, N, rng)
        )
        rows.append(AnchorRow(f"Eq.(3) {name}", analytic, mc.mean, 4 * mc.sem))
    return rows


def _dynamic_rows(rng) -> list[AnchorRow]:
    rows = []
    cases = [
        ("truncN", 29.0, truncate(Normal(3.0, 0.5), 0.0), truncate(Normal(5.0, 0.4), 0.0)),
        ("gamma", 10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0)),
        ("poisson", 29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0)),
    ]
    for name, R, tasks, ckpt in cases:
        w_int = DynamicStrategy(R, tasks, ckpt).crossing_point()
        bellman = OptimalStoppingSolver(R, tasks, ckpt).threshold_policy_value(w_int)
        mc = SimulationSummary.from_samples(
            simulate_threshold(R, tasks, ckpt, w_int, N, rng)
        )
        rows.append(
            AnchorRow(f"dynamic value {name}", bellman, mc.mean, 4 * mc.sem + 0.03)
        )
    return rows


def test_mc_validation(benchmark, rng):
    rows = benchmark.pedantic(
        lambda: _preemptible_rows(rng) + _static_rows(rng) + _dynamic_rows(rng),
        rounds=1,
        iterations=1,
    )
    report(
        "mc_validation",
        "Monte-Carlo vs analytic expectations (250k trials each)",
        rows,
        extra_lines=[
            "  every analytic quantity in repro.core, re-derived by simulation,",
            "  within 4 standard errors (plus lattice tolerance for Bellman rows).",
        ],
    )
