"""Kernel-table benchmark: build cost, lookup throughput, batch speedup,
and the per-family zero-mismatch ledger.

The PR's acceptance bar lives here:

* ``advise_batch`` on the table kernel is >= 10x the exact scalar
  oracle on the same queries (it is orders of magnitude);
* decision lookups stream at millions per second;
* a 1000-point differential grid per law family records **zero**
  decision mismatches against ``DynamicStrategy.should_checkpoint``
  (persisted to ``results/kernels_mismatches.txt``);
* one vectorized table build replaces ~1000 adaptive quadratures, so
  the compile path drops from seconds to sub-second.
"""

from __future__ import annotations

import time

import numpy as np
from _common import AnchorRow, report

from repro.cli import parse_law
from repro.core import DynamicStrategy
from repro.kernels import build_policy_table
from repro.service import Advisor, PolicyCache
from repro.service.cache import compile_policy

R = 10.0
TASK = "gamma:1,0.5"
CKPT = "normal:2,0.4@[0,inf]"

#: (task_law, checkpoint_law, R) rows for the mismatch ledger — one
#: representative per family class (continuous, discrete checkpoint,
#: truncated, composite).
FAMILIES = (
    ("uniform:1,3", "uniform:0.5,1.5", 10.0),
    ("exponential:2", "exponential:1", 8.0),
    ("gamma:1,0.5", "normal:2,0.4@[0,inf]", 10.0),
    ("poisson:3", "gamma:2,0.5", 12.0),
    ("gamma:2,1@[0.5,4]", "normal:1.5,0.3@[0,inf]", 10.0),
)

LOOKUP_BATCH = 1_000_000
ADVISE_BATCH = 2_000


def test_table_build_vs_exact_compile(benchmark):
    """One vectorized tabulation pass vs the scalar compile path."""
    # Warm scipy's quadrature machinery so neither side pays first-call
    # import/JIT costs.
    compile_policy(R, TASK, CKPT, kernel="exact")

    t0 = time.perf_counter()
    exact = compile_policy(R, TASK, CKPT, kernel="exact")
    exact_s = time.perf_counter() - t0

    def build():
        t0 = time.perf_counter()
        compile_policy(R, TASK, CKPT, kernel="table")
        return time.perf_counter() - t0

    table_s = benchmark.pedantic(build, rounds=1, iterations=1)
    table = compile_policy(R, TASK, CKPT, kernel="table")
    assert table.w_int is not None and exact.w_int is not None
    rows = [
        AnchorRow("table compile not slower than exact", 1.0, float(table_s <= exact_s), 0.0),
        AnchorRow("thresholds agree (abs diff)", 0.0, abs(table.w_int - exact.w_int), 1e-8),
    ]
    report(
        "kernels_build",
        "compile_policy: vectorized table kernel vs exact scalar path",
        rows,
        extra_lines=[
            f"  exact compile (129-pt curve)    {exact_s * 1e3:>10.1f} ms",
            f"  table compile (adaptive grid)   {table_s * 1e3:>10.1f} ms",
            f"  compile speedup                 {exact_s / table_s:>10.2f} x",
            f"  table grid points               {0 if table.table is None else table.table.w.size}",
        ],
    )


def test_lookup_throughput(benchmark, rng):
    table = build_policy_table(R, parse_law(TASK), parse_law(CKPT))
    work = rng.uniform(0.0, R, LOOKUP_BATCH)

    def run() -> float:
        t0 = time.perf_counter()
        decisions = table.decide(work)
        elapsed = time.perf_counter() - t0
        assert decisions.shape == work.shape
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=1, iterations=1)
    qps = LOOKUP_BATCH / elapsed
    rows = [
        AnchorRow("decision lookups above 1M/s", 1.0, float(qps >= 1e6), 0.0),
    ]
    report(
        "kernels_lookup",
        "PolicyTable.decide throughput (single boundary search per query)",
        rows,
        extra_lines=[
            f"  batch size                      {LOOKUP_BATCH}",
            f"  elapsed                         {elapsed * 1e3:>10.2f} ms",
            f"  throughput                      {qps / 1e6:>10.2f} M decisions/s",
        ],
    )


def test_advise_batch_speedup_vs_exact(benchmark, rng):
    """The acceptance bar: table-kernel advise_batch >= 10x exact."""
    work = rng.uniform(0.0, R, ADVISE_BATCH)

    table_advisor = Advisor(PolicyCache(), kernel="table")
    exact_advisor = Advisor(PolicyCache(kernel="exact"), kernel="exact")
    table_advisor.warm(R, TASK, CKPT)
    exact_advisor.warm(R, TASK, CKPT)
    # One untimed pass each so lazy oracle construction is excluded.
    exact_advisor.advise_batch(R, TASK, CKPT, work[:8])
    table_advisor.advise_batch(R, TASK, CKPT, work[:8])

    t0 = time.perf_counter()
    exact_advice = exact_advisor.advise_batch(R, TASK, CKPT, work)
    exact_s = time.perf_counter() - t0

    def run() -> float:
        t0 = time.perf_counter()
        advice = table_advisor.advise_batch(R, TASK, CKPT, work)
        elapsed = time.perf_counter() - t0
        assert len(advice) == ADVISE_BATCH
        return elapsed

    table_s = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = exact_s / table_s
    table_advice = table_advisor.advise_batch(R, TASK, CKPT, work)
    disagreements = sum(
        1
        for a, b in zip(table_advice, exact_advice)
        if a.checkpoint != b.checkpoint
    )
    rows = [
        AnchorRow("advise_batch speedup >= 10x", 1.0, float(speedup >= 10.0), 0.0),
        AnchorRow("decision disagreements", 0.0, float(disagreements), 0.0),
    ]
    report(
        "kernels_speedup",
        "advise_batch: table kernel vs exact scalar oracle",
        rows,
        extra_lines=[
            f"  batch size                      {ADVISE_BATCH}",
            f"  exact kernel                    {exact_s * 1e3:>10.1f} ms",
            f"  table kernel                    {table_s * 1e3:>10.2f} ms",
            f"  speedup                         {speedup:>10.0f} x",
        ],
    )


def test_zero_mismatches_per_family(benchmark):
    """1000-point differential ledger, persisted to results/."""

    def run():
        ledger = []
        for task, ckpt, r in FAMILIES:
            table = build_policy_table(r, parse_law(task), parse_law(ckpt))
            dyn = DynamicStrategy(r, parse_law(task), parse_law(ckpt))
            dyn.pin_crossing(table.w_int)
            grid = np.linspace(0.0, r, 1000, endpoint=False)
            keep = np.ones(grid.size, dtype=bool)
            assert table.boundaries is not None
            for boundary in table.boundaries:
                keep &= np.abs(grid - boundary) > 1e-6
            keep &= np.abs(grid - table.w_int) > 1e-6
            mismatches = sum(
                1
                for w in grid[keep]
                if bool(table.decide(float(w))[0]) != dyn.should_checkpoint(float(w))
            )
            ledger.append((task, ckpt, r, int(np.sum(keep)), mismatches))
        return ledger

    ledger = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        AnchorRow(f"mismatches {task} | {ckpt}", 0.0, float(m), 0.0)
        for task, ckpt, _r, _n, m in ledger
    ]
    report(
        "kernels_mismatches",
        "table vs exact decisions: 1000-point grid per law family",
        rows,
        extra_lines=[
            f"  {task:<22} {ckpt:<24} R={r:<5g} points={n:<5d} mismatches={m}"
            for task, ckpt, r, n, m in ledger
        ],
    )
