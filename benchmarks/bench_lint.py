"""Flow-lint summary-cache benchmark: warm runs must re-extract nothing.

The acceptance bar for the ``repro lint --flow`` summary cache
(docs/linting.md) is behavioural first, speed second: a warm run over an
unchanged tree must re-extract **zero** files and report exactly the
diagnostics of the cold run, and skipping extraction must make the warm
run measurably faster than the cold one. This bench runs the full
interprocedural analysis over ``src/`` cold (fresh cache directory,
including the cache-save cost) and warm (same populated cache) and
records the speedup in ``results/lint_flow_cache.txt``.

Min-of-runs timing is used (not mean): the minimum over several runs is
the standard low-variance estimator under scheduler noise, and here each
run is a whole-tree analysis, so a handful of runs suffices.
"""

from __future__ import annotations

import os
import time

from _common import AnchorRow, report

from repro.lint.flow import FlowResult, run_flow_paths

SRC = os.path.join(os.path.dirname(__file__), "..", "src")
RUNS = 3


def _cold_seconds(cache_root: str) -> tuple[float, FlowResult]:
    """Min-of-runs cold time: every run extracts into a fresh cache dir."""
    best = float("inf")
    result: FlowResult | None = None
    for run in range(RUNS):
        cache_dir = os.path.join(cache_root, f"cold-{run}")
        t0 = time.perf_counter()
        result = run_flow_paths([SRC], cache_dir=cache_dir)
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return best, result


def _warm_seconds(cache_dir: str) -> tuple[float, FlowResult]:
    """Min-of-runs warm time against one already-populated cache dir."""
    best = float("inf")
    result: FlowResult | None = None
    for _ in range(RUNS):
        t0 = time.perf_counter()
        result = run_flow_paths([SRC], cache_dir=cache_dir)
        best = min(best, time.perf_counter() - t0)
    assert result is not None
    return best, result


def test_flow_cache_speedup(benchmark, tmp_path):
    cache_root = str(tmp_path)
    cold_s, cold = _cold_seconds(cache_root)

    warm_dir = os.path.join(cache_root, "warm")
    run_flow_paths([SRC], cache_dir=warm_dir)  # populate
    warm_s, warm = benchmark.pedantic(
        _warm_seconds, args=(warm_dir,), rounds=1, iterations=1
    )

    speedup = cold_s / warm_s
    rows = [
        # a warm run over an unchanged tree must hit the cache for every file
        AnchorRow("warm files re-extracted", 0.0, float(warm.files_reanalyzed), 0.0),
        # and a cold run must have extracted every file it checked
        AnchorRow(
            "cold extraction coverage",
            1.0,
            cold.files_reanalyzed / max(cold.files_checked, 1),
            0.0,
        ),
        # identical diagnostics cold vs warm: caching is an optimization,
        # never an analysis change
        AnchorRow(
            "warm diagnostics identical to cold",
            1.0,
            float(warm.diagnostics == cold.diagnostics),
            0.0,
        ),
        # skipping extraction must pay for itself (conservative floor;
        # observed speedups are far higher since linking + fixpoint are
        # cheap next to whole-tree AST extraction)
        AnchorRow("cache speedup at least 1.5x", 1.0, float(speedup >= 1.5), 0.0),
    ]
    report(
        "lint_flow_cache",
        "Flow lint over src/: cold (fresh cache) vs warm (populated cache)",
        rows,
        extra_lines=[
            f"  files checked                   {cold.files_checked:>10d}",
            f"  cold whole-tree run             {cold_s * 1e3:>10.1f} ms",
            f"  warm whole-tree run             {warm_s * 1e3:>10.1f} ms",
            f"  speedup                         {speedup:>10.2f}x",
        ],
    )
