"""Extension bench: the expectation-vs-guarantee trade-off frontier.

The paper's objective is E(W); its "pessimistic but risk-free" baseline
is the extreme point of a whole frontier of risk attitudes. This bench
traces that frontier for the Figure 1(a) instance and the Figure 8
workflow instance:

* preemptible: for each risk level q, the q-quantile-optimal margin
  ``X = F_C^{-1}(q)`` and the (expectation, guarantee) pair it induces;
  q -> 1 recovers the pessimistic margin, the expectation-optimal
  margin sits at some interior q.
* workflow: max P(saved >= target) per target, vs what the
  expectation-optimal stopping rule achieves on the same targets.

Shape assertions: the frontier is monotone (more guarantee, less
expectation); the paper's two named strategies are its endpoints /
interior points as predicted.
"""

import numpy as np
from _common import AnchorRow, report

from repro.analysis import Series
from repro.core import (
    OptimalStoppingSolver,
    TargetProbabilitySolver,
    quantile_optimal_margin,
    solve,
)
from repro.core.preemptible import expected_work
from repro.distributions import Normal, Uniform, truncate
from repro.simulation import simulate_threshold


def test_preemptible_risk_frontier(benchmark):
    law = Uniform(1.0, 7.5)
    R = 10.0
    qs = np.linspace(0.05, 0.995, 40)

    def frontier():
        pts = []
        for q in qs:
            x, guarantee = quantile_optimal_margin(R, law, float(q))
            pts.append((float(q), x, guarantee, float(expected_work(R, law, x))))
        return pts

    pts = benchmark(frontier)
    guarantees = np.array([p[2] for p in pts])
    expectations = np.array([p[3] for p in pts])
    sol = solve(R, law)
    # Monotone trade-off: higher q => more margin => lower guarantee value?
    # guarantee value = R - ppf(q) decreases in q; while certainty grows.
    monotone = bool(np.all(np.diff(guarantees) <= 1e-9))
    # q ~ 1 converges to the pessimistic margin.
    x_at_high_q = pts[-1][1]
    lines = [f"  {'q':>6} {'X*':>8} {'q-quantile(W)':>14} {'E(W(X*))':>10}"]
    for q, x, g, e in pts[:: max(1, len(pts) // 12)]:
        lines.append(f"  {q:>6.3f} {x:>8.4f} {g:>14.4f} {e:>10.4f}")
    report(
        "risk_preemptible",
        "Risk frontier, preemptible scenario (Fig. 1a instance)",
        [
            AnchorRow("guarantee monotone in q", 1.0, float(monotone), 0.0),
            AnchorRow("q->1 recovers pessimistic margin b", 7.5, x_at_high_q, 0.05),
            AnchorRow(
                "expectation-optimal X inside the frontier",
                1.0,
                float(min(p[1] for p in pts) <= sol.x_opt <= max(p[1] for p in pts)),
                0.0,
            ),
            AnchorRow(
                "no frontier point beats E(W(X_opt))",
                1.0,
                float(np.max(expectations) <= sol.expected_work_opt + 1e-9),
                0.0,
            ),
        ],
        series=[
            Series(np.array([p[1] for p in pts]), expectations, "E(W(X)) along frontier"),
            Series(np.array([p[1] for p in pts]), guarantees, "q-quantile guarantee"),
        ],
        extra_lines=lines,
    )


def test_workflow_guarantee_frontier(benchmark, rng):
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    R = 29.0
    targets = [12.0, 18.0, 21.0, 22.5, 24.0]
    solver = TargetProbabilitySolver(R, tasks, ckpt)
    exp_threshold = OptimalStoppingSolver(R, tasks, ckpt).solve().threshold

    def run():
        rows = []
        exp_saved = simulate_threshold(R, tasks, ckpt, exp_threshold, 200_000, rng)
        for t in targets:
            best = solver.solve(t)
            exp_prob = float(np.mean(exp_saved >= t))
            rows.append((t, best.probability, exp_prob, best.stop_region_start))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"  {'target':>7} {'max P':>8} {'E-opt P':>8} {'stop at':>8}"]
    for t, p_best, p_exp, w0 in rows:
        lines.append(f"  {t:>7.1f} {p_best:>8.4f} {p_exp:>8.4f} {w0:>8.2f}")
    dominance = all(p_best >= p_exp - 0.01 for _, p_best, p_exp, _ in rows)
    gap_at_high_target = rows[-1][1] - rows[-1][2]
    monotone = all(
        r1[1] >= r2[1] - 1e-9 for r1, r2 in zip(rows, rows[1:])
    )
    report(
        "risk_workflow",
        "Guarantee frontier, workflow scenario (Fig. 8 instance)",
        [
            AnchorRow("max-P rule dominates E-opt rule on P", 1.0, float(dominance), 0.0),
            AnchorRow("material gap at demanding targets", 1.0, float(gap_at_high_target > 0.02), 0.0),
            AnchorRow("P monotone nonincreasing in target", 1.0, float(monotone), 0.0),
        ],
        extra_lines=lines + [
            "  -> maximizing the expectation and maximizing a guarantee pick",
            "     different stopping thresholds once the target gets demanding.",
        ],
    )
