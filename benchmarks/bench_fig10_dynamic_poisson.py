"""Figure 10: dynamic strategy, Poisson tasks (Section 4.3.3).

Tasks ~ Poisson(3) (integer durations), checkpoint ~ N(5, 0.4^2)
truncated to [0, inf), R=29. Paper anchor: W_int ~= 18.9.
"""

from _common import AnchorRow, report

from repro.analysis import dynamic_decision_curves
from repro.core import DynamicStrategy, OptimalStoppingSolver
from repro.distributions import Normal, Poisson, truncate
from repro.simulation import SimulationSummary, simulate_threshold


def _strategy() -> DynamicStrategy:
    return DynamicStrategy(29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0))


def test_fig10_dynamic_poisson(benchmark, rng):
    strat = _strategy()
    w_int = benchmark(lambda: DynamicStrategy(
        29.0, strat.task_law, strat.checkpoint_law
    ).crossing_point())
    ckpt_curve, cont_curve = dynamic_decision_curves(strat, points=121)
    policy_value = OptimalStoppingSolver(
        29.0, strat.task_law, strat.checkpoint_law
    ).threshold_policy_value(w_int)
    mc = SimulationSummary.from_samples(
        simulate_threshold(29.0, strat.task_law, strat.checkpoint_law, w_int, 200_000, rng)
    )
    report(
        "fig10",
        "Dynamic strategy, Poisson tasks (paper Fig. 10)",
        [
            AnchorRow("W_int (curve crossing)", 18.9, w_int, 0.1),
            AnchorRow("rule: continue below W_int", 0.0, float(strat.should_checkpoint(w_int - 1.0)), 0.5),
            AnchorRow("rule: checkpoint above W_int", 1.0, float(strat.should_checkpoint(w_int + 1.0)), 0.5),
            AnchorRow("MC value of threshold policy", policy_value, mc.mean, 4 * mc.sem),
        ],
        series=[ckpt_curve, cont_curve],
        markers={"W_int": w_int},
    )
