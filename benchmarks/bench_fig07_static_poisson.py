"""Figure 7: static strategy, Poisson task law (Section 4.2.3).

lambda=3, checkpoint ~ N(5, 0.4^2) truncated to [0, inf), R=29.
Paper anchors: y_opt ~= 5.98, h(5) ~= 14.6, h(6) ~= 15.8, n_opt = 6.
"""

from _common import AnchorRow, report

from repro.analysis import static_relaxation_curve
from repro.core import StaticStrategy
from repro.distributions import Normal, Poisson, truncate
from repro.simulation import SimulationSummary, simulate_fixed_count


def _strategy() -> StaticStrategy:
    return StaticStrategy(29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0))


def test_fig07_static_poisson(benchmark, rng):
    strat = _strategy()
    sol = benchmark(strat.solve)
    curve = static_relaxation_curve(strat, y_max=12.0, points=121, label="h(y), R=29")
    mc = SimulationSummary.from_samples(
        simulate_fixed_count(
            29.0, strat.task_law, strat.checkpoint_law, 6, 200_000, rng
        )
    )
    report(
        "fig07",
        "Static strategy, Poisson tasks (paper Fig. 7)",
        [
            AnchorRow("h(5)", 14.6, sol.evaluations[5], 0.1),
            AnchorRow("h(6)", 15.8, sol.evaluations[6], 0.1),
            AnchorRow("y_opt", 5.98, sol.y_opt, 0.05),
            AnchorRow("n_opt", 6, sol.n_opt, 0),
            AnchorRow("Monte-Carlo E(6) (200k trials)", sol.evaluations[6], mc.mean, 4 * mc.sem),
        ],
        series=[curve],
        markers={"y_opt": sol.y_opt},
        extra_lines=[f"  MC check: {mc.summary()}"],
    )
