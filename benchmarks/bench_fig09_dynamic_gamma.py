"""Figure 9: dynamic strategy, Gamma tasks (Section 4.3.2).

Tasks ~ Gamma(1, 0.5), checkpoint ~ N(2, 0.4^2) truncated to [0, inf),
R=10. Paper anchor: W_int ~= 6.4.
"""

from _common import AnchorRow, report

from repro.analysis import dynamic_decision_curves
from repro.core import DynamicStrategy, OptimalStoppingSolver
from repro.distributions import Gamma, Normal, truncate
from repro.simulation import SimulationSummary, simulate_threshold


def _strategy() -> DynamicStrategy:
    return DynamicStrategy(10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))


def test_fig09_dynamic_gamma(benchmark, rng):
    strat = _strategy()
    w_int = benchmark(lambda: DynamicStrategy(
        10.0, strat.task_law, strat.checkpoint_law
    ).crossing_point())
    ckpt_curve, cont_curve = dynamic_decision_curves(strat, points=121)
    policy_value = OptimalStoppingSolver(
        10.0, strat.task_law, strat.checkpoint_law
    ).threshold_policy_value(w_int)
    mc = SimulationSummary.from_samples(
        simulate_threshold(10.0, strat.task_law, strat.checkpoint_law, w_int, 200_000, rng)
    )
    report(
        "fig09",
        "Dynamic strategy, Gamma tasks (paper Fig. 9)",
        [
            AnchorRow("W_int (curve crossing)", 6.4, w_int, 0.1),
            AnchorRow("rule: continue below W_int", 0.0, float(strat.should_checkpoint(w_int - 0.5)), 0.5),
            AnchorRow("rule: checkpoint above W_int", 1.0, float(strat.should_checkpoint(w_int + 0.5)), 0.5),
            AnchorRow("MC value of threshold policy", policy_value, mc.mean, 4 * mc.sem),
        ],
        series=[ckpt_curve, cont_curve],
        markers={"W_int": w_int},
    )
