"""Shared reporting helpers for the figure-regeneration benchmarks.

Every bench prints a paper-vs-measured table, renders the regenerated
curve(s) as an ASCII chart, and persists both the numbers (CSV) and the
report (text) under ``results/`` so the artifacts survive pytest's
output capture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.analysis import Series
from repro.plotting import render_chart, write_series_csv

#: Where benches drop their artifacts (created on demand).
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@dataclass(frozen=True)
class AnchorRow:
    """One paper-vs-measured comparison line."""

    quantity: str
    paper: float
    measured: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return abs(self.measured - self.paper) <= self.tolerance

    def format(self) -> str:
        mark = "OK " if self.ok else "DIFF"
        return (
            f"  {self.quantity:<38} paper={self.paper:<10.4g} "
            f"measured={self.measured:<12.6g} [{mark}]"
        )


def report(
    name: str,
    title: str,
    rows: Sequence[AnchorRow],
    series: Sequence[Series] = (),
    markers: dict[str, float] | None = None,
    extra_lines: Sequence[str] = (),
) -> str:
    """Assemble, print and persist a bench report; returns the text.

    Raises ``AssertionError`` if any anchor row is outside tolerance,
    so a drift in the reproduction fails the bench run loudly.
    """
    lines = [f"=== {name}: {title} ==="]
    lines.extend(r.format() for r in rows)
    lines.extend(extra_lines)
    if series:
        lines.append(render_chart(list(series), title=title, markers=markers))
    text = "\n".join(lines)
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    if series:
        write_series_csv(os.path.join(RESULTS_DIR, f"{name}.csv"), list(series))
    bad = [r for r in rows if not r.ok]
    assert not bad, "anchors outside tolerance:\n" + "\n".join(r.format() for r in bad)
    return text
