"""Ablation: how much does the paper's one-step rule leave on the table?

The dynamic strategy (Section 4.3) is one-step lookahead; the Bellman
policy of repro.core.optimal_stopping is provably optimal among all
end-of-task stopping rules. This bench measures the gap on the paper's
three instances and across a CV sweep.

Expected shape (asserted): the gap is tiny (< 1%) on the paper's
instances — the one-step rule is an excellent heuristic, which explains
why the paper stops there — but it is a true upper bound everywhere.
"""

from _common import AnchorRow, report

from repro.core import DynamicStrategy, OptimalStoppingSolver
from repro.distributions import Gamma, Normal, Poisson, truncate

CASES = [
    ("fig8 truncN", 29.0, truncate(Normal(3.0, 0.5), 0.0), truncate(Normal(5.0, 0.4), 0.0)),
    ("fig9 gamma", 10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0)),
    ("fig10 poisson", 29.0, Poisson(3.0), truncate(Normal(5.0, 0.4), 0.0)),
]


def _gaps() -> list[tuple[str, float, float, float]]:
    out = []
    for name, R, tasks, ckpt in CASES:
        solver = OptimalStoppingSolver(R, tasks, ckpt)
        sol = solver.solve()
        w_int = DynamicStrategy(R, tasks, ckpt).crossing_point()
        one_step = solver.threshold_policy_value(w_int)
        out.append((name, sol.value_at_start, one_step, sol.threshold))
    return out


def test_one_step_vs_bellman(benchmark):
    gaps = benchmark.pedantic(_gaps, rounds=1, iterations=1)
    rows = []
    lines = [f"  {'instance':<16} {'V*(0)':>9} {'one-step':>9} {'gap %':>7} {'thresholds':>22}"]
    for name, optimal, one_step, thr in gaps:
        gap_pct = 100.0 * (optimal - one_step) / optimal
        rows.append(AnchorRow(f"{name}: optimal >= one-step", 1.0, float(optimal >= one_step - 1e-9), 0.0))
        rows.append(AnchorRow(f"{name}: gap below 1%", 0.0, max(gap_pct - 1.0, 0.0), 1e-9))
        lines.append(
            f"  {name:<16} {optimal:>9.4f} {one_step:>9.4f} {gap_pct:>6.3f}% "
            f"(W*={thr:.2f})"
        )
    report(
        "optimal_stopping",
        "One-step-lookahead dynamic rule vs exact Bellman optimum",
        rows,
        extra_lines=lines
        + [
            "  -> the paper's rule is near-optimal on its own instances;",
            "     the Bellman solver certifies it rather than replacing it.",
        ],
    )


def test_bellman_grid_convergence(benchmark):
    """Sanity: the continuous-grid Bellman value is grid-converged."""
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)

    def run():
        return [
            OptimalStoppingSolver(29.0, tasks, ckpt, grid_points=g).solve().value_at_start
            for g in (201, 801, 3201)
        ]

    vals = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "optimal_stopping_convergence",
        "Bellman value vs work-grid resolution",
        [
            AnchorRow("V(0) @201 vs @3201", vals[2], vals[0], 0.05),
            AnchorRow("V(0) @801 vs @3201", vals[2], vals[1], 0.01),
        ],
        extra_lines=[f"  values: {[round(v, 5) for v in vals]}"],
    )
