"""Cost of consistent-cut coordination for coupled workflows.

Two numbers the coupled-reservation model cares about:

(a) what a durable consistent cut costs end to end as the component
    count grows — every member generation is fsynced before the binding
    manifest, so the commit path pays ``n`` member writes plus one
    manifest write per cut; and
(b) how much saved work the coordination layer gives up against an
    equivalent single-component baseline under the same reservation
    budget — the coupled runner prices ``max_i C_i`` and pays exchange
    costs, both of which shrink the useful fraction of a reservation.

Min-of-runs timing, as in ``bench_runtime.py``.
"""

from __future__ import annotations

import time

import numpy as np
from _common import AnchorRow, report

from repro.analysis import Series
from repro.core.policies import StaticCountPolicy
from repro.distributions import Uniform
from repro.runtime import DurableCheckpointStore, InMemoryCheckpointStore
from repro.workflows import (
    BoundaryCoupledDiffusion,
    Channel,
    CoupledComponent,
    CoupledReservationRunner,
    SnapshotCoordinator,
    WorkflowGraph,
    run_coupled_campaign,
)
from repro.workflows.coupled import DurableCutLog, InMemoryCutLog

RUNS = 5
CUTS = 50
COMPONENT_COUNTS = (1, 2, 4, 8)
SIZE = 32  # per-component 1-D subdomain, ~minor payloads


def _apps(n: int) -> dict[str, BoundaryCoupledDiffusion]:
    apps = {}
    for i in range(n):
        app = BoundaryCoupledDiffusion(SIZE, tolerance=1e-12, heat=1.0 + i)
        app.iterate()
        apps[f"c{i + 1:02d}"] = app
    return apps


def _commit_seconds(root: str, n: int) -> float:
    """Min-of-runs per-cut cost over CUTS consistent cuts."""
    apps = _apps(n)
    best = float("inf")
    for run in range(RUNS):
        stores = {
            name: DurableCheckpointStore(f"{root}/n{n}r{run}/{name}", keep=3)
            for name in apps
        }
        coordinator = SnapshotCoordinator(
            stores, DurableCutLog(f"{root}/n{n}r{run}/cuts", keep=3)
        )
        t0 = time.perf_counter()
        for cut in range(CUTS):
            coordinator.commit_cut(apps, cut + 1)
        best = min(best, (time.perf_counter() - t0) / CUTS)
    return best


def test_cut_commit_cost_vs_components(benchmark, tmp_path):
    root = str(tmp_path)
    costs = {n: _commit_seconds(root, n) for n in COMPONENT_COUNTS[:-1]}
    costs[COMPONENT_COUNTS[-1]] = benchmark.pedantic(
        _commit_seconds, args=(root, COMPONENT_COUNTS[-1]), rounds=1, iterations=1
    )
    xs = np.array(COMPONENT_COUNTS, dtype=float)
    ys = np.array([costs[n] * 1e3 for n in COMPONENT_COUNTS])
    # Marginal member cost from the two endpoints: the manifest write is
    # the intercept, each extra member adds roughly one durable write.
    marginal = (costs[8] - costs[1]) / 7.0
    rows = [
        # The commit path must stay usable on slow CI disks even at the
        # widest fan-in benched here.
        AnchorRow("8-component cut under 500 ms", 1.0, float(costs[8] < 0.5), 0.0),
        # More members must never be cheaper: each adds a durable write.
        AnchorRow(
            "cost monotone in component count",
            1.0,
            float(all(costs[a] <= costs[b] * 1.05
                      for a, b in zip(COMPONENT_COUNTS, COMPONENT_COUNTS[1:]))),
            0.0,
        ),
    ]
    report(
        "coupled_cut_cost",
        "Consistent-cut commit cost vs component count",
        rows,
        series=[Series(xs, ys, "cut commit (ms)")],
        extra_lines=[
            f"  {n}-component cut                 {costs[n] * 1e3:>10.2f} ms"
            for n in COMPONENT_COUNTS
        ] + [
            f"  marginal cost per member          {marginal * 1e3:>10.2f} ms",
        ],
    )


def _coupled_graph(n: int) -> WorkflowGraph:
    mk = lambda i: BoundaryCoupledDiffusion(12, tolerance=1e-6, heat=1.0 + i)
    names = [f"c{i + 1:02d}" for i in range(n)]
    return WorkflowGraph(
        [CoupledComponent(name, mk(i), Uniform(0.08, 0.12), Uniform(0.3, 0.5))
         for i, name in enumerate(names)],
        [Channel(a, b, cost=0.01, jitter=0.5) for a, b in zip(names, names[1:])],
        seed=7,
    )


def _campaign(graph: WorkflowGraph, R: float):
    coordinator = SnapshotCoordinator(
        {name: InMemoryCheckpointStore(keep=3) for name in graph.names},
        InMemoryCutLog(),
    )
    runner = CoupledReservationRunner(
        graph, coordinator, policy=StaticCountPolicy(20), rng=11
    )
    return run_coupled_campaign(runner, R)


def test_saved_work_vs_single_component(benchmark):
    R = 8.0
    # Baseline: the same solver run as a one-component workflow — no
    # exchange cost, and the cut law degenerates to the scalar C.
    baseline = _campaign(_coupled_graph(1), R)
    coupled = benchmark.pedantic(
        _campaign, args=(_coupled_graph(3), R), rounds=1, iterations=1
    )
    base_util = baseline.total_work_saved / baseline.total_time_used
    coupled_util = coupled.total_work_saved / coupled.total_time_used
    rows = [
        AnchorRow("coupled campaign saved", 1.0, float(coupled.solution_saved), 0.0),
        AnchorRow("baseline campaign saved", 1.0, float(baseline.solution_saved), 0.0),
        # Coordination (max_i C_i + exchange) must cost something, but
        # not gut the reservation: utilization stays within 40% of the
        # single-component baseline on this instance.
        AnchorRow(
            "coupled utilization / baseline", 1.0, coupled_util / base_util, 0.4
        ),
    ]
    report(
        "coupled_saved_work",
        f"Saved work under coordination, R={R:g}",
        rows,
        extra_lines=[
            "  baseline (1 component):",
            f"    reservations                    {baseline.reservations_used:>10d}",
            f"    work saved                      {baseline.total_work_saved:>10.2f} s",
            f"    utilization                     {base_util:>10.3f}",
            "  coupled (3 components, chain):",
            f"    reservations                    {coupled.reservations_used:>10d}",
            f"    work saved                      {coupled.total_work_saved:>10.2f} s",
            f"    utilization                     {coupled_util:>10.3f}",
            f"  coordination overhead             {1.0 - coupled_util / base_util:>10.1%}",
        ],
    )
