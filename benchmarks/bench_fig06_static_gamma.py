"""Figure 6: static strategy, Gamma task law (Section 4.2.2).

k=1, theta=0.5, checkpoint ~ N(2, 0.4^2) truncated to [0, inf), R=10.
Paper anchors: y_opt ~= 11.8, g(11) ~= 4.77, g(12) ~= 4.82, n_opt = 12.
"""

from _common import AnchorRow, report

from repro.analysis import static_relaxation_curve
from repro.core import StaticStrategy
from repro.distributions import Gamma, Normal, truncate
from repro.simulation import SimulationSummary, simulate_fixed_count


def _strategy() -> StaticStrategy:
    return StaticStrategy(10.0, Gamma(1.0, 0.5), truncate(Normal(2.0, 0.4), 0.0))


def test_fig06_static_gamma(benchmark, rng):
    strat = _strategy()
    sol = benchmark(strat.solve)
    curve = static_relaxation_curve(strat, y_max=25.0, points=121, label="g(y), R=10")
    mc = SimulationSummary.from_samples(
        simulate_fixed_count(
            10.0, strat.task_law, strat.checkpoint_law, 12, 200_000, rng
        )
    )
    report(
        "fig06",
        "Static strategy, Gamma tasks (paper Fig. 6)",
        [
            AnchorRow("g(11)", 4.77, sol.evaluations[11], 0.02),
            AnchorRow("g(12)", 4.82, sol.evaluations[12], 0.02),
            AnchorRow("y_opt", 11.8, sol.y_opt, 0.15),
            AnchorRow("n_opt", 12, sol.n_opt, 0),
            AnchorRow("Monte-Carlo E(12) (200k trials)", sol.evaluations[12], mc.mean, 4 * mc.sem),
        ],
        series=[curve],
        markers={"y_opt": sol.y_opt},
        extra_lines=[f"  MC check: {mc.summary()}"],
    )
