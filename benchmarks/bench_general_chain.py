"""Extension bench: the general non-IID static problem and its heuristics.

The paper's conclusion: "extending the static strategy to find the
optimal solution for the general case seems out of reach. Future work
will be devoted to the design of efficient heuristics". This bench
delivers and grades exactly that:

* exact optimum per stage count via heterogeneous FFT convolution;
* CLT (moment-matching) heuristic;
* deterministic-means heuristic;

on (a) a realistic 4-stage image-processing-style pipeline (the class
of workloads the paper's related-work section cites) and (b) an
adversarially skewed chain where the heuristics pick wrong stages.
A Monte-Carlo replay independently validates the exact values.
"""

import numpy as np
from _common import AnchorRow, report

from repro.core import GeneralStaticSolver
from repro.distributions import Gamma, LogNormal, Normal, Uniform, truncate
from repro.workflows import LinearWorkflow, WorkflowTask


def _pipeline() -> LinearWorkflow:
    """A 4-stage analysis pipeline with per-stage checkpoint costs."""
    return LinearWorkflow(
        [
            WorkflowTask("ingest", Uniform(0.8, 1.6), truncate(Normal(0.4, 0.1), 0.0)),
            WorkflowTask("detect", Gamma(6.0, 0.4), truncate(Normal(1.8, 0.3), 0.0)),
            WorkflowTask("track", LogNormal.from_moments(1.5, 0.6), truncate(Normal(0.9, 0.2), 0.0)),
            WorkflowTask("encode", Gamma(2.0, 0.6), truncate(Normal(0.3, 0.05), 0.0)),
        ]
    )


def _mc_expected(R: float, wf: LinearWorkflow, k: int, n_trials: int, rng) -> float:
    """Monte-Carlo E(saved | stop after stage k) for the chain."""
    total = np.zeros(n_trials)
    for i in range(k):
        total += wf.task_at(i).duration_law.sample(n_trials, rng)
    C = wf.task_at(k - 1).checkpoint_law.sample(n_trials, rng)
    fits = (total <= R) & (total + C <= R)
    return float(np.where(fits, total, 0.0).mean())


def test_general_chain_pipeline(benchmark, rng):
    wf = _pipeline()
    R = 7.5
    solver = GeneralStaticSolver(R, wf)
    exact = benchmark.pedantic(lambda: solver.solve("exact"), rounds=1, iterations=1)
    clt = solver.solve("clt")
    mean = solver.solve("mean")
    mc_at_opt = _mc_expected(R, wf, exact.k_opt, 400_000, rng)
    lines = [f"  {'k':>3} {'exact E(k)':>11} {'clt E(k)':>9} {'mean E(k)':>10}"]
    for k in range(1, solver.max_stages + 1):
        lines.append(
            f"  {k:>3} {exact.evaluations[k]:>11.4f} {clt.evaluations[k]:>9.4f} "
            f"{mean.evaluations[k]:>10.4f}"
        )
    report(
        "general_chain",
        "Non-IID 4-stage pipeline: exact vs heuristic static plans (R=7.5)",
        [
            AnchorRow("MC validation of exact optimum (400k)", exact.expected_work_opt, mc_at_opt, 0.03),
            AnchorRow("CLT picks the exact optimum stage", exact.k_opt, clt.k_opt, 0),
            AnchorRow("exact dominates every stage", 1.0,
                      float(all(exact.expected_work_opt >= v - 1e-9 for v in exact.evaluations.values())), 0.0),
        ],
        extra_lines=lines,
    )


def test_general_chain_heuristic_regret(benchmark):
    """Adversarial chain: the CLT heuristic stops a stage too early."""
    safe = truncate(Normal(1.0, 0.05), 0.0)
    ckpt = truncate(Normal(0.5, 0.05), 0.0)
    risky = Gamma(0.25, 8.0)
    wf = LinearWorkflow([WorkflowTask("a", safe, ckpt), WorkflowTask("b", risky, ckpt)])
    solver = GeneralStaticSolver(4.0, wf)
    regret, heur, exact = benchmark.pedantic(
        lambda: solver.heuristic_regret("clt"), rounds=1, iterations=1
    )
    report(
        "general_chain_regret",
        "Skewed chain: value lost by the CLT heuristic",
        [
            AnchorRow("exact continues to stage 2", 2, exact.k_opt, 0),
            AnchorRow("CLT stops at stage 1", 1, heur.k_opt, 0),
            AnchorRow("regret is material (> 0.1 work units)", 1.0, float(regret > 0.1), 0.0),
        ],
        extra_lines=[
            f"  exact:  k={exact.k_opt}, E={exact.expected_work_opt:.4f}",
            f"  clt:    k={heur.k_opt}, realized E={exact.evaluations[heur.k_opt]:.4f}",
            f"  regret: {regret:.4f} work units "
            f"({100 * regret / exact.expected_work_opt:.1f}% of the optimum)",
            "  -> the heavy right-skew is invisible to a Normal approximation;",
            "     exact convolution is cheap enough to avoid the loss entirely.",
        ],
    )
