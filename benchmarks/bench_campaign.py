"""Ablation: Section 4.4 — continue after the checkpoint, or drop?

Runs full multi-reservation campaigns (iterative application of fixed
total work, reservations with recovery cost) under three regimes:

1. drop after the first successful checkpoint (the paper's base model);
2. continue whenever the by-reservation advisor approves (time already
   paid for -> continuing is free work);
3. continue under by-usage billing with an expensive rate (the advisor
   should mostly veto, matching "save money on our account").

Per the paper, leftover time "is more likely with the static approach
which ... can overestimate actual task execution times": the campaign
uses a static plan calibrated against a task law 50% slower than
reality, so every reservation checkpoints early and leaves real slack.

Expected shape (asserted): continuing reduces the number of
reservations needed under by-reservation billing; under by-usage
billing with a prohibitive price the advisor's veto keeps behaviour
close to the drop regime.
"""

import numpy as np
from _common import AnchorRow, report

from repro.core import (
    BillingModel,
    ContinuationAdvisor,
    StaticOptimalPolicy,
)
from repro.distributions import Normal, truncate
from repro.simulation import run_campaign

R = 29.0
TARGET = 400.0
RECOVERY = 1.5
REPS = 40


def _run_regimes(rng: np.random.Generator) -> dict[str, dict[str, float]]:
    tasks = truncate(Normal(3.0, 0.5), 0.0)
    ckpt = truncate(Normal(5.0, 0.4), 0.0)
    # Static plan calibrated against an overestimated task duration
    # (4.5s believed vs 3s actual): checkpoints early, leaving slack —
    # the paper's own setting for the continue-or-drop question.
    believed_tasks = Normal(4.5, 0.75)
    policy = StaticOptimalPolicy(believed_tasks, ckpt)
    adv_free = ContinuationAdvisor(tasks, ckpt, billing=BillingModel.BY_RESERVATION)
    adv_pricey = ContinuationAdvisor(
        tasks, ckpt, billing=BillingModel.BY_USAGE,
        price_per_second=1e6, value_per_work_unit=1.0,
    )
    regimes = {
        "drop": dict(continue_after_checkpoint=False, advisor=None, billing=BillingModel.BY_RESERVATION),
        "continue-free": dict(continue_after_checkpoint=True, advisor=adv_free, billing=BillingModel.BY_RESERVATION),
        "continue-pricey": dict(continue_after_checkpoint=True, advisor=adv_pricey, billing=BillingModel.BY_USAGE),
    }
    out = {}
    for name, kw in regimes.items():
        reservations, utilizations, costs = [], [], []
        for _ in range(REPS):
            res = run_campaign(
                TARGET, R, tasks, ckpt, policy, rng,
                recovery=RECOVERY,
                billing=kw["billing"],
                price_per_second=1.0,
                continue_after_checkpoint=kw["continue_after_checkpoint"],
                advisor=kw["advisor"],
                max_reservations=500,
            )
            assert res.completed
            reservations.append(res.reservations_used)
            utilizations.append(res.utilization)
            costs.append(res.total_cost)
        out[name] = {
            "reservations": float(np.mean(reservations)),
            "utilization": float(np.mean(utilizations)),
            "cost": float(np.mean(costs)),
        }
    return out


def test_campaign_regimes(benchmark, rng):
    stats = benchmark.pedantic(lambda: _run_regimes(rng), rounds=1, iterations=1)
    lines = [f"  {'regime':<18} {'mean #resv':>11} {'utilization':>12} {'mean cost':>11}"]
    for name, s in stats.items():
        lines.append(
            f"  {name:<18} {s['reservations']:>11.2f} {100*s['utilization']:>11.1f}% {s['cost']:>11.1f}"
        )
    fewer = stats["continue-free"]["reservations"] < stats["drop"]["reservations"] - 1.0
    veto = abs(stats["continue-pricey"]["reservations"] - stats["drop"]["reservations"]) <= 1.5
    better_util = stats["continue-free"]["utilization"] > stats["drop"]["utilization"]
    report(
        "campaign",
        "Multi-reservation campaigns: drop vs continue (Section 4.4)",
        [
            AnchorRow("continuing saves reservations", 1.0, float(fewer), 0.0),
            AnchorRow("pricey advisor vetoes continuation", 1.0, float(veto), 0.0),
            AnchorRow("continuing raises utilization", 1.0, float(better_util), 0.0),
        ],
        extra_lines=lines,
    )
