"""Figure 2: E(W(X)) for a truncated Exponential law — both cases.

Panel (a): lambda=1/2 truncated to [1, 5], R=10 — interior optimum via
Lambert W. The caption prints "X_opt ~= 3.9"; the paper's own closed
form X = (lam R + 1 - W(e^{-lam a + lam R + 1})) / lam evaluates to
3.8185, which we reproduce exactly (and verify is the true maximum).
Panel (b): truncated to [1, 3] — the optimum saturates at b.
"""

import numpy as np
from _common import AnchorRow, report

from repro.analysis import expected_work_curve
from repro.core import solve
from repro.core.preemptible import exponential_optimal_margin, expected_work
from repro.distributions import Exponential, truncate


def test_fig02a_interior_optimum(benchmark):
    law = truncate(Exponential(0.5), 1.0, 5.0)
    sol = benchmark(solve, 10.0, law)
    # The closed form must be the true argmax of Equation (1).
    grid = np.linspace(1.0, 5.0, 4001)
    grid_max = float(np.max(expected_work(10.0, law, grid)))
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) lam=1/2 [1,5] R=10")
    report(
        "fig02a",
        "Truncated Exponential, interior optimum (paper Fig. 2a)",
        [
            AnchorRow("X_opt (Lambert-W closed form)", 3.8185, sol.x_opt, 0.001),
            AnchorRow("X_opt vs caption's ~3.9", 3.9, sol.x_opt, 0.15),
            AnchorRow("E(W(X_opt)) vs dense grid max", grid_max, sol.expected_work_opt, 1e-6),
        ],
        series=[curve],
        markers={"X_opt": sol.x_opt, "b": 5.0},
        extra_lines=[
            "  note: the caption rounds to 3.9; the paper's own formula gives 3.8185",
            f"  method: {sol.method}",
        ],
    )


def test_fig02b_boundary_optimum(benchmark):
    x_opt = benchmark(exponential_optimal_margin, 0.5, 1.0, 3.0, 10.0)
    law = truncate(Exponential(0.5), 1.0, 3.0)
    sol = solve(10.0, law)
    curve = expected_work_curve(10.0, law, 401, label="E(W(X)) lam=1/2 [1,3] R=10")
    report(
        "fig02b",
        "Truncated Exponential, optimum at b (paper Fig. 2b)",
        [
            AnchorRow("X_opt = b", 3.0, x_opt, 1e-9),
            AnchorRow("solver agrees", 3.0, sol.x_opt, 1e-9),
        ],
        series=[curve],
        markers={"X_opt": x_opt},
    )
