"""Vectorized policy kernels: compile once, decide with array lookups.

The exact scalar machinery (:mod:`repro.core.dynamic` quadrature +
root-finding, :mod:`repro.core.optimal_stopping` Bellman sweeps) prices
one decision per call. This package tabulates a whole policy — the
checkpoint/continue expectations ``E(W_C)`` / ``E(W_{+1})``, the
optimal-stopping value ``V(w)`` and the crossing threshold ``W_int`` —
as dense numpy arrays on an adaptive work grid, so every subsequent
decision is an O(1) vectorized comparison and every expectation a
linear interpolation.

The exact scalar path stays the *oracle*: the threshold stored in a
:class:`PolicyTable` is refined by Brent root-finding on the exact
advantage function (never on the lattice), so table decisions and exact
decisions agree everywhere, and ``tests/kernels/test_table_vs_exact.py``
holds the two paths to zero decision mismatches on 1000-point grids for
every law family the CLI can parse. See ``docs/kernels.md``.
"""

from .grid import adaptive_work_grid, support_anchors
from .table import PolicyTable, build_policy_table, tabulate_continue

__all__ = [
    "PolicyTable",
    "adaptive_work_grid",
    "build_policy_table",
    "support_anchors",
    "tabulate_continue",
]
