"""Dense policy tables: the vectorized fast path of the dynamic rule.

:func:`build_policy_table` tabulates one ``(D_X, D_C, R)`` policy as
numpy arrays on an :func:`~repro.kernels.grid.adaptive_work_grid`:

* ``E(W_C)`` — exact on every node (closed form, Section 4.3);
* ``E(W_{+1})`` — exact series for discrete task laws, shared midpoint
  lattice for continuous ones (one broadcast expression for the whole
  grid instead of one adaptive quadrature per point);
* ``V(w)`` — the optimal-stopping value, interpolated from the Bellman
  solver's lattice;
* the decision region itself — stored as the ascending list of
  *boundaries* where the sign of ``E(W_C) - E(W_{+1})`` flips. The
  table only *brackets* each flip; every stored boundary is found by
  Brent iteration on the **exact** advantage
  :meth:`repro.core.dynamic.DynamicStrategy.advantage`, so decisions
  read off the table agree with the exact scalar rule everywhere, not
  just to lattice accuracy. For continuous checkpoint laws the
  advantage crosses zero once and the region is the single threshold
  ``w >= W_int`` of Section 4.3; discrete checkpoint laws make
  ``F_C(R - w)`` a step function whose advantage can recross, and the
  parity rule over all boundaries reproduces exactly that.

Error model (see ``docs/kernels.md``): interpolated expectations carry
the midpoint-lattice error O((hi-lo)^2 / lattice_points^2) plus linear
interpolation error O(cell^2) — both far below the default test
tolerances — while the *decision* threshold is exact to brentq's
``xtol=1e-10``, the same tolerance as the scalar path.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import optimize

from .._validation import check_integer, check_positive
from ..core.dynamic import DynamicStrategy, expected_if_checkpoint
from ..core.optimal_stopping import OptimalStoppingSolver
from ..distributions import Distribution
from ..obs.metrics import global_registry
from .grid import adaptive_work_grid, support_anchors

__all__ = ["PolicyTable", "build_policy_table", "tabulate_continue"]

#: Bump when the serialized table layout changes; mismatching payloads
#: raise ValueError from :meth:`PolicyTable.from_dict` so the enclosing
#: cache entry is recompiled rather than half-deserialized.
_TABLE_FORMAT = 1

#: Rows per block when broadcasting the continuous-law lattice, bounding
#: the transient to ~blocksize * lattice_points doubles.
_BLOCK_ROWS = 128


def tabulate_continue(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    w: ArrayLike,
    *,
    lattice_points: int = 4096,
) -> NDArray[np.float64]:
    """``E(W_{+1})`` on a whole work grid in one vectorized pass.

    Discrete task laws use the same exact series as
    :func:`repro.core.dynamic.expected_if_continue`. Continuous laws
    replace the per-point adaptive quadrature with a shared midpoint
    lattice of ``lattice_points`` cells over the task-law support; the
    per-point integration limit ``R - w`` becomes a mask, so the whole
    grid is one blocked ``len(w) x lattice_points`` expression.
    """
    R = check_positive(R, "R")
    lattice_points = check_integer(lattice_points, "lattice_points", minimum=8)
    w_arr = np.atleast_1d(np.asarray(w, dtype=float))
    budget = R - w_arr
    out = np.zeros_like(w_arr)

    if task_law.is_discrete:
        j = np.arange(0.0, math.floor(R) + 1.0)
        pj = np.asarray(task_law.pmf(j), dtype=float)
        slack = budget[:, None] - j[None, :]
        success = np.where(
            slack > 0.0, checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0
        )
        inside = j[None, :] <= budget[:, None]
        terms = (j[None, :] + w_arr[:, None]) * success * pj[None, :]
        out = np.sum(np.where(inside, terms, 0.0), axis=1)
        return np.where(budget > 0.0, out, 0.0)

    lo = max(float(task_law.lower), 0.0)
    hi = min(float(task_law.upper), R)
    if hi <= lo:
        return out
    h = (hi - lo) / lattice_points
    x = lo + (np.arange(lattice_points) + 0.5) * h
    mass = np.asarray(task_law.pdf(x), dtype=float) * h
    for start in range(0, w_arr.size, _BLOCK_ROWS):
        sl = slice(start, start + _BLOCK_ROWS)
        b = budget[sl]
        slack = b[:, None] - x[None, :]
        success = np.where(
            slack > 0.0, checkpoint_law.cdf(np.maximum(slack, 0.0)), 0.0
        )
        inside = x[None, :] <= b[:, None]
        terms = (x[None, :] + w_arr[sl][:, None]) * success * mass[None, :]
        out[sl] = np.sum(np.where(inside, terms, 0.0), axis=1)
    return np.where(budget > 0.0, out, 0.0)


@dataclass(frozen=True, eq=False)
class PolicyTable:
    """Dense tabulation of one compiled policy's decision surfaces.

    Attributes
    ----------
    reservation:
        The reservation length ``R`` the table was built for.
    w:
        Ascending work grid over ``[0, R]`` (endpoints included),
        refined near the threshold and the laws' support-edge images.
    e_checkpoint:
        ``E(W_C)`` on the grid — exact at every node.
    e_continue:
        ``E(W_{+1})`` on the grid — exact series (discrete task laws)
        or midpoint-lattice (continuous).
    value:
        Optimal-stopping ``V(w)`` on the grid, or ``None`` when the
        table was built without it.
    w_int:
        First crossing into the checkpoint region, exact to
        ``xtol=1e-10`` (brentq on the exact advantage). When
        :attr:`is_threshold` is true, decisions reduce to
        ``work >= w_int``; the tie at ``work == w_int`` checkpoints,
        matching
        :meth:`repro.core.dynamic.DynamicStrategy.should_checkpoint`.
    lattice_points:
        Midpoint-lattice resolution ``e_continue`` was built with.
    boundaries:
        Ascending decision-flip points; the advantage changes sign at
        each. ``None`` (the constructor default) means the single
        threshold ``[w_int]``. A boundary point itself takes the
        *right-side* decision, so ``boundaries == [w_int]`` reproduces
        the checkpoint-at-tie convention.
    checkpoint_at_zero:
        Decision at ``w = 0`` (the parity seed): true iff the exact
        advantage is already nonnegative at zero work.
    """

    reservation: float
    w: NDArray[np.float64]
    e_checkpoint: NDArray[np.float64]
    e_continue: NDArray[np.float64]
    value: NDArray[np.float64] | None
    w_int: float
    lattice_points: int
    boundaries: NDArray[np.float64] | None = None
    checkpoint_at_zero: bool = False

    def __post_init__(self) -> None:
        n = self.w.size
        if n < 2 or self.e_checkpoint.size != n or self.e_continue.size != n:
            raise ValueError("table arrays must share one length >= 2")
        if self.value is not None and self.value.size != n:
            raise ValueError("value grid length does not match the work grid")
        if not (self.w[0] == 0.0 and np.all(np.diff(self.w) > 0.0)):
            raise ValueError("work grid must be strictly ascending from 0")
        if not math.isfinite(self.w_int):
            raise ValueError(f"w_int must be finite, got {self.w_int}")
        if self.boundaries is None:
            object.__setattr__(
                self,
                "boundaries",
                np.empty(0) if self.checkpoint_at_zero else np.asarray([self.w_int]),
            )
        b = self.boundaries
        assert b is not None
        if b.size and not (
            np.all(np.isfinite(b)) and np.all(np.diff(b) > 0.0) and b[0] >= 0.0
        ):
            raise ValueError("boundaries must be finite, ascending and nonnegative")

    @property
    def is_threshold(self) -> bool:
        """Whether the decision region is the single rule ``w >= w_int``.

        True for every continuous checkpoint law (one advantage
        crossing); false when a discrete ``F_C`` makes the advantage
        recross, in which case the inline threshold fast paths must
        fall back to full table lookups.
        """
        b = self.boundaries
        assert b is not None
        if self.checkpoint_at_zero:
            return b.size == 0 and self.w_int == 0.0
        return b.size == 1 and b[0] == self.w_int

    # -- lookups ---------------------------------------------------------

    def decide(self, work: ArrayLike) -> NDArray[np.bool_]:
        """Vectorized dynamic rule: parity of boundaries at or below
        ``work``, seeded by the decision at zero work."""
        global_registry().incr("kernels.lookups")
        work_arr = np.atleast_1d(np.asarray(work, dtype=float))
        b = self.boundaries
        assert b is not None
        flips = np.searchsorted(b, work_arr, side="right")
        return np.asarray((flips % 2 == 1) != self.checkpoint_at_zero)

    def e_checkpoint_at(self, work: ArrayLike) -> NDArray[np.float64]:
        """Interpolated ``E(W_C)`` at arbitrary work levels."""
        global_registry().incr("kernels.lookups")
        return np.interp(np.asarray(work, dtype=float), self.w, self.e_checkpoint)

    def e_continue_at(self, work: ArrayLike) -> NDArray[np.float64]:
        """Interpolated ``E(W_{+1})`` at arbitrary work levels."""
        global_registry().incr("kernels.lookups")
        return np.interp(np.asarray(work, dtype=float), self.w, self.e_continue)

    def value_at(self, work: ArrayLike) -> NDArray[np.float64]:
        """Interpolated optimal-stopping ``V(w)``."""
        if self.value is None:
            raise ValueError("table was built without the value function")
        global_registry().incr("kernels.lookups")
        return np.interp(np.asarray(work, dtype=float), self.w, self.value)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        return {
            "table_format": _TABLE_FORMAT,
            "reservation": self.reservation,
            "w": [float(v) for v in self.w],
            "e_checkpoint": [float(v) for v in self.e_checkpoint],
            "e_continue": [float(v) for v in self.e_continue],
            "value": None if self.value is None else [float(v) for v in self.value],
            "w_int": self.w_int,
            "lattice_points": self.lattice_points,
            "boundaries": [] if self.boundaries is None
            else [float(v) for v in self.boundaries],
            "checkpoint_at_zero": self.checkpoint_at_zero,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PolicyTable":
        if data.get("table_format") != _TABLE_FORMAT:
            raise ValueError(f"unsupported table format: {data.get('table_format')!r}")
        value_raw = data.get("value")
        return cls(
            reservation=_number(data, "reservation"),
            w=_float_array(data, "w"),
            e_checkpoint=_float_array(data, "e_checkpoint"),
            e_continue=_float_array(data, "e_continue"),
            value=None if value_raw is None else _float_array(data, "value"),
            w_int=_number(data, "w_int"),
            lattice_points=int(_number(data, "lattice_points")),
            boundaries=_float_array(data, "boundaries"),
            checkpoint_at_zero=bool(data.get("checkpoint_at_zero", False)),
        )


def _number(data: dict[str, object], key: str) -> float:
    raw = data.get(key)
    if not isinstance(raw, (int, float)) or isinstance(raw, bool):
        raise ValueError(f"table field {key!r} must be a number, got {raw!r}")
    return float(raw)


def _float_array(data: dict[str, object], key: str) -> NDArray[np.float64]:
    raw = data.get(key)
    if not isinstance(raw, list):
        raise ValueError(f"table field {key!r} must be a list, got {type(raw).__name__}")
    out = np.empty(len(raw), dtype=float)
    for i, v in enumerate(raw):
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            raise ValueError(f"table field {key!r} must hold numbers, got {v!r}")
        out[i] = float(v)
    return out


def _exact_threshold(
    dyn: DynamicStrategy, w: NDArray[np.float64], advantage: NDArray[np.float64]
) -> float:
    """``W_int`` by exact brentq inside a table-derived bracket.

    The tabulated advantage locates the sign change cheaply; the bracket
    endpoints are then *confirmed against the exact advantage* (widened
    a few cells if lattice error misplaced them) before Brent iteration
    on the exact function — so the stored root never inherits lattice
    error. Falls back to the exact full scan when no usable bracket
    emerges (near-degenerate crossings at the grid edges).
    """
    if dyn.advantage(0.0) >= 0.0:
        return 0.0
    sign_change = np.nonzero((advantage[:-1] < 0.0) & (advantage[1:] >= 0.0))[0]
    if sign_change.size:
        lo_i = int(sign_change[0])
        hi_i = lo_i + 1
        a_lo = dyn.advantage(float(w[lo_i]))
        for _ in range(8):
            if a_lo < 0.0 or lo_i == 0:
                break
            lo_i -= 1
            a_lo = dyn.advantage(float(w[lo_i]))
        a_hi = dyn.advantage(float(w[hi_i]))
        for _ in range(8):
            if a_hi >= 0.0 or hi_i == w.size - 1:
                break
            hi_i += 1
            a_hi = dyn.advantage(float(w[hi_i]))
        if a_lo < 0.0 <= a_hi:
            return float(
                optimize.brentq(dyn.advantage, float(w[lo_i]), float(w[hi_i]), xtol=1e-10)
            )
    return dyn.crossing_point()


def _exact_boundaries(
    dyn: DynamicStrategy,
    w: NDArray[np.float64],
    advantage: NDArray[np.float64],
    w_int: float,
) -> tuple[NDArray[np.float64], bool]:
    """All decision-flip points of the exact advantage, plus its sign
    at zero work.

    Continuous checkpoint laws flip once (at ``w_int``, already exact —
    reused without another root find). Discrete checkpoint laws step
    ``F_C(R - w)`` down as the remaining budget crosses each atom, so
    the tabulated advantage can recross; every tabulated flip is
    confirmed against the exact advantage at the bracket endpoints and
    refined by Brent iteration on the exact function. brentq converges
    to a jump discontinuity just as it does to a root, so step-induced
    flips land within ``xtol`` of the step.
    """
    at_zero = dyn.advantage(0.0) >= 0.0
    dec = advantage >= 0.0
    flip_idx = np.nonzero(dec[:-1] != dec[1:])[0]
    boundaries: list[float] = []
    for i in flip_idx:
        if float(w[i]) <= w_int <= float(w[i + 1]) and not at_zero and not boundaries:
            boundaries.append(w_int)
            continue
        want_lo, want_hi = bool(dec[i]), bool(dec[i + 1])
        lo_i, hi_i = int(i), int(i) + 1
        a_lo = dyn.advantage(float(w[lo_i]))
        for _ in range(8):
            if (a_lo >= 0.0) == want_lo or lo_i == 0:
                break
            lo_i -= 1
            a_lo = dyn.advantage(float(w[lo_i]))
        a_hi = dyn.advantage(float(w[hi_i]))
        for _ in range(8):
            if (a_hi >= 0.0) == want_hi or hi_i == w.size - 1:
                break
            hi_i += 1
            a_hi = dyn.advantage(float(w[hi_i]))
        if (a_lo >= 0.0) == (a_hi >= 0.0):
            # Exact signs agree on both sides: a sub-cell lattice blip,
            # not a flip. Blips produce flip *pairs*, so parity holds.
            continue
        boundaries.append(
            float(
                optimize.brentq(dyn.advantage, float(w[lo_i]), float(w[hi_i]), xtol=1e-10)
            )
        )
    boundaries = [w_int if abs(b - w_int) <= 1e-8 else b for b in boundaries]
    if not at_zero and w_int not in boundaries:
        # The first entry into the checkpoint region must be w_int even
        # when the coarse grid missed or misplaced its bracket.
        boundaries = [b for b in boundaries if b > w_int]
        boundaries.append(w_int)
    merged: list[float] = []
    for b in sorted(set(boundaries)):
        if merged and b - merged[-1] <= 1e-9:
            merged.pop()  # sub-tolerance double flip: drop the pair
        else:
            merged.append(b)
    return np.asarray(merged, dtype=float), at_zero


def build_policy_table(
    R: float,
    task_law: Distribution,
    checkpoint_law: Distribution,
    *,
    base_points: int = 257,
    refine_points: int = 64,
    lattice_points: int = 4096,
    value_grid_points: int = 1601,
    with_value: bool = True,
) -> PolicyTable:
    """Tabulate the dynamic rule for ``(D_X, D_C, R)``.

    Raises ``ValueError`` when the laws are rejected by the dynamic
    strategy (support not in ``[0, inf)``), exactly like
    :class:`repro.core.dynamic.DynamicStrategy`.
    """
    start = time.perf_counter()
    dyn = DynamicStrategy(R, task_law, checkpoint_law)
    anchors = support_anchors(R, task_law, checkpoint_law)
    if checkpoint_law.is_discrete:
        # Each atom k steps F_C(R - w) at w = R - k; anchor the grid
        # there so no advantage recrossing slips between nodes.
        ks = np.arange(0.0, math.floor(R) + 1.0)
        has_mass = np.asarray(checkpoint_law.pmf(ks), dtype=float) > 0.0
        anchors.extend(float(R - k) for k in ks[has_mass] if 0.0 < R - k < R)

    # Pass 1: coarse advantage to bracket the threshold cheaply.
    w_coarse = adaptive_work_grid(
        R, base_points=base_points, refine_points=refine_points, anchors=anchors
    )
    adv_coarse = expected_if_checkpoint(R, checkpoint_law, w_coarse) - tabulate_continue(
        R, task_law, checkpoint_law, w_coarse, lattice_points=lattice_points
    )
    w_int = _exact_threshold(dyn, w_coarse, adv_coarse)
    dyn.pin_crossing(w_int)

    # Pass 2: final grid refined around the (now known) threshold.
    if 0.0 < w_int < R:
        anchors.append(w_int)
    w_grid = adaptive_work_grid(
        R, base_points=base_points, refine_points=refine_points, anchors=anchors
    )
    e_ckpt = expected_if_checkpoint(R, checkpoint_law, w_grid)
    e_cont = tabulate_continue(
        R, task_law, checkpoint_law, w_grid, lattice_points=lattice_points
    )
    boundaries, checkpoint_at_zero = _exact_boundaries(
        dyn, w_grid, e_ckpt - e_cont, w_int
    )

    value: NDArray[np.float64] | None = None
    if with_value:
        solution = OptimalStoppingSolver(
            R, task_law, checkpoint_law, grid_points=value_grid_points
        ).solve()
        value = np.interp(w_grid, solution.w_grid, solution.value)

    registry = global_registry()
    registry.incr("kernels.tables_built")
    registry.observe("kernels.table_build_seconds", time.perf_counter() - start)
    return PolicyTable(
        reservation=float(R),
        w=w_grid,
        e_checkpoint=e_ckpt,
        e_continue=e_cont,
        value=value,
        w_int=w_int,
        lattice_points=lattice_points,
        boundaries=boundaries,
        checkpoint_at_zero=checkpoint_at_zero,
    )
