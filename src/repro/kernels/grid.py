"""Adaptive work grids for policy tabulation.

Both decision curves are piecewise-smooth in the accumulated work
``w``: ``E(W_C) = w F_C(R - w)`` kinks wherever ``R - w`` crosses an
edge of the checkpoint law's support (the success probability saturates
at 0 or 1), and ``E(W_{+1})`` inherits the analogous kinks from the
task law through the integration limit ``R - w``. Linear interpolation
loses an order of accuracy across a kink, so the tabulation grid is a
uniform base lattice plus small refined clusters around every kink
image — and around the crossing threshold ``W_int``, where the sign of
the advantage (the quantity consumers actually read) changes.
"""

from __future__ import annotations

from typing import Sequence

import math

import numpy as np
from numpy.typing import NDArray

from .._validation import check_integer, check_positive
from ..distributions import Distribution

__all__ = ["adaptive_work_grid", "support_anchors"]


def support_anchors(
    R: float, task_law: Distribution, checkpoint_law: Distribution
) -> list[float]:
    """Work levels where the tabulated curves kink.

    For each finite support edge ``e`` of either law, the curves change
    analytic form at ``w = R - e`` (the slack ``R - w`` crosses ``e``).
    Only images strictly inside ``(0, R)`` matter — the endpoints are
    always grid nodes.
    """
    anchors: list[float] = []
    for law in (checkpoint_law, task_law):
        for edge in law.support:
            if math.isfinite(edge):
                anchors.append(R - float(edge))
    return [a for a in anchors if 0.0 < a < R]


def adaptive_work_grid(
    R: float,
    *,
    base_points: int = 257,
    refine_points: int = 64,
    anchors: Sequence[float] = (),
    refine_radius: float | None = None,
) -> NDArray[np.float64]:
    """Ascending grid over ``[0, R]``: uniform base + clusters at anchors.

    Each anchor inside ``[0, R]`` contributes ``refine_points`` extra
    nodes within ``refine_radius`` of it (default: one base cell), so
    the local resolution around kinks and threshold crossings is
    ``refine_points``-fold finer than the base lattice. Endpoints ``0``
    and ``R`` are always present; the result is sorted and duplicate-free.
    """
    R = check_positive(R, "R")
    base_points = check_integer(base_points, "base_points", minimum=2)
    refine_points = check_integer(refine_points, "refine_points", minimum=0)
    radius = R / (base_points - 1) if refine_radius is None else float(refine_radius)
    if radius <= 0.0:
        raise ValueError(f"refine_radius must be positive, got {radius}")
    parts = [np.linspace(0.0, R, base_points)]
    if refine_points > 0:
        for anchor in anchors:
            a = float(anchor)
            if not 0.0 <= a <= R:
                continue
            lo = max(0.0, a - radius)
            hi = min(R, a + radius)
            parts.append(np.linspace(lo, hi, refine_points))
    return np.unique(np.concatenate(parts))
