"""Runtime checkpoint-duration telemetry and policy-drift detection.

Every policy in the paper is conditioned on the checkpoint-duration law
``D_C`` — yet in production ``D_C`` is never given; it must be measured
from live checkpoint timings. :class:`DurationRecorder` closes that
loop: observed durations accumulate per advisor key (the canonical
checkpoint-law spec), materialize as an
:class:`repro.distributions.Empirical` law, can be re-fitted to a
parametric family via :mod:`repro.traces`, and are continuously
compared against the *assumed* law with a Kolmogorov–Smirnov distance.
When the distance exceeds a threshold, the recorder raises a
*policy-drift* signal — the operational cue that cached policies were
compiled against a law the hardware no longer follows and should be
recompiled from the refitted law.

The KS distance between the empirical CDF of ``n`` samples and the
assumed CDF is ``D_n = sup_x |F_n(x) - F(x)|``. Under the null (samples
drawn from the assumed law), ``P(D_n > d) <= 2 exp(-2 n d^2)``
(Dvoretzky–Kiefer–Wolfowitz), so thresholds can be chosen per false-
alarm rate with :func:`ks_threshold`.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import ArrayLike, NDArray

    from ..distributions import Distribution
    from ..traces.selection import SelectionReport

__all__ = ["DriftReport", "DurationRecorder", "ks_distance", "ks_threshold"]


def ks_distance(samples: "NDArray[np.float64]", law: "Distribution") -> float:
    """Two-sided KS statistic ``sup_x |ECDF(x) - F(x)|`` of a sample.

    Evaluated exactly at the sorted sample points (the supremum of the
    difference between a right-continuous step function and a monotone
    CDF is attained at a step).
    """
    arr = np.sort(np.asarray(samples, dtype=float).ravel())
    n = arr.size
    if n == 0:
        raise ValueError("need at least 1 observation for a KS distance")
    cdf = np.asarray(law.cdf(arr), dtype=float)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(np.max(np.maximum(ecdf_hi - cdf, cdf - ecdf_lo)))


def ks_threshold(n: int, alpha: float = 0.01) -> float:
    """KS rejection threshold at false-alarm rate ``alpha`` (DKW bound).

    ``d = sqrt(ln(2 / alpha) / (2 n))``: under the assumed law,
    ``P(D_n > d) <= alpha``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must lie in (0, 1), got {alpha}")
    return math.sqrt(math.log(2.0 / alpha) / (2.0 * n))


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one drift check for one advisor key.

    ``drifted`` is ``None`` when there were not enough samples to
    decide; otherwise the boolean KS verdict at ``threshold``.
    """

    key: str
    n_samples: int
    ks: float | None
    threshold: float
    drifted: bool | None

    def to_dict(self) -> dict[str, object]:
        return {
            "key": self.key,
            "n_samples": self.n_samples,
            "ks_distance": self.ks,
            "threshold": self.threshold,
            "drifted": self.drifted,
        }


class DurationRecorder:
    """Accumulate observed checkpoint durations per advisor key.

    Parameters
    ----------
    window:
        Per-key ring-buffer size: only the most recent ``window``
        observations participate in fitting and drift checks, so the
        detector tracks the *current* regime instead of averaging over
        the process lifetime.
    min_samples:
        Below this count a drift check returns ``drifted=None``
        (insufficient evidence) instead of a verdict.
    threshold:
        KS-distance drift threshold; ``None`` derives it per-check from
        the sample count via :func:`ks_threshold` at ``alpha``.
    alpha:
        False-alarm rate used when ``threshold`` is ``None``.
    """

    def __init__(
        self,
        window: int = 4096,
        *,
        min_samples: int = 30,
        threshold: float | None = None,
        alpha: float = 0.01,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if min_samples < 2:
            raise ValueError(f"min_samples must be >= 2, got {min_samples}")
        if threshold is not None and not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must lie in (0, 1), got {threshold}")
        self.window = window
        self.min_samples = min_samples
        self.threshold = threshold
        self.alpha = alpha
        self._lock = threading.Lock()
        self._samples: dict[str, deque[float]] = {}
        self.total_recorded = 0

    # -- recording -------------------------------------------------------

    def record(self, key: str, seconds: float) -> None:
        """Record one observed checkpoint duration for ``key``."""
        seconds = float(seconds)
        if not math.isfinite(seconds) or seconds < 0.0:
            raise ValueError(f"duration must be finite and >= 0, got {seconds}")
        with self._lock:
            bucket = self._samples.get(key)
            if bucket is None:
                bucket = self._samples[key] = deque(maxlen=self.window)
            bucket.append(seconds)
            self.total_recorded += 1

    def record_many(self, key: str, seconds: "ArrayLike") -> int:
        """Record a batch of durations; returns how many were accepted."""
        arr = np.asarray(seconds, dtype=float).ravel()
        if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr < 0.0)):
            raise ValueError("durations must be finite and >= 0")
        with self._lock:
            bucket = self._samples.get(key)
            if bucket is None:
                bucket = self._samples[key] = deque(maxlen=self.window)
            bucket.extend(float(v) for v in arr)
            self.total_recorded += int(arr.size)
        return int(arr.size)

    # -- reading ---------------------------------------------------------

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._samples)

    def count(self, key: str) -> int:
        with self._lock:
            bucket = self._samples.get(key)
            return len(bucket) if bucket else 0

    def samples(self, key: str) -> "NDArray[np.float64]":
        """The current observation window for ``key`` (oldest first)."""
        with self._lock:
            bucket = self._samples.get(key)
            return np.asarray(bucket if bucket else [], dtype=float)

    def empirical(self, key: str) -> "Distribution":
        """The window materialized as an :class:`Empirical` law."""
        from ..distributions import Empirical

        return Empirical(self.samples(key))

    def refit(self, key: str, families: list[str] | None = None) -> "SelectionReport":
        """Re-fit the window through :mod:`repro.traces` model selection.

        The report's ``best.distribution`` is the law to recompile
        policies with once drift has been signalled.
        """
        from ..traces.selection import select_best

        return select_best(self.samples(key), families=families)

    # -- drift -----------------------------------------------------------

    def check_drift(self, key: str, assumed: "Distribution | str | None" = None) -> DriftReport:
        """KS-compare the window for ``key`` against the assumed law.

        ``assumed`` defaults to parsing ``key`` itself as a law-spec
        string — the advisor keys *are* canonical checkpoint-law specs,
        so the assumed law is recoverable from the key alone.
        """
        if assumed is None:
            assumed = key
        if isinstance(assumed, str):
            from ..cli import parse_law

            assumed_law = parse_law(assumed)
        else:
            assumed_law = assumed
        arr = self.samples(key)
        n = int(arr.size)
        threshold = (
            self.threshold
            if self.threshold is not None
            else (ks_threshold(n, self.alpha) if n else 1.0)
        )
        if n < self.min_samples:
            return DriftReport(key, n, None, threshold, None)
        ks = ks_distance(arr, assumed_law)
        return DriftReport(key, n, ks, threshold, ks > threshold)

    def check_all(self) -> dict[str, DriftReport]:
        """Drift reports for every key with recorded samples.

        Keys that are not parseable law specs (no assumed law to
        compare against) yield an undecided report instead of failing
        the whole sweep.
        """
        reports: dict[str, DriftReport] = {}
        for key in self.keys():
            try:
                reports[key] = self.check_drift(key)
            except ValueError:
                reports[key] = DriftReport(
                    key, self.count(key), None, self.threshold or 1.0, None
                )
        return reports

    def snapshot(self) -> dict[str, object]:
        """JSON-serializable per-key sample counts and drift verdicts."""
        reports = self.check_all()
        return {
            "window": self.window,
            "min_samples": self.min_samples,
            "total_recorded": self.total_recorded,
            "keys": {key: report.to_dict() for key, report in reports.items()},
            "drifted": sorted(
                key for key, report in reports.items() if report.drifted
            ),
        }

    def clear(self, key: str | None = None) -> None:
        """Drop observations (for one key, or all of them)."""
        with self._lock:
            if key is None:
                self._samples.clear()
                self.total_recorded = 0
            else:
                self._samples.pop(key, None)
