"""Dependency-free span tracing for the advisor stack.

A *trace* follows one logical request end-to-end: the client opens a
root span, sends its ``trace_id`` inside the protocol envelope, the
server opens a child span under it, and every interesting stage
(policy compile, cache access, local fallback) nests further children.
Completed spans land in a bounded in-memory ring buffer that drops
oldest-first, so a long-lived server keeps a recent window without
unbounded growth; :meth:`Tracer.export_jsonl` renders the window as
JSON lines for offline assembly of cross-process traces.

The tracer is built to be *non-perturbing*:

* a disabled tracer hands out one shared no-op span — no allocation,
  no locking, no clock reads on the hot path;
* an enabled tracer only appends to a ``deque`` under a lock at span
  *finish*; it never influences the instrumented computation.

Timestamps use ``time.perf_counter`` so parent/child interval nesting
is exact within a process; ``wall_time`` carries the epoch time of the
span start for cross-process correlation.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from collections import deque
from types import TracebackType
from typing import Any, Iterator

__all__ = ["NULL_SPAN", "Span", "Tracer", "new_span_id", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 128-bit trace id rendered as 32 hex characters."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 64-bit span id rendered as 16 hex characters."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed operation within a trace.

    Spans are created by :meth:`Tracer.span`; user code only sets tags
    and lets the context manager close them. ``start``/``end`` are
    ``perf_counter`` readings (monotonic, comparable in-process);
    ``wall_time`` is the epoch second the span opened.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "wall_time",
        "tags",
        "status",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        # True epoch timestamp for cross-process trace correlation;
        # durations come from the perf_counter pair above.
        self.wall_time = time.time()  # lint: allow[REP004]
        self.end: float | None = None
        self.tags: dict[str, Any] = {}
        self.status = "ok"

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def set_tag(self, key: str, value: Any) -> "Span":
        self.tags[key] = value
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_seconds": None if self.end is None else self.end - self.start,
            "wall_time": self.wall_time,
            "status": self.status,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.3f}ms" if self.finished else "open"
        return f"Span({self.name!r}, trace={self.trace_id[:8]}, {state})"


class _NullSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"
    tags: dict[str, Any] = {}
    finished = True
    duration = 0.0

    def set_tag(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __setattr__(self, key: str, value: Any) -> None:
        # Inert: instrumentation may set status/tags without guards.
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


NULL_SPAN = _NullSpan()

#: Ambient current span, per execution context (thread / asyncio task).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class _ActiveSpan:
    """Context manager pairing a live :class:`Span` with its tracer."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._token: contextvars.Token[Span | None] | None = None

    def __enter__(self) -> Span:
        self._token = _CURRENT.set(self.span)
        return self.span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.span.status = "error"
            self.span.set_tag("error", f"{exc_type.__name__}: {exc}")
        self._tracer.finish(self.span)


class Tracer:
    """Span factory with a bounded ring buffer of finished spans.

    Parameters
    ----------
    capacity:
        Ring-buffer size; once full, the *oldest* finished span is
        dropped for each new one (``spans_dropped`` counts them).
    enabled:
        When ``False`` every :meth:`span` call returns the shared
        :data:`NULL_SPAN` context manager — the disabled tracer costs
        one attribute check per call site.
    """

    def __init__(self, capacity: int = 2048, *, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=capacity)
        self.spans_started = 0
        self.spans_finished = 0
        self.spans_dropped = 0

    # -- span lifecycle --------------------------------------------------

    def span(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        tags: dict[str, Any] | None = None,
    ) -> "_ActiveSpan | _NullSpan":
        """Open a child span of the ambient (or explicitly given) parent.

        Usable as a context manager; the span is finished and buffered
        on exit. With the tracer disabled this returns the shared no-op
        span immediately.
        """
        if not self.enabled:
            return NULL_SPAN
        if trace_id is None or parent_id is None:
            current = _CURRENT.get()
            if current is not None:
                trace_id = trace_id if trace_id is not None else current.trace_id
                parent_id = parent_id if parent_id is not None else current.span_id
        if trace_id is None:
            trace_id = new_trace_id()
        span = Span(name, trace_id, new_span_id(), parent_id)
        if tags:
            span.tags.update(tags)
        with self._lock:
            self.spans_started += 1
        return _ActiveSpan(self, span)

    def finish(self, span: Span) -> None:
        """Close ``span`` and push it into the ring buffer."""
        if span.end is None:
            span.end = time.perf_counter()
        with self._lock:
            self.spans_finished += 1
            if len(self._ring) == self.capacity:
                self.spans_dropped += 1
            self._ring.append(span)

    @staticmethod
    def current_span() -> Span | None:
        """The ambient span of this execution context, if any."""
        return _CURRENT.get()

    def context(self) -> dict[str, str] | None:
        """Wire-format trace context of the ambient span (or ``None``).

        This is the payload the service protocol carries in the
        request envelope's ``trace`` field.
        """
        current = _CURRENT.get()
        if current is None or not self.enabled:
            return None
        return {"trace_id": current.trace_id, "span_id": current.span_id}

    # -- inspection ------------------------------------------------------

    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Snapshot of buffered finished spans, optionally by trace."""
        with self._lock:
            spans = list(self._ring)
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans())

    @property
    def open_spans(self) -> int:
        """Spans started but not yet finished."""
        with self._lock:
            return self.spans_started - self.spans_finished

    def export_jsonl(self) -> str:
        """The buffered spans as JSON lines (oldest first)."""
        return "\n".join(
            json.dumps(s.to_dict(), sort_keys=True, allow_nan=False)
            for s in self.spans()
        )

    def clear(self) -> None:
        """Drop buffered spans and reset the accounting."""
        with self._lock:
            self._ring.clear()
            self.spans_started = 0
            self.spans_finished = 0
            self.spans_dropped = 0

    def stats(self) -> dict[str, object]:
        """Buffer occupancy and lifecycle counters."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "capacity": self.capacity,
                "buffered": len(self._ring),
                "started": self.spans_started,
                "finished": self.spans_finished,
                "dropped": self.spans_dropped,
            }
