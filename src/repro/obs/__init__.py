"""Observability for the reproduction: tracing, metrics, drift telemetry.

Three legs, each usable on its own:

* :mod:`repro.obs.tracer` — a dependency-free span tracer with a
  bounded ring buffer and JSON-lines export; trace ids travel inside
  the service protocol envelope so one request can be followed
  client → server → advisor → cache-compile, including
  ``local-fallback`` hops taken by the resilient client;
* :mod:`repro.obs.metrics` — the unified :class:`MetricsRegistry`
  (counters / gauges / histograms) behind
  :class:`repro.service.ServiceMetrics`, with strict-JSON snapshots
  and Prometheus text exposition (``stats`` op with
  ``format=prometheus``, ``repro metrics`` CLI);
* :mod:`repro.obs.drift` — :class:`DurationRecorder`: observed
  checkpoint durations per advisor key, materialized as
  :class:`repro.distributions.Empirical`, re-fitted via
  :mod:`repro.traces`, and KS-tested against the assumed ``D_C`` to
  raise a *policy-drift* signal (``repro serve --drift-check``).
"""

from .drift import DriftReport, DurationRecorder, ks_distance, ks_threshold
from .metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    global_registry,
    set_global_registry,
)
from .tracer import NULL_SPAN, Span, Tracer, new_span_id, new_trace_id

__all__ = [
    "DEFAULT_BUCKETS",
    "DriftReport",
    "DurationRecorder",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "global_registry",
    "ks_distance",
    "ks_threshold",
    "new_span_id",
    "new_trace_id",
    "set_global_registry",
]
