"""Unified metrics: counters, gauges, histograms, Prometheus exposition.

:class:`MetricsRegistry` is the one sink every subsystem records into —
the advisor service (request/error/cache counters, latency histograms),
the simulation engine (event tallies), policy compilation and the FFT
convolution memo. One lock serializes access so blocking CLI paths,
the asyncio server's executor threads and the test suite can share an
instance.

Two read formats are supported:

* :meth:`MetricsRegistry.snapshot` — a *strict-JSON* dict (no ``NaN`` /
  ``Infinity`` tokens: empty-histogram statistics serialize as
  ``null``, quantiles are capped at the largest observed value);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (version 0.0.4), served by the ``stats`` op with
  ``{"format": "prometheus"}`` and by ``repro metrics``.

A process-wide default registry (:func:`global_registry`) collects
measurements from code paths that have no natural injection point,
such as :func:`repro.distributions.iid_sum`'s FFT fallback and the
event-level simulation engine.
"""

from __future__ import annotations

import math
import re
import threading
import time
from collections import defaultdict
from types import TracebackType

__all__ = ["Histogram", "MetricsRegistry", "global_registry", "set_global_registry"]

#: Histogram bucket upper bounds in seconds (log-spaced, ~Prometheus
#: style): 10 us .. ~100 s, plus a +inf overflow bucket.
DEFAULT_BUCKETS = tuple(10.0 ** (e / 2.0) for e in range(-10, 5)) + (math.inf,)


def _json_safe(value: float) -> float | None:
    """Non-finite floats become ``None`` so ``json.dumps`` emits ``null``."""
    return value if math.isfinite(value) else None


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    Not thread-safe on its own; :class:`MetricsRegistry` serializes all
    access under its lock.
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or buckets[-1] != math.inf:
            raise ValueError("buckets must be sorted and end with +inf")
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = max(float(value), 0.0)
        for i, ub in enumerate(self.buckets):
            if value <= ub:
                self.counts[i] += 1
                break
        self.total += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile.

        The estimate is the upper bound of the bucket holding the
        ``q``-rank observation, capped at the largest *observed* value
        so the overflow (+inf) bucket can never surface ``inf`` — the
        cap also tightens every estimate to the attained range.
        Returns ``nan`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile level must lie in [0, 1], got {q}")
        if self.total == 0:
            return math.nan
        rank = q * self.total
        seen = 0
        for i, ub in enumerate(self.buckets):
            seen += self.counts[i]
            if seen >= rank:
                return min(ub, self.max)
        return self.max

    def snapshot(self) -> dict[str, object]:
        """Strict-JSON summary: non-finite statistics serialize as null."""
        empty = self.total == 0
        return {
            "count": self.total,
            "sum_seconds": _json_safe(self.sum),
            "mean_seconds": None if empty else _json_safe(self.sum / self.total),
            "min_seconds": None if empty else _json_safe(self.min),
            "max_seconds": None if empty else _json_safe(self.max),
            "p50_seconds": None if empty else _json_safe(self.quantile(0.5)),
            "p99_seconds": None if empty else _json_safe(self.quantile(0.99)),
            "buckets": {
                ("inf" if math.isinf(ub) else f"{ub:.6g}"): c
                for ub, c in zip(self.buckets, self.counts)
                if c
            },
        }


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(namespace: str, name: str) -> str:
    """A metric name sanitized to the Prometheus grammar."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"{namespace}_{sanitized}" if namespace else sanitized


def _prom_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return f"{value:.10g}"


class MetricsRegistry:
    """Thread-safe counters + gauges + named histograms.

    Counter and histogram names are free-form dotted strings; the
    service uses ``requests.<op>``, ``errors.<kind>``, ``cache.*``,
    ``advise.*``; the simulation engine uses ``sim.*``; the FFT memo
    uses ``fft_sum.*``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: defaultdict[str, int] = defaultdict(int)
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        # Monotonic: uptime is a duration, and wall-clock adjustments
        # (NTP slew, manual changes) must not bend it (REP004).
        self._started = time.monotonic()

    # -- recording -------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        with self._lock:
            self._counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to the instantaneous ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    class _Timer:
        def __init__(self, registry: "MetricsRegistry", name: str) -> None:
            self._registry = registry
            self._name = name

        def __enter__(self) -> "MetricsRegistry._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(
            self,
            exc_type: type[BaseException] | None,
            exc: BaseException | None,
            tb: TracebackType | None,
        ) -> None:
            self._registry.observe(self._name, time.perf_counter() - self._t0)

    def time(self, name: str) -> "MetricsRegistry._Timer":
        """Context manager recording the block's wall time into ``name``."""
        return self._Timer(self, name)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        """Current value of gauge ``name`` (``None`` if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def snapshot(self) -> dict[str, object]:
        """Strict-JSON view of every counter, gauge and histogram."""
        with self._lock:
            return {
                "uptime_seconds": time.monotonic() - self._started,
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def absorb(self, other: "MetricsRegistry") -> None:
        """Merge ``other``'s counters/gauges/histograms into this registry.

        Counters add, gauges overwrite, histogram buckets add
        elementwise (both sides must use the default bucket layout).
        Used to fold subsystem-local registries (e.g. the process-wide
        default) into a service registry before rendering.
        """
        snap_counters: dict[str, int]
        with other._lock:
            snap_counters = dict(other._counters)
            snap_gauges = dict(other._gauges)
            snap_hists = {
                name: (list(h.counts), h.total, h.sum, h.min, h.max, h.buckets)
                for name, h in other._histograms.items()
            }
        with self._lock:
            for name, value in snap_counters.items():
                self._counters[name] += value
            self._gauges.update(snap_gauges)
            for name, (counts, total, sum_, min_, max_, buckets) in snap_hists.items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram(buckets)
                elif hist.buckets != buckets:
                    raise ValueError(f"bucket layout mismatch for histogram {name!r}")
                for i, c in enumerate(counts):
                    hist.counts[i] += c
                hist.total += total
                hist.sum += sum_
                hist.min = min(hist.min, min_)
                hist.max = max(hist.max, max_)

    # -- Prometheus exposition -------------------------------------------

    def render_prometheus(self, namespace: str = "repro") -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Counters become ``<ns>_<name>_total``, gauges ``<ns>_<name>``,
        histograms the standard ``_bucket{le=...}`` / ``_sum`` /
        ``_count`` triplet with cumulative bucket counts.
        """
        with self._lock:
            counters = dict(sorted(self._counters.items()))
            gauges = dict(sorted(self._gauges.items()))
            histograms = {
                name: (tuple(h.counts), h.total, h.sum, h.buckets)
                for name, h in sorted(self._histograms.items())
            }
            uptime = time.monotonic() - self._started
        lines: list[str] = []

        def emit(name: str, kind: str, help_text: str) -> str:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            return name

        uptime_name = _prom_name(namespace, "uptime_seconds")
        emit(uptime_name, "gauge", "Seconds since the registry was created.")
        lines.append(f"{uptime_name} {_prom_value(uptime)}")

        for name, value in counters.items():
            prom = _prom_name(namespace, name) + "_total"
            emit(prom, "counter", f"Counter {name!r}.")
            lines.append(f"{prom} {value}")

        for name, value in gauges.items():
            prom = _prom_name(namespace, name)
            emit(prom, "gauge", f"Gauge {name!r}.")
            lines.append(f"{prom} {_prom_value(value)}")

        for name, (counts, total, sum_, buckets) in histograms.items():
            prom = _prom_name(namespace, name)
            emit(prom, "histogram", f"Histogram {name!r} (seconds).")
            cumulative = 0
            for ub, count in zip(buckets, counts):
                cumulative += count
                le = "+Inf" if math.isinf(ub) else _prom_value(ub)
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{prom}_sum {_prom_value(sum_)}")
            lines.append(f"{prom}_count {total}")

        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero all counters, gauges and histograms."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._started = time.monotonic()


#: Process-wide default registry for instrumentation points that have
#: no injection seam (simulation engine, FFT memo). Swappable in tests.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous
