"""Instrumentation: turning applications into task-duration traces.

The paper's laws ``D_X`` are meant to be "learned from traces". This
module closes the loop: it executes an
:class:`~repro.workflows.checkpointable.IterativeApplication` under a
deterministic *machine model* (flop rate plus multiplicative noise, the
standard first-order model for shared-platform jitter) and records the
per-iteration durations; the resulting trace feeds
:mod:`repro.traces.fitting` to recover a parametric ``D_X``, or a
:class:`~repro.simulation.workload.TraceTaskSource` directly.

Wall-clock timing of the actual Python execution is also supported
(``measure="wallclock"``) for users running on real hardware; the
synthetic model is the default because it is reproducible and captures
the *shape* the strategies care about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from numpy.typing import NDArray

from .._validation import as_generator, check_integer, check_positive
from ..distributions import Distribution, RngLike
from .checkpointable import IterativeApplication

__all__ = ["MachineModel", "IterationTrace", "run_instrumented"]


@dataclass(frozen=True)
class MachineModel:
    """First-order timing model: ``duration = work / flops * noise``.

    Parameters
    ----------
    flops_per_second:
        Sustained floating-point rate of the (simulated) machine.
    noise_law:
        Multiplicative jitter law (mean ~1), e.g.
        ``LogNormal.from_moments(1.0, 0.1)`` for 10% CV contention
        noise; ``None`` for a noiseless machine.
    overhead_seconds:
        Fixed per-task overhead (launch latency, synchronization).
    """

    flops_per_second: float
    noise_law: Distribution | None = None
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.flops_per_second, "flops_per_second")
        if self.overhead_seconds < 0.0:
            raise ValueError("overhead_seconds must be >= 0")

    def duration(self, work_flops: float, rng: np.random.Generator) -> float:
        """Simulated duration of a task costing ``work_flops``."""
        base = work_flops / self.flops_per_second + self.overhead_seconds
        if self.noise_law is None:
            return base
        noise = float(self.noise_law.sample(1, rng)[0])
        return base * max(noise, 0.0)


@dataclass
class IterationTrace:
    """Recorded per-iteration durations and residual history."""

    durations: list[float] = field(default_factory=list)
    residuals: list[float] = field(default_factory=list)
    converged: bool = False

    @property
    def total_time(self) -> float:
        """Sum of task durations."""
        return float(np.sum(self.durations))

    def as_array(self) -> NDArray[np.float64]:
        """Durations as a numpy array (for fitting)."""
        return np.asarray(self.durations, dtype=float)


def run_instrumented(
    app: IterativeApplication,
    machine: MachineModel,
    rng: RngLike = None,
    *,
    max_iterations: int = 100_000,
    measure: str = "model",
) -> IterationTrace:
    """Run ``app`` to convergence, recording one duration per iteration.

    Parameters
    ----------
    app:
        The application (advanced in place).
    machine:
        Timing model used when ``measure="model"``.
    rng:
        Seed or generator for the model's noise.
    max_iterations:
        Abort bound.
    measure:
        ``"model"`` (synthetic durations from ``machine``; reproducible)
        or ``"wallclock"`` (actual elapsed time of each ``iterate()``).
    """
    if measure not in ("model", "wallclock"):
        raise ValueError(f"measure must be 'model' or 'wallclock', got {measure!r}")
    max_iterations = check_integer(max_iterations, "max_iterations", minimum=1)
    # Wallclock mode draws nothing from the model, so it needs no rng;
    # model mode requires an explicit seed/generator (REP001).
    gen = as_generator(rng) if measure == "model" else None
    trace = IterationTrace()
    while not app.converged and len(trace.durations) < max_iterations:
        if measure == "wallclock":
            start = time.perf_counter()
            residual = app.iterate()
            elapsed = time.perf_counter() - start
        else:
            residual = app.iterate()
            elapsed = machine.duration(app.work_per_iteration, gen)
        trace.durations.append(elapsed)
        trace.residuals.append(residual)
    trace.converged = app.converged
    return trace
