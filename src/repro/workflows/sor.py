"""Successive Over-Relaxation (paper references [7, 25]).

Weighted Gauss-Seidel: ``(D + w L) x' = w b - (w U + (w - 1) D) x``
with relaxation factor ``w`` in ``(0, 2)``. ``w = 1`` recovers
Gauss-Seidel; the optimal ``w`` for the 2-D Poisson model problem is
``2 / (1 + sin(pi h))``, which :func:`optimal_omega_poisson_2d` exposes.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray
from scipy.sparse.linalg import spsolve_triangular

from .._validation import check_in_range, check_integer
from .linear_base import SparseLinearSolver

__all__ = ["SORSolver", "optimal_omega_poisson_2d"]


def optimal_omega_poisson_2d(n: int) -> float:
    """Asymptotically optimal relaxation factor for :func:`poisson_2d`.

    ``w* = 2 / (1 + sin(pi / (n + 1)))`` for the ``n x n`` interior grid
    (Young's classical result [25]).
    """
    n = check_integer(n, "n", minimum=2)
    return 2.0 / (1.0 + math.sin(math.pi / (n + 1)))


class SORSolver(SparseLinearSolver):
    """SOR sweeps for ``A x = b`` with relaxation factor ``omega``."""

    def __init__(
        self,
        A: sp.spmatrix,
        b: NDArray[np.float64],
        x0=None,
        *,
        omega: float = 1.5,
        tolerance: float = 1e-8,
    ) -> None:
        super().__init__(A, b, x0, tolerance=tolerance)
        self.omega = check_in_range(omega, "omega", 0.0, 2.0, lo_open=True, hi_open=True)
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("SOR requires a nonzero diagonal")
        D = sp.diags(diag)
        L = sp.tril(self.A, k=-1)
        U = sp.triu(self.A, k=1)
        self._left = (D + self.omega * L).tocsr()
        self._right = (self.omega * U + (self.omega - 1.0) * D).tocsr()

    def _step(self) -> None:
        rhs = self.omega * self.b - self._right @ self.x
        self.x = spsolve_triangular(self._left, rhs, lower=True)

    @property
    def work_per_iteration(self) -> float:
        return 4.0 * self.A.nnz + 10.0 * self.b.size
