"""General (non-IID) linear workflows — the paper's Section 4.1 instance.

The paper's general setting gives each task ``T_i`` its own duration
law ``D_X^(i)`` and its own checkpoint law ``D_C^(i)``, all independent,
and observes that the *dynamic* strategy "would be easy to extend" to
it (conclusion). This module implements that extension:

* :class:`WorkflowTask` — one stage with its two laws;
* :class:`LinearWorkflow` — an ordered chain, validated as a simple
  path via the shared topology builder
  :func:`repro.workflows.coupled.graph.build_chain_graph` (rejecting
  accidental DAGs) — a linear chain *is* the degenerate single-path
  instance of :class:`~repro.workflows.coupled.WorkflowGraph`, see
  :meth:`~repro.workflows.coupled.WorkflowGraph.from_chain` /
  :meth:`~repro.workflows.coupled.WorkflowGraph.as_chain`;
* :meth:`LinearWorkflow.should_checkpoint` — the per-boundary rule of
  Section 4.3 evaluated with the *next* task's duration law and the
  *current* task's checkpoint law (the one-step comparison the paper
  describes, stage-heterogeneous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from .._validation import check_in_range, check_integer, check_positive
from ..core.dynamic import expected_if_checkpoint, expected_if_continue
from ..distributions import Distribution
from .coupled.graph import build_chain_graph

__all__ = ["WorkflowTask", "LinearWorkflow"]


@dataclass(frozen=True)
class WorkflowTask:
    """One stage of a linear workflow.

    Attributes
    ----------
    name:
        Stage label (unique within a workflow).
    duration_law:
        ``D_X^(i)``: the stage's execution-time law, support in
        ``[0, inf)``.
    checkpoint_law:
        ``D_C^(i)``: the law of checkpointing *after* this stage
        (stages produce different data footprints, hence different
        checkpoint costs — the paper's motivation for per-task laws).
    """

    name: str
    duration_law: Distribution
    checkpoint_law: Distribution

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.duration_law.lower < 0.0:
            raise ValueError(f"task {self.name!r}: duration law must be on [0, inf)")
        if self.checkpoint_law.lower < 0.0:
            raise ValueError(f"task {self.name!r}: checkpoint law must be on [0, inf)")


class LinearWorkflow:
    """An ordered chain of :class:`WorkflowTask` stages.

    Parameters
    ----------
    tasks:
        The stages in execution order; names must be unique.
    cyclic:
        When True, the chain repeats (iterative applications: the same
        kernel sequence applied to successive data sets); stage ``i``
        then means ``tasks[i % len(tasks)]``.
    """

    def __init__(self, tasks: Sequence[WorkflowTask], *, cyclic: bool = False) -> None:
        tasks = list(tasks)
        if not tasks:
            raise ValueError("workflow needs at least one task")
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names: {names}")
        self.tasks = tasks
        self.cyclic = cyclic
        self._graph = build_chain_graph([t.name for t in tasks], cyclic=cyclic)

    @property
    def graph(self) -> nx.DiGraph:
        """The validated chain as a networkx DiGraph (read-only view)."""
        return self._graph.copy(as_view=True)

    def __len__(self) -> int:
        return len(self.tasks)

    def task_at(self, index: int) -> WorkflowTask:
        """Stage executed at position ``index`` (wraps when cyclic)."""
        index = check_integer(index, "index", minimum=0)
        if self.cyclic:
            return self.tasks[index % len(self.tasks)]
        if index >= len(self.tasks):
            raise IndexError(f"task index {index} out of range for acyclic chain")
        return self.tasks[index]

    def has_next(self, index: int) -> bool:
        """Whether a stage exists after position ``index``."""
        return self.cyclic or index + 1 < len(self.tasks)

    @classmethod
    def iid(cls, duration_law: Distribution, checkpoint_law: Distribution, name: str = "task") -> "LinearWorkflow":
        """The paper's IID instance as a 1-stage cyclic chain."""
        return cls([WorkflowTask(name, duration_law, checkpoint_law)], cyclic=True)

    # -- the extended dynamic rule -------------------------------------------

    def expected_if_checkpoint(self, index: int, work_done: float, budget: float) -> float:
        """``E(W_C)`` after stage ``index`` with ``budget`` time left."""
        law = self.task_at(index).checkpoint_law
        return float(expected_if_checkpoint(budget + work_done, law, work_done)) if budget + work_done > 0 else 0.0

    def expected_if_continue(self, index: int, work_done: float, budget: float) -> float:
        """``E(W_+1)``: run stage ``index + 1`` then checkpoint with
        *its* checkpoint law."""
        if not self.has_next(index):
            return 0.0
        nxt = self.task_at(index + 1)
        return expected_if_continue(
            budget + work_done, nxt.duration_law, nxt.checkpoint_law, work_done
        )

    def should_checkpoint(self, index: int, work_done: float, budget: float) -> bool:
        """Section 4.3 rule generalized to per-stage laws.

        Parameters
        ----------
        index:
            Stage just completed.
        work_done:
            Accumulated (un-checkpointed) work.
        budget:
            Time remaining in the reservation *after* the completed
            stage (so ``R = budget + work_done`` in the paper's frame).

        Notes
        -----
        After the final stage of an acyclic chain, checkpointing is
        always recommended (there is nothing to continue into).
        """
        work_done = check_in_range(work_done, "work_done", 0.0, float("inf"))
        check_positive(budget + work_done, "budget + work_done")
        if not self.has_next(index):
            return True
        e_ckpt = self.expected_if_checkpoint(index, work_done, budget)
        e_cont = self.expected_if_continue(index, work_done, budget)
        return e_ckpt >= e_cont
