"""Shared machinery for the sparse iterative solvers.

Each solver is an :class:`~repro.workflows.checkpointable.IterativeApplication`
whose task unit is one iteration (one sweep for stationary methods, one
step for CG, one restart cycle for GMRES). State is serialized with the
solver's full recurrence vectors so that a restore resumes *bit-exact*
— the property the test suite checks, since it is what makes the
checkpoint at a task boundary semantically valid.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray

from .checkpointable import IterativeApplication

__all__ = ["SparseLinearSolver"]


class SparseLinearSolver(IterativeApplication):
    """Base class: iteratively solves ``A x = b`` for sparse ``A``.

    Parameters
    ----------
    A:
        Square sparse matrix (converted to CSR).
    b:
        Right-hand side.
    x0:
        Initial guess (defaults to zeros).
    tolerance:
        Relative-residual convergence target ``||b - A x|| / ||b||``.
    """

    def __init__(
        self,
        A: sp.spmatrix,
        b: NDArray[np.float64],
        x0: NDArray[np.float64] | None = None,
        *,
        tolerance: float = 1e-8,
    ) -> None:
        A = sp.csr_matrix(A)
        if A.shape[0] != A.shape[1]:
            raise ValueError(f"A must be square, got shape {A.shape}")
        b = np.asarray(b, dtype=float).ravel()
        if b.size != A.shape[0]:
            raise ValueError(f"b has size {b.size}, expected {A.shape[0]}")
        if tolerance <= 0.0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.A = A
        self.b = b
        self.tolerance = float(tolerance)
        self._b_norm = float(np.linalg.norm(b)) or 1.0
        self.x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=float).copy()
        if self.x.size != b.size:
            raise ValueError("x0 has the wrong size")
        self._iterations = 0
        self._residual = self._compute_residual()

    # -- IterativeApplication protocol ------------------------------------

    @property
    def residual(self) -> float:
        return self._residual

    @property
    def iteration_count(self) -> int:
        return self._iterations

    @property
    def work_per_iteration(self) -> float:
        # One sparse matvec (2 flops per nonzero) plus O(n) vector work;
        # subclasses with heavier iterations override.
        return 2.0 * self.A.nnz + 8.0 * self.b.size

    def iterate(self) -> float:
        """Advance one iteration and refresh the cached residual."""
        self._step()
        self._iterations += 1
        self._residual = self._compute_residual()
        return self._residual

    def solve_to_convergence(self, max_iterations: int = 100_000) -> int:
        """Iterate until convergence; returns iterations used.

        Raises ``RuntimeError`` if the budget is exhausted (divergence
        or far-too-loose tolerance).
        """
        while not self.converged:
            if self._iterations >= max_iterations:
                raise RuntimeError(
                    f"{type(self).__name__} did not converge within "
                    f"{max_iterations} iterations (residual {self._residual:.3e})"
                )
            self.iterate()
        return self._iterations

    # -- subclass hooks -----------------------------------------------------

    def _step(self) -> None:
        """One iteration of the concrete method (updates ``self.x`` and
        any recurrence vectors)."""
        raise NotImplementedError

    def _extra_state(self) -> dict[str, np.ndarray]:
        """Recurrence vectors beyond ``x`` (overridden by CG etc.)."""
        return {}

    def _restore_extra_state(self, arrays: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`_extra_state`."""

    # -- checkpointing ------------------------------------------------------

    def serialize_state(self) -> bytes:
        return self._pack_arrays(
            x=self.x,
            iterations=np.array([self._iterations], dtype=np.int64),
            **self._extra_state(),
        )

    def restore_state(self, payload: bytes) -> None:
        arrays = self._unpack_arrays(payload)
        self.x = arrays.pop("x")
        self._iterations = int(arrays.pop("iterations")[0])
        self._restore_extra_state(arrays)
        self._residual = self._compute_residual()

    # -- internals ------------------------------------------------------------

    def _compute_residual(self) -> float:
        return float(np.linalg.norm(self.b - self.A @ self.x)) / self._b_norm
