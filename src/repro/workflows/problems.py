"""Sparse linear systems used as realistic iterative workloads.

The paper motivates the workflow scenario with "iterative methods that
are popular for solving large sparse linear systems". This module
builds the classic model problems those methods are benchmarked on, as
:mod:`scipy.sparse` matrices:

* :func:`poisson_2d` — the 5-point finite-difference Laplacian on an
  ``n x n`` grid (SPD, the canonical Jacobi/CG/SOR testbed);
* :func:`diffusion_1d` — tridiagonal 1-D diffusion operator;
* :func:`random_diagonally_dominant` — random sparse strictly
  diagonally dominant system (guaranteed Jacobi/Gauss-Seidel
  convergence with tunable spectral radius);
* :func:`convection_diffusion_2d` — nonsymmetric upwind operator
  (exercises GMRES, where CG does not apply).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray

from .._validation import as_generator, check_in_range, check_integer, check_positive
from ..distributions import RngLike

__all__ = [
    "poisson_2d",
    "diffusion_1d",
    "random_diagonally_dominant",
    "convection_diffusion_2d",
    "manufactured_rhs",
]


def poisson_2d(n: int) -> sp.csr_matrix:
    """5-point Laplacian on an ``n x n`` interior grid (size ``n^2``).

    Symmetric positive definite; eigenvalues in ``(0, 8)``. This is the
    standard model problem for stationary iterations and CG.
    """
    n = check_integer(n, "n", minimum=2)
    main = 4.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    T = sp.diags([off, main, off], [-1, 0, 1], format="csr")
    identity = sp.identity(n, format="csr")
    A = sp.kron(identity, T) + sp.kron(
        sp.diags([off, off], [-1, 1], format="csr"), identity
    )
    return A.tocsr()


def diffusion_1d(n: int, *, coefficient: float = 1.0) -> sp.csr_matrix:
    """Tridiagonal 1-D diffusion operator ``-c u'' `` (size ``n``)."""
    n = check_integer(n, "n", minimum=2)
    coefficient = check_positive(coefficient, "coefficient")
    main = 2.0 * coefficient * np.ones(n)
    off = -coefficient * np.ones(n - 1)
    return sp.diags([off, main, off], [-1, 0, 1], format="csr")


def random_diagonally_dominant(
    n: int,
    density: float = 0.01,
    *,
    dominance: float = 1.5,
    rng: RngLike = None,
) -> sp.csr_matrix:
    """Random sparse matrix with rows dominated by the diagonal.

    Row ``i`` has off-diagonal entries drawn uniformly in ``[-1, 1]``
    and a diagonal equal to ``dominance`` times the row's absolute
    off-diagonal sum (plus 1), which bounds the Jacobi iteration
    matrix's infinity norm by ``1 / dominance``.
    """
    n = check_integer(n, "n", minimum=2)
    density = check_in_range(density, "density", 0.0, 1.0, lo_open=True)
    dominance = check_positive(dominance, "dominance")
    if dominance <= 1.0:
        raise ValueError(f"dominance must exceed 1 for convergence, got {dominance}")
    gen = as_generator(rng)
    A = sp.random(n, n, density=density, random_state=np.random.RandomState(gen.integers(2**31)), format="lil")
    A.setdiag(0.0)
    A = A.tocsr()
    A.data = 2.0 * gen.random(A.data.size) - 1.0
    row_sums = np.abs(A).sum(axis=1).A1 if hasattr(np.abs(A).sum(axis=1), "A1") else np.asarray(np.abs(A).sum(axis=1)).ravel()
    diag = dominance * row_sums + 1.0
    return (A + sp.diags(diag)).tocsr()


def convection_diffusion_2d(n: int, *, peclet: float = 10.0) -> sp.csr_matrix:
    """Upwind convection-diffusion operator on an ``n x n`` grid.

    Nonsymmetric (convection term), so CG is inapplicable and GMRES is
    the method of choice — the paper's Krylov examples include GMRES.
    """
    n = check_integer(n, "n", minimum=2)
    peclet = check_positive(peclet, "peclet")
    h = 1.0 / (n + 1)
    c = peclet * h  # upwind convection weight
    main = (4.0 + c) * np.ones(n)
    lower = (-1.0 - c) * np.ones(n - 1)
    upper = -1.0 * np.ones(n - 1)
    T = sp.diags([lower, main, upper], [-1, 0, 1], format="csr")
    identity = sp.identity(n, format="csr")
    off = -1.0 * np.ones(n - 1)
    A = sp.kron(identity, T) + sp.kron(sp.diags([off, off], [-1, 1], format="csr"), identity)
    return A.tocsr()


def manufactured_rhs(A: sp.spmatrix, rng: RngLike = None) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
    """Random exact solution ``x*`` and matching right-hand side ``b = A x*``.

    Returns ``(b, x_star)`` so tests can measure the true error, not
    just the residual.
    """
    gen = as_generator(rng)
    x_star = gen.standard_normal(A.shape[0])
    return A @ x_star, x_star
