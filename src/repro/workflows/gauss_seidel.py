"""Gauss-Seidel iteration (paper reference [19]).

Splitting ``A = (D + L) + U``: each sweep solves the lower-triangular
system ``(D + L) x' = b - U x``. Typically converges about twice as
fast as Jacobi on the model problems, at the cost of a triangular solve
per sweep.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray
from scipy.sparse.linalg import spsolve_triangular

from .linear_base import SparseLinearSolver

__all__ = ["GaussSeidelSolver"]


class GaussSeidelSolver(SparseLinearSolver):
    """Forward Gauss-Seidel sweeps for ``A x = b``."""

    def __init__(self, A: sp.spmatrix, b: NDArray[np.float64], x0=None, *, tolerance: float = 1e-8) -> None:
        super().__init__(A, b, x0, tolerance=tolerance)
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("Gauss-Seidel requires a nonzero diagonal")
        self._lower = sp.tril(self.A, k=0).tocsr()  # D + L
        self._upper = sp.triu(self.A, k=1).tocsr()  # U

    def _step(self) -> None:
        rhs = self.b - self._upper @ self.x
        self.x = spsolve_triangular(self._lower, rhs, lower=True)

    @property
    def work_per_iteration(self) -> float:
        # One triangular solve + one matvec: ~2 flops per nonzero each.
        return 4.0 * self.A.nnz + 8.0 * self.b.size
