"""Uncertainty-quantification workload (paper references [16, 18]).

The paper's related work motivates iterative applications with UQ
workflows that "explore a parameter space in an iterative fashion".
This module implements one from scratch: a batched Monte-Carlo
estimator whose *iteration* (= workflow task) evaluates a batch of
parameter samples through a user-supplied model and updates running
statistics; it converges when the standard error of the estimate drops
below a tolerance.

The checkpoint payload is tiny (the running sums), illustrating the
paper's point that task-boundary checkpoints are cheap compared to
mid-task state.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from .._validation import check_integer, check_positive
from ..distributions import Distribution, RngLike
from .checkpointable import IterativeApplication

__all__ = ["UncertaintyQuantification"]


class UncertaintyQuantification(IterativeApplication):
    """Batched Monte-Carlo mean estimator over a parameter law.

    Parameters
    ----------
    model:
        Vectorized callable ``theta -> y`` mapping an array of parameter
        samples to responses (the expensive simulation being quantified).
    parameter_law:
        Law of the uncertain parameter.
    batch_size:
        Samples evaluated per iteration (per workflow task).
    tolerance:
        Target standard error of the mean estimate.
    rng:
        Seed or generator for the sampling stream (checkpointed as part
        of the state so restores replay the same stream).
    """

    def __init__(
        self,
        model: Callable[[np.ndarray], np.ndarray],
        parameter_law: Distribution,
        *,
        batch_size: int = 1000,
        tolerance: float = 1e-3,
        rng: RngLike = None,
    ) -> None:
        self.model = model
        self.parameter_law = parameter_law
        self.batch_size = check_integer(batch_size, "batch_size", minimum=2)
        self.tolerance = check_positive(tolerance, "tolerance")
        self._seed_seq = np.random.SeedSequence(
            rng if isinstance(rng, int) else None
        )
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._iterations = 0

    # -- estimation --------------------------------------------------------

    @property
    def estimate(self) -> float:
        """Current estimate of ``E[model(theta)]``."""
        if self._count == 0:
            return math.nan
        return self._sum / self._count

    @property
    def standard_error(self) -> float:
        """Standard error of the current estimate (inf before data)."""
        if self._count < 2:
            return math.inf
        mean = self._sum / self._count
        var = max(self._sum_sq / self._count - mean * mean, 0.0)
        return math.sqrt(var / self._count)

    # -- IterativeApplication protocol -------------------------------------

    @property
    def residual(self) -> float:
        return self.standard_error

    @property
    def converged(self) -> bool:
        return self.standard_error <= self.tolerance

    @property
    def iteration_count(self) -> int:
        return self._iterations

    @property
    def work_per_iteration(self) -> float:
        # One model evaluation per sample; nominal 100 flops each.
        return 100.0 * self.batch_size

    def iterate(self) -> float:
        # Derive the batch RNG from (seed, iteration index): restores
        # replay the identical sample stream without storing it.
        gen = np.random.default_rng(
            np.random.SeedSequence(
                entropy=self._seed_seq.entropy, spawn_key=(self._iterations,)
            )
        )
        theta = self.parameter_law.sample(self.batch_size, gen)
        y = np.asarray(self.model(np.asarray(theta)), dtype=float)
        if y.shape != (self.batch_size,):
            raise ValueError(
                f"model must return one response per sample; got shape {y.shape}"
            )
        self._count += self.batch_size
        self._sum += float(y.sum())
        self._sum_sq += float((y * y).sum())
        self._iterations += 1
        return self.standard_error

    # -- checkpointing --------------------------------------------------------

    def serialize_state(self) -> bytes:
        return self._pack_arrays(
            stats=np.array([self._count, self._sum, self._sum_sq], dtype=float),
            iterations=np.array([self._iterations], dtype=np.int64),
        )

    def restore_state(self, payload: bytes) -> None:
        arrays = self._unpack_arrays(payload)
        count, total, total_sq = arrays["stats"]
        self._count = int(count)
        self._sum = float(total)
        self._sum_sq = float(total_sq)
        self._iterations = int(arrays["iterations"][0])
