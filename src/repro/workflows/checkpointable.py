"""Checkpointable iterative-application protocol.

The paper's workflow scenario abstracts an application as a chain of
black-box tasks; for iterative solvers, a task is one iteration (or one
restart cycle) and "the data footprint to be saved has a much smaller
volume" at iteration boundaries. This module defines the contract the
concrete solvers implement:

* :class:`IterativeApplication` — ``iterate()`` advances one task and
  returns the new residual; ``serialize_state`` / ``restore_state``
  implement the checkpoint payload; ``state_size_bytes`` drives the
  checkpoint-duration model.
* :class:`InMemoryCheckpointStore` — a store that holds the latest
  snapshot and replays it on recovery, exactly like the reservation
  boundary in the paper (work since the last checkpoint is lost).
"""

from __future__ import annotations

import abc
import io
from typing import Optional

import numpy as np

__all__ = ["IterativeApplication", "InMemoryCheckpointStore"]


class IterativeApplication(abc.ABC):
    """A convergence-driven application advanced one iteration at a time."""

    #: Relative-residual convergence target.
    tolerance: float = 1e-8

    @abc.abstractmethod
    def iterate(self) -> float:
        """Execute one iteration (one workflow task); return the new
        relative residual norm."""

    @property
    @abc.abstractmethod
    def residual(self) -> float:
        """Current relative residual norm."""

    @property
    @abc.abstractmethod
    def iteration_count(self) -> int:
        """Iterations executed since construction or last restore."""

    @property
    @abc.abstractmethod
    def work_per_iteration(self) -> float:
        """Approximate floating-point operations per iteration (drives
        the synthetic timing model)."""

    @property
    def converged(self) -> bool:
        """Whether the residual has met :attr:`tolerance`."""
        return self.residual <= self.tolerance

    # -- checkpoint payload --------------------------------------------------

    @abc.abstractmethod
    def serialize_state(self) -> bytes:
        """Serialize everything needed to resume (the checkpoint payload)."""

    @abc.abstractmethod
    def restore_state(self, payload: bytes) -> None:
        """Restore from a payload produced by :meth:`serialize_state`."""

    @property
    def state_size_bytes(self) -> int:
        """Size of the checkpoint payload in bytes."""
        return len(self.serialize_state())

    # -- helpers shared by the numpy-state solvers -----------------------------

    @staticmethod
    def _pack_arrays(**arrays: np.ndarray) -> bytes:
        """Serialize named numpy arrays to a compact ``.npz`` byte string."""
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @staticmethod
    def _unpack_arrays(payload: bytes) -> dict[str, np.ndarray]:
        """Inverse of :meth:`_pack_arrays`."""
        buf = io.BytesIO(payload)
        with np.load(buf) as data:
            return {k: data[k].copy() for k in data.files}


class InMemoryCheckpointStore:
    """Holds the most recent checkpoint of an application.

    Models the reservation-boundary semantics of the paper: whatever
    was not checkpointed is lost on :meth:`recover`.
    """

    def __init__(self) -> None:
        self._payload: Optional[bytes] = None
        self._iteration: int = 0
        self.writes: int = 0
        self.recoveries: int = 0

    @property
    def has_checkpoint(self) -> bool:
        """Whether any snapshot has been written."""
        return self._payload is not None

    @property
    def checkpointed_iteration(self) -> int:
        """Iteration count captured by the latest snapshot."""
        return self._iteration

    def write(self, app: IterativeApplication) -> int:
        """Snapshot ``app``; returns the payload size in bytes."""
        payload = app.serialize_state()
        self._payload = payload
        self._iteration = app.iteration_count
        self.writes += 1
        return len(payload)

    def recover(self, app: IterativeApplication) -> None:
        """Roll ``app`` back to the latest snapshot.

        Raises ``RuntimeError`` when no checkpoint exists (the
        application would have to restart from scratch).
        """
        if self._payload is None:
            raise RuntimeError("no checkpoint to recover from")
        app.restore_state(self._payload)
        self.recoveries += 1
