"""Checkpointable iterative-application protocol.

The paper's workflow scenario abstracts an application as a chain of
black-box tasks; for iterative solvers, a task is one iteration (or one
restart cycle) and "the data footprint to be saved has a much smaller
volume" at iteration boundaries. This module defines the contract the
concrete solvers implement:

* :class:`IterativeApplication` — ``iterate()`` advances one task and
  returns the new residual; ``serialize_state`` / ``restore_state``
  implement the checkpoint payload; ``state_size_bytes`` drives the
  checkpoint-duration model.

The stores that hold those payloads live in
:mod:`repro.runtime.store` — :class:`InMemoryCheckpointStore`
(re-exported here for backward compatibility) and
:class:`~repro.runtime.store.DurableCheckpointStore`, both implementing
the same generation/validation contract, so drivers are store-agnostic.
"""

from __future__ import annotations

import abc
import io

import numpy as np

__all__ = ["IterativeApplication", "InMemoryCheckpointStore"]


class IterativeApplication(abc.ABC):
    """A convergence-driven application advanced one iteration at a time."""

    #: Relative-residual convergence target.
    tolerance: float = 1e-8

    @abc.abstractmethod
    def iterate(self) -> float:
        """Execute one iteration (one workflow task); return the new
        relative residual norm."""

    @property
    @abc.abstractmethod
    def residual(self) -> float:
        """Current relative residual norm."""

    @property
    @abc.abstractmethod
    def iteration_count(self) -> int:
        """Iterations executed since construction or last restore."""

    @property
    @abc.abstractmethod
    def work_per_iteration(self) -> float:
        """Approximate floating-point operations per iteration (drives
        the synthetic timing model)."""

    @property
    def converged(self) -> bool:
        """Whether the residual has met :attr:`tolerance`."""
        return self.residual <= self.tolerance

    # -- checkpoint payload --------------------------------------------------

    @abc.abstractmethod
    def serialize_state(self) -> bytes:
        """Serialize everything needed to resume (the checkpoint payload)."""

    @abc.abstractmethod
    def restore_state(self, payload: bytes) -> None:
        """Restore from a payload produced by :meth:`serialize_state`."""

    @property
    def state_size_bytes(self) -> int:
        """Size of the checkpoint payload in bytes."""
        return len(self.serialize_state())

    # -- helpers shared by the numpy-state solvers -----------------------------

    @staticmethod
    def _pack_arrays(**arrays: np.ndarray) -> bytes:
        """Serialize named numpy arrays to a compact ``.npz`` byte string."""
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @staticmethod
    def _unpack_arrays(payload: bytes) -> dict[str, np.ndarray]:
        """Inverse of :meth:`_pack_arrays`."""
        buf = io.BytesIO(payload)
        with np.load(buf) as data:
            return {k: data[k].copy() for k in data.files}


# Kept at the bottom: repro.runtime does not import repro.workflows at
# runtime, so this backward-compatible re-export cannot form a cycle.
from ..runtime.store import InMemoryCheckpointStore  # noqa: E402
