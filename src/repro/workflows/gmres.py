"""Restarted GMRES (paper reference [20]).

GMRES(m): each *task* is one restart cycle — build an ``m``-step
Arnoldi basis, solve the small least-squares problem, update ``x``.
Restart cycles are the natural checkpoint boundary for GMRES (the
Krylov basis is discarded at a restart anyway, so the payload is just
``x``), and their duration grows with ``m`` — a genuinely non-constant
task-duration profile that exercises the dynamic strategy.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray

from .._validation import check_integer
from .linear_base import SparseLinearSolver

__all__ = ["GMRESSolver"]


class GMRESSolver(SparseLinearSolver):
    """GMRES with restart length ``m`` for general ``A x = b``.

    One call to :meth:`iterate` runs one full restart cycle (up to ``m``
    Arnoldi steps, fewer on lucky breakdown).
    """

    def __init__(
        self,
        A: sp.spmatrix,
        b: NDArray[np.float64],
        x0=None,
        *,
        restart: int = 30,
        tolerance: float = 1e-8,
    ) -> None:
        super().__init__(A, b, x0, tolerance=tolerance)
        self.restart = check_integer(restart, "restart", minimum=1)

    def _step(self) -> None:
        m = self.restart
        n = self.b.size
        r0 = self.b - self.A @ self.x
        beta = float(np.linalg.norm(r0))
        if beta == 0.0:
            return
        V = np.zeros((m + 1, n))
        H = np.zeros((m + 1, m))
        V[0] = r0 / beta
        steps = m
        for j in range(m):
            w = self.A @ V[j]
            # Modified Gram-Schmidt orthogonalization.
            for i in range(j + 1):
                H[i, j] = float(w @ V[i])
                w = w - H[i, j] * V[i]
            H[j + 1, j] = float(np.linalg.norm(w))
            if H[j + 1, j] <= 1e-14 * beta:
                steps = j + 1  # lucky breakdown: exact solution in span
                break
            V[j + 1] = w / H[j + 1, j]
        # Least squares: min || beta e1 - H y ||.
        e1 = np.zeros(steps + 1)
        e1[0] = beta
        y, *_ = np.linalg.lstsq(H[: steps + 1, :steps], e1, rcond=None)
        self.x = self.x + V[:steps].T @ y

    @property
    def work_per_iteration(self) -> float:
        m = self.restart
        n = self.b.size
        # m matvecs + Gram-Schmidt (~m^2 n) per restart cycle.
        return 2.0 * self.A.nnz * m + 2.0 * m * m * n
