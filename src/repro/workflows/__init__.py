"""Iterative-application substrate: real workloads for the strategies.

Implements from scratch the classes of applications the paper cites as
motivation — stationary solvers (Jacobi, Gauss-Seidel, SOR), Krylov
methods (CG, restarted GMRES), checkpointable-state plumbing, timing
instrumentation, and general non-IID linear workflow chains.
"""

from .cg import ConjugateGradientSolver
from .chain import LinearWorkflow, WorkflowTask
from .checkpointable import InMemoryCheckpointStore, IterativeApplication
from .coupled import (
    BoundaryCoupledDiffusion,
    Channel,
    CoupledComponent,
    CoupledReservationRunner,
    MessageCoupledApplication,
    SnapshotCoordinator,
    WorkflowGraph,
    WorkflowManifest,
    run_coupled_campaign,
)
from .gauss_seidel import GaussSeidelSolver
from .gmres import GMRESSolver
from .instrumentation import IterationTrace, MachineModel, run_instrumented
from .jacobi import JacobiSolver
from .linear_base import SparseLinearSolver
from .problems import (
    convection_diffusion_2d,
    diffusion_1d,
    manufactured_rhs,
    poisson_2d,
    random_diagonally_dominant,
)
from .sor import SORSolver, optimal_omega_poisson_2d
from .uq import UncertaintyQuantification

__all__ = [
    "IterativeApplication",
    "InMemoryCheckpointStore",
    "SparseLinearSolver",
    "JacobiSolver",
    "GaussSeidelSolver",
    "SORSolver",
    "optimal_omega_poisson_2d",
    "ConjugateGradientSolver",
    "GMRESSolver",
    "UncertaintyQuantification",
    "MachineModel",
    "IterationTrace",
    "run_instrumented",
    "LinearWorkflow",
    "WorkflowTask",
    "BoundaryCoupledDiffusion",
    "Channel",
    "CoupledComponent",
    "CoupledReservationRunner",
    "MessageCoupledApplication",
    "SnapshotCoordinator",
    "WorkflowGraph",
    "WorkflowManifest",
    "run_coupled_campaign",
    "poisson_2d",
    "diffusion_1d",
    "random_diagonally_dominant",
    "convection_diffusion_2d",
    "manufactured_rhs",
]
