"""Conjugate Gradient (Krylov method; paper's non-stationary class).

Standard Hestenes–Stiefel recurrence for SPD systems. The checkpoint
payload includes the recurrence vectors ``r`` and ``p`` and the scalar
``rho`` so a restore resumes the exact Krylov trajectory (restarting CG
from only ``x`` would discard conjugacy and slow convergence — this is
precisely why checkpoints must happen at task boundaries with the full
task state, the paper's "black box" requirement).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray

from .linear_base import SparseLinearSolver

__all__ = ["ConjugateGradientSolver"]


class ConjugateGradientSolver(SparseLinearSolver):
    """Conjugate Gradient for SPD ``A x = b``.

    Notes
    -----
    Symmetry/definiteness are the caller's responsibility (checking
    them is as expensive as solving); a breakdown (``p' A p <= 0``)
    raises ``RuntimeError`` identifying the violation.
    """

    def __init__(self, A: sp.spmatrix, b: NDArray[np.float64], x0=None, *, tolerance: float = 1e-8) -> None:
        super().__init__(A, b, x0, tolerance=tolerance)
        self._r = self.b - self.A @ self.x
        self._p = self._r.copy()
        self._rho = float(self._r @ self._r)

    def _step(self) -> None:
        Ap = self.A @ self._p
        curvature = float(self._p @ Ap)
        if curvature <= 0.0:
            raise RuntimeError(
                "CG breakdown: non-positive curvature (matrix not SPD?)"
            )
        alpha = self._rho / curvature
        self.x = self.x + alpha * self._p
        self._r = self._r - alpha * Ap
        rho_new = float(self._r @ self._r)
        beta = rho_new / self._rho if self._rho > 0.0 else 0.0
        self._p = self._r + beta * self._p
        self._rho = rho_new

    def _extra_state(self) -> dict[str, np.ndarray]:
        return {"r": self._r, "p": self._p, "rho": np.array([self._rho])}

    def _restore_extra_state(self, arrays: dict[str, np.ndarray]) -> None:
        self._r = arrays["r"]
        self._p = arrays["p"]
        self._rho = float(arrays["rho"][0])

    @property
    def work_per_iteration(self) -> float:
        # One matvec + 2 dot products + 3 axpys.
        return 2.0 * self.A.nnz + 10.0 * self.b.size
