"""Jacobi iteration (paper reference [19]).

The simplest stationary method: ``x' = D^{-1} (b - (A - D) x)``.
Converges whenever the iteration matrix ``D^{-1}(A - D)`` has spectral
radius below 1 (guaranteed for strictly diagonally dominant systems).
Every iteration costs one matvec, making it a perfectly uniform task —
the closest real workload to the paper's IID assumption.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from numpy.typing import NDArray

from .linear_base import SparseLinearSolver

__all__ = ["JacobiSolver"]


class JacobiSolver(SparseLinearSolver):
    """Jacobi iteration for ``A x = b``.

    Raises
    ------
    ValueError
        If ``A`` has a zero diagonal entry (the splitting is undefined).
    """

    def __init__(self, A: sp.spmatrix, b: NDArray[np.float64], x0=None, *, tolerance: float = 1e-8) -> None:
        super().__init__(A, b, x0, tolerance=tolerance)
        diag = self.A.diagonal()
        if np.any(diag == 0.0):
            raise ValueError("Jacobi requires a nonzero diagonal")
        self._inv_diag = 1.0 / diag
        # A - D as a separate operator so each step is one matvec.
        self._off_diag = (self.A - sp.diags(diag)).tocsr()

    def _step(self) -> None:
        self.x = self._inv_diag * (self.b - self._off_diag @ self.x)
