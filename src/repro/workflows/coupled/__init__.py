"""Consistent-snapshot coordination for coupled multi-component workflows.

The paper's workflow scenario checkpoints a *single* chain of tasks;
real coupled simulations are DAGs of components that exchange boundary
data every macro-iteration and are only restorable from a *consistent
cut* — one durable snapshot per component, all at the same
macro-iteration, bound together by an atomically-written manifest. This
package supplies the whole vertical slice:

* :mod:`~repro.workflows.coupled.graph` — the validated workflow DAG
  (:class:`WorkflowGraph`), typed channels, deterministic seeded
  exchange, and the aggregate laws ``max_i X_i`` / ``max_i C_i``;
* :mod:`~repro.workflows.coupled.components` — the message-coupled
  application protocol and a one-way-coupled 1-D diffusion subdomain;
* :mod:`~repro.workflows.coupled.coordinator` — the consistent-cut
  protocol (:class:`SnapshotCoordinator`) over per-component
  :class:`repro.runtime.store.CheckpointStore` generations, with a
  generation-numbered, quarantining cut log;
* :mod:`~repro.workflows.coupled.runner` — reservation-budget
  execution (:class:`CoupledReservationRunner`) where the
  end-of-reservation decision prices ``max_i C_i``.

See ``docs/coupled.md`` for the protocol walk-through, and ``repro
run-coupled`` for the CLI front end.
"""

from .components import BoundaryCoupledDiffusion, MessageCoupledApplication
from .coordinator import (
    CutLog,
    DurableCutLog,
    InMemoryCutLog,
    SnapshotCoordinator,
    WorkflowManifest,
)
from .graph import (
    Channel,
    CoupledComponent,
    WorkflowGraph,
    build_chain_graph,
    is_simple_path,
)
from .runner import (
    CoupledCampaignOutcome,
    CoupledReservationOutcome,
    CoupledReservationRunner,
    run_coupled_campaign,
)

__all__ = [
    "BoundaryCoupledDiffusion",
    "Channel",
    "CoupledCampaignOutcome",
    "CoupledComponent",
    "CoupledReservationOutcome",
    "CoupledReservationRunner",
    "CutLog",
    "DurableCutLog",
    "InMemoryCutLog",
    "MessageCoupledApplication",
    "SnapshotCoordinator",
    "WorkflowGraph",
    "WorkflowManifest",
    "build_chain_graph",
    "is_simple_path",
    "run_coupled_campaign",
]
