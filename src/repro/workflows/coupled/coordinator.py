"""Consistent-snapshot coordination for coupled workflows.

A snapshot of a coupled workflow is only usable as a whole: restoring
component ``a`` from macro-iteration 40 and component ``b`` from 38
produces a state no failure-free execution ever visits. This module
implements the *consistent cut* protocol on top of the per-component
:class:`repro.runtime.store.CheckpointStore` generations:

* :class:`WorkflowManifest` — one cut: its own generation number, the
  macro-iteration it captures, and the member generation bound for
  every component. Durable manifests are written with the full atomic
  protocol of :mod:`repro.runtime.atomic` (tmp + fsync + rename,
  CRC-checksummed envelope), so a manifest either exists completely or
  not at all.
* :class:`CutLog` / :class:`InMemoryCutLog` / :class:`DurableCutLog` —
  the generation-numbered sequence of manifests, mirroring the
  memory/durable split of the stores so the conformance suite runs
  against both layouts. Invalid or torn manifests are quarantined
  (``.corrupt``), never silently trusted, and their numbers are never
  reused.
* :class:`SnapshotCoordinator` — the two protocol operations:

  - **commit**: write every member generation durably *first*, then
    write the manifest binding them. A crash anywhere before the
    manifest rename leaves orphan member generations and no manifest —
    the cut simply never happened, and recovery uses the previous one.
  - **recover**: walk manifests newest-first; *validate every member*
    (via :meth:`~repro.runtime.store.CheckpointStore.load_generation`,
    which does not mutate any application) before restoring *any*.
    A cut with a missing, corrupt, or mismatched member is quarantined
    and never referenced again; recovery lands on the newest fully
    valid cut or reports that none exists.

Invariant (checked by the coupled fault harness): **no component ever
resumes from a cut missing a peer's generation, and after any
single-component kill the workflow restarts from the newest consistent
cut.**
"""

from __future__ import annotations

import abc
import logging
import os
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from ...obs.metrics import global_registry
from ...obs.tracer import Tracer
from ...runtime import atomic
from ...runtime.store import (
    CheckpointCorruptionError,
    CheckpointStore,
    NoCheckpointError,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..checkpointable import IterativeApplication

__all__ = [
    "CutLog",
    "DurableCutLog",
    "InMemoryCutLog",
    "SnapshotCoordinator",
    "WorkflowManifest",
]

log = logging.getLogger("repro.workflows.coupled")

_CUT_FORMAT = 1
_CUT_RE = re.compile(r"^cut-(\d{8})\.json$")
_CORRUPT_CUT_RE = re.compile(r"^cut-(\d{8})\.json\.corrupt$")


@dataclass(frozen=True)
class WorkflowManifest:
    """One consistent cut: a generation-numbered binding of member
    generations, all captured at the same macro-iteration."""

    cut: int
    iteration: int
    members: dict[str, int]
    residuals: dict[str, float]

    def __post_init__(self) -> None:
        if self.cut < 1:
            raise ValueError(f"cut number must be >= 1, got {self.cut}")
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")
        if not self.members:
            raise ValueError("a cut must bind at least one member generation")

    def to_dict(self) -> dict:
        return {
            "cut": self.cut,
            "iteration": self.iteration,
            "members": {name: int(g) for name, g in sorted(self.members.items())},
            "residuals": {
                name: float(r) for name, r in sorted(self.residuals.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkflowManifest":
        return cls(
            cut=int(data["cut"]),
            iteration=int(data["iteration"]),
            members={str(k): int(v) for k, v in data["members"].items()},
            residuals={str(k): float(v) for k, v in data["residuals"].items()},
        )


class CutLog(abc.ABC):
    """Generation-numbered sequence of workflow manifests.

    The cut log is to the workflow what a single store's generation
    sequence is to one component: numbered, validated on read,
    quarantined on corruption, numbers never reused.
    """

    def __init__(self) -> None:
        self.writes: int = 0
        self.quarantined: int = 0

    @abc.abstractmethod
    def append(self, manifest: WorkflowManifest) -> None:
        """Durably record ``manifest`` (its number must come from
        :meth:`next_cut_number`)."""

    @abc.abstractmethod
    def manifests(self) -> list[WorkflowManifest]:
        """All valid retained manifests, oldest first. Invalid ones are
        quarantined (and counted) during the scan, never returned."""

    @abc.abstractmethod
    def next_cut_number(self) -> int:
        """One past the newest cut number ever used — including
        quarantined cuts, so numbers are never reused across
        recoveries."""

    @abc.abstractmethod
    def quarantine(self, cut: int, reason: str) -> None:
        """Mark cut ``cut`` as torn/invalid; it must never be returned
        by :meth:`manifests` again."""

    def latest(self) -> Optional[WorkflowManifest]:
        manifests = self.manifests()
        return manifests[-1] if manifests else None


class InMemoryCutLog(CutLog):
    """Process-local cut log with the durable log's exact semantics."""

    def __init__(self) -> None:
        super().__init__()
        self._manifests: dict[int, WorkflowManifest] = {}
        self._retired: set[int] = set()

    def append(self, manifest: WorkflowManifest) -> None:
        if manifest.cut in self._manifests or manifest.cut in self._retired:
            raise ValueError(f"cut number {manifest.cut} already used")
        self._manifests[manifest.cut] = manifest
        self.writes += 1

    def manifests(self) -> list[WorkflowManifest]:
        return [self._manifests[c] for c in sorted(self._manifests)]

    def next_cut_number(self) -> int:
        return max(max(self._manifests, default=0), max(self._retired, default=0)) + 1

    def quarantine(self, cut: int, reason: str) -> None:
        if self._manifests.pop(cut, None) is not None:
            self._retired.add(cut)
            self.quarantined += 1
            global_registry().incr("workflow.cuts_quarantined")
            log.warning("quarantined in-memory cut %d (%s)", cut, reason)

    # -- test hook -------------------------------------------------------

    def corrupt_cut(self, cut: int, *, member: str | None = None, shift: int = 1) -> None:
        """Damage a recorded manifest (fault injection): point one (or
        the first) member binding at a generation ``shift`` ahead."""
        manifest = self._manifests[cut]
        name = member if member is not None else sorted(manifest.members)[0]
        members = dict(manifest.members)
        members[name] = members[name] + shift
        self._manifests[cut] = WorkflowManifest(
            cut=manifest.cut,
            iteration=manifest.iteration,
            members=members,
            residuals=dict(manifest.residuals),
        )


class DurableCutLog(CutLog):
    """On-disk cut log: one atomic CRC-checksummed envelope per cut.

    Layout of the log directory::

        cut-00000003.json           # newest cut manifest
        cut-00000002.json
        cut-00000001.json.corrupt   # quarantined torn/invalid cut

    Parameters
    ----------
    path:
        Directory for the manifests (created if missing).
    keep:
        Manifests retained; older ones are pruned after each append.
        Member generations referenced only by pruned cuts are garbage
        the per-component stores prune on their own schedule.
    fault_hook:
        Optional :data:`repro.runtime.atomic.FaultHook` threaded into
        every manifest write — the seam the coupled fault harness uses
        to crash mid-commit.
    """

    def __init__(
        self,
        path: str,
        *,
        keep: int = 3,
        fault_hook: atomic.FaultHook | None = None,
    ) -> None:
        super().__init__()
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.path = path
        self.keep = keep
        self.fault_hook = fault_hook
        os.makedirs(path, exist_ok=True)
        atomic.sweep_stale_tmp(path)

    def _cut_path(self, cut: int) -> str:
        return os.path.join(self.path, f"cut-{cut:08d}.json")

    def _scan(self, pattern: re.Pattern[str]) -> list[int]:
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        out = []
        for name in names:
            m = pattern.match(name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    def append(self, manifest: WorkflowManifest) -> None:
        path = self._cut_path(manifest.cut)
        if os.path.exists(path) or os.path.exists(f"{path}.corrupt"):
            raise ValueError(f"cut number {manifest.cut} already used")
        atomic.atomic_write_json(
            path,
            manifest.to_dict(),
            fmt=_CUT_FORMAT,
            payload_key="cut",
            fault_hook=self.fault_hook,
        )
        self.writes += 1
        self._prune()

    def manifests(self) -> list[WorkflowManifest]:
        out = []
        for cut in self._scan(_CUT_RE):
            try:
                payload = atomic.read_json_envelope(
                    self._cut_path(cut), fmt=_CUT_FORMAT, payload_key="cut"
                )
                manifest = WorkflowManifest.from_dict(payload)
            except OSError:
                continue  # pruned or quarantined concurrently
            except (atomic.EnvelopeError, KeyError, TypeError, ValueError) as exc:
                self.quarantine(cut, str(exc))
                continue
            if manifest.cut != cut:
                self.quarantine(cut, f"manifest claims cut {manifest.cut}")
                continue
            out.append(manifest)
        return out

    def next_cut_number(self) -> int:
        live = self._scan(_CUT_RE)
        corrupt = self._scan(_CORRUPT_CUT_RE)
        return max(live[-1] if live else 0, corrupt[-1] if corrupt else 0) + 1

    def quarantine(self, cut: int, reason: str) -> None:
        path = self._cut_path(cut)
        try:
            # Quarantine, not a durable write: no new content is
            # created, so the atomic protocol does not apply.
            os.replace(path, f"{path}.corrupt")  # lint: allow[REP003]
        except OSError:
            return
        self.quarantined += 1
        global_registry().incr("workflow.cuts_quarantined")
        log.warning("quarantined cut %d -> %s.corrupt (%s)", cut, path, reason)

    def _prune(self) -> None:
        live = self._scan(_CUT_RE)
        for cut in live[: -self.keep]:
            try:
                os.unlink(self._cut_path(cut))
            except OSError:
                pass


class SnapshotCoordinator:
    """Commit and recover consistent cuts over per-component stores.

    Parameters
    ----------
    stores:
        One :class:`~repro.runtime.store.CheckpointStore` per component
        name. Durable stores must use *distinct* directories.
    cut_log:
        The manifest sequence (same durability class as the stores).
    tracer:
        Optional :class:`repro.obs.Tracer` for ``workflow.cut`` /
        ``workflow.recover`` spans; defaults to a disabled tracer.
    """

    def __init__(
        self,
        stores: Mapping[str, CheckpointStore],
        cut_log: CutLog,
        *,
        tracer: Tracer | None = None,
    ) -> None:
        if not stores:
            raise ValueError("coordinator needs at least one component store")
        self.stores = dict(stores)
        self.cut_log = cut_log
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.recoveries: int = 0

    def _check_names(self, apps: Mapping[str, "IterativeApplication"]) -> None:
        if set(apps) != set(self.stores):
            raise ValueError(
                f"component mismatch: apps {sorted(apps)} vs stores "
                f"{sorted(self.stores)}"
            )

    # -- commit ----------------------------------------------------------

    def commit_cut(
        self, apps: Mapping[str, "IterativeApplication"], iteration: int
    ) -> WorkflowManifest:
        """Snapshot every component, then bind the generations into a
        new manifest. The manifest is written **last**: a crash at any
        earlier point leaves orphan member generations and no cut."""
        self._check_names(apps)
        with self.tracer.span(
            "workflow.cut", tags={"iteration": iteration, "members": len(apps)}
        ) as span:
            members: dict[str, int] = {}
            residuals: dict[str, float] = {}
            for name in sorted(apps):
                record = self.stores[name].write(apps[name])
                members[name] = record.generation
                residuals[name] = record.residual
            manifest = WorkflowManifest(
                cut=self.cut_log.next_cut_number(),
                iteration=iteration,
                members=members,
                residuals=residuals,
            )
            self.cut_log.append(manifest)
            span.set_tag("cut", manifest.cut)
        global_registry().incr("workflow.cuts_committed")
        return manifest

    def write_torn_cut(
        self,
        apps: Mapping[str, "IterativeApplication"],
        *,
        durable_members: int = 0,
    ) -> None:
        """Leave exactly what a crash mid-cut leaves: the first
        ``durable_members`` member snapshots complete, the rest torn,
        and **no manifest**. Recovery must land on the previous cut;
        none of these orphan generations is ever referenced."""
        self._check_names(apps)
        for i, name in enumerate(sorted(apps)):
            if i < durable_members:
                self.stores[name].write(apps[name])
            else:
                self.stores[name].write_torn(apps[name])
        global_registry().incr("workflow.cuts_torn")

    # -- recover ---------------------------------------------------------

    def recover(
        self, apps: Mapping[str, "IterativeApplication"]
    ) -> WorkflowManifest:
        """Restore every component from the newest fully-valid cut.

        Walks manifests newest-first. For each candidate, **all**
        member generations are validated (payloads loaded, CRCs
        checked) before **any** application is mutated; a candidate
        with a missing / corrupt / foreign member is quarantined and
        skipped. Raises :class:`~repro.runtime.store.NoCheckpointError`
        when no consistent cut exists.
        """
        self._check_names(apps)
        with self.tracer.span("workflow.recover") as span:
            for manifest in reversed(self.cut_log.manifests()):
                if set(manifest.members) != set(apps):
                    self.cut_log.quarantine(
                        manifest.cut,
                        f"member set {sorted(manifest.members)} does not match "
                        f"workflow {sorted(apps)}",
                    )
                    continue
                payloads: dict[str, bytes] = {}
                reason = None
                for name in sorted(manifest.members):
                    generation = manifest.members[name]
                    try:
                        _, payloads[name] = self.stores[name].load_generation(
                            generation
                        )
                    except (NoCheckpointError, CheckpointCorruptionError) as exc:
                        reason = f"member {name!r} generation {generation}: {exc}"
                        break
                if reason is not None:
                    self.cut_log.quarantine(manifest.cut, reason)
                    continue
                # Every member validated: now (and only now) mutate.
                for name in sorted(manifest.members):
                    apps[name].restore_state(payloads[name])
                span.set_tag("cut", manifest.cut)
                span.set_tag("iteration", manifest.iteration)
                self.recoveries += 1
                global_registry().incr("workflow.recoveries")
                return manifest
            span.set_tag("cut", None)
            raise NoCheckpointError("no consistent cut to recover from")
