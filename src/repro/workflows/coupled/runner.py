"""Reservation-budget execution of coupled workflows.

:class:`CoupledReservationRunner` is the multi-component counterpart of
:class:`repro.runtime.runner.ReservationRunner`: it drives a
:class:`~repro.workflows.coupled.graph.WorkflowGraph` through
fixed-length reservations, one *macro-iteration* at a time (exchange
step, then every non-converged component iterates once in parallel),
with a :class:`~repro.workflows.coupled.coordinator.SnapshotCoordinator`
making consistent cuts durable.

The paper's end-of-reservation decision carries over with one change of
law: where the single-component runner prices the checkpoint duration
``C``, the coupled runner prices ``max_i C_i`` — the cut completes when
the slowest member snapshot completes — using the exact order-statistic
law :meth:`~repro.workflows.coupled.graph.WorkflowGraph.cut_checkpoint_law`
(a :class:`repro.distributions.MaxOf`). The policy machinery is
unchanged: any :class:`repro.core.policies.WorkflowPolicy` (including
the cached :class:`repro.runtime.runner.AdvisorPolicy` fed the
macro-iteration law ``max_i X_i`` and the cut law) decides *cut now or
run one more macro-iteration*; the deadline-abort gate uses
:func:`repro.runtime.runner.estimate_checkpoint_duration` on the cut
law, so a cut the model says cannot finish is never started.

Timing is virtual (the same modelled clock as the single-component
runner): per-component durations are drawn from each component's task
law, a macro-iteration lasts as long as its slowest member, and channel
costs accrue on top. Only checkpoint *placement* depends on these
draws — the application math is a pure function of the macro-iteration
number, which is what makes a many-times-killed campaign converge
bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

from ..._validation import as_generator, check_integer, check_nonnegative, check_positive
from ...core.policies import StaticCountPolicy, WorkflowPolicy
from ...distributions import Distribution, RngLike
from ...obs.metrics import global_registry
from ...obs.tracer import Tracer
from ...runtime.runner import estimate_checkpoint_duration
from ...runtime.store import NoCheckpointError
from .coordinator import SnapshotCoordinator, WorkflowManifest
from .graph import WorkflowGraph

__all__ = [
    "CoupledCampaignOutcome",
    "CoupledReservationOutcome",
    "CoupledReservationRunner",
    "run_coupled_campaign",
]


@dataclass
class CoupledReservationOutcome:
    """What one coupled reservation actually did."""

    R: float
    time_used: float = 0.0
    macro_iterations: int = 0
    exchange_cost: float = 0.0
    work_saved: float = 0.0
    expected_work: Optional[float] = None
    cuts_committed: int = 0
    cuts_torn: int = 0
    cuts_skipped_deadline: int = 0
    recovered_cut: Optional[int] = None
    recovered_iteration: Optional[int] = None
    cuts_quarantined_on_recovery: int = 0
    converged: bool = False
    solution_saved: bool = False
    events: list[tuple[str, float]] = field(default_factory=list)

    def log(self, kind: str, time: float) -> None:
        self.events.append((kind, time))

    @property
    def utilization(self) -> float:
        """Saved work per reserved second."""
        return self.work_saved / self.R if self.R else 0.0


@dataclass
class CoupledCampaignOutcome:
    """A multi-reservation coupled campaign driven to convergence."""

    reservations: list[CoupledReservationOutcome] = field(default_factory=list)
    converged: bool = False
    solution_saved: bool = False
    final_iteration: int = 0
    final_residual: float = math.inf

    @property
    def reservations_used(self) -> int:
        return len(self.reservations)

    @property
    def total_work_saved(self) -> float:
        return sum(r.work_saved for r in self.reservations)

    @property
    def total_time_used(self) -> float:
        return sum(r.time_used for r in self.reservations)

    def summary(self) -> str:
        status = "converged" if self.solution_saved else (
            "converged (UNSAVED)" if self.converged else "INCOMPLETE"
        )
        return (
            f"{status}: macro-iteration {self.final_iteration}, "
            f"max residual {self.final_residual:.3e}, "
            f"{self.reservations_used} reservations, "
            f"work saved {self.total_work_saved:.4g}s"
        )


class CoupledReservationRunner:
    """Drive a coupled workflow through fixed-length reservations.

    Parameters
    ----------
    graph:
        The workflow DAG (applications mutated in place).
    coordinator:
        Consistent-cut commit/recover protocol over the per-component
        stores. Its store keys must equal the graph's component names.
    policy:
        Cut decision rule over ``(accumulated work, macro-iterations)``;
        defaults to ``StaticCountPolicy(1)`` (cut at every boundary).
        For the paper-optimal rule use
        ``AdvisorPolicy(advisor, graph.macro_task_law(),
        graph.cut_checkpoint_law())``.
    recovery:
        Restart cost charged at the start of every reservation that
        resumes from a cut.
    deadline_estimator:
        See :func:`repro.runtime.runner.estimate_checkpoint_duration`;
        applied to the **cut** law ``max_i C_i``.
    rng:
        Seed or generator for task/checkpoint duration draws. These
        affect only the clock (when cuts happen), never the application
        states.
    tracer:
        Optional :class:`repro.obs.Tracer`; emits ``workflow.exchange``
        spans (the coordinator emits ``workflow.cut`` /
        ``workflow.recover``).
    """

    def __init__(
        self,
        graph: WorkflowGraph,
        coordinator: SnapshotCoordinator,
        *,
        policy: WorkflowPolicy | None = None,
        recovery: float = 0.0,
        deadline_estimator: Union[str, float] = "pessimistic",
        rng: RngLike = None,
        tracer: Tracer | None = None,
        max_macro_iterations_per_reservation: int = 1_000_000,
    ) -> None:
        if set(coordinator.stores) != set(graph.components):
            raise ValueError(
                f"coordinator stores {sorted(coordinator.stores)} do not match "
                f"graph components {sorted(graph.components)}"
            )
        self.graph = graph
        self.coordinator = coordinator
        self.policy = policy if policy is not None else StaticCountPolicy(1)
        self.recovery = check_nonnegative(recovery, "recovery")
        self.deadline_estimator = deadline_estimator
        self.cut_law: Distribution = graph.cut_checkpoint_law()
        self._c_estimate = estimate_checkpoint_duration(
            self.cut_law, deadline_estimator
        )
        self.rng = as_generator(rng)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.max_macro_iterations_per_reservation = check_integer(
            max_macro_iterations_per_reservation,
            "max_macro_iterations_per_reservation",
            minimum=1,
        )
        #: Macro-iterations completed by the current workflow state.
        self.macro_iteration = 0
        # Pristine state: what "all work is lost" restarts from.
        self._initial_payloads = {
            name: app.serialize_state() for name, app in graph.apps.items()
        }

    # -- resume ----------------------------------------------------------

    def resume(
        self, outcome: CoupledReservationOutcome | None = None
    ) -> Optional[WorkflowManifest]:
        """Restore the workflow from the newest fully-consistent cut.

        Returns the manifest restored, or ``None`` when no consistent
        cut exists — in which case every component is reset to its
        pristine initial state (the work is gone; that is the point).
        """
        quarantined_before = self.coordinator.cut_log.quarantined
        apps = self.graph.apps
        try:
            manifest = self.coordinator.recover(apps)
        except NoCheckpointError:
            for name, app in apps.items():
                if app.iteration_count > 0 or self.macro_iteration > 0:
                    app.restore_state(self._initial_payloads[name])
            self.macro_iteration = 0
            if outcome is not None:
                outcome.cuts_quarantined_on_recovery += (
                    self.coordinator.cut_log.quarantined - quarantined_before
                )
                outcome.log("restart-from-scratch", 0.0)
            return None
        self.macro_iteration = manifest.iteration
        if outcome is not None:
            outcome.recovered_cut = manifest.cut
            outcome.recovered_iteration = manifest.iteration
            outcome.cuts_quarantined_on_recovery += (
                self.coordinator.cut_log.quarantined - quarantined_before
            )
            outcome.log(f"recovered-cut-{manifest.cut}", 0.0)
        return manifest

    # -- one reservation -------------------------------------------------

    def run_reservation(self, R: float) -> CoupledReservationOutcome:
        """Execute one reservation of length ``R`` (virtual time)."""
        R = check_positive(R, "R")
        if self.recovery >= R:
            raise ValueError(
                f"recovery {self.recovery} consumes the whole reservation {R}"
            )
        outcome = CoupledReservationOutcome(R=R)
        t = 0.0
        if self.resume(outcome) is not None:
            t += self.recovery
            if self.recovery > 0.0:
                outcome.log("recovery-cost", t)

        self.policy.reset(R - t)
        threshold = self._fast_threshold(R - t)
        outcome.expected_work = self._expected_work(R - t)
        seg_work = 0.0
        seg_tasks = 0

        while not self.graph.converged:
            if outcome.macro_iterations >= self.max_macro_iterations_per_reservation:
                raise RuntimeError("reservation macro-iteration budget exhausted")
            if seg_tasks > 0 and (
                seg_work >= threshold
                if threshold is not None
                else self.policy.should_checkpoint(seg_work, seg_tasks)
            ):
                committed, t = self._attempt_cut(t, R, seg_work, seg_tasks, outcome)
                if committed:
                    seg_work = 0.0
                    seg_tasks = 0
                    self.policy.reset(R - t)  # §4.4: new segment in the remainder
                    threshold = self._fast_threshold(R - t)
                    continue
                break  # deadline abort or torn overrun: nothing more can be saved
            duration = self._macro_iteration_duration()
            if t + duration >= R:
                outcome.log("task-cut-short", R)
                t = R
                break
            self._advance(outcome)
            t += duration
            seg_work += duration
            seg_tasks += 1
            outcome.macro_iterations += 1

        if self.graph.converged:
            outcome.converged = True
            outcome.log("converged", t)
            if seg_tasks > 0 or self._uncut_progress():
                committed, t = self._attempt_cut(t, R, seg_work, seg_tasks, outcome)
                outcome.solution_saved = committed
            else:
                outcome.solution_saved = True

        outcome.time_used = min(t, R)
        registry = global_registry()
        registry.incr("workflow.reservations")
        registry.incr("workflow.macro_iterations", outcome.macro_iterations)
        registry.incr("workflow.cuts_skipped_deadline", outcome.cuts_skipped_deadline)
        registry.observe("workflow.work_saved", outcome.work_saved)
        return outcome

    # -- internals -------------------------------------------------------

    def _advance(self, outcome: CoupledReservationOutcome) -> None:
        """One macro-iteration: exchange, then iterate every
        non-converged component (the parallel step)."""
        with self.tracer.span(
            "workflow.exchange", tags={"iteration": self.macro_iteration}
        ) as span:
            report = self.graph.exchange(self.macro_iteration)
            span.set_tag("cost", report.cost)
        global_registry().incr("workflow.exchanges")
        outcome.exchange_cost += report.cost
        for name in self.graph.names:
            app = self.graph.components[name].app
            if not app.converged:
                app.iterate()
        self.macro_iteration += 1

    def _macro_iteration_duration(self) -> float:
        """Realized duration of the next macro-iteration: exchange cost
        plus the slowest non-converged component's task draw."""
        exchange_cost = self.graph.exchange_cost(self.macro_iteration)
        draws = [
            float(comp.task_law.sample(1, self.rng)[0])
            for comp in (
                self.graph.components[name] for name in self.graph.names
            )
            if not comp.app.converged
        ]
        return exchange_cost + (max(draws) if draws else 0.0)

    def _uncut_progress(self) -> bool:
        """Whether the workflow state has advanced past the newest cut."""
        latest = self.coordinator.cut_log.latest()
        newest = latest.iteration if latest is not None else 0
        return self.macro_iteration > newest or latest is None

    def _attempt_cut(
        self,
        t: float,
        R: float,
        seg_work: float,
        seg_tasks: int,
        outcome: CoupledReservationOutcome,
    ) -> tuple[bool, float]:
        """Deadline-gated consistent cut; returns (committed, new clock)."""
        if t + self._c_estimate > R:
            outcome.cuts_skipped_deadline += 1
            outcome.log("cut-skipped-deadline", t)
            return False, t
        # Realized cut duration: member snapshots run in parallel, the
        # cut completes with the slowest (the realization of max_i C_i).
        c = max(
            float(comp.checkpoint_law.sample(1, self.rng)[0])
            for comp in self.graph.components.values()
        )
        if t + c > R:
            # The estimate was optimistic and the realization overran:
            # the reservation ends mid-cut. Some member snapshots are
            # durable, the binding manifest is not — the torn-cut
            # artifact recovery must (and does) ignore.
            self.coordinator.write_torn_cut(self.graph.apps)
            outcome.cuts_torn += 1
            outcome.log("cut-torn", R)
            return False, R
        try:
            manifest = self.coordinator.commit_cut(
                self.graph.apps, self.macro_iteration
            )
        except OSError as exc:
            outcome.log(f"cut-write-error:{exc.errno}", t + c)
            global_registry().incr("workflow.cut_write_errors")
            return False, t + c
        outcome.cuts_committed += 1
        outcome.work_saved += seg_work
        outcome.log(f"cut-{manifest.cut}", t + c)
        return True, t + c

    def _fast_threshold(self, budget: float) -> Optional[float]:
        """Inline work threshold for the cut-decision loop (see
        :meth:`repro.runtime.runner.ReservationRunner._fast_threshold`);
        only consulted for policies advertising ``threshold_is_exact``,
        so it can never change a decision."""
        if budget <= 0.0 or not getattr(self.policy, "threshold_is_exact", False):
            return None
        try:
            return self.policy.work_threshold(budget)
        except (ValueError, NotImplementedError):
            return None

    def _expected_work(self, budget: float) -> Optional[float]:
        expected = getattr(self.policy, "expected_work", None)
        if expected is None or budget <= 0.0:
            return None
        try:
            return expected(budget)
        except (ValueError, NotImplementedError):
            return None


def run_coupled_campaign(
    runner: CoupledReservationRunner, R: float, *, max_reservations: int = 1000
) -> CoupledCampaignOutcome:
    """Book reservations until the converged workflow is durably cut
    (or the budget runs out)."""
    max_reservations = check_integer(max_reservations, "max_reservations", minimum=1)
    campaign = CoupledCampaignOutcome()
    while len(campaign.reservations) < max_reservations:
        outcome = runner.run_reservation(R)
        campaign.reservations.append(outcome)
        if outcome.converged and outcome.solution_saved:
            break
    campaign.converged = runner.graph.converged
    campaign.solution_saved = bool(
        campaign.reservations and campaign.reservations[-1].solution_saved
    )
    campaign.final_iteration = runner.macro_iteration
    campaign.final_residual = runner.graph.max_residual
    return campaign
