"""Workflow DAGs of coupled components with typed message channels.

The paper's workflow scenario is a *linear* chain of tasks; real
coupled simulations (multiphysics, multiscale) are DAGs of components
that exchange boundary data every macro-iteration and must be
checkpointed *consistently* — a snapshot of the workflow is only usable
if every component's member snapshot belongs to the same macro-iteration
(the MUSCLE3 notion of a "consistent workflow snapshot"). This module
supplies the structural half of that story:

* :class:`Channel` — a typed, directed message edge with an optional
  per-exchange cost (and seeded jitter on that cost);
* :class:`CoupledComponent` — one named component: a live
  :class:`~repro.workflows.coupled.components.MessageCoupledApplication`
  plus its *own* task-duration and checkpoint-duration laws (the
  heterogeneity the paper's general setting allows);
* :class:`WorkflowGraph` — the validated DAG, with a deterministic
  topologically-ordered exchange step and the two aggregate laws the
  coordinated checkpoint decision needs: ``macro_task_law()`` (one
  macro-iteration runs components in parallel, so its duration is the
  *max* of the member task laws) and ``cut_checkpoint_law()`` (a
  coordinated checkpoint completes when the slowest member snapshot
  completes — ``max_i C_i``), both priced exactly by
  :class:`repro.distributions.MaxOf`;
* :func:`build_chain_graph` — the shared simple-path topology builder
  that :class:`repro.workflows.chain.LinearWorkflow` also uses, so a
  linear chain *is* the degenerate single-path instance of this module
  (see :meth:`WorkflowGraph.from_chain` / :meth:`WorkflowGraph.as_chain`).

Determinism contract: :meth:`WorkflowGraph.exchange` is a pure function
of the component states and the macro-iteration number. Channel-cost
jitter uses counter-based seeds derived from ``(graph seed, channel
port, iteration)`` — never a stateful stream — so a recovery that rolls
components back to macro-iteration ``k`` replays exchanges ``k, k+1,
...`` bit-identically. This is what makes a many-times-killed campaign
converge to the same solution as an uninterrupted one.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import networkx as nx
import numpy as np

from ..._validation import check_integer
from ...distributions import Distribution, max_of

if TYPE_CHECKING:  # pragma: no cover
    from ..chain import LinearWorkflow
    from .components import MessageCoupledApplication

__all__ = [
    "Channel",
    "CoupledComponent",
    "WorkflowGraph",
    "build_chain_graph",
    "is_simple_path",
]


def build_chain_graph(names: Sequence[str], *, cyclic: bool = False) -> nx.DiGraph:
    """Simple-path DiGraph over ``names``, validated.

    The chain topology used by :class:`repro.workflows.chain.LinearWorkflow`
    and by :meth:`WorkflowGraph.as_chain`: consecutive names are joined
    by one edge each; ``cyclic`` additionally closes the last node back
    to the first (iterative single-kernel workflows). Raises
    ``ValueError`` when the result is not one simple path (duplicate
    names collapse nodes, which shows up as branching or a short cycle).
    """
    names = list(names)
    if not names:
        raise ValueError("chain needs at least one node")
    g: nx.DiGraph = nx.DiGraph()
    g.add_nodes_from(names)
    for prev, nxt in zip(names, names[1:]):
        g.add_edge(prev, nxt)
    if cyclic and len(names) > 1:
        g.add_edge(names[-1], names[0])
    check = g.copy()
    if cyclic and len(names) > 1:
        check.remove_edge(names[-1], names[0])
    if not nx.is_directed_acyclic_graph(check):
        raise ValueError("workflow graph is not a chain")
    if any(d > 1 for _, d in check.out_degree()) or any(
        d > 1 for _, d in check.in_degree()
    ):
        raise ValueError("workflow graph is not a chain (branching detected)")
    return g


def is_simple_path(graph: nx.DiGraph) -> bool:
    """Whether a DAG is one simple path (the degenerate chain shape)."""
    n = graph.number_of_nodes()
    if n == 0 or graph.number_of_edges() != n - 1:
        return False
    if any(d > 1 for _, d in graph.out_degree()) or any(
        d > 1 for _, d in graph.in_degree()
    ):
        return False
    return nx.is_weakly_connected(graph) if n > 1 else True


@dataclass(frozen=True)
class Channel:
    """One directed message edge of the workflow DAG.

    Attributes
    ----------
    source, target:
        Component names (must exist in the graph; self-loops rejected).
    port:
        Routing key handed to the receiver's ``receive(port, value)``;
        defaults to ``"source->target"``. Unique per target.
    cost:
        Virtual seconds one exchange over this channel costs (transfer
        + synchronization). Charged to the reservation clock, not part
        of any component's task law — the documented approximation of
        the coupled runner.
    jitter:
        Relative half-width of the seeded uniform noise on ``cost``
        (``0`` disables). The realization is derived from ``(graph
        seed, port, iteration)``, never from a stateful stream, so
        replays after recovery are identical.
    """

    source: str
    target: str
    port: str = ""
    cost: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValueError("channel endpoints must be non-empty names")
        if self.source == self.target:
            raise ValueError(f"channel {self.source!r} -> itself is a self-loop")
        if self.cost < 0.0:
            raise ValueError(f"channel cost must be >= 0, got {self.cost}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"channel jitter must be in [0, 1], got {self.jitter}")
        if not self.port:
            object.__setattr__(self, "port", f"{self.source}->{self.target}")


@dataclass(frozen=True)
class CoupledComponent:
    """One named component of a coupled workflow.

    Attributes
    ----------
    name:
        Unique component label (also the checkpoint-store key).
    app:
        The live application; must speak the
        :class:`~repro.workflows.coupled.components.MessageCoupledApplication`
        emit/receive protocol when it has channels.
    task_law:
        ``D_X^(i)``: the component's per-macro-iteration duration law.
    checkpoint_law:
        ``D_C^(i)``: the component's snapshot-duration law.
    """

    name: str
    app: "MessageCoupledApplication"
    task_law: Distribution
    checkpoint_law: Distribution

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("component name must be non-empty")
        if self.task_law.lower < 0.0:
            raise ValueError(f"component {self.name!r}: task law must be on [0, inf)")
        if self.checkpoint_law.lower < 0.0:
            raise ValueError(
                f"component {self.name!r}: checkpoint law must be on [0, inf)"
            )


@dataclass(frozen=True)
class ExchangeReport:
    """What one macro-iteration's exchange step did."""

    iteration: int
    cost: float
    messages: tuple[tuple[str, float], ...] = field(default_factory=tuple)


class WorkflowGraph:
    """A validated DAG of coupled components.

    Parameters
    ----------
    components:
        The components; names must be unique. The given order is kept
        for display, but execution uses the deterministic
        (lexicographic) topological order.
    channels:
        Directed message edges between component names. The induced
        graph must be acyclic — one-way coupling; two-way (halo)
        exchange needs a cycle and is out of scope for this DAG model.
    seed:
        Root seed for channel-cost jitter (counter-based, see module
        docstring).
    """

    def __init__(
        self,
        components: Sequence[CoupledComponent],
        channels: Sequence[Channel] = (),
        *,
        seed: int = 0,
    ) -> None:
        components = list(components)
        if not components:
            raise ValueError("workflow needs at least one component")
        names = [c.name for c in components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        self.components: dict[str, CoupledComponent] = {c.name: c for c in components}
        self.channels = tuple(channels)
        self.seed = check_integer(seed, "seed", minimum=0)
        known = set(names)
        ports_per_target: dict[str, set[str]] = {}
        graph: nx.DiGraph = nx.DiGraph()
        graph.add_nodes_from(names)
        for ch in self.channels:
            if ch.source not in known or ch.target not in known:
                raise ValueError(
                    f"channel {ch.source!r} -> {ch.target!r} references an "
                    f"unknown component (known: {sorted(known)})"
                )
            seen = ports_per_target.setdefault(ch.target, set())
            if ch.port in seen:
                raise ValueError(
                    f"duplicate port {ch.port!r} on component {ch.target!r}"
                )
            seen.add(ch.port)
            graph.add_edge(ch.source, ch.target)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise ValueError(
                f"workflow graph has a cycle {cycle}; coupled workflows "
                "must be DAGs (one-way coupling)"
            )
        self._graph = graph
        # Deterministic execution order: lexicographic tie-break makes
        # the topological order (hence the exchange order) a pure
        # function of the graph, independent of construction order.
        self._order = list(nx.lexicographical_topological_sort(graph))
        order_index = {name: i for i, name in enumerate(self._order)}
        self._channel_order = sorted(
            self.channels, key=lambda ch: (order_index[ch.source], ch.port)
        )

    # -- structure -------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The validated DAG as a networkx DiGraph (read-only view)."""
        return self._graph.copy(as_view=True)

    @property
    def names(self) -> list[str]:
        """Component names in deterministic topological order."""
        return list(self._order)

    def component(self, name: str) -> CoupledComponent:
        return self.components[name]

    def __len__(self) -> int:
        return len(self.components)

    @property
    def apps(self) -> dict[str, "MessageCoupledApplication"]:
        """Live applications keyed by component name (topological order)."""
        return {name: self.components[name].app for name in self._order}

    @property
    def converged(self) -> bool:
        """Whether every component has met its tolerance."""
        return all(c.app.converged for c in self.components.values())

    @property
    def max_residual(self) -> float:
        """Worst residual across components (the workflow's residual)."""
        return max(float(c.app.residual) for c in self.components.values())

    # -- aggregate laws ---------------------------------------------------

    def macro_task_law(self) -> Distribution:
        """Duration law of one macro-iteration.

        Components iterate in parallel, so the macro-iteration lasts as
        long as the slowest member: ``max_i D_X^(i)`` (exact product-CDF
        law). Channel costs are charged separately on the clock and are
        *not* part of this law — the documented approximation.
        """
        return max_of([c.task_law for c in self.components.values()])

    def cut_checkpoint_law(self) -> Distribution:
        """Duration law of one coordinated cut: ``max_i D_C^(i)``.

        Member snapshots are written in parallel and the cut commits
        only when the slowest completes — this is the law the
        end-of-reservation decision must price
        (:func:`repro.runtime.runner.estimate_checkpoint_duration`
        accepts it like any other law).
        """
        return max_of([c.checkpoint_law for c in self.components.values()])

    # -- the exchange step ------------------------------------------------

    def exchange(self, iteration: int) -> ExchangeReport:
        """Run the message-exchange step for macro-iteration ``iteration``.

        Channels fire in deterministic topological order of their
        sources: each source emits, each target receives, and the
        channel's (jittered) cost accrues. Both the values and the
        realized costs are pure functions of ``(component states,
        iteration)``, so a rolled-back workflow replays its exchanges
        exactly.
        """
        iteration = check_integer(iteration, "iteration", minimum=0)
        total = 0.0
        messages: list[tuple[str, float]] = []
        for ch in self._channel_order:
            value = float(self.components[ch.source].app.emit(ch.port))
            self.components[ch.target].app.receive(ch.port, value)
            total += self._channel_cost(ch, iteration)
            messages.append((ch.port, value))
        return ExchangeReport(iteration=iteration, cost=total, messages=tuple(messages))

    def exchange_cost(self, iteration: int) -> float:
        """Total (jittered) channel cost of the exchange at
        ``iteration`` — the same value :meth:`exchange` accrues, usable
        without mutating any component."""
        return sum(self._channel_cost(ch, iteration) for ch in self._channel_order)

    def _channel_cost(self, ch: Channel, iteration: int) -> float:
        if ch.cost == 0.0 or ch.jitter == 0.0:
            return ch.cost
        # Counter-based seed: restart-stable by construction (REP001-
        # compliant — the seed is explicit and content-derived).
        seed = zlib.crc32(f"{self.seed}:{ch.port}:{iteration}".encode("utf-8"))
        u = float(np.random.default_rng(seed).random())
        return ch.cost * (1.0 + ch.jitter * (2.0 * u - 1.0))

    # -- chain interop (the degenerate single-path instance) --------------

    @classmethod
    def from_chain(
        cls,
        chain: "LinearWorkflow",
        apps: Mapping[str, "MessageCoupledApplication"],
        *,
        channel_cost: float = 0.0,
        seed: int = 0,
    ) -> "WorkflowGraph":
        """Build the degenerate single-path graph of a linear chain.

        Each :class:`~repro.workflows.chain.WorkflowTask` becomes a
        component carrying the same two laws; consecutive stages are
        joined by one channel each. Cyclic chains have no DAG
        counterpart and are rejected.
        """
        if chain.cyclic:
            raise ValueError("cyclic chains have no DAG counterpart")
        missing = [t.name for t in chain.tasks if t.name not in apps]
        if missing:
            raise ValueError(f"no app given for chain stage(s) {missing}")
        components = [
            CoupledComponent(t.name, apps[t.name], t.duration_law, t.checkpoint_law)
            for t in chain.tasks
        ]
        channels = [
            Channel(prev.name, nxt.name, cost=channel_cost)
            for prev, nxt in zip(chain.tasks, chain.tasks[1:])
        ]
        return cls(components, channels, seed=seed)

    def as_chain(self) -> "LinearWorkflow":
        """This graph as a :class:`~repro.workflows.chain.LinearWorkflow`.

        Only defined when the topology is one simple path; the stages
        inherit each component's task and checkpoint laws, in
        topological order.
        """
        from ..chain import LinearWorkflow, WorkflowTask

        if not is_simple_path(self._graph):
            raise ValueError("workflow graph is not a simple path")
        return LinearWorkflow(
            [
                WorkflowTask(
                    name,
                    self.components[name].task_law,
                    self.components[name].checkpoint_law,
                )
                for name in self._order
            ]
        )
