"""Message-coupled applications: components of a workflow DAG.

Extends the :class:`~repro.workflows.checkpointable.IterativeApplication`
contract with the typed-message half a coupled workflow needs:
``emit(port)`` produces this component's outgoing boundary value and
``receive(port, value)`` installs an incoming one. Crucially, received
values are **part of the checkpointed state**: a member snapshot taken
at macro-iteration ``k`` captures the inbox exactly as the exchange step
left it, so any consistent cut (every member at the same ``k``) restores
a workflow that replays bit-identically.

The concrete component, :class:`BoundaryCoupledDiffusion`, is a 1-D
diffusion subdomain whose inflow boundary is fed by its upstream
neighbour's outflow value — a one-way-coupled chain of subdomains
(block lower-triangular system, converging by block Gauss-Seidel with
lag). This is the simplest honest instance of the coupled-simulation
pattern the consistent-cut machinery exists for: components are
genuinely interdependent (killing the coupling changes every
downstream solution), yet the coupling DAG stays acyclic.
"""

from __future__ import annotations

import abc

import numpy as np
import scipy.sparse as sp

from ..._validation import check_integer, check_positive
from ..checkpointable import IterativeApplication
from ..problems import diffusion_1d

__all__ = ["BoundaryCoupledDiffusion", "MessageCoupledApplication"]


class MessageCoupledApplication(IterativeApplication):
    """An iterative application that exchanges typed messages.

    The workflow graph calls :meth:`emit` on channel sources and
    :meth:`receive` on channel targets once per macro-iteration, in
    deterministic topological order. Implementations must serialize
    their inbox with the rest of their state.
    """

    @abc.abstractmethod
    def emit(self, port: str) -> float:
        """Outgoing value for ``port`` (a pure function of the state)."""

    @abc.abstractmethod
    def receive(self, port: str, value: float) -> None:
        """Install the incoming value for ``port`` (part of the state)."""


class BoundaryCoupledDiffusion(MessageCoupledApplication):
    """1-D diffusion subdomain with an upstream-fed inflow boundary.

    Solves ``A x = b_eff`` by Jacobi sweeps, where ``A`` is the
    tridiagonal operator of :func:`repro.workflows.problems.diffusion_1d`
    and ``b_eff`` is the base source term plus ``coupling * inflow`` on
    the first cell — the Dirichlet contribution of the upstream
    subdomain's last solution value. :meth:`emit` exposes this
    subdomain's own last value, so chaining components yields a
    one-way-coupled decomposition: upstream converges first, its
    outflow settles, then each downstream subdomain converges against
    the settled boundary.

    Parameters
    ----------
    n:
        Interior cells of this subdomain.
    coefficient:
        Diffusion coefficient (scales ``A``).
    coupling:
        Weight of received inflow values in the boundary source term.
    heat:
        Uniform base source term (``b = heat * ones``).
    tolerance:
        Relative-residual target against the *current* ``b_eff``.
    """

    def __init__(
        self,
        n: int,
        *,
        coefficient: float = 1.0,
        coupling: float = 1.0,
        heat: float = 1.0,
        tolerance: float = 1e-6,
    ) -> None:
        n = check_integer(n, "n", minimum=2)
        self.tolerance = check_positive(tolerance, "tolerance")
        self.coupling = float(coupling)
        self.A = diffusion_1d(n, coefficient=coefficient)
        self.b = float(heat) * np.ones(n)
        diag = self.A.diagonal()
        self._inv_diag = 1.0 / diag
        self._off_diag = (self.A - sp.diags(diag)).tocsr()
        self.x = np.zeros(n)
        #: Inbox: last received value per port, sorted on serialization.
        self._inflow: dict[str, float] = {}
        self._iterations = 0
        self._residual = self._compute_residual()

    # -- coupling ---------------------------------------------------------

    def emit(self, port: str) -> float:
        return float(self.x[-1])

    def receive(self, port: str, value: float) -> None:
        self._inflow[port] = float(value)
        self._residual = self._compute_residual()

    def _effective_b(self) -> np.ndarray:
        b = self.b.copy()
        if self._inflow:
            b[0] += self.coupling * sum(
                self._inflow[p] for p in sorted(self._inflow)
            )
        return b

    # -- IterativeApplication protocol ------------------------------------

    @property
    def residual(self) -> float:
        return self._residual

    @property
    def iteration_count(self) -> int:
        return self._iterations

    @property
    def work_per_iteration(self) -> float:
        return 2.0 * self.A.nnz + 8.0 * self.b.size

    def iterate(self) -> float:
        b_eff = self._effective_b()
        self.x = self._inv_diag * (b_eff - self._off_diag @ self.x)
        self._iterations += 1
        self._residual = self._compute_residual()
        return self._residual

    # -- checkpointing ----------------------------------------------------

    def serialize_state(self) -> bytes:
        ports = sorted(self._inflow)
        return self._pack_arrays(
            x=self.x,
            iterations=np.array([self._iterations], dtype=np.int64),
            inflow_ports=np.array(ports, dtype=np.str_),
            inflow_values=np.array([self._inflow[p] for p in ports], dtype=float),
        )

    def restore_state(self, payload: bytes) -> None:
        arrays = self._unpack_arrays(payload)
        self.x = arrays["x"]
        self._iterations = int(arrays["iterations"][0])
        self._inflow = {
            str(port): float(value)
            for port, value in zip(arrays["inflow_ports"], arrays["inflow_values"])
        }
        self._residual = self._compute_residual()

    # -- internals --------------------------------------------------------

    def _compute_residual(self) -> float:
        b_eff = self._effective_b()
        norm = float(np.linalg.norm(b_eff)) or 1.0
        return float(np.linalg.norm(b_eff - self.A @ self.x)) / norm
