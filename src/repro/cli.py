"""Command-line interface.

Exposes the paper's solvers without writing Python::

    repro margin  --reservation 10 --checkpoint-law uniform:1,7.5
    repro static  --reservation 30 --task-law normal:3,0.5 \\
                  --checkpoint-law "normal:5,0.4@[0,inf]"
    repro dynamic --reservation 29 --task-law "normal:3,0.5@[0,inf]" \\
                  --checkpoint-law "normal:5,0.4@[0,inf]" --work 19
    repro fit trace.txt
    repro simulate --mode dynamic --reservation 29 \\
                  --task-law "normal:3,0.5@[0,inf]" \\
                  --checkpoint-law "normal:5,0.4@[0,inf]" --trials 100000
    repro simulate --failures --mode restart --reservation 100 \\
                  --checkpoint-law "normal:5,0.4@[0,inf]" \\
                  --failure-rate 0.01 --recovery 2 --trials 20000
    repro simulate --failures --mode dynamic --reservation 100 \\
                  --task-law gamma:2,1.5 --checkpoint-law "normal:2,0.4@[0,inf]" \\
                  --failure-rate 0.03 --predictor 0.8,0.7,6 --trials 20000
    repro serve   --port 7823 --cache-dir ~/.cache/repro-policies
    repro advise  --reservation 29 --task-law "normal:3,0.5@[0,inf]" \\
                  --checkpoint-law "normal:5,0.4@[0,inf]" --work 12 19 25
    repro warm    --reservation 10 20 29 --task-law "normal:3,0.5@[0,inf]" \\
                  --checkpoint-law "normal:5,0.4@[0,inf]"
    repro chaos   --upstream 127.0.0.1:7823 --port 7824 --seed 42 \\
                  --latency 0.2 --reset-after 64
    repro run     --solver cg --size 24 -R 6.0 \\
                  --checkpoint-law "normal:0.5,0.1@[0,inf]" \\
                  --task-law "normal:0.3,0.05@[0,inf]" \\
                  --store-dir /tmp/ckpts --resume
    repro run     --solver jacobi -R 40 --checkpoint-law uniform:0.3,0.7 \\
                  --task-law gamma:2,0.5 --failure-rate 0.05 \\
                  --failure-aware --predictor 0.9,0.8,3 --recovery 0.5
    repro run-coupled --components 3 --size 8 -R 8.0 \\
                  --task-law uniform:0.08,0.12 \\
                  --checkpoint-law uniform:0.3,0.5 \\
                  --channel-cost 0.01 --store-dir /tmp/coupled --resume

Law specification grammar::

    <family>:<p1>,<p2>,...[@[lo,hi]]

Families: uniform(a,b), exponential(lam), normal(mu,sigma),
lognormal(mu,sigma), gamma(k,theta), weibull(shape,scale),
poisson(lam), deterministic(v), beta(alpha,beta[,lo,hi]). The optional
``@[lo,hi]`` suffix truncates (``inf`` allowed as ``hi``). The
composite ``max(<spec>|<spec>|...)`` is the law of the max of
independent members (order statistics for coordinated checkpoints,
see docs/coupled.md); truncation suffixes apply to the members.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

import numpy as np

from .distributions import (
    Beta,
    Deterministic,
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Poisson,
    Uniform,
    Weibull,
    truncate,
)

__all__ = ["parse_law", "main"]

_FAMILIES = {
    "uniform": (Uniform, 2),
    "exponential": (Exponential, 1),
    "normal": (Normal, 2),
    "lognormal": (LogNormal, 2),
    "gamma": (Gamma, 2),
    "weibull": (Weibull, 2),
    "poisson": (Poisson, 1),
    "deterministic": (Deterministic, 1),
    "beta": (Beta, (2, 4)),
}


def _split_top_level(body: str, sep: str) -> list[str]:
    """Split ``body`` at ``sep`` occurrences outside any parentheses."""
    parts: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced parentheses in law spec {body!r}")
        elif ch == sep and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    if depth != 0:
        raise ValueError(f"unbalanced parentheses in law spec {body!r}")
    parts.append(body[start:])
    return parts


def parse_law(spec: str) -> Distribution:
    """Parse a law specification string (see module docstring)."""
    spec = spec.strip()
    if spec.startswith("max("):
        from .distributions import max_of

        if not spec.endswith(")"):
            raise ValueError(
                f"max(...) composite must end with ')', got {spec!r} "
                "(truncate the members, not the max)"
            )
        members = [m.strip() for m in _split_top_level(spec[4:-1], "|")]
        if any(not m for m in members):
            raise ValueError(f"empty member in max(...) composite {spec!r}")
        if len(members) < 2:
            raise ValueError(
                f"max(...) needs at least two '|'-separated members, got {spec!r}"
            )
        return max_of([parse_law(m) for m in members])
    trunc_bounds = None
    if "@" in spec:
        spec, _, suffix = spec.partition("@")
        suffix = suffix.strip()
        if not (suffix.startswith("[") and suffix.endswith("]")):
            raise ValueError(f"truncation suffix must look like @[lo,hi], got @{suffix!r}")
        parts = suffix[1:-1].split(",")
        if len(parts) != 2:
            raise ValueError(f"truncation needs two bounds, got {suffix!r}")
        lo = -math.inf if parts[0].strip() in ("-inf", "") else float(parts[0])
        hi = math.inf if parts[1].strip() in ("inf", "") else float(parts[1])
        trunc_bounds = (lo, hi)
    name, _, params_str = spec.partition(":")
    name = name.strip().lower()
    if name not in _FAMILIES:
        raise ValueError(
            f"unknown family {name!r}; available: {', '.join(sorted(_FAMILIES))}"
        )
    cls, arity = _FAMILIES[name]
    params = [float(p) for p in params_str.split(",")] if params_str else []
    if isinstance(arity, tuple):
        if len(params) not in arity:
            raise ValueError(f"{name} takes {arity[0]} or {arity[1]} parameters, got {len(params)}")
    elif len(params) != arity:
        raise ValueError(f"{name} takes {arity} parameter(s), got {len(params)}")
    law: Distribution = cls(*params)
    if trunc_bounds is not None:
        law = truncate(law, *trunc_bounds)
    return law


def _rule_id_list(value: str) -> list[str]:
    """argparse type for comma-separated lint rule ids."""
    return [part.strip().upper() for part in value.split(",") if part.strip()]


def _parse_predictor(spec: str, seed: int):
    """Build a WindowPredictor from ``recall,precision,width[,lead]``."""
    from .core import WindowPredictor

    parts = [float(p) for p in spec.split(",")]
    if len(parts) not in (3, 4):
        raise ValueError(
            f"--predictor takes recall,precision,width[,lead], got {spec!r}"
        )
    lead = parts[3] if len(parts) == 4 else None
    return WindowPredictor(
        recall=parts[0], precision=parts[1], width=parts[2], lead=lead, seed=seed
    )


def _cmd_margin(args: argparse.Namespace) -> int:
    from .core import preemptible

    law = parse_law(args.checkpoint_law)
    sol = preemptible.solve(args.reservation, law)
    print(f"X_opt               = {sol.x_opt:.6g}")
    print(f"checkpoint start at = {args.reservation - sol.x_opt:.6g}")
    print(f"E(W(X_opt))         = {sol.expected_work_opt:.6g}")
    print(f"pessimistic E(W(b)) = {sol.pessimistic_work:.6g}")
    gain = "inf" if math.isinf(sol.gain) else f"{sol.gain:.4f}"
    print(f"gain                = {gain}x   ({sol.method})")
    return 0


def _cmd_static(args: argparse.Namespace) -> int:
    from .core import StaticStrategy

    strat = StaticStrategy(
        args.reservation, parse_law(args.task_law), parse_law(args.checkpoint_law)
    )
    sol = strat.solve()
    print(f"n_opt        = {sol.n_opt}")
    print(f"E(n_opt)     = {sol.expected_work_opt:.6g}")
    if not math.isnan(sol.y_opt):
        print(f"y_opt        = {sol.y_opt:.6g} (continuous relaxation)")
    if args.show_curve:
        for n, v in sol.evaluations.items():
            print(f"  E({n:>3}) = {v:.6g}")
    return 0


def _cmd_dynamic(args: argparse.Namespace) -> int:
    task = parse_law(args.task_law)
    ckpt = parse_law(args.checkpoint_law)
    if args.kernel == "table":
        from .kernels import build_policy_table

        table = build_policy_table(args.reservation, task, ckpt)
        w_int = table.w_int
        print(f"W_int = {w_int:.6g}  (checkpoint once this much work is done)")
        if args.work is not None:
            action = "CHECKPOINT" if bool(table.decide(args.work)[0]) else "CONTINUE"
            e_c = float(table.e_checkpoint_at(args.work))
            e_1 = float(table.e_continue_at(args.work))
            print(
                f"at W_n = {args.work:g}: E(W_C) = {e_c:.6g}, "
                f"E(W_+1) = {e_1:.6g} -> {action}"
            )
        return 0
    from .core import DynamicStrategy

    strat = DynamicStrategy(args.reservation, task, ckpt)
    w_int = strat.crossing_point()
    print(f"W_int = {w_int:.6g}  (checkpoint once this much work is done)")
    if args.work is not None:
        action = "CHECKPOINT" if strat.should_checkpoint(args.work) else "CONTINUE"
        e_c = float(strat.expected_if_checkpoint(args.work))
        e_1 = strat.expected_if_continue(args.work)
        print(f"at W_n = {args.work:g}: E(W_C) = {e_c:.6g}, E(W_+1) = {e_1:.6g} -> {action}")
    return 0


def _cmd_risk(args: argparse.Namespace) -> int:
    from .core import margin_for_target, quantile_optimal_margin

    law = parse_law(args.checkpoint_law)
    R = args.reservation
    if args.quantile is not None:
        x, val = quantile_optimal_margin(R, law, args.quantile)
        print(f"q = {args.quantile:g}: X* = {x:.6g}, "
              f"guaranteed work (prob >= {args.quantile:g}) = {val:.6g}")
    if args.target is not None:
        x, p = margin_for_target(R, law, args.target)
        print(f"target = {args.target:g}: X* = {x:.6g}, "
              f"P(saved >= target) = {p:.6g}")
    if args.quantile is None and args.target is None:
        print("error: provide --quantile and/or --target", file=sys.stderr)
        return 2
    return 0


def _cmd_sizing(args: argparse.Namespace) -> int:
    from .analysis import QueueModel, optimize_reservation_length
    from .core import BillingModel

    queue = QueueModel(
        base=args.wait_base, coefficient=args.wait_coefficient, exponent=args.wait_exponent
    )
    billing = BillingModel.BY_USAGE if args.by_usage else BillingModel.BY_RESERVATION
    best, points = optimize_reservation_length(
        args.candidates,
        args.total_work,
        parse_law(args.task_law),
        parse_law(args.checkpoint_law),
        objective=args.objective,
        recovery=args.recovery,
        queue=queue,
        billing=billing,
    )
    print(f"{'R':>9} {'E[work]/resv':>13} {'#resv':>9} {'makespan':>11} {'cost':>11}")
    for p in points:
        marker = "  <- best" if p.R == best.R else ""
        print(
            f"{p.R:>9.1f} {p.expected_work_per_reservation:>13.2f} "
            f"{p.expected_reservations:>9.1f} {p.expected_makespan:>11.0f} "
            f"{p.expected_cost:>11.0f}{marker}"
        )
    print(f"\nbest R = {best.R:g} by {args.objective}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .traces import select_best

    data = np.loadtxt(args.trace, ndmin=1)
    report = select_best(data, families=args.families)
    print(report.table())
    best = report.best
    print(f"\nbest: {best.family}  {best.distribution!r}")
    print(f"KS D = {report.ks_stat:.4f}, p = {report.ks_p:.4f}")
    return 0


def _cmd_simulate_failures(args: argparse.Namespace) -> int:
    """Monte-Carlo under exponential strikes, with analytic anchors."""
    from .core import (
        final_only_expected_work,
        periodic_expected_work,
        restart_expected_work,
        young_period,
    )
    from .core import preemptible as preemptible_mod
    from .simulation import (
        SimulationSummary,
        simulate_dynamic_with_failures,
        simulate_final_only_with_failures,
        simulate_periodic_with_failures,
        simulate_restart_with_failures,
    )

    ckpt = parse_law(args.checkpoint_law)
    R = args.reservation
    lam = args.failure_rate
    if lam is None:
        print("error: --failures needs --failure-rate", file=sys.stderr)
        return 2
    analytic = None
    if args.mode in ("final-only", "restart"):
        if args.margin is None:
            args.margin = preemptible_mod.solve(R, ckpt).x_opt
            print(f"using failure-free optimal margin X = {args.margin:.6g}")
        if args.mode == "final-only":
            saved = simulate_final_only_with_failures(
                R, ckpt, args.margin, lam, args.trials, args.seed
            )
            analytic = final_only_expected_work(R, ckpt, args.margin, lam)
        else:
            saved = simulate_restart_with_failures(
                R, ckpt, args.margin, lam, args.trials, args.seed,
                recovery=args.recovery,
            )
            analytic = restart_expected_work(
                R, ckpt, args.margin, lam, recovery=args.recovery
            )
    elif args.mode == "periodic":
        if args.period is None:
            args.period = young_period(float(ckpt.mean()), lam) if lam > 0 else R
            print(f"using Young period T = {args.period:.6g}")
        saved = simulate_periodic_with_failures(
            R, ckpt, args.period, lam, args.trials, args.seed,
            recovery=args.recovery,
        )
        analytic = periodic_expected_work(
            R, ckpt, args.period, lam, recovery=args.recovery
        )
    elif args.mode == "dynamic":
        if args.task_law is None:
            print("error: --task-law is required for --mode dynamic", file=sys.stderr)
            return 2
        predictor = (
            _parse_predictor(args.predictor, args.predictor_seed)
            if args.predictor is not None
            else None
        )
        saved, stats = simulate_dynamic_with_failures(
            R, parse_law(args.task_law), ckpt, lam, args.trials, args.seed,
            predictor=predictor, recovery=args.recovery, return_stats=True,
        )
        print(
            f"events: {stats.strikes} strikes, {stats.checkpoints} checkpoints "
            f"({stats.torn_checkpoints} torn, "
            f"{stats.proactive_checkpoints} proactive), {stats.tasks} tasks"
        )
    else:
        print(
            f"error: --failures supports final-only/periodic/restart/dynamic, "
            f"not {args.mode!r}",
            file=sys.stderr,
        )
        return 2
    print(SimulationSummary.from_samples(saved).summary())
    if analytic is not None:
        print(f"analytic E[saved] = {analytic:.6g}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .core import DynamicStrategy, StaticStrategy
    from .simulation import (
        SimulationSummary,
        simulate_fixed_count,
        simulate_oracle,
        simulate_preemptible,
        simulate_threshold,
    )

    if args.failures:
        return _cmd_simulate_failures(args)
    if args.failure_rate is not None:
        print("error: --failure-rate needs --failures", file=sys.stderr)
        return 2
    ckpt = parse_law(args.checkpoint_law)
    R = args.reservation
    if args.mode == "preemptible":
        if args.margin is None:
            from .core import preemptible

            args.margin = preemptible.solve(R, ckpt).x_opt
            print(f"using optimal margin X = {args.margin:.6g}")
        saved = simulate_preemptible(R, ckpt, args.margin, args.trials, args.seed)
    else:
        if args.task_law is None:
            print("error: --task-law is required for workflow modes", file=sys.stderr)
            return 2
        tasks = parse_law(args.task_law)
        if args.mode == "static":
            n = StaticStrategy(R, tasks, ckpt).solve().n_opt
            print(f"using n_opt = {n}")
            saved = simulate_fixed_count(R, tasks, ckpt, n, args.trials, args.seed)
        elif args.mode == "dynamic":
            w_int = DynamicStrategy(R, tasks, ckpt).crossing_point()
            print(f"using W_int = {w_int:.6g}")
            saved = simulate_threshold(R, tasks, ckpt, w_int, args.trials, args.seed)
        else:  # oracle
            saved = simulate_oracle(R, tasks, ckpt, args.trials, args.seed)
    print(SimulationSummary.from_samples(saved).summary())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .obs import DurationRecorder, Tracer
    from .service import Advisor, AdvisorServer, PolicyCache, ServiceMetrics

    metrics = ServiceMetrics()
    tracer = Tracer(capacity=args.trace_capacity, enabled=args.trace)
    recorder = DurationRecorder(
        window=args.drift_window,
        min_samples=args.drift_min_samples,
        threshold=args.drift_threshold,
        alpha=args.drift_alpha,
    )
    cache = PolicyCache(
        maxsize=args.cache_size, path=args.cache_dir, metrics=metrics, tracer=tracer
    )
    server = AdvisorServer(
        Advisor(cache, metrics=metrics, tracer=tracer),
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        idle_timeout=args.idle_timeout if args.idle_timeout > 0 else None,
        max_connections=args.max_connections,
        max_inflight=args.max_inflight,
        metrics=metrics,
        tracer=tracer,
        recorder=recorder,
        drift_check=args.drift_check,
    )

    async def _serve() -> None:
        await server.start()
        print(f"repro advisor listening on {server.host}:{server.port}", flush=True)
        await server.serve_until_stopped()

    import asyncio

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    if args.metrics_dump:
        print(metrics.render())
    if args.trace and args.trace_dump:
        sys.stderr.write(tracer.export_jsonl())
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .service import Client

    host, _, port_str = args.connect.rpartition(":")
    with Client(host or "127.0.0.1", int(port_str), timeout=args.timeout) as client:
        if args.format == "prometheus":
            print(client.metrics_prometheus(), end="")
        else:
            import json

            print(
                json.dumps(
                    client.stats(format="json"),
                    indent=2,
                    sort_keys=True,
                    allow_nan=False,
                )
            )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(
        args.paths,
        output_format=args.format,
        select=args.select,
        ignore=args.ignore,
        list_rules=args.list_rules,
        flow=args.flow,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
    )


def _cmd_advise(args: argparse.Namespace) -> int:
    if args.connect is not None:
        if args.kernel == "exact":
            print(
                "error: --kernel exact is a local differential-test path; "
                "it cannot be combined with --connect",
                file=sys.stderr,
            )
            return 2
        from .service import ResilientClient, RetryPolicy

        host, _, port_str = args.connect.rpartition(":")
        with ResilientClient(
            host or "127.0.0.1",
            int(port_str),
            deadline=args.deadline,
            retry=RetryPolicy(max_attempts=args.retries),
            fallback=False if args.no_fallback else None,
        ) as client:
            result = client.advise_batch(
                args.reservation, args.task_law, args.checkpoint_law, args.work
            )
        advices = result["advice"]
        threshold = advices[0]["threshold"] if advices else float("nan")
        print(f"source: {result['source']}")
    else:
        from .service import Advisor

        advisor = Advisor(kernel=args.kernel)
        batch = advisor.advise_batch(
            args.reservation, args.task_law, args.checkpoint_law, args.work
        )
        advices = [a.to_dict() for a in batch]
        threshold = batch[0].threshold if batch else float("nan")
    print(f"W_int = {threshold:.6g}")
    for a in advices:
        print(
            f"at W_n = {a['work']:g}: E(W_C) = {a['expected_if_checkpoint']:.6g}, "
            f"E(W_+1) = {a['expected_if_continue']:.6g} -> {a['action'].upper()}"
        )
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    from .service import PolicyCache

    cache = PolicyCache(path=args.cache_dir, kernel=args.kernel)
    for R in args.reservation:
        policy = cache.warm(R, args.task_law, args.checkpoint_law)
        print(f"warmed {policy.summary()}")
    stats = cache.stats()
    where = args.cache_dir if args.cache_dir else "memory only"
    print(
        f"{stats['size']} policies cached ({where}); "
        f"{stats['misses'] - stats['disk_hits']} compiled, "
        f"{stats['hits'] + stats['disk_hits']} reused"
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import asyncio

    from .service import ChaosConfig, ChaosProxy

    up_host, _, up_port = args.upstream.rpartition(":")
    config = ChaosConfig(
        seed=args.seed,
        latency=args.latency,
        latency_jitter=args.latency_jitter,
        reset_after=args.reset_after,
        truncate_at=args.truncate_at,
        garbage_bytes=args.garbage_bytes,
        throttle_chunk=args.throttle_chunk,
        throttle_delay=args.throttle_delay,
        times=args.times,
    )
    proxy = ChaosProxy(
        up_host or "127.0.0.1", int(up_port), config, host=args.host, port=args.port
    )

    async def _run() -> None:
        await proxy.start()
        print(
            f"chaos proxy on {proxy.host}:{proxy.port} -> "
            f"{proxy.upstream_host}:{proxy.upstream_port} (seed={config.seed})",
            flush=True,
        )
        await proxy.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    stats = proxy.stats.as_dict()
    print("chaos stats:")
    for name, value in stats.items():
        print(f"  {name:<20} {value}")
    return 0


_SOLVERS = ("jacobi", "gauss-seidel", "sor", "cg", "gmres")


def _build_solver(name: str, size: int, tolerance: float):
    """Construct a solver on a Poisson-2D problem of the given grid size."""
    from .workflows import (
        ConjugateGradientSolver,
        GaussSeidelSolver,
        GMRESSolver,
        JacobiSolver,
        SORSolver,
        manufactured_rhs,
        optimal_omega_poisson_2d,
        poisson_2d,
    )

    A = poisson_2d(size)
    b, _ = manufactured_rhs(A, rng=0)
    if name == "jacobi":
        return JacobiSolver(A, b, tolerance=tolerance)
    if name == "gauss-seidel":
        return GaussSeidelSolver(A, b, tolerance=tolerance)
    if name == "sor":
        return SORSolver(A, b, omega=optimal_omega_poisson_2d(size), tolerance=tolerance)
    if name == "cg":
        return ConjugateGradientSolver(A, b, tolerance=tolerance)
    if name == "gmres":
        return GMRESSolver(A, b, restart=20, tolerance=tolerance)
    raise ValueError(f"unknown solver {name!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    from .distributions import LogNormal
    from .runtime import (
        AdvisorPolicy,
        DurableCheckpointStore,
        FaultInjector,
        InMemoryCheckpointStore,
        ReservationRunner,
        SimulatedCrash,
    )
    from .workflows import MachineModel

    ckpt_law = parse_law(args.checkpoint_law)
    app = _build_solver(args.solver, args.size, args.tolerance)

    if args.store_dir is not None:
        store = DurableCheckpointStore(args.store_dir, keep=args.keep)
        if store.has_checkpoint and not args.resume:
            print(
                f"error: {args.store_dir} already holds checkpoints "
                "(generation "
                f"{store.latest().generation}); pass --resume to continue "
                "that campaign or point --store-dir at an empty directory",
                file=sys.stderr,
            )
            return 2
    else:
        store = InMemoryCheckpointStore(keep=args.keep)

    if args.inject_fault is not None:
        if args.store_dir is None:
            print("error: --inject-fault needs --store-dir", file=sys.stderr)
            return 2
        injector = FaultInjector(seed=args.fault_seed)
        if args.inject_fault == "crash":
            store.fault_hook = injector.crash_hook()
        elif args.inject_fault == "disk-full":
            store.fault_hook = injector.disk_full_hook()
        else:
            damaged = injector.apply_storage_fault(store, args.inject_fault)
            print(f"injected fault: {args.inject_fault} (applied={damaged})")

    predictor = (
        _parse_predictor(args.predictor, args.predictor_seed)
        if args.predictor is not None
        else None
    )
    if predictor is not None and args.failure_rate is None:
        print("error: --predictor needs --failure-rate", file=sys.stderr)
        return 2

    if args.restart_margin is not None:
        from .core import RestartPolicy

        policy = RestartPolicy(args.restart_margin)
    elif args.failure_aware:
        if args.task_law is None or args.failure_rate is None:
            print(
                "error: --failure-aware needs --task-law and --failure-rate",
                file=sys.stderr,
            )
            return 2
        from .core import FailureAwareDynamicPolicy

        policy = FailureAwareDynamicPolicy(
            parse_law(args.task_law), ckpt_law, args.failure_rate,
            predictor=predictor,
        )
    elif args.task_law is not None:
        from .service import Advisor

        policy = AdvisorPolicy(
            Advisor(), parse_law(args.task_law), ckpt_law, kernel=args.kernel
        )
    else:
        from .core import StaticCountPolicy

        policy = StaticCountPolicy(args.every)

    strikes = None
    if args.failure_rate is not None:
        strikes = FaultInjector(seed=args.strike_seed).strike_process(
            args.failure_rate, predictor=predictor
        )

    noise = (
        LogNormal.from_moments(1.0, args.noise_cv) if args.noise_cv > 0.0 else None
    )
    runner = ReservationRunner(
        app,
        store,
        machine=MachineModel(flops_per_second=args.flops, noise_law=noise),
        checkpoint_law=ckpt_law,
        policy=policy,
        recovery=args.recovery,
        deadline_estimator=args.estimator,
        rng=args.seed,
        strikes=strikes,
    )
    try:
        campaign = runner.run_campaign(args.reservation, max_reservations=args.reservations)
    except SimulatedCrash as crash:
        print(f"simulated crash: {crash} — rerun with --resume to recover")
        return 0
    for i, res in enumerate(campaign.reservations, 1):
        status = []
        if res.recovered_generation is not None:
            status.append(f"resumed gen {res.recovered_generation}")
        if res.recovery_fallbacks:
            status.append(f"{res.recovery_fallbacks} corrupt gen(s) skipped")
        if res.strikes:
            status.append(
                f"{res.strikes} strikes ({res.strike_recoveries} recovered, "
                f"{res.strike_restarts} from scratch, "
                f"{res.work_lost:.3g}s lost)"
            )
        if res.proactive_checkpoints:
            status.append(f"{res.proactive_checkpoints} proactive ckpt")
        status.append(f"{res.iterations_run} iters")
        status.append(
            f"{res.checkpoints_succeeded} ckpt"
            + (f" +{res.checkpoints_failed} failed" if res.checkpoints_failed else "")
            + (
                f" +{res.checkpoints_skipped_deadline} deadline-skipped"
                if res.checkpoints_skipped_deadline
                else ""
            )
        )
        if res.expected_work is not None:
            status.append(
                f"saved {res.work_saved:.3g}s (model {res.expected_work:.3g}s)"
            )
        else:
            status.append(f"saved {res.work_saved:.3g}s")
        print(f"  reservation {i:>3}: " + ", ".join(status))
    print(campaign.summary())
    print(
        f"store: {store.writes} writes, {store.recoveries} recoveries, "
        f"{store.quarantined} quarantined"
    )
    return 0 if campaign.solution_saved else 1


def _cmd_run_coupled(args: argparse.Namespace) -> int:
    import os

    from .runtime import (
        AdvisorPolicy,
        DurableCheckpointStore,
        FaultInjector,
        InMemoryCheckpointStore,
        SimulatedCrash,
    )
    from .workflows import (
        BoundaryCoupledDiffusion,
        Channel,
        CoupledComponent,
        CoupledReservationRunner,
        SnapshotCoordinator,
        WorkflowGraph,
        run_coupled_campaign,
    )
    from .workflows.coupled import DurableCutLog, InMemoryCutLog

    n = args.components
    if n < 1:
        print("error: --components must be >= 1", file=sys.stderr)
        return 2

    def per_component(specs: list[str] | None, what: str) -> list:
        if specs is None or len(specs) == 0:
            raise ValueError(f"--{what} is required")
        if len(specs) == 1:
            specs = specs * n
        if len(specs) != n:
            raise ValueError(
                f"--{what} given {len(specs)} times for {n} components "
                "(give it once, or once per component)"
            )
        return [parse_law(s) for s in specs]

    task_laws = per_component(args.task_law, "task-law")
    ckpt_laws = per_component(args.checkpoint_law, "checkpoint-law")

    names = [f"c{i + 1:02d}" for i in range(n)]
    components = [
        CoupledComponent(
            name,
            BoundaryCoupledDiffusion(args.size, tolerance=args.tolerance),
            task_laws[i],
            ckpt_laws[i],
        )
        for i, name in enumerate(names)
    ]
    channels = [
        Channel(prev, nxt, cost=args.channel_cost, jitter=args.channel_jitter)
        for prev, nxt in zip(names, names[1:])
    ]
    graph = WorkflowGraph(components, channels, seed=args.seed)

    if args.store_dir is not None:
        stores = {
            name: DurableCheckpointStore(
                os.path.join(args.store_dir, name), keep=args.keep
            )
            for name in names
        }
        cut_log = DurableCutLog(os.path.join(args.store_dir, "cuts"), keep=args.keep)
        latest = cut_log.latest()
        if latest is not None and not args.resume:
            print(
                f"error: {args.store_dir} already holds cuts (cut "
                f"{latest.cut}); pass --resume to continue that campaign "
                "or point --store-dir at an empty directory",
                file=sys.stderr,
            )
            return 2
    else:
        stores = {name: InMemoryCheckpointStore(keep=args.keep) for name in names}
        cut_log = InMemoryCutLog()

    if args.inject_fault is not None:
        if args.store_dir is None:
            print("error: --inject-fault needs --store-dir", file=sys.stderr)
            return 2
        injector = FaultInjector(seed=args.fault_seed)
        hook = (
            injector.crash_hook()
            if args.inject_fault == "crash"
            else injector.disk_full_hook()
        )
        if args.fault_target == "manifest":
            cut_log.fault_hook = hook
        elif args.fault_target in stores:
            stores[args.fault_target].fault_hook = hook
        else:
            print(
                f"error: --fault-target must be 'manifest' or one of {names}",
                file=sys.stderr,
            )
            return 2

    coordinator = SnapshotCoordinator(stores, cut_log)
    if args.advisor:
        from .service import Advisor

        policy = AdvisorPolicy(
            Advisor(),
            graph.macro_task_law(),
            graph.cut_checkpoint_law(),
            kernel=args.kernel,
        )
    else:
        from .core import StaticCountPolicy

        policy = StaticCountPolicy(args.every)

    runner = CoupledReservationRunner(
        graph,
        coordinator,
        policy=policy,
        recovery=args.recovery,
        deadline_estimator=args.estimator,
        rng=args.seed,
    )
    try:
        campaign = run_coupled_campaign(
            runner, args.reservation, max_reservations=args.reservations
        )
    except SimulatedCrash as crash:
        print(f"simulated crash: {crash} — rerun with --resume to recover")
        return 0
    for i, res in enumerate(campaign.reservations, 1):
        status = []
        if res.recovered_cut is not None:
            status.append(
                f"resumed cut {res.recovered_cut} @iter {res.recovered_iteration}"
            )
        if res.cuts_quarantined_on_recovery:
            status.append(f"{res.cuts_quarantined_on_recovery} cut(s) quarantined")
        status.append(f"{res.macro_iterations} macro-iters")
        status.append(
            f"{res.cuts_committed} cuts"
            + (f" +{res.cuts_torn} torn" if res.cuts_torn else "")
            + (
                f" +{res.cuts_skipped_deadline} deadline-skipped"
                if res.cuts_skipped_deadline
                else ""
            )
        )
        if res.expected_work is not None:
            status.append(
                f"saved {res.work_saved:.3g}s (model {res.expected_work:.3g}s)"
            )
        else:
            status.append(f"saved {res.work_saved:.3g}s")
        print(f"  reservation {i:>3}: " + ", ".join(status))
    print(campaign.summary())
    writes = sum(s.writes for s in stores.values())
    quarantined = sum(s.quarantined for s in stores.values())
    print(
        f"stores: {writes} member writes, {quarantined} member quarantines; "
        f"cut log: {cut_log.writes} cuts, {cut_log.quarantined} quarantined, "
        f"{coordinator.recoveries} cut recoveries"
    )
    return 0 if campaign.solution_saved else 1


def _add_kernel_flag(p: argparse.ArgumentParser, default: str = "table") -> None:
    p.add_argument(
        "--kernel",
        choices=("table", "exact"),
        default=default,
        help="policy evaluation path: 'table' = vectorized kernel "
             "tables, 'exact' = scalar quadrature oracle (identical "
             "decisions; see docs/kernels.md)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="End-of-reservation checkpoint planning (FTXS'23 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("margin", help="Scenario 1: optimal checkpoint margin")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--checkpoint-law", required=True, help="e.g. uniform:1,7.5")
    p.set_defaults(func=_cmd_margin)

    p = sub.add_parser("static", help="Scenario 2: optimal task count (static)")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--task-law", required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--show-curve", action="store_true", help="print E(n) for every n scanned")
    p.set_defaults(func=_cmd_static)

    p = sub.add_parser("dynamic", help="Scenario 2: dynamic rule threshold")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--task-law", required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--work", type=float, default=None, help="evaluate the rule at this W_n")
    _add_kernel_flag(p, default="exact")
    p.set_defaults(func=_cmd_dynamic)

    p = sub.add_parser("risk", help="risk-averse margins (quantile / target guarantee)")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--quantile", "-q", type=float, default=None,
                   help="maximize the q-quantile of saved work")
    p.add_argument("--target", type=float, default=None,
                   help="maximize P(saved work >= target)")
    p.set_defaults(func=_cmd_risk)

    p = sub.add_parser("sizing", help="choose the reservation length R")
    p.add_argument("--total-work", type=float, required=True)
    p.add_argument("--task-law", required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--candidates", type=float, nargs="+", required=True)
    p.add_argument("--recovery", type=float, default=0.0)
    p.add_argument("--objective", choices=["makespan", "cost"], default="makespan")
    p.add_argument("--by-usage", action="store_true", help="cloud-style billing")
    p.add_argument("--wait-base", type=float, default=60.0)
    p.add_argument("--wait-coefficient", type=float, default=1.0)
    p.add_argument("--wait-exponent", type=float, default=1.5)
    p.set_defaults(func=_cmd_sizing)

    p = sub.add_parser("fit", help="fit a law to a duration trace (one value per line)")
    p.add_argument("trace", help="text file with one duration per line")
    p.add_argument("--families", nargs="*", default=None)
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("simulate", help="Monte-Carlo evaluation of a strategy")
    p.add_argument("--mode",
                   choices=["preemptible", "static", "dynamic", "oracle",
                            "final-only", "periodic", "restart"],
                   required=True,
                   help="final-only/periodic/restart need --failures")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--task-law", default=None)
    p.add_argument("--margin", type=float, default=None,
                   help="preemptible/final-only/restart: margin X (default: optimal)")
    p.add_argument("--trials", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=0,
                   help="Monte-Carlo seed (default 0: runs are reproducible "
                        "unless you choose otherwise)")
    p.add_argument("--failures", action="store_true",
                   help="simulate under exponential fail-stop strikes "
                        "(see docs/failures.md)")
    p.add_argument("--failure-rate", type=float, default=None,
                   help="with --failures: strike rate lambda (per model second)")
    p.add_argument("--recovery", type=float, default=0.0,
                   help="with --failures: recovery cost charged after each strike")
    p.add_argument("--period", type=float, default=None,
                   help="periodic mode: checkpoint period T (default: Young's)")
    p.add_argument("--predictor", default=None, metavar="R,P,WIDTH[,LEAD]",
                   help="dynamic mode: failure predictor recall,precision,"
                        "window-width[,lead-time]")
    p.add_argument("--predictor-seed", type=int, default=0,
                   help="seed for the predictor's own draw stream")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("serve", help="run the JSON-lines checkpoint-advisor server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7823, help="0 picks a free port")
    p.add_argument("--cache-dir", default=None, help="persist compiled policies here")
    p.add_argument("--cache-size", type=int, default=64, help="in-memory LRU capacity")
    p.add_argument("--request-timeout", type=float, default=30.0)
    p.add_argument("--idle-timeout", type=float, default=300.0,
                   help="drop connections silent for this long (0 disables)")
    p.add_argument("--max-connections", type=int, default=128,
                   help="shed connections beyond this cap with an 'overloaded' error")
    p.add_argument("--max-inflight", type=int, default=32,
                   help="bound on concurrently executing requests")
    p.add_argument("--metrics-dump", action="store_true",
                   help="print counters and latency histograms on shutdown")
    p.add_argument("--trace", action="store_true",
                   help="enable span tracing (client trace ids are echoed regardless)")
    p.add_argument("--trace-capacity", type=int, default=2048,
                   help="finished-span ring-buffer size (oldest dropped first)")
    p.add_argument("--trace-dump", action="store_true",
                   help="with --trace: write spans as JSON lines to stderr on shutdown")
    p.add_argument("--drift-check", action="store_true",
                   help="flip health to degraded when observed checkpoint durations "
                        "KS-diverge from the assumed law")
    p.add_argument("--drift-window", type=int, default=4096,
                   help="per-law ring of observed durations used for drift checks")
    p.add_argument("--drift-min-samples", type=int, default=30,
                   help="observations needed before a drift verdict is issued")
    p.add_argument("--drift-threshold", type=float, default=None,
                   help="fixed KS-distance threshold (default: DKW bound at --drift-alpha)")
    p.add_argument("--drift-alpha", type=float, default=0.01,
                   help="false-alarm rate for the derived KS threshold")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("metrics", help="scrape a running server's unified metrics")
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="address of a running `repro serve`")
    p.add_argument("--format", choices=("prometheus", "json"), default="prometheus")
    p.add_argument("--timeout", type=float, default=10.0)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "lint",
        help="AST invariant linter: determinism, durability and "
             "strict-JSON rules (see docs/linting.md)",
    )
    p.add_argument("paths", nargs="*", default=["src", "benchmarks", "examples"],
                   help="files or directories to lint (default: src benchmarks examples)")
    p.add_argument("--format", choices=("human", "json", "sarif"), default="human",
                   help="diagnostic output format")
    p.add_argument("--select", type=_rule_id_list, default=None, metavar="REPxxx[,REPxxx...]",
                   help="run only these rules")
    p.add_argument("--ignore", type=_rule_id_list, default=None, metavar="REPxxx[,REPxxx...]",
                   help="skip these rules")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--flow", action="store_true",
                   help="run the interprocedural flow analysis "
                        "(REP101-REP105, cross-file call-graph rules)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="flow summary cache directory "
                        "(default: .repro-lint-cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the flow summary cache for this run")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("advise", help="checkpoint-or-continue for one or more W_n")
    p.add_argument("--reservation", "-R", type=float, required=True)
    p.add_argument("--task-law", required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--work", type=float, nargs="+", required=True,
                   help="one or more accumulated-work values")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="query a running `repro serve` instead of solving locally")
    p.add_argument("--deadline", type=float, default=15.0,
                   help="with --connect: total time budget per call (retries included)")
    p.add_argument("--retries", type=int, default=4,
                   help="with --connect: attempts before giving up on the server")
    p.add_argument("--no-fallback", action="store_true",
                   help="with --connect: fail instead of degrading to a local advisor")
    _add_kernel_flag(p)
    p.set_defaults(func=_cmd_advise)

    p = sub.add_parser("warm", help="precompile policies into the cache")
    p.add_argument("--reservation", "-R", type=float, nargs="+", required=True)
    p.add_argument("--task-law", required=True)
    p.add_argument("--checkpoint-law", required=True)
    p.add_argument("--cache-dir", default=None, help="persist compiled policies here")
    _add_kernel_flag(p)
    p.set_defaults(func=_cmd_warm)

    p = sub.add_parser(
        "run",
        help="execute a real iterative solver under reservations with "
             "durable checkpoints (crash-safe; see docs/recovery.md)",
    )
    p.add_argument("--solver", choices=_SOLVERS, default="jacobi")
    p.add_argument("--size", type=int, default=16,
                   help="Poisson-2D grid size (unknowns = size^2)")
    p.add_argument("--tolerance", type=float, default=1e-8)
    p.add_argument("--reservation", "-R", type=float, required=True,
                   help="length of every reservation (model seconds)")
    p.add_argument("--reservations", type=int, default=100,
                   help="maximum reservations to book")
    p.add_argument("--checkpoint-law", required=True,
                   help="checkpoint-duration law, e.g. 'normal:0.5,0.1@[0,inf]'")
    p.add_argument("--task-law", default=None,
                   help="task-duration law; enables the cached dynamic "
                        "(advisor) policy instead of checkpoint-every-N")
    p.add_argument("--every", type=int, default=1,
                   help="without --task-law: checkpoint every N iterations")
    p.add_argument("--recovery", type=float, default=0.0,
                   help="restart cost charged when resuming from a checkpoint")
    p.add_argument("--flops", type=float, default=5e7,
                   help="machine model flop rate (drives task durations)")
    p.add_argument("--noise-cv", type=float, default=0.1,
                   help="multiplicative duration jitter CV (0 disables)")
    p.add_argument("--estimator", default="pessimistic",
                   help="checkpoint-duration estimate for the deadline "
                        "abort: 'pessimistic', 'mean', or a quantile in (0,1)")
    p.add_argument("--store-dir", default=None,
                   help="durable checkpoint directory (default: in-memory)")
    p.add_argument("--keep", type=int, default=3,
                   help="checkpoint generations retained for fallback")
    p.add_argument("--resume", action="store_true",
                   help="continue a previous campaign found in --store-dir")
    p.add_argument("--inject-fault", default=None,
                   choices=["crash", "disk-full", "torn", "bitflip",
                            "manifest", "manifest-gone"],
                   help="inject one seeded fault (needs --store-dir); "
                        "'crash'/'disk-full' hit the next write, the rest "
                        "damage the existing store before running")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--failure-rate", type=float, default=None,
                   help="exponential mid-reservation strike rate lambda; "
                        "a strike kills the in-flight task or checkpoint "
                        "and forces recovery (see docs/failures.md)")
    p.add_argument("--strike-seed", type=int, default=0,
                   help="seed for the strike/window schedule streams")
    p.add_argument("--predictor", default=None, metavar="R,P,WIDTH[,LEAD]",
                   help="failure predictor recall,precision,width[,lead]; "
                        "with --failure-aware, enables proactive checkpoints")
    p.add_argument("--predictor-seed", type=int, default=0)
    p.add_argument("--failure-aware", action="store_true",
                   help="use the failure-aware dynamic policy (needs "
                        "--task-law and --failure-rate)")
    p.add_argument("--restart-margin", type=float, default=None,
                   help="use restart-without-checkpoint: run until "
                        "R - margin, then attempt the single checkpoint")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for machine noise and checkpoint durations "
                        "(default 0: runs are reproducible unless you "
                        "choose otherwise)")
    _add_kernel_flag(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "run-coupled",
        help="run a coupled multi-component workflow with consistent cuts",
    )
    p.add_argument("--components", type=int, default=3,
                   help="number of one-way-coupled diffusion subdomains")
    p.add_argument("--size", type=int, default=8,
                   help="interior cells per subdomain")
    p.add_argument("--tolerance", type=float, default=1e-5,
                   help="per-component relative-residual target")
    p.add_argument("-R", "--reservation", type=float, required=True,
                   help="reservation length (virtual seconds)")
    p.add_argument("--reservations", type=int, default=1000,
                   help="campaign budget (reservation count)")
    p.add_argument("--task-law", action="append", metavar="LAW",
                   help="per-macro-iteration duration law; give once "
                        "(replicated) or once per component")
    p.add_argument("--checkpoint-law", action="append", metavar="LAW",
                   help="member snapshot duration law; give once "
                        "(replicated) or once per component — the cut is "
                        "priced as the max of these")
    p.add_argument("--channel-cost", type=float, default=0.0,
                   help="virtual seconds per channel exchange")
    p.add_argument("--channel-jitter", type=float, default=0.0,
                   help="relative seeded jitter on the channel cost, in [0,1]")
    p.add_argument("--advisor", action="store_true",
                   help="use the cached advisor policy on the max laws "
                        "instead of cut-every-N")
    p.add_argument("--every", type=int, default=1,
                   help="without --advisor: cut every N macro-iterations")
    p.add_argument("--recovery", type=float, default=0.0,
                   help="restart cost charged when resuming from a cut")
    p.add_argument("--estimator", default="pessimistic",
                   help="cut-duration estimate for the deadline abort, "
                        "applied to max_i C_i: 'pessimistic', 'mean', or a "
                        "quantile in (0,1)")
    p.add_argument("--store-dir", default=None,
                   help="durable root directory: one store per component "
                        "plus a cuts/ manifest log (default: in-memory)")
    p.add_argument("--keep", type=int, default=8,
                   help="generations and cut manifests retained")
    p.add_argument("--resume", action="store_true",
                   help="continue a previous campaign found in --store-dir")
    p.add_argument("--inject-fault", default=None,
                   choices=["crash", "disk-full"],
                   help="inject one seeded fault into the next write of "
                        "--fault-target (needs --store-dir)")
    p.add_argument("--fault-target", default="manifest",
                   help="'manifest' (the cut log) or a component name "
                        "like c01")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--seed", type=int, default=0,
                   help="seed for duration draws and channel jitter")
    _add_kernel_flag(p)
    p.set_defaults(func=_cmd_run_coupled)

    p = sub.add_parser("chaos", help="fault-injecting TCP proxy in front of a server")
    p.add_argument("--upstream", required=True, metavar="HOST:PORT",
                   help="address of the real `repro serve`")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument("--seed", type=int, default=0, help="seed for all injected faults")
    p.add_argument("--latency", type=float, default=0.0,
                   help="seconds added before each forwarded response chunk")
    p.add_argument("--latency-jitter", type=float, default=0.0,
                   help="extra uniform-[0,j] seeded delay per chunk")
    p.add_argument("--reset-after", type=int, default=None,
                   help="abort (RST) the client after this many response bytes")
    p.add_argument("--truncate-at", type=int, default=None,
                   help="close (FIN) after this many response bytes")
    p.add_argument("--garbage-bytes", type=int, default=0,
                   help="inject this many seeded garbage bytes before the first response")
    p.add_argument("--throttle-chunk", type=int, default=None,
                   help="forward at most this many bytes per write")
    p.add_argument("--throttle-delay", type=float, default=0.0,
                   help="pause between throttled writes")
    p.add_argument("--times", type=int, default=None,
                   help="apply faults to the first N connections only")
    p.set_defaults(func=_cmd_chaos)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
