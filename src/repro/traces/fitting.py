"""Maximum-likelihood fitting of the library's distribution families.

Turns an observed duration trace into the parametric law the solvers
need (the paper's "learned from traces" step). Every fitter returns a
:class:`FitResult` carrying the fitted law, its log-likelihood and its
AIC so that :mod:`repro.traces.selection` can rank families.

All estimators are the closed-form or classically-iterated MLEs:

========= =====================================================
family    estimator
========= =====================================================
Normal    sample mean / sample std
LogNormal Normal MLE of the log-data
Exponential ``1 / mean``
Gamma     Newton on the digamma equation (Choi-Wette start)
Weibull   Newton on the profile shape equation
Uniform   sample min / max
========= =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import special

from ..distributions import (
    Distribution,
    Exponential,
    Gamma,
    LogNormal,
    Normal,
    Uniform,
    Weibull,
)

__all__ = [
    "FitResult",
    "fit_normal",
    "fit_lognormal",
    "fit_exponential",
    "fit_gamma",
    "fit_weibull",
    "fit_uniform",
    "FITTERS",
]


@dataclass(frozen=True)
class FitResult:
    """A fitted law with its goodness-of-fit bookkeeping.

    Attributes
    ----------
    family:
        Family name (lowercase).
    distribution:
        The fitted law.
    log_likelihood:
        Total log-likelihood of the data under the fit.
    n_params:
        Number of free parameters (for AIC).
    n_obs:
        Sample size.
    """

    family: str
    distribution: Distribution
    log_likelihood: float
    n_params: int
    n_obs: int

    @property
    def aic(self) -> float:
        """Akaike information criterion ``2k - 2 logL`` (lower = better)."""
        return 2.0 * self.n_params - 2.0 * self.log_likelihood


def _clean(data: ArrayLike, *, positive: bool = False) -> NDArray[np.float64]:
    arr = np.asarray(data, dtype=float).ravel()
    if arr.size < 2:
        raise ValueError("need at least 2 observations to fit")
    if not np.all(np.isfinite(arr)):
        raise ValueError("observations must be finite")
    if positive and np.any(arr <= 0.0):
        raise ValueError("this family requires strictly positive observations")
    return arr


def _loglik(dist: Distribution, arr: NDArray[np.float64]) -> float:
    ll = np.asarray(dist.logpdf(arr), dtype=float)
    return float(np.sum(ll))


def fit_normal(data: ArrayLike) -> FitResult:
    """MLE Normal fit (sample mean, biased sample std)."""
    arr = _clean(data)
    mu = float(arr.mean())
    sigma = float(arr.std())
    if sigma == 0.0:
        raise ValueError("degenerate sample (zero variance); use Deterministic")
    dist = Normal(mu, sigma)
    return FitResult("normal", dist, _loglik(dist, arr), 2, arr.size)


def fit_lognormal(data: ArrayLike) -> FitResult:
    """MLE LogNormal fit (Normal MLE of the logs)."""
    arr = _clean(data, positive=True)
    logs = np.log(arr)
    mu = float(logs.mean())
    sigma = float(logs.std())
    if sigma == 0.0:
        raise ValueError("degenerate sample (zero variance); use Deterministic")
    dist = LogNormal(mu, sigma)
    return FitResult("lognormal", dist, _loglik(dist, arr), 2, arr.size)


def fit_exponential(data: ArrayLike) -> FitResult:
    """MLE Exponential fit (``lam = 1 / mean``)."""
    arr = _clean(data, positive=True)
    dist = Exponential(1.0 / float(arr.mean()))
    return FitResult("exponential", dist, _loglik(dist, arr), 1, arr.size)


def fit_gamma(data: ArrayLike, *, max_iter: int = 100, tol: float = 1e-12) -> FitResult:
    """MLE Gamma fit via Newton iteration on the shape equation.

    Solves ``log k - digamma(k) = s`` with
    ``s = log(mean) - mean(log)``, starting from the Choi-Wette
    approximation; the scale is then ``mean / k``.
    """
    arr = _clean(data, positive=True)
    mean = float(arr.mean())
    s = math.log(mean) - float(np.mean(np.log(arr)))
    if s <= 0.0:
        raise ValueError("invalid sample for Gamma (non-positive log-moment gap)")
    k = (3.0 - s + math.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
    for _ in range(max_iter):
        f = math.log(k) - float(special.digamma(k)) - s
        fp = 1.0 / k - float(special.polygamma(1, k))
        step = f / fp
        k_new = k - step
        if k_new <= 0.0:
            k_new = k / 2.0
        if abs(k_new - k) <= tol * k_new:
            k = k_new
            break
        k = k_new
    dist = Gamma(k, mean / k)
    return FitResult("gamma", dist, _loglik(dist, arr), 2, arr.size)


def fit_weibull(data: ArrayLike, *, max_iter: int = 200, tol: float = 1e-12) -> FitResult:
    """MLE Weibull fit via Newton on the profile shape equation.

    The shape ``c`` solves ``g(c) = sum(x^c log x)/sum(x^c) - 1/c -
    mean(log x) = 0``; the scale is ``(mean(x^c))^(1/c)``.
    """
    arr = _clean(data, positive=True)
    logs = np.log(arr)
    mean_log = float(logs.mean())

    def g_and_gprime(c: float) -> tuple[float, float]:
        xc = arr**c
        sum_xc = float(xc.sum())
        sum_xc_l = float((xc * logs).sum())
        sum_xc_l2 = float((xc * logs * logs).sum())
        ratio = sum_xc_l / sum_xc
        g = ratio - 1.0 / c - mean_log
        gp = (sum_xc_l2 / sum_xc) - ratio * ratio + 1.0 / (c * c)
        return g, gp

    c = 1.0
    for _ in range(max_iter):
        g, gp = g_and_gprime(c)
        step = g / gp
        c_new = c - step
        if c_new <= 0.0:
            c_new = c / 2.0
        if abs(c_new - c) <= tol * c_new:
            c = c_new
            break
        c = c_new
    scale = float(np.mean(arr**c)) ** (1.0 / c)
    dist = Weibull(c, scale)
    return FitResult("weibull", dist, _loglik(dist, arr), 2, arr.size)


def fit_uniform(data: ArrayLike) -> FitResult:
    """MLE Uniform fit (sample min / max)."""
    arr = _clean(data)
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        raise ValueError("degenerate sample (zero range); use Deterministic")
    dist = Uniform(lo, hi)
    return FitResult("uniform", dist, _loglik(dist, arr), 2, arr.size)


#: Registry used by :func:`repro.traces.selection.select_best`.
FITTERS = {
    "normal": fit_normal,
    "lognormal": fit_lognormal,
    "exponential": fit_exponential,
    "gamma": fit_gamma,
    "weibull": fit_weibull,
    "uniform": fit_uniform,
}
