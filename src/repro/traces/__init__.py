"""Trace generation, distribution fitting and model selection.

The "learned from traces of previous checkpoints" pipeline of the
paper's introduction, end to end: synthesize (or ingest) duration
traces, fit every candidate family by maximum likelihood, select by
AIC, sanity-check by Kolmogorov-Smirnov.
"""

from .fitting import (
    FITTERS,
    FitResult,
    fit_exponential,
    fit_gamma,
    fit_lognormal,
    fit_normal,
    fit_uniform,
    fit_weibull,
)
from .generator import (
    BandwidthCheckpointLaw,
    synthetic_checkpoint_trace,
    synthetic_task_trace,
)
from .selection import SelectionReport, ks_pvalue, ks_statistic, select_best

__all__ = [
    "BandwidthCheckpointLaw",
    "synthetic_checkpoint_trace",
    "synthetic_task_trace",
    "FitResult",
    "fit_normal",
    "fit_lognormal",
    "fit_exponential",
    "fit_gamma",
    "fit_weibull",
    "fit_uniform",
    "FITTERS",
    "ks_statistic",
    "ks_pvalue",
    "SelectionReport",
    "select_best",
]
