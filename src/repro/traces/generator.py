"""Synthetic checkpoint- and task-duration traces.

The paper assumes ``D_C`` "can be learned from traces of previous
checkpoints" but works from given laws; real deployments must produce
those traces. This module supplies a physically-motivated generator:

    C = latency + volume / bandwidth,   bandwidth ~ D_B

i.e. a fixed software latency plus the transfer of the application's
checkpoint volume through a *contended* parallel file system whose
effective bandwidth fluctuates run-to-run. :class:`BandwidthCheckpointLaw`
is the exact induced distribution (usable directly by every solver in
:mod:`repro.core`), and :func:`synthetic_checkpoint_trace` draws the
trace a monitoring system would record.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import as_generator, check_integer, check_nonnegative, check_positive
from ..distributions import ContinuousDistribution, Distribution, RngLike

__all__ = [
    "BandwidthCheckpointLaw",
    "synthetic_checkpoint_trace",
    "synthetic_task_trace",
]


# Synthetic-trace helper law (latency + volume / bandwidth); it never
# reaches the policy cache, so it carries no CLI spec string.
class BandwidthCheckpointLaw(ContinuousDistribution):  # lint: allow[REP006]
    """Law of ``C = latency + volume / B`` with ``B ~ bandwidth_law``.

    Parameters
    ----------
    volume:
        Checkpoint payload size (e.g. bytes; any unit consistent with
        the bandwidth law).
    bandwidth_law:
        Law of the effective write bandwidth, supported on positive
        values (``lower > 0`` required, otherwise durations are
        unbounded with positive probability of being infinite).
    latency:
        Fixed per-checkpoint overhead (seconds).

    Notes
    -----
    ``P(C <= x) = P(B >= volume / (x - latency))``, computed through
    the bandwidth law's survival function. The support is
    ``[latency + volume / B_max, latency + volume / B_min]`` — bounded
    whenever the bandwidth law is, which is what makes this law a valid
    Section 3 checkpoint model with finite ``[a, b]``.
    """

    def __init__(
        self,
        volume: float,
        bandwidth_law: Distribution,
        latency: float = 0.0,
    ) -> None:
        self.volume = check_positive(volume, "volume")
        self.latency = check_nonnegative(latency, "latency")
        if bandwidth_law.lower <= 0.0:
            raise ValueError(
                "bandwidth law must be bounded away from 0 (truncate it); got "
                f"lower bound {bandwidth_law.lower}"
            )
        self.bandwidth_law = bandwidth_law

    @property
    def support(self) -> tuple[float, float]:
        b_lo, b_hi = self.bandwidth_law.support
        lo = self.latency + (self.volume / b_hi if math.isfinite(b_hi) else 0.0)
        hi = self.latency + self.volume / b_lo
        return (lo, hi)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        dt = x - self.latency
        pos = dt > 0.0
        safe = np.where(pos, dt, 1.0)
        needed_bw = self.volume / safe
        vals = np.asarray(self.bandwidth_law.sf(needed_bw), dtype=float)
        # sf is P(B > t); add the atom P(B = t) = 0 for continuous laws.
        return np.where(pos, np.clip(vals, 0.0, 1.0), 0.0)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        dt = x - self.latency
        pos = dt > 0.0
        safe = np.where(pos, dt, 1.0)
        needed_bw = self.volume / safe
        # d/dx P(B >= v/dt) = f_B(v/dt) * v / dt^2
        vals = np.asarray(self.bandwidth_law.pdf(needed_bw), dtype=float) * self.volume / safe**2
        return np.where(pos, vals, 0.0)

    def mean(self) -> float:
        return float(np.mean(self._moment_samples()))

    def var(self) -> float:
        return float(np.var(self._moment_samples()))

    def _moment_samples(self) -> NDArray[np.float64]:
        # Deterministic quadrature through the bandwidth quantiles.
        q = (np.arange(20001) + 0.5) / 20001
        bw = np.asarray(self.bandwidth_law.ppf(q), dtype=float)
        return self.latency + self.volume / bw

    def _sample(self, size, gen: np.random.Generator) -> NDArray[np.float64]:
        bw = self.bandwidth_law.sample(size, gen)
        return self.latency + self.volume / bw

    def _repr_params(self) -> dict:
        return {
            "volume": self.volume,
            "bandwidth_law": self.bandwidth_law,
            "latency": self.latency,
        }


def synthetic_checkpoint_trace(
    n: int,
    volume: float,
    bandwidth_law: Distribution,
    *,
    latency: float = 0.0,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Draw ``n`` checkpoint durations from the bandwidth model."""
    n = check_integer(n, "n", minimum=1)
    law = BandwidthCheckpointLaw(volume, bandwidth_law, latency)
    return law.sample(n, as_generator(rng))


def synthetic_task_trace(
    n: int,
    law: Distribution,
    *,
    autocorrelation: float = 0.0,
    rng: RngLike = None,
) -> NDArray[np.float64]:
    """Draw ``n`` task durations, optionally with AR(1) autocorrelation.

    ``autocorrelation`` in ``[0, 1)`` blends each draw with its
    predecessor in *quantile space* (a Gaussian copula), producing
    positively-correlated traces that stress the IID assumption of the
    paper's strategies while preserving the marginal law exactly.
    """
    n = check_integer(n, "n", minimum=1)
    rho = float(autocorrelation)
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"autocorrelation must be in [0, 1), got {rho}")
    gen = as_generator(rng)
    if rho == 0.0:
        return law.sample(n, gen)
    # Gaussian AR(1) copula: z_t = rho z_{t-1} + sqrt(1-rho^2) eps_t.
    z = np.empty(n)
    z[0] = gen.standard_normal()
    eps = gen.standard_normal(n)
    scale = math.sqrt(1.0 - rho * rho)
    for t in range(1, n):
        z[t] = rho * z[t - 1] + scale * eps[t]
    from ..distributions.normal import Phi

    u = np.clip(np.asarray(Phi(z), dtype=float), 1e-12, 1.0 - 1e-12)
    return np.asarray(law.ppf(u), dtype=float)
