"""Model selection among fitted families.

Ranks the candidate fits of :mod:`repro.traces.fitting` by AIC and
reports a Kolmogorov-Smirnov goodness-of-fit check for the winner, so
the calibration pipeline (trace -> law -> optimal margin) is fully
automatic yet auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from numpy.typing import ArrayLike
from scipy import special

from ..distributions import Distribution
from .fitting import FITTERS, FitResult

__all__ = ["ks_statistic", "ks_pvalue", "SelectionReport", "select_best"]


def ks_statistic(data: ArrayLike, dist: Distribution) -> float:
    """One-sample Kolmogorov-Smirnov statistic ``sup |ECDF - CDF|``."""
    arr = np.sort(np.asarray(data, dtype=float).ravel())
    n = arr.size
    if n == 0:
        raise ValueError("empty sample")
    cdf = np.asarray(dist.cdf(arr), dtype=float)
    ecdf_hi = np.arange(1, n + 1) / n
    ecdf_lo = np.arange(0, n) / n
    return float(np.max(np.maximum(ecdf_hi - cdf, cdf - ecdf_lo)))


def ks_pvalue(statistic: float, n: int) -> float:
    """Asymptotic KS p-value with the Stephens small-sample correction.

    Uses the Kolmogorov distribution ``P(K > x)`` evaluated at
    ``x = D (sqrt(n) + 0.12 + 0.11 / sqrt(n))``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    sqrt_n = math.sqrt(n)
    x = statistic * (sqrt_n + 0.12 + 0.11 / sqrt_n)
    return float(special.kolmogorov(x))


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of model selection on one trace.

    Attributes
    ----------
    best:
        The winning fit (lowest AIC among successful fits).
    ranking:
        All successful fits, best first.
    failures:
        ``{family: error message}`` for families that could not be fit
        (e.g. LogNormal on data containing zeros).
    ks_stat, ks_p:
        KS check of the winner against the data.
    """

    best: FitResult
    ranking: list[FitResult]
    failures: dict[str, str]
    ks_stat: float
    ks_p: float

    def table(self) -> str:
        """Fixed-width ranking table."""
        lines = [f"{'family':<12} {'AIC':>12} {'logL':>12}"]
        for fit in self.ranking:
            lines.append(f"{fit.family:<12} {fit.aic:>12.2f} {fit.log_likelihood:>12.2f}")
        for fam, msg in self.failures.items():
            lines.append(f"{fam:<12} {'(failed: ' + msg + ')'}")
        return "\n".join(lines)


def select_best(
    data: ArrayLike,
    families: list[str] | None = None,
) -> SelectionReport:
    """Fit every candidate family and pick the lowest-AIC law.

    Parameters
    ----------
    data:
        The observed trace.
    families:
        Subset of :data:`repro.traces.fitting.FITTERS` keys; defaults
        to all of them.
    """
    if families is None:
        families = list(FITTERS)
    unknown = set(families) - set(FITTERS)
    if unknown:
        raise ValueError(f"unknown families: {sorted(unknown)}; available: {sorted(FITTERS)}")
    fits: list[FitResult] = []
    failures: dict[str, str] = {}
    for fam in families:
        try:
            fits.append(FITTERS[fam](data))
        except (ValueError, ZeroDivisionError, FloatingPointError) as exc:
            failures[fam] = str(exc)
    if not fits:
        raise ValueError(f"no family could be fitted; failures: {failures}")
    fits.sort(key=lambda f: f.aic)
    best = fits[0]
    stat = ks_statistic(data, best.distribution)
    pval = ks_pvalue(stat, best.n_obs)
    return SelectionReport(best=best, ranking=fits, failures=failures, ks_stat=stat, ks_p=pval)
