"""Poisson law (Sections 4.2.3 and 4.3.3).

The paper's discrete task-duration model: execution times expressed in
an integer time unit, ``X_i ~ Poisson(lam)``, with the closure property
``sum of n Poisson(lam) = Poisson(n lam)``. The static relaxation
``h(y)`` evaluates ``Poisson(y lam)`` for real ``y``, which the pmf here
supports (``lam`` may be any positive real).
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import special

from .._validation import check_positive
from .base import DiscreteDistribution, spec_number

__all__ = ["Poisson"]


class Poisson(DiscreteDistribution):
    """Poisson distribution with mean ``lam`` on ``{0, 1, 2, ...}``.

    Parameters
    ----------
    lam:
        Mean/variance parameter (> 0).
    """

    def __init__(self, lam: float) -> None:
        self.lam = check_positive(lam, "lam")

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def pmf(self, k: ArrayLike) -> NDArray[np.float64]:
        k = np.asarray(k, dtype=float)
        integral = (k >= 0.0) & (k == np.floor(k))
        safe = np.where(integral, k, 0.0)
        log_pmf = -self.lam + safe * math.log(self.lam) - special.gammaln(safe + 1.0)
        return np.where(integral, np.exp(log_pmf), 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        k = np.floor(x)
        # P(Z <= k) = Q(k + 1, lam), the regularized upper incomplete gamma.
        vals = special.gammaincc(k + 1.0, self.lam)
        return np.where(x >= 0.0, vals, 0.0)

    def mean(self) -> float:
        return self.lam

    def var(self) -> float:
        return self.lam

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.poisson(self.lam, size).astype(float)

    def spec(self) -> str:
        return "poisson:" + ",".join(spec_number(v) for v in (self.lam,))

    def _repr_params(self) -> dict[str, object]:
        return {"lam": self.lam}
