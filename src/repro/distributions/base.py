"""Abstract base classes for the distribution toolkit.

The paper's two scenarios are parameterized by probability laws: ``D_C``
for checkpoint duration and ``D_X`` for task duration. This module
defines the protocol that every law in :mod:`repro.distributions`
implements, split into continuous and discrete (integer-support)
variants, mirroring the paper's continuous laws (Uniform, Exponential,
Normal, LogNormal, Gamma, Weibull) and its one discrete law (Poisson).

Every implementation supplies explicit formulas for ``pdf``/``pmf``,
``cdf`` and moments (built on :mod:`scipy.special` primitives rather
than on frozen ``scipy.stats`` objects); the test suite cross-validates
them against ``scipy.stats``.

All array-facing methods are NumPy-vectorized: they accept scalars or
arrays and return ``numpy.ndarray`` (0-d for scalar input, converted
back to ``float`` by the scalar convenience wrappers where noted).
"""

from __future__ import annotations

import abc
import math
from typing import Union

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import as_generator, check_probability

__all__ = [
    "Distribution",
    "ContinuousDistribution",
    "DiscreteDistribution",
    "RngLike",
    "spec_number",
]


def spec_number(x: float) -> str:
    """Shortest decimal literal that round-trips to ``x`` via ``float``.

    Used by :meth:`Distribution.spec` so that canonical law-spec strings
    are stable cache keys: ``float(spec_number(x)) == x`` exactly, and
    equal parameters always render identically (``3`` rather than both
    ``3.0`` and ``3``).
    """
    x = float(x)
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    r = repr(x)
    return r[:-2] if r.endswith(".0") else r

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


class Distribution(abc.ABC):
    """Common protocol for all probability laws in the library.

    Subclasses must define the support, the CDF, moments and sampling.
    ``Distribution`` provides derived conveniences (``std``, ``sf``,
    ``cv``) and a bisection-based default ``ppf``.
    """

    #: True for integer-support laws (Poisson and truncations thereof).
    is_discrete: bool = False

    # -- support ---------------------------------------------------------

    @property
    @abc.abstractmethod
    def support(self) -> tuple[float, float]:
        """Closed support ``(lo, hi)``; ``hi`` may be ``math.inf``."""

    @property
    def lower(self) -> float:
        """Lower end of the support."""
        return self.support[0]

    @property
    def upper(self) -> float:
        """Upper end of the support (possibly ``inf``)."""
        return self.support[1]

    # -- probability -----------------------------------------------------

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Cumulative distribution function ``P(Z <= x)``, vectorized."""

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Survival function ``P(Z > x) = 1 - cdf(x)``.

        Subclasses override this when a numerically superior form exists
        (e.g. ``exp(-lambda x)`` for the exponential upper tail).
        """
        return 1.0 - self.cdf(x)

    def prob_interval(self, lo: float, hi: float) -> float:
        """Probability mass of the closed interval ``[lo, hi]``.

        For discrete laws this includes both endpoints (``P(lo <= Z <= hi)``
        with ``Z`` integer); for continuous laws endpoint inclusion is
        immaterial.
        """
        if hi < lo:
            return 0.0
        if self.is_discrete:
            lo_part = self.cdf(math.ceil(lo) - 1)
        else:
            lo_part = self.cdf(lo)
        return float(np.clip(self.cdf(hi) - lo_part, 0.0, 1.0))

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        """Quantile function (inverse CDF), vectorized.

        The default implementation brackets the quantile and bisects the
        CDF; closed-form subclasses override it. For discrete laws it
        returns the smallest integer ``k`` with ``cdf(k) >= q``.
        """
        q_arr = np.asarray(q, dtype=float)
        out = np.empty_like(q_arr)
        for idx, qi in np.ndenumerate(q_arr):
            out[idx] = self._ppf_scalar(float(qi))
        return out if out.shape else out.reshape(())

    def _ppf_scalar(self, q: float) -> float:
        check_probability(q, "q")
        lo, hi = self.support
        if q <= 0.0:
            return lo
        if q >= 1.0:
            return hi
        # Establish a finite bracket when the support is unbounded.
        left = lo if math.isfinite(lo) else min(-1.0, self.mean() - 1.0)
        right = hi
        if not math.isfinite(right):
            right = max(left + 1.0, self.mean() + self.std() + 1.0)
            while float(self.cdf(right)) < q:
                right = left + 2.0 * (right - left)
        if not math.isfinite(lo):
            while float(self.cdf(left)) > q:
                left = right - 2.0 * (right - left)
        if self.is_discrete:
            left_i, right_i = math.floor(left) - 1, math.ceil(right)
            while right_i - left_i > 1:
                mid = (left_i + right_i) // 2
                if float(self.cdf(mid)) >= q:
                    right_i = mid
                else:
                    left_i = mid
            return float(right_i)
        for _ in range(200):
            mid = 0.5 * (left + right)
            if float(self.cdf(mid)) < q:
                left = mid
            else:
                right = mid
            if right - left <= 1e-12 * max(1.0, abs(right)):
                break
        return 0.5 * (left + right)

    # -- moments ---------------------------------------------------------

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @abc.abstractmethod
    def var(self) -> float:
        """Variance."""

    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.var())

    def cv(self) -> float:
        """Coefficient of variation ``std / mean`` (requires mean != 0)."""
        m = self.mean()
        if m == 0.0:
            raise ZeroDivisionError("coefficient of variation undefined for zero mean")
        return self.std() / abs(m)

    # -- sampling --------------------------------------------------------

    def sample(self, size: int | tuple[int, ...] = 1, rng: RngLike = None) -> NDArray[np.float64]:
        """Draw samples.

        Parameters
        ----------
        size:
            Output shape (int or tuple).
        rng:
            Seed, generator, or ``None`` for a fresh generator. Passing a
            generator threads RNG state through the caller, which is how
            the simulation engine keeps experiments reproducible.
        """
        gen = as_generator(rng)
        return self._sample(size, gen)

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        """Default sampler: inverse-transform via ``ppf``."""
        u = gen.random(size)
        return np.asarray(self.ppf(u), dtype=float)

    # -- canonical spec ---------------------------------------------------

    def spec(self) -> str:
        """Canonical law-spec string in the CLI grammar.

        The emitted string (``family:p1,p2[@[lo,hi]]``) parses back to an
        equivalent law via :func:`repro.cli.parse_law`, and two equal laws
        always emit the same string — which is what makes it usable as a
        content-addressed cache key (:class:`repro.service.PolicyCache`).

        Raises
        ------
        NotImplementedError
            For laws outside the CLI grammar (empirical, heterogeneous
            sums, FFT convolution laws, ...).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no canonical CLI spec; only the "
            "families of the repro.cli law grammar support spec()"
        )

    # -- misc -------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self._repr_params().items())
        return f"{type(self).__name__}({params})"

    def _repr_params(self) -> dict[str, object]:
        return {}


class ContinuousDistribution(Distribution):
    """A law with a density ``pdf`` on a real interval."""

    is_discrete = False

    @abc.abstractmethod
    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Probability density function, vectorized; 0 outside support."""

    def logpdf(self, x: ArrayLike) -> NDArray[np.float64]:
        """Natural log of the density (``-inf`` outside the support)."""
        with np.errstate(divide="ignore"):
            return np.log(self.pdf(x))


class DiscreteDistribution(Distribution):
    """A law supported on (a subset of) the nonnegative integers."""

    is_discrete = True

    @abc.abstractmethod
    def pmf(self, k: ArrayLike) -> NDArray[np.float64]:
        """Probability mass function, vectorized; 0 off-support."""

    def logpmf(self, k: ArrayLike) -> NDArray[np.float64]:
        """Natural log of the pmf (``-inf`` off-support)."""
        with np.errstate(divide="ignore"):
            return np.log(self.pmf(k))
