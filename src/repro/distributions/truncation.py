"""Truncation of arbitrary laws to an interval.

This is the core distributional operation of the paper. Section 3.1
derives, for a base law ``Z`` with CDF ``F`` and PDF ``f``, the law of
``C = Z | a <= Z <= b``::

    F_C(x) = (F(x) - F(a)) / (F(b) - F(a)),   f_C(t) = f(t) / (F(b) - F(a))

on ``[a, b]``. Section 4 uses the half-line truncation ``[0, inf)`` for
checkpoint and task durations. :func:`truncate` handles both (either
bound may be infinite) and works for continuous and discrete base laws.

The normalization constant is computed from survival functions when the
interval sits in the upper tail, so that e.g. ``Exponential(1)``
truncated to ``[50, 60]`` keeps full relative precision.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import integrate

from .base import ContinuousDistribution, Distribution, DiscreteDistribution, spec_number

__all__ = ["truncate", "TruncatedContinuous", "TruncatedDiscrete"]


def _mass_between(base: Distribution, lo: float, hi: float) -> float:
    """``P(lo <= Z <= hi)`` computed tail-stably.

    Uses CDF differences in the lower tail and SF differences in the
    upper tail (whichever keeps more relative precision).
    """
    if base.is_discrete:
        lo_edge = math.ceil(lo) - 1 if math.isfinite(lo) else -1
    else:
        lo_edge = lo
    cdf_hi = 1.0 if math.isinf(hi) else float(base.cdf(hi))
    cdf_lo = 0.0 if lo_edge == -math.inf else float(base.cdf(lo_edge))
    if cdf_lo > 0.5:
        # Upper-tail interval: difference of survival functions.
        sf_lo = float(base.sf(lo_edge))
        sf_hi = 0.0 if math.isinf(hi) else float(base.sf(hi))
        return max(sf_lo - sf_hi, 0.0)
    return max(cdf_hi - cdf_lo, 0.0)


def truncate(base: Distribution, lo: float = -math.inf, hi: float = math.inf) -> Distribution:
    """Return the law of ``base`` conditioned on ``lo <= Z <= hi``.

    Parameters
    ----------
    base:
        The law to truncate. Continuous and discrete laws are both
        supported (the result preserves the kind).
    lo, hi:
        Truncation bounds; either may be infinite. The effective support
        is the intersection with the base support and must have positive
        probability under ``base``.

    Raises
    ------
    ValueError
        If the interval is empty or carries zero probability.
    """
    if not lo < hi:
        raise ValueError(f"truncation interval must satisfy lo < hi, got [{lo}, {hi}]")
    lo_eff = max(lo, base.lower)
    hi_eff = min(hi, base.upper)
    if not lo_eff <= hi_eff:
        raise ValueError(
            f"truncation interval [{lo}, {hi}] does not intersect the support "
            f"[{base.lower}, {base.upper}]"
        )
    if base.is_discrete:
        return TruncatedDiscrete(base, lo_eff, hi_eff)
    return TruncatedContinuous(base, lo_eff, hi_eff)


class TruncatedContinuous(ContinuousDistribution):
    """Continuous law conditioned to ``[lo, hi]``.

    Built by :func:`truncate`; exposes the base law as ``base``. Sampling
    uses inverse-transform through the base quantile function, which is
    exact (no rejection) and fully vectorized.
    """

    def __init__(self, base: ContinuousDistribution, lo: float, hi: float) -> None:
        if base.is_discrete:
            raise TypeError("TruncatedContinuous requires a continuous base law")
        self.base = base
        self.lo = float(lo)
        self.hi = float(hi)
        self._mass = _mass_between(base, self.lo, self.hi)
        if self._mass <= 0.0:
            raise ValueError(
                f"interval [{lo}, {hi}] has zero probability under {base!r}"
            )
        self._cdf_lo = float(base.cdf(self.lo)) if math.isfinite(self.lo) else 0.0
        # In the upper tail, CDF differences cancel catastrophically;
        # switch to survival-function differences there.
        self._use_sf = self._cdf_lo > 0.5
        self._sf_lo = float(base.sf(self.lo)) if math.isfinite(self.lo) else 1.0
        self._moments_cache: tuple[float, float] | None = None

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        inside = (x >= self.lo) & (x <= self.hi)
        return np.where(inside, self.base.pdf(x) / self._mass, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self.lo, self.hi)
        if self._use_sf:
            vals = (self._sf_lo - self.base.sf(clipped)) / self._mass
        else:
            vals = (self.base.cdf(clipped) - self._cdf_lo) / self._mass
        return np.clip(vals, 0.0, 1.0)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        if self._use_sf:
            # Invert through the default bisection on the (tail-stable)
            # truncated CDF itself.
            out = np.empty_like(q)
            for idx, qi in np.ndenumerate(q):
                out[idx] = self._ppf_scalar(float(qi))
            return out if out.shape else out.reshape(())
        base_q = self._cdf_lo + q * self._mass
        return np.clip(self.base.ppf(np.clip(base_q, 0.0, 1.0)), self.lo, self.hi)

    def _moments(self) -> tuple[float, float]:
        if self._moments_cache is None:
            m1, _ = integrate.quad(lambda t: t * float(self.pdf(t)), self.lo, self.hi, limit=200)
            m2, _ = integrate.quad(
                lambda t: (t - m1) ** 2 * float(self.pdf(t)), self.lo, self.hi, limit=200
            )
            self._moments_cache = (m1, m2)
        return self._moments_cache

    def mean(self) -> float:
        return self._moments()[0]

    def var(self) -> float:
        return self._moments()[1]

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        u = gen.random(size)
        return np.asarray(self.ppf(u), dtype=float)

    def spec(self) -> str:
        # Nested truncations flatten: conditioning twice equals conditioning
        # the innermost base on the (already intersected) outer bounds.
        base = self.base
        while isinstance(base, (TruncatedContinuous, TruncatedDiscrete)):
            base = base.base
        return f"{base.spec()}@[{spec_number(self.lo)},{spec_number(self.hi)}]"

    def _repr_params(self) -> dict[str, object]:
        return {"base": self.base, "lo": self.lo, "hi": self.hi}


class TruncatedDiscrete(DiscreteDistribution):
    """Integer-support law conditioned to ``[lo, hi]`` (bounds inclusive)."""

    def __init__(self, base: DiscreteDistribution, lo: float, hi: float) -> None:
        if not base.is_discrete:
            raise TypeError("TruncatedDiscrete requires a discrete base law")
        self.base = base
        self.lo = float(math.ceil(lo)) if math.isfinite(lo) else base.lower
        self.hi = float(math.floor(hi)) if math.isfinite(hi) else math.inf
        self._mass = _mass_between(base, self.lo, self.hi)
        if self._mass <= 0.0:
            raise ValueError(
                f"interval [{lo}, {hi}] has zero probability under {base!r}"
            )
        self._cdf_below = float(base.cdf(self.lo - 1)) if self.lo > base.lower else 0.0

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)

    def pmf(self, k: ArrayLike) -> NDArray[np.float64]:
        k = np.asarray(k, dtype=float)
        inside = (k >= self.lo) & (k <= self.hi)
        return np.where(inside, self.base.pmf(k) / self._mass, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self.lo - 1.0, self.hi)
        vals = (self.base.cdf(clipped) - self._cdf_below) / self._mass
        return np.clip(vals, 0.0, 1.0)

    def mean(self) -> float:
        ks, ps = self._grid()
        return float(np.sum(ks * ps))

    def var(self) -> float:
        ks, ps = self._grid()
        m = float(np.sum(ks * ps))
        return float(np.sum((ks - m) ** 2 * ps))

    def _grid(self) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
        hi = self.hi
        if math.isinf(hi):
            # Cover all but ~1e-14 of the truncated mass, located through
            # the *base* quantile function (the truncated one would recurse
            # into mean()/std() for the bracket).
            base_q = min(1.0 - 1e-15, self._cdf_below + (1.0 - 1e-14) * self._mass)
            hi = float(self.base._ppf_scalar(base_q))
        ks = np.arange(self.lo, hi + 1.0)
        ps = self.pmf(ks)
        total = ps.sum()
        if total > 0:
            ps = ps / total
        return ks, ps

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        u = gen.random(size)
        return np.asarray(self.ppf(u), dtype=float)

    def spec(self) -> str:
        # Nested truncations flatten: conditioning twice equals conditioning
        # the innermost base on the (already intersected) outer bounds.
        base = self.base
        while isinstance(base, (TruncatedContinuous, TruncatedDiscrete)):
            base = base.base
        return f"{base.spec()}@[{spec_number(self.lo)},{spec_number(self.hi)}]"

    def _repr_params(self) -> dict[str, object]:
        return {"base": self.base, "lo": self.lo, "hi": self.hi}
