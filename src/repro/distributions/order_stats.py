"""Order statistics of independent laws: the *max* law for coordinated
checkpoints.

A coordinated checkpoint of a coupled workflow completes only when the
*slowest* component snapshot completes, so the end-of-reservation
decision must price ``max_i C_i`` rather than any single ``C``
(:mod:`repro.workflows.coupled`). For independent components the max has
the classical closed form

.. math:: F_{\\max}(x) = \\prod_i F_i(x),

which this module turns into a first-class
:class:`~repro.distributions.base.Distribution`:

* :class:`MaxOf` — the exact law of ``max(Z_1, ..., Z_n)`` for
  independent continuous ``Z_i`` (CDF product, density by the product
  rule, moments by survival-function quadrature);
* :func:`max_of` — dispatching constructor applying closed-form
  shortcuts (single law, all-Deterministic, stochastic dominance of one
  member's support over every other's).

``MaxOf.spec()`` emits the canonical ``max(spec1|spec2|...)`` string of
the CLI law grammar (members sorted, since max is commutative), so
compiled policies for coupled workflows are content-addressed in the
:class:`repro.service.PolicyCache` exactly like scalar laws.

This is the same "the paper declares it future work, numerically it is
tractable" move as :mod:`repro.distributions.hetsum` — there for
heterogeneous partial sums, here for the coordinated-checkpoint max.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_integer
from .base import ContinuousDistribution, Distribution
from .deterministic import Deterministic

__all__ = ["MaxOf", "max_of"]

#: Upper-tail mass discarded when a member's support is unbounded.
_TAIL_EPS = 1e-12


def max_of(laws: Sequence[Distribution]) -> Distribution:
    """Law of ``max`` of independent ``laws``, with closed-form shortcuts.

    * one law — returned unchanged;
    * all :class:`Deterministic` — ``Deterministic(max of values)``;
    * one member's support dominating every other's (its lower bound at
      or above every other upper bound) — that member, unchanged;
    * otherwise — an exact :class:`MaxOf` product law.
    """
    laws = list(laws)
    if not laws:
        raise ValueError("need at least one law")
    if len(laws) == 1:
        return laws[0]
    if all(isinstance(law, Deterministic) for law in laws):
        values = [law.value for law in laws if isinstance(law, Deterministic)]
        return Deterministic(max(values))
    for i, law in enumerate(laws):
        # Compare by position, not identity: the same law *object* may
        # appear several times (iid components), and max of n iid draws
        # is not one draw.
        others = [o for j, o in enumerate(laws) if j != i]
        if all(law.lower >= o.upper for o in others):
            return law
    return MaxOf(laws)


class MaxOf(ContinuousDistribution):
    """Exact law of ``max(Z_1, ..., Z_n)`` for independent continuous laws.

    ``cdf`` is the product of member CDFs; ``pdf`` follows by the product
    rule (``sum_i f_i * prod_{j != i} F_j``); moments are computed by
    trapezoidal quadrature of the survival function on the effective
    support, with unbounded members truncated at all but ``1e-12`` of
    their upper-tail mass. Sampling draws each member and takes the
    elementwise max (exact, no lattice error).

    Parameters
    ----------
    laws:
        At least two independent continuous member laws. Point masses
        (:class:`Deterministic`) are rejected — their Dirac "density"
        would poison the product-rule pdf; use :func:`max_of`, whose
        dispatch handles the degenerate cases exactly.
    quad_points:
        Quadrature resolution for :meth:`mean` / :meth:`var`.
    """

    def __init__(self, laws: Sequence[Distribution], *, quad_points: int = 8193) -> None:
        laws = list(laws)
        if len(laws) < 2:
            raise ValueError("MaxOf needs at least 2 member laws")
        if any(law.is_discrete for law in laws):
            raise TypeError("MaxOf requires continuous member laws")
        if any(isinstance(law, Deterministic) for law in laws):
            raise TypeError(
                "MaxOf members must have true densities; wrap Deterministic "
                "members via max_of(), which dispatches them in closed form"
            )
        self.laws = laws
        self.quad_points = check_integer(quad_points, "quad_points", minimum=65)
        self._lower = max(law.lower for law in laws)
        self._upper = max(law.upper for law in laws)
        hi = self._upper
        if not math.isfinite(hi):
            hi = max(float(law.ppf(1.0 - _TAIL_EPS)) for law in laws)
        self._quad_hi = hi
        self._mean: float | None = None
        self._second_moment: float | None = None

    # -- support ---------------------------------------------------------

    @property
    def support(self) -> tuple[float, float]:
        return (self._lower, self._upper)

    # -- probability -----------------------------------------------------

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x_arr = np.asarray(x, dtype=float)
        out = np.ones_like(x_arr, dtype=float)
        for law in self.laws:
            out = out * np.asarray(law.cdf(x_arr), dtype=float)
        return np.clip(out, 0.0, 1.0)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x_arr = np.asarray(x, dtype=float)
        cdfs = [np.asarray(law.cdf(x_arr), dtype=float) for law in self.laws]
        pdfs = [np.asarray(law.pdf(x_arr), dtype=float) for law in self.laws]
        out = np.zeros_like(x_arr, dtype=float)
        for i in range(len(self.laws)):
            term = pdfs[i]
            for j in range(len(self.laws)):
                if j != i:
                    term = term * cdfs[j]
            out = out + term
        return out

    # -- moments ---------------------------------------------------------

    def _quadrature(self) -> tuple[float, float]:
        """``(E[M], E[M^2])`` by survival-function quadrature.

        For ``M >= a`` (with ``a`` the support's lower end):
        ``E[M] = a + int_a^b sf(x) dx`` and
        ``E[M^2] = a^2 + int_a^b 2 x sf(x) dx``.
        """
        if self._mean is None or self._second_moment is None:
            a, b = self._lower, self._quad_hi
            xs = np.linspace(a, b, self.quad_points)
            sf = 1.0 - self.cdf(xs)
            step = (b - a) / (self.quad_points - 1)
            # Explicit trapezoid weights (numpy renamed trapz->trapezoid
            # across the 1.x/2.x boundary this repo spans).
            weights = np.full(self.quad_points, step)
            weights[0] = weights[-1] = 0.5 * step
            self._mean = a + float(np.sum(sf * weights))
            self._second_moment = a * a + float(np.sum(2.0 * xs * sf * weights))
        return self._mean, self._second_moment

    def mean(self) -> float:
        return self._quadrature()[0]

    def var(self) -> float:
        m, m2 = self._quadrature()
        return max(m2 - m * m, 0.0)

    # -- sampling --------------------------------------------------------

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        shape = (size,) if isinstance(size, int) else tuple(size)
        out = np.asarray(self.laws[0].sample(shape, gen), dtype=float)
        for law in self.laws[1:]:
            out = np.maximum(out, np.asarray(law.sample(shape, gen), dtype=float))
        return out

    # -- canonical spec ---------------------------------------------------

    def spec(self) -> str:
        """``max(spec1|spec2|...)`` with member specs sorted.

        Max is commutative, so sorting makes the string canonical: two
        ``MaxOf`` laws over equal member sets emit the same key. Raises
        ``NotImplementedError`` if any member lies outside the CLI
        grammar, per the :meth:`Distribution.spec` contract.
        """
        return "max(" + "|".join(sorted(law.spec() for law in self.laws)) + ")"

    def _repr_params(self) -> dict[str, object]:
        return {"n_members": len(self.laws)}
