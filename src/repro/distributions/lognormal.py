"""LogNormal law (Section 3.2.4 of the paper).

Parameterized by the underlying normal parameters ``mu`` and ``sigma``:
``ln(Z) ~ N(mu, sigma^2)``. The paper picks ``mu, sigma`` so that the
*natural-scale* mean ``mu* = exp(mu + sigma^2 / 2)`` lies inside the
truncation interval ``[a, b]``; :meth:`LogNormal.from_moments` inverts
that relation for convenience.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_finite, check_positive
from .base import ContinuousDistribution, spec_number
from .normal import Phi, Phi_inv, phi

__all__ = ["LogNormal"]


class LogNormal(ContinuousDistribution):
    """LogNormal distribution with log-scale parameters ``mu``, ``sigma``.

    Parameters
    ----------
    mu:
        Mean of ``ln(Z)``.
    sigma:
        Standard deviation of ``ln(Z)`` (> 0).
    """

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = check_finite(mu, "mu")
        self.sigma = check_positive(sigma, "sigma")

    @classmethod
    def from_moments(cls, mean: float, std: float) -> "LogNormal":
        """Construct from the natural-scale mean and standard deviation.

        Inverts ``mu* = exp(mu + sigma^2/2)`` and
        ``sigma*^2 = (exp(sigma^2) - 1) exp(2 mu + sigma^2)``.
        """
        mean = check_positive(mean, "mean")
        std = check_positive(std, "std")
        sigma2 = math.log1p((std / mean) ** 2)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def _z(self, x: NDArray[np.float64]) -> NDArray[np.float64]:
        with np.errstate(divide="ignore", invalid="ignore"):
            return (np.log(x) - self.mu) / self.sigma

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        pos = x > 0.0
        safe = np.where(pos, x, 1.0)
        vals = phi(self._z(safe)) / (safe * self.sigma)
        return np.where(pos, vals, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        pos = x > 0.0
        safe = np.where(pos, x, 1.0)
        return np.where(pos, Phi(self._z(safe)), 0.0)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return np.exp(self.mu + self.sigma * Phi_inv(q))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def var(self) -> float:
        s2 = self.sigma**2
        return math.expm1(s2) * math.exp(2.0 * self.mu + s2)

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.lognormal(self.mu, self.sigma, size)

    def spec(self) -> str:
        return "lognormal:" + ",".join(spec_number(v) for v in (self.mu, self.sigma))

    def _repr_params(self) -> dict[str, object]:
        return {"mu": self.mu, "sigma": self.sigma}
