"""Beta law scaled to an interval ``[lo, hi]``.

The most natural *bounded-support* checkpoint-duration model beyond the
paper's truncated families: its support is exactly ``[a, b] = [lo, hi]``
(no truncation needed, like the Uniform of Section 3.2.1, which is the
``alpha = beta = 1`` special case), while still expressing skew and
concentration. The generic Section 3 solver accepts it directly.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray
from scipy import special

from .._validation import check_interval, check_positive
from .base import ContinuousDistribution, spec_number

__all__ = ["Beta"]


class Beta(ContinuousDistribution):
    """Beta(``alpha``, ``beta``) linearly mapped onto ``[lo, hi]``.

    Parameters
    ----------
    alpha, beta:
        Shape parameters (> 0). ``alpha = beta = 1`` is Uniform;
        ``alpha, beta > 1`` is unimodal; ``alpha < beta`` skews toward
        ``lo``.
    lo, hi:
        Support endpoints (default the unit interval).
    """

    def __init__(self, alpha: float, beta: float, lo: float = 0.0, hi: float = 1.0) -> None:
        self.alpha = check_positive(alpha, "alpha")
        self.beta = check_positive(beta, "beta")
        self.lo, self.hi = check_interval(lo, hi, "lo", "hi")
        self._width = self.hi - self.lo

    @classmethod
    def from_mode(cls, mode: float, concentration: float, lo: float, hi: float) -> "Beta":
        """Construct a unimodal Beta from its mode and a concentration.

        ``concentration = alpha + beta`` (> 2 for unimodality); the mode
        must lie strictly inside ``(lo, hi)``.
        """
        lo, hi = check_interval(lo, hi, "lo", "hi")
        if not lo < mode < hi:
            raise ValueError(f"mode {mode} must lie strictly inside ({lo}, {hi})")
        kappa = check_positive(concentration, "concentration")
        if kappa <= 2.0:
            raise ValueError(f"concentration must exceed 2 for a unimodal Beta, got {kappa}")
        m = (mode - lo) / (hi - lo)
        alpha = m * (kappa - 2.0) + 1.0
        beta = (1.0 - m) * (kappa - 2.0) + 1.0
        return cls(alpha, beta, lo, hi)

    @property
    def support(self) -> tuple[float, float]:
        return (self.lo, self.hi)

    def _unit(self, x: ArrayLike) -> NDArray[np.float64]:
        return (np.asarray(x, dtype=float) - self.lo) / self._width

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        u = self._unit(x)
        interior = (u > 0.0) & (u < 1.0)
        safe = np.where(interior, u, 0.5)
        log_pdf = (
            (self.alpha - 1.0) * np.log(safe)
            + (self.beta - 1.0) * np.log1p(-safe)
            - special.betaln(self.alpha, self.beta)
        )
        vals = np.where(interior, np.exp(log_pdf) / self._width, 0.0)
        # Endpoint values: finite/non-zero only when the shape is 1
        # (density constant at that edge), infinite when < 1.
        norm = math.exp(-float(special.betaln(self.alpha, self.beta))) / self._width
        for edge, shape in ((0.0, self.alpha), (1.0, self.beta)):
            at_edge = u == edge
            if np.any(at_edge):
                if shape < 1.0:
                    vals = np.where(at_edge, np.inf, vals)
                elif shape == 1.0:
                    vals = np.where(at_edge, norm, vals)
        return vals

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        u = np.clip(self._unit(x), 0.0, 1.0)
        return special.betainc(self.alpha, self.beta, u)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return self.lo + self._width * special.betaincinv(self.alpha, self.beta, q)

    def mean(self) -> float:
        return self.lo + self._width * self.alpha / (self.alpha + self.beta)

    def var(self) -> float:
        ab = self.alpha + self.beta
        unit_var = self.alpha * self.beta / (ab * ab * (ab + 1.0))
        return self._width**2 * unit_var

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return self.lo + self._width * gen.beta(self.alpha, self.beta, size)

    def spec(self) -> str:
        return "beta:" + ",".join(spec_number(v) for v in (self.alpha, self.beta, self.lo, self.hi))

    def _repr_params(self) -> dict[str, object]:
        return {"alpha": self.alpha, "beta": self.beta, "lo": self.lo, "hi": self.hi}
