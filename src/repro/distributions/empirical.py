"""Empirical distribution built from an observed trace.

The paper notes that "the probability distribution can be learned from
traces of previous checkpoints" (Section 1). This class is the
model-free end of that pipeline: it turns a trace of observed durations
into a distribution usable by every solver in :mod:`repro.core` (the
generic numeric paths do not require a parametric family).

The CDF is the standard ECDF; the PDF is a linearly-interpolated
histogram density (adequate for the integrals in the solvers, which are
all CDF-weighted); sampling is bootstrap resampling.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .base import ContinuousDistribution

__all__ = ["Empirical"]


# Data-defined law: the sample itself is the parameter, so there is no
# finite CLI spec string to round-trip through parse_law.
class Empirical(ContinuousDistribution):  # lint: allow[REP006]
    """Distribution of an observed sample.

    Parameters
    ----------
    data:
        1-D array of observations (at least 2 distinct values).
    bins:
        Histogram bin count for the density estimate; defaults to the
        Freedman–Diaconis-like ``ceil(sqrt(n))`` rule.
    """

    def __init__(self, data: ArrayLike, bins: int | None = None) -> None:
        arr = np.sort(np.asarray(data, dtype=float).ravel())
        if arr.size < 2:
            raise ValueError("Empirical needs at least 2 observations")
        if not np.all(np.isfinite(arr)):
            raise ValueError("observations must be finite")
        if arr[0] == arr[-1]:
            raise ValueError("observations must not all be equal; use Deterministic")
        self.data = arr
        n_bins = bins if bins is not None else max(8, math.ceil(math.sqrt(arr.size)))
        hist, edges = np.histogram(arr, bins=n_bins, density=True)
        centers = 0.5 * (edges[:-1] + edges[1:])
        self._pdf_x = np.concatenate(([edges[0]], centers, [edges[-1]]))
        self._pdf_y = np.concatenate(([hist[0]], hist, [hist[-1]]))

    @property
    def support(self) -> tuple[float, float]:
        return (float(self.data[0]), float(self.data[-1]))

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._pdf_x, self._pdf_y, left=0.0, right=0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.searchsorted(self.data, x, side="right") / self.data.size

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return np.quantile(self.data, q)

    def mean(self) -> float:
        return float(self.data.mean())

    def var(self) -> float:
        return float(self.data.var())

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return gen.choice(self.data, size=size, replace=True)

    def _repr_params(self) -> dict[str, object]:
        return {"n_obs": self.data.size}
