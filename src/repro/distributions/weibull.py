"""Weibull law.

Not used in the paper's worked examples, but a standard model for I/O
and checkpoint durations in the fault-tolerance literature; the generic
solvers in :mod:`repro.core.preemptible` accept it directly, and the
trace-fitting module includes it in the candidate families.
"""

from __future__ import annotations

import math

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_positive
from .base import ContinuousDistribution, spec_number

__all__ = ["Weibull"]


class Weibull(ContinuousDistribution):
    """Weibull distribution with shape ``shape`` and scale ``scale``.

    CDF: ``1 - exp(-(x / scale)^shape)`` on ``[0, inf)``.
    """

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive(shape, "shape")
        self.scale = check_positive(scale, "scale")

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, math.inf)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        pos = x > 0.0
        safe = np.where(pos, x, 1.0)
        z = safe / self.scale
        vals = (self.shape / self.scale) * z ** (self.shape - 1.0) * np.exp(-(z**self.shape))
        if self.shape == 1.0:
            return np.where(x >= 0.0, np.exp(-x / self.scale) / self.scale, 0.0)
        return np.where(pos, vals, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        z = np.maximum(x, 0.0) / self.scale
        return -np.expm1(-(z**self.shape))

    def sf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        z = np.maximum(x, 0.0) / self.scale
        return np.exp(-(z**self.shape))

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        with np.errstate(divide="ignore"):
            return self.scale * (-np.log1p(-q)) ** (1.0 / self.shape)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def var(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return self.scale * gen.weibull(self.shape, size)

    def spec(self) -> str:
        return "weibull:" + ",".join(spec_number(v) for v in (self.shape, self.scale))

    def _repr_params(self) -> dict[str, object]:
        return {"shape": self.shape, "scale": self.scale}
