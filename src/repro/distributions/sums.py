"""Laws of IID sums ``S_n = X_1 + ... + X_n``.

The static strategy (paper Section 4.2) needs the law of the total
duration of the first ``n`` tasks. The paper restricts itself to
families closed under IID summation — Normal, Gamma and Poisson — and
additionally relaxes ``n`` to a *real* variable ``y`` to locate the
optimum of the continuous extension of ``E(n)``.

:func:`iid_sum` implements that closure table (plus Exponential, whose
sums are Gamma, and Deterministic) and falls back to an FFT-based
numerical convolution (:class:`FFTConvolutionSum`) for arbitrary
continuous laws with integer ``n`` — lifting the paper's restriction,
as suggested by its own "easy to extend" remark in Section 4.1.
"""

from __future__ import annotations

import math
from collections import OrderedDict

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_integer, check_positive
from .base import ContinuousDistribution, Distribution
from .deterministic import Deterministic
from .exponential import Exponential
from .gamma import Gamma
from .normal import Normal
from .poisson import Poisson

__all__ = ["iid_sum", "FFTConvolutionSum", "fft_sum_cache_clear", "fft_sum_cache_info"]

#: Memo for the FFT fallback, keyed by the summand's canonical spec
#: string (see :meth:`Distribution.spec`) and ``n``. The convolution
#: power is by far the most expensive construction in the package and
#: the policy service's static endpoint issues the same ``(dist, n)``
#: pair for every query against a cached policy, so repeats must not
#: re-run it. Laws without a canonical spec are built uncached.
_FFT_SUM_CACHE: "OrderedDict[tuple[str, int], FFTConvolutionSum]" = OrderedDict()
_FFT_SUM_CACHE_MAXSIZE = 128
_FFT_SUM_STATS = {"hits": 0, "misses": 0}


def fft_sum_cache_clear() -> None:
    """Empty the FFT-convolution memo and reset its counters."""
    _FFT_SUM_CACHE.clear()
    _FFT_SUM_STATS["hits"] = 0
    _FFT_SUM_STATS["misses"] = 0


def fft_sum_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the FFT-convolution memo."""
    return {
        "hits": _FFT_SUM_STATS["hits"],
        "misses": _FFT_SUM_STATS["misses"],
        "size": len(_FFT_SUM_CACHE),
        "maxsize": _FFT_SUM_CACHE_MAXSIZE,
    }


def _cached_fft_sum(dist: Distribution, n: int) -> FFTConvolutionSum:
    from ..obs.metrics import global_registry

    try:
        key = (dist.spec(), n)
    except NotImplementedError:
        return _timed_fft_build(dist, n)
    cached = _FFT_SUM_CACHE.get(key)
    if cached is not None:
        _FFT_SUM_STATS["hits"] += 1
        global_registry().incr("fft_sum.hits")
        _FFT_SUM_CACHE.move_to_end(key)
        return cached
    _FFT_SUM_STATS["misses"] += 1
    global_registry().incr("fft_sum.misses")
    law = _timed_fft_build(dist, n)
    _FFT_SUM_CACHE[key] = law
    while len(_FFT_SUM_CACHE) > _FFT_SUM_CACHE_MAXSIZE:
        _FFT_SUM_CACHE.popitem(last=False)
    return law


def _timed_fft_build(dist: Distribution, n: int) -> FFTConvolutionSum:
    """Build the convolution power, feeding its cost to the registry."""
    import time

    from ..obs.metrics import global_registry

    start = time.perf_counter()
    law = FFTConvolutionSum(dist, n)
    global_registry().observe("fft_sum.build_seconds", time.perf_counter() - start)
    return law


def iid_sum(dist: Distribution, n: float) -> Distribution:
    """Law of the sum of ``n`` IID copies of ``dist``.

    Parameters
    ----------
    dist:
        The summand law.
    n:
        Number of summands. May be any positive *real* for families
        closed under summation (Normal, Gamma, Exponential, Poisson,
        Deterministic) — this is the continuous relaxation used by the
        static strategy. Must be a positive integer for the generic
        FFT fallback.

    Returns
    -------
    Distribution
        The exact law when the family is closed under IID summation,
        otherwise an :class:`FFTConvolutionSum` approximation.
    """
    n = check_positive(n, "n")
    if isinstance(dist, Normal):
        return Normal(n * dist.mu, math.sqrt(n) * dist.sigma)
    if isinstance(dist, Gamma):
        return Gamma(n * dist.k, dist.theta)
    if isinstance(dist, Exponential):
        # Sum of n Exp(lam) is Gamma(n, 1/lam) (Erlang for integer n).
        return Gamma(n, 1.0 / dist.lam)
    if isinstance(dist, Poisson):
        return Poisson(n * dist.lam)
    if isinstance(dist, Deterministic):
        return Deterministic(n * dist.value)
    n_int = check_integer(n, "n", minimum=1)
    if dist.is_discrete:
        raise NotImplementedError(
            "generic IID sums are implemented for continuous laws only; "
            f"no closed form registered for {type(dist).__name__}"
        )
    return _cached_fft_sum(dist, n_int)


# Numerical convolution artifact derived from a base law; the base law's
# spec() is the canonical identity, this object has no grammar of its own.
class FFTConvolutionSum(ContinuousDistribution):  # lint: allow[REP006]
    """Numerical law of ``S_n`` for an arbitrary continuous summand.

    The summand's density is sampled on a regular grid covering all but
    ``tail_eps`` of its mass; the density of the ``n``-fold sum is then
    the ``n``-th convolution power, computed in one shot in the Fourier
    domain (``irfft(rfft(p)**n)``). ``pdf`` and ``cdf`` interpolate the
    resulting grid linearly.

    Accuracy is controlled by ``grid_points`` (per summand support
    width); errors scale as O(step^2) away from density discontinuities.

    Parameters
    ----------
    dist:
        Continuous summand law with support bounded below.
    n:
        Positive integer number of summands.
    grid_points:
        Number of lattice points across the summand's effective support.
    tail_eps:
        Upper-tail mass discarded when the support is unbounded.
    """

    def __init__(
        self,
        dist: ContinuousDistribution,
        n: int,
        *,
        grid_points: int = 4096,
        tail_eps: float = 1e-12,
    ) -> None:
        if dist.is_discrete:
            raise TypeError("FFTConvolutionSum requires a continuous summand")
        n = check_integer(n, "n", minimum=1)
        grid_points = check_integer(grid_points, "grid_points", minimum=16)
        self.dist = dist
        self.n = n
        lo = dist.lower
        if not math.isfinite(lo):
            lo = float(dist.ppf(tail_eps))
        hi = dist.upper
        if not math.isfinite(hi):
            hi = float(dist.ppf(1.0 - tail_eps))
        if not hi > lo:
            raise ValueError("summand has degenerate effective support")
        self._lo1, self._hi1 = lo, hi
        step = (hi - lo) / (grid_points - 1)
        x1 = lo + step * np.arange(grid_points)
        # Exact cell masses via CDF differences (node j carries the mass
        # of [x_j - step/2, x_j + step/2]): unbiased even when the
        # density jumps at the support edge.
        edges = np.concatenate(([x1[0] - 0.5 * step], x1 + 0.5 * step))
        cdf_vals = np.asarray(dist.cdf(edges), dtype=float)
        p1 = np.maximum(np.diff(cdf_vals), 0.0)
        total = p1.sum()
        if total <= 0.0:
            raise ValueError("summand carried no probability on the sampling grid")
        p1 /= total
        # n-fold convolution on a zero-padded lattice (linear, not circular).
        out_len = n * (grid_points - 1) + 1
        fft_len = 1 << (out_len - 1).bit_length()
        spectrum = np.fft.rfft(p1, fft_len) ** n
        p_n = np.fft.irfft(spectrum, fft_len)[:out_len]
        p_n = np.maximum(p_n, 0.0)
        p_n /= p_n.sum()
        self._step = step
        self._grid = n * lo + step * np.arange(out_len)
        self._pdf_grid = p_n / step
        cdf = np.cumsum(p_n)
        # Midpoint-shifted CDF: mass of cell i sits around grid[i].
        self._cdf_grid = np.clip(cdf - 0.5 * p_n, 0.0, 1.0)

    @property
    def support(self) -> tuple[float, float]:
        return (float(self._grid[0]), float(self._grid[-1]))

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        vals = np.interp(x, self._grid, self._pdf_grid, left=0.0, right=0.0)
        return vals

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._grid, self._cdf_grid, left=0.0, right=1.0)

    def mean(self) -> float:
        return float(np.sum(self._grid * self._pdf_grid) * self._step)

    def var(self) -> float:
        m = self.mean()
        return float(np.sum((self._grid - m) ** 2 * self._pdf_grid) * self._step)

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        # Sum n direct draws: exact (up to the summand sampler), cheap.
        shape = (size,) if isinstance(size, int) else tuple(size)
        draws = self.dist.sample((self.n, *shape), gen)
        return draws.sum(axis=0)

    def _repr_params(self) -> dict[str, object]:
        return {"dist": self.dist, "n": self.n}
