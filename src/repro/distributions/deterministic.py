"""Degenerate (deterministic) law: all mass at a single point.

The paper notes (Section 4.1) that with deterministic task durations the
workflow problem collapses to the preemptible problem of Section 3; the
:class:`Deterministic` law makes that reduction executable and testable,
and serves as the zero-variance limit in property tests.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike, NDArray

from .._validation import check_finite
from .base import ContinuousDistribution, spec_number

__all__ = ["Deterministic"]


class Deterministic(ContinuousDistribution):
    """Point mass at ``value``.

    ``pdf`` is a Dirac spike and therefore not a true density; it is
    reported as ``inf`` at the atom (and 0 elsewhere), while ``cdf``,
    moments and sampling are exact.
    """

    def __init__(self, value: float) -> None:
        self.value = check_finite(value, "value")

    @property
    def support(self) -> tuple[float, float]:
        return (self.value, self.value)

    def pdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.where(x == self.value, np.inf, 0.0)

    def cdf(self, x: ArrayLike) -> NDArray[np.float64]:
        x = np.asarray(x, dtype=float)
        return np.where(x >= self.value, 1.0, 0.0)

    def ppf(self, q: ArrayLike) -> NDArray[np.float64]:
        q = np.asarray(q, dtype=float)
        if np.any((q < 0.0) | (q > 1.0)):
            raise ValueError("quantile levels must lie in [0, 1]")
        return np.full_like(q, self.value)

    def mean(self) -> float:
        return self.value

    def var(self) -> float:
        return 0.0

    def _sample(
        self, size: int | tuple[int, ...], gen: np.random.Generator
    ) -> NDArray[np.float64]:
        return np.full(size, self.value, dtype=float)

    def spec(self) -> str:
        return "deterministic:" + ",".join(spec_number(v) for v in (self.value,))

    def _repr_params(self) -> dict[str, object]:
        return {"value": self.value}
